"""Figure 6 — average throughput without misbehavior vs network size.

Paper claim: "the average throughput obtained when using the proposed
scheme is comparable with IEEE 802.11 across different network sizes
(the two curves almost overlap)" — the correction scheme does not
degrade network capacity.
"""

from repro.experiments.figures import figure6

from conftest import archive, bench_settings


def test_fig6_throughput_vs_network_size(benchmark, executor):
    settings = bench_settings()
    fig = benchmark.pedantic(
        figure6, args=(settings,), kwargs={"executor": executor},
        rounds=1, iterations=1,
    )
    archive(fig)
    # ZERO-FLOW is tight; TWO-FLOW cells deliver few packets at bench
    # scale, so its per-point tolerance is wider.
    for scenario, tolerance in (("ZERO-FLOW", 0.15), ("TWO-FLOW", 0.30)):
        dcf = dict(fig.series[f"{scenario} 802.11"])
        cor = dict(fig.series[f"{scenario} CORRECT"])
        for n in sorted(dcf):
            if dcf[n] <= 0:
                continue
            # The curves "almost overlap".
            assert abs(cor[n] - dcf[n]) / dcf[n] < tolerance, (
                f"{scenario} n={n}: 802.11={dcf[n]:.1f} CORRECT={cor[n]:.1f}"
            )
        sizes = sorted(dcf)
        # Per-sender throughput falls as contention grows.
        assert dcf[sizes[0]] > dcf[sizes[-1]]
    benchmark.extra_info["sizes"] = sorted(
        dict(fig.series["ZERO-FLOW 802.11"])
    )
