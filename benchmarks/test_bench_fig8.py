"""Figure 8 — responsiveness of the diagnosis scheme over time.

Paper claims: measured in 1-second bins under TWO-FLOW, the correct
diagnosis percentage rapidly reaches a PM-dependent plateau — above
90% for PM=80, lower (around 60%) for PM=40.
"""

from repro.experiments.figures import figure8
from repro.metrics.stats import mean

from conftest import archive, fig8_settings


def test_fig8_diagnosis_responsiveness(benchmark):
    settings = fig8_settings()
    fig = benchmark.pedantic(
        figure8, args=(settings,), rounds=1, iterations=1
    )
    archive(fig)
    pm_values = sorted(settings.fig8_pm_values)
    plateaus = {}
    for pm in pm_values:
        series = fig.ys(f"PM={pm:.0f}%")
        assert len(series) >= 2
        # Plateau = mean of bins after the first (the ramp-up bin).
        plateaus[pm] = mean(series[1:])
        assert all(0.0 <= y <= 100.0 for y in series)
    strongest = pm_values[-1]
    # Large misbehavior is diagnosed at a consistently high rate...
    assert plateaus[strongest] > 80.0
    # ...and the plateau is ordered by the extent of misbehavior.
    assert plateaus[strongest] >= plateaus[pm_values[0]]
    # Responsiveness: already diagnosing within the first bins.
    first_bins = fig.ys(f"PM={strongest:.0f}%")[:2]
    assert max(first_bins) > 50.0
    benchmark.extra_info["plateaus"] = plateaus
