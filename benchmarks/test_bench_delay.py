"""Extension bench: MAC access delay vs PM (the paper's other motive).

Section 3.1 defines selfish misbehavior as seeking "higher throughput
or lower delay"; this companion to Figure 5 checks the delay side:
under 802.11 a cheater's access delay shrinks well below honest
senders'; under CORRECT the penalties remove that advantage.
"""

from repro.experiments.figures import figure_delay

from conftest import archive, bench_settings


def test_delay_extension(benchmark):
    settings = bench_settings()
    fig = benchmark.pedantic(
        figure_delay, args=(settings,), rounds=1, iterations=1
    )
    archive(fig)
    dcf_msb = dict(fig.series["802.11 - MSB"])
    dcf_avg = dict(fig.series["802.11 - AVG"])
    cor_msb = dict(fig.series["CORRECT - MSB"])
    cor_avg = dict(fig.series["CORRECT - AVG"])
    mid = [pm for pm in sorted(dcf_msb) if 0.0 < pm <= 80.0]
    assert mid
    # Under 802.11 the cheater jumps the queue...
    for pm in mid:
        assert dcf_msb[pm] < dcf_avg[pm]
    # ...and its advantage widens with PM.
    assert dcf_msb[mid[-1]] / dcf_avg[mid[-1]] < dcf_msb[mid[0]] / dcf_avg[mid[0]] + 0.2
    # Under CORRECT the penalties remove the delay advantage.
    for pm in mid:
        assert cor_msb[pm] > 0.8 * cor_avg[pm], (
            f"PM={pm}: MSB delay {cor_msb[pm]:.2f} ms vs AVG {cor_avg[pm]:.2f} ms"
        )
    benchmark.extra_info["dcf_gap_at_mid"] = dcf_msb[mid[-1]] / dcf_avg[mid[-1]]
