"""Micro-benchmarks of the simulator substrate itself.

These are classic pytest-benchmark timings (multiple rounds) for the
hot paths: kernel event dispatch, the medium's transmission pipeline,
and a full saturated-cell simulation second.  They track the cost of
the substrate that every figure harness pays.
"""

from repro.experiments.scenarios import (
    PROTOCOL_CORRECT,
    ScenarioConfig,
    run_scenario,
)
from repro.mac.frames import Frame, FrameKind
from repro.net.topology import circle_topology
from repro.phy.constants import PhyTimings
from repro.phy.medium import Medium
from repro.phy.propagation import ShadowingModel
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry


def test_kernel_event_throughput(benchmark):
    """Schedule + dispatch cost for 10k chained events."""

    def run_events():
        sim = Simulator()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 10_000:
                sim.schedule(1, tick)

        sim.schedule(0, tick)
        sim.run()
        return count

    assert benchmark(run_events) == 10_000


class _NullListener:
    def __init__(self, node_id):
        self.node_id = node_id

    def on_channel_busy(self):
        pass

    def on_channel_idle(self):
        pass

    def on_marginal_change(self):
        pass

    def on_frame(self, frame):
        pass

    def on_frame_corrupted(self):
        pass


def test_medium_transmission_pipeline(benchmark):
    """Cost of 1k transmissions through a 12-listener medium."""

    def run_medium():
        sim = Simulator()
        registry = RngRegistry(1)
        medium = Medium(sim, ShadowingModel(),
                        rng=registry.stream("shadowing"),
                        timings=PhyTimings())
        for i in range(12):
            medium.register(_NullListener(i), (i * 60.0, 0.0))
        frame = Frame(kind=FrameKind.DATA, src=0, dst=1, size_bytes=512,
                      duration_us=0, payload_bytes=512)
        for k in range(1000):
            sim.schedule(k * 300, lambda: medium.start_transmission(
                0, frame, 200
            ))
        sim.run()
        return medium.transmissions_started

    assert benchmark(run_medium) == 1000


def test_saturated_cell_simulation_second(benchmark):
    """Wall time of one simulated second, 8 saturated CORRECT senders."""
    topo = circle_topology(8, misbehaving=(3,), pm_percent=50.0)
    config = ScenarioConfig(topology=topo, protocol=PROTOCOL_CORRECT,
                            duration_us=1_000_000, seed=1)

    result = benchmark(run_scenario, config)
    assert result.collector.deliveries
