"""Micro-benchmarks of the simulator substrate itself.

These are classic pytest-benchmark timings (multiple rounds) for the
hot paths: kernel event dispatch, the medium's transmission pipeline,
and a full saturated-cell simulation second.  They track the cost of
the substrate that every figure harness pays.
"""

from repro.experiments.scenarios import (
    PROTOCOL_CORRECT,
    ScenarioConfig,
    run_scenario,
)
from repro.mac.frames import Frame, FrameKind
from repro.net.topology import circle_topology
from repro.phy.constants import PhyTimings
from repro.phy.medium import Medium
from repro.phy.propagation import ShadowingModel
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry


def test_kernel_event_throughput(benchmark):
    """Schedule + dispatch cost for 10k chained events."""

    def run_events():
        sim = Simulator()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 10_000:
                sim.schedule(1, tick)

        sim.schedule(0, tick)
        sim.run()
        return count

    assert benchmark(run_events) == 10_000


class _NullListener:
    def __init__(self, node_id):
        self.node_id = node_id

    def on_channel_busy(self):
        pass

    def on_channel_idle(self):
        pass

    def on_marginal_change(self):
        pass

    def on_frame(self, frame):
        pass

    def on_frame_corrupted(self):
        pass


def test_medium_transmission_pipeline(benchmark):
    """Cost of 1k transmissions through a 12-listener medium."""

    def run_medium():
        sim = Simulator()
        registry = RngRegistry(1)
        medium = Medium(sim, ShadowingModel(),
                        rng=registry.stream("shadowing"),
                        timings=PhyTimings())
        for i in range(12):
            medium.register(_NullListener(i), (i * 60.0, 0.0))
        frame = Frame(kind=FrameKind.DATA, src=0, dst=1, size_bytes=512,
                      duration_us=0, payload_bytes=512)
        for k in range(1000):
            sim.schedule(k * 300, lambda: medium.start_transmission(
                0, frame, 200
            ))
        sim.run()
        return medium.transmissions_started

    assert benchmark(run_medium) == 1000


def test_saturated_cell_simulation_second(benchmark):
    """Wall time of one simulated second, 8 saturated CORRECT senders."""
    topo = circle_topology(8, misbehaving=(3,), pm_percent=50.0)
    config = ScenarioConfig(topology=topo, protocol=PROTOCOL_CORRECT,
                            duration_us=1_000_000, seed=1)

    result = benchmark(run_scenario, config)
    assert result.collector.deliveries


# ----------------------------------------------------------------------
# Events/sec trajectory (BENCH_engine.json)
# ----------------------------------------------------------------------
#
# Every run of this module appends the kernel's aggregate events/sec on
# the fig6/fig7 regeneration workload to ``benchmarks/BENCH_engine.json``
# so kernel speed is tracked PR over PR (see benchmarks/README.md for
# the file format and how to re-baseline after an intentional change).

import hashlib
import json
import os
import pathlib
import time
from datetime import datetime, timezone

from repro.experiments.scenarios import PROTOCOL_80211
from repro.sim.batch import batchable, run_scenario_batch
from repro.sim.vecrng import HAVE_NUMPY

TRAJECTORY_PATH = pathlib.Path(__file__).parent / "BENCH_engine.json"
#: Keep the trajectory bounded; old entries age out.
TRAJECTORY_CAP = 200
#: Tolerated events/sec drop vs the committed baseline (CI gate).
REGRESSION_TOLERANCE = 0.20


def _workload_scale():
    """(scale name, sizes, seeds, duration) of the trajectory workload."""
    if os.environ.get("REPRO_QUICK"):
        return "quick", (1, 8), (1, 2), 200_000
    return "bench", (1, 4, 16, 64), (1, 2), 400_000


def _workload_configs(sizes, seeds, duration_us):
    """The fig6/fig7 grid: both scenario families, both protocols."""
    configs = []
    for with_interferers in (False, True):
        for protocol in (PROTOCOL_80211, PROTOCOL_CORRECT):
            for n in sizes:
                topo = circle_topology(n, with_interferers=with_interferers)
                for seed in seeds:
                    configs.append(ScenarioConfig(
                        topology=topo, protocol=protocol,
                        duration_us=duration_us, seed=seed,
                    ))
    return configs


def _signature(results):
    """Digest of the figure values each run contributes to fig6/fig7."""
    sig = [(r.events_processed, round(r.avg_throughput_bps, 6),
            round(r.fairness_index, 9)) for r in results]
    return hashlib.sha256(json.dumps(sig).encode()).hexdigest()[:16]


def _load_trajectory():
    if TRAJECTORY_PATH.exists():
        return json.loads(TRAJECTORY_PATH.read_text())
    return {"schema": 1,
            "workload": "fig6/fig7 grid: {ZERO,TWO-FLOW} x {802.11,correct}"
                        " x network sizes x seeds",
            "baselines": {}, "trajectory": []}


def test_events_per_sec_trajectory():
    scale, sizes, seeds, duration_us = _workload_scale()
    configs = _workload_configs(sizes, seeds, duration_us)

    start = time.perf_counter()
    results = [run_scenario(config) for config in configs]
    scalar_wall = time.perf_counter() - start
    events = sum(r.events_processed for r in results)
    signature = _signature(results)

    record = {
        "utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "scale": scale,
        "runs": len(configs),
        "events": events,
        "signature": signature,
        "scalar": {"wall_s": round(scalar_wall, 3),
                   "events_per_sec": round(events / scalar_wall)},
    }

    if HAVE_NUMPY and all(batchable(c) for c in configs):
        groups = {}
        for config in configs:
            key = (config.protocol, config.duration_us,
                   id(config.topology))
            groups.setdefault(key, []).append(config)
        start = time.perf_counter()
        batched = [r for group in groups.values()
                   for r in run_scenario_batch(group)]
        batch_wall = time.perf_counter() - start
        assert _signature(batched) == signature  # bit-identity, every run
        record["batch"] = {"wall_s": round(batch_wall, 3),
                           "events_per_sec": round(events / batch_wall)}

    data = _load_trajectory()
    baseline = data["baselines"].get(scale)
    if baseline is None or os.environ.get("REPRO_BENCH_REBASE"):
        data["baselines"][scale] = record
        baseline = record
    data["trajectory"] = (data["trajectory"] + [record])[-TRAJECTORY_CAP:]
    TRAJECTORY_PATH.write_text(json.dumps(data, indent=2) + "\n")

    # Bit-identity versus the committed baseline is enforced on every
    # run; the events/sec floor only under REPRO_BENCH_GATE (CI) so
    # noisy developer machines don't flake.
    assert signature == baseline["signature"], (
        f"fig6/fig7 values changed: {signature} != baseline "
        f"{baseline['signature']} — results are no longer bit-identical"
    )
    if os.environ.get("REPRO_BENCH_GATE"):
        floor = baseline["scalar"]["events_per_sec"] * (
            1.0 - REGRESSION_TOLERANCE
        )
        measured = record["scalar"]["events_per_sec"]
        assert measured >= floor, (
            f"kernel regression: {measured:,.0f} ev/s is more than "
            f"{REGRESSION_TOLERANCE:.0%} below the committed baseline "
            f"{baseline['scalar']['events_per_sec']:,.0f} ev/s"
        )
