"""Figure 9 — random topologies (40 nodes, 1500 m x 700 m, 5 cheaters).

Paper claims: (a) correct diagnosis is high when misbehavior is large
and misdiagnosis stays reasonably small across all PM; (b) at small PM
the correction scheme restricts the misbehaving nodes near a fair
share, while at large PM it is less successful but diagnosis catches
the cheaters.
"""

from repro.experiments.figures import figure9a, figure9b

from conftest import archive, bench_settings


def test_fig9a_random_topology_diagnosis(benchmark, executor):
    settings = bench_settings()
    fig = benchmark.pedantic(
        figure9a, args=(settings,), kwargs={"executor": executor},
        rounds=1, iterations=1,
    )
    archive(fig)
    diag = dict(fig.series["correct diagnosis"])
    mis = dict(fig.series["misdiagnosis"])
    top = max(diag)
    assert diag[top] > 85.0
    assert diag[0.0] == 0.0
    # "Misdiagnosis percentage is reasonably small across all PM."
    assert all(v < 20.0 for v in mis.values())
    benchmark.extra_info["diag_at_max_pm"] = diag[top]
    benchmark.extra_info["misdiag_max"] = max(mis.values())


def test_fig9b_random_topology_throughput(benchmark, executor):
    settings = bench_settings()
    fig = benchmark.pedantic(
        figure9b, args=(settings,), kwargs={"executor": executor},
        rounds=1, iterations=1,
    )
    archive(fig)
    msb_dcf = dict(fig.series["802.11 - MSB"])
    avg_dcf = dict(fig.series["802.11 - AVG"])
    msb_cor = dict(fig.series["CORRECT - MSB"])
    pms = sorted(msb_dcf)
    top = pms[-1]
    mid = [pm for pm in pms if 0.0 < pm <= 60.0]
    # The designated cheaters' own honest-run throughput: in random
    # fields their local contention differs from the network AVG.
    fair = fig.meta["cheaters_fair_share_kbps"]
    # Under 802.11 cheaters take an outsized share at high PM.
    assert msb_dcf[top] > 1.5 * max(avg_dcf[top], 1e-9)
    if mid:
        # At small/medium PM, CORRECT keeps cheaters near their own
        # fair share...
        for pm in mid:
            assert msb_cor[pm] < 1.5 * fair, (
                f"PM={pm}: MSB={msb_cor[pm]:.1f} fair={fair:.1f}"
            )
        # ...and well below what 802.11 would have given them.
        assert max(msb_cor[pm] for pm in mid) < max(
            msb_dcf[pm] for pm in mid
        )
    benchmark.extra_info["cheaters_fair_share_kbps"] = fair
    benchmark.extra_info["msb_correct_mid_pm"] = (
        {pm: msb_cor[pm] for pm in mid}
    )
