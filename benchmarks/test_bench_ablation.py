"""Ablations of the design choices DESIGN.md calls out.

The paper leaves three things open that this reproduction had to pin
down; each gets an ablation here:

1. **Additional-penalty form** (Section 4.2 only says it is needed):
   flat vs proportional vs combined.  The flat/combined forms reach a
   stable fair-share equilibrium; a strongly proportional form
   compounds geometrically and locks moderate cheaters out.
2. **alpha** (equation 1 tolerance): smaller alpha tolerates more
   cheating before penalising.
3. **Adaptive THRESH** (the paper's future work): tracks channel noise
   and holds misdiagnosis down in the TWO-FLOW scenario without giving
   up diagnosis of strong cheaters.
"""

from repro.core.params import ProtocolConfig
from repro.experiments.runner import run_seeds
from repro.experiments.scenarios import PROTOCOL_CORRECT, ScenarioConfig
from repro.metrics.stats import mean
from repro.net.topology import circle_topology

from conftest import bench_settings

MISBEHAVING = (3,)


def run_with(config_kwargs, pm, settings, scenario_kwargs=None,
             with_interferers=False):
    topo = circle_topology(
        8, misbehaving=MISBEHAVING if pm else (), pm_percent=pm,
        with_interferers=with_interferers,
    )
    cfg = ScenarioConfig(
        topology=topo,
        protocol=PROTOCOL_CORRECT,
        duration_us=settings.duration_us,
        protocol_config=ProtocolConfig(**config_kwargs),
        **(scenario_kwargs or {}),
    )
    return run_seeds(cfg, settings.seeds)


def summarize(results):
    return {
        "msb": mean([r.msb_throughput_bps for r in results]) / 1000.0,
        "avg": mean([r.avg_throughput_bps for r in results]) / 1000.0,
        "diag": mean([r.correct_diagnosis_percent for r in results]),
        "mis": mean([r.misdiagnosis_percent for r in results]),
    }


def test_ablation_penalty_form(benchmark):
    """Flat vs proportional additional penalty at PM=60."""
    settings = bench_settings()
    forms = {
        "none (P=D)": {"extra_penalty_factor": 0.0, "extra_penalty_slots": 0},
        "flat+prop (default)": {},
        "proportional (P=2D)": {
            "extra_penalty_factor": 1.0, "extra_penalty_slots": 0,
        },
    }

    def run_all():
        return {
            name: summarize(run_with(kwargs, 60.0, settings))
            for name, kwargs in forms.items()
        }

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    for name, row in rows.items():
        print(f"  {name:22s} MSB={row['msb']:7.1f}k AVG={row['avg']:7.1f}k "
              f"diag={row['diag']:5.1f}%")
    # Without an additional penalty the cheater keeps a clear edge...
    assert rows["none (P=D)"]["msb"] > 1.1 * rows["none (P=D)"]["avg"]
    # ...which the default form removes (near or below fair share).
    assert (
        rows["flat+prop (default)"]["msb"]
        < 0.9 * rows["none (P=D)"]["msb"]
    )
    benchmark.extra_info["rows"] = rows


def test_ablation_alpha(benchmark):
    """Equation-1 tolerance: alpha=0.5 forgives what alpha=0.9 penalises."""
    settings = bench_settings()

    def run_all():
        return {
            alpha: summarize(run_with({"alpha": alpha}, 40.0, settings))
            for alpha in (0.5, 0.9, 1.0)
        }

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    for alpha, row in rows.items():
        print(f"  alpha={alpha:3.1f} MSB={row['msb']:7.1f}k "
              f"AVG={row['avg']:7.1f}k diag={row['diag']:5.1f}%")
    # A permissive alpha lets a 40% cheater keep more throughput than
    # the paper's 0.9 does.
    assert rows[0.5]["msb"] >= rows[0.9]["msb"] * 0.9
    # And diagnosis weakens as alpha drops (fewer penalties feed the
    # windowed differences).
    assert rows[1.0]["diag"] >= rows[0.5]["diag"] * 0.5
    benchmark.extra_info["rows"] = rows


def test_ablation_window_thresh(benchmark):
    """W/THRESH: a tighter threshold diagnoses milder cheating."""
    settings = bench_settings()

    def run_all():
        return {
            (w, thresh): summarize(
                run_with({"window": w, "thresh": thresh}, 30.0, settings)
            )
            for (w, thresh) in ((5, 20), (5, 60), (10, 40))
        }

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    for (w, thresh), row in rows.items():
        print(f"  W={w:2d} THRESH={thresh:3d} diag={row['diag']:5.1f}% "
              f"mis={row['mis']:4.1f}%")
    # Raising THRESH (same W) can only reduce diagnosis sensitivity.
    assert rows[(5, 60)]["diag"] <= rows[(5, 20)]["diag"] + 1e-9
    benchmark.extra_info["rows"] = {str(k): v for k, v in rows.items()}


def test_ablation_adaptive_thresh(benchmark):
    """Adaptive THRESH (future work) vs the fixed paper value.

    Evaluated under TWO-FLOW where the fixed THRESH=20 misdiagnoses
    heavily; the adaptive estimator should cut misdiagnosis while
    keeping strong cheaters diagnosed.
    """
    settings = bench_settings()

    def run_all():
        out = {}
        for label, adaptive in (("fixed", False), ("adaptive", True)):
            out[label] = {
                "honest": summarize(run_with(
                    {}, 0.0, settings,
                    scenario_kwargs={"adaptive_thresh": adaptive},
                    with_interferers=True,
                )),
                "pm80": summarize(run_with(
                    {}, 80.0, settings,
                    scenario_kwargs={"adaptive_thresh": adaptive},
                    with_interferers=True,
                )),
            }
        return out

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    for label, row in rows.items():
        print(f"  {label:8s} honest-mis={row['honest']['mis']:5.1f}% "
              f"pm80-diag={row['pm80']['diag']:5.1f}%")
    assert rows["adaptive"]["honest"]["mis"] <= rows["fixed"]["honest"]["mis"]
    assert rows["adaptive"]["pm80"]["diag"] > 60.0
    benchmark.extra_info["rows"] = rows


def test_ablation_basic_access(benchmark):
    """The scheme without RTS/CTS (paper: 'can be applied even when
    RTS/CTS exchange is not used'): detection and restraint survive."""
    settings = bench_settings()

    def run_all():
        out = {}
        for label, rts in (("four-way", True), ("basic", False)):
            out[label] = summarize(run_with(
                {}, 60.0, settings,
                scenario_kwargs={"use_rts_cts": rts},
            ))
        return out

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    for label, row in rows.items():
        print(f"  {label:9s} MSB={row['msb']:7.1f}k AVG={row['avg']:7.1f}k "
              f"diag={row['diag']:5.1f}% mis={row['mis']:4.1f}%")
    for label, row in rows.items():
        assert row["diag"] > 50.0, label          # cheater diagnosed
        assert row["msb"] < 1.5 * row["avg"], label  # and restrained
    # Basic access carries less control overhead: higher honest AVG.
    assert rows["basic"]["avg"] > rows["four-way"]["avg"]
    benchmark.extra_info["rows"] = rows
