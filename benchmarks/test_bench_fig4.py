"""Figure 4 — diagnosis accuracy vs magnitude of misbehavior.

Regenerates the correct-diagnosis and misdiagnosis curves for the
ZERO-FLOW and TWO-FLOW scenarios and asserts the paper's qualitative
shape: misdiagnosis near zero without interferers, diagnosis rising
monotonically with PM and saturating near 100% for blatant cheaters,
TWO-FLOW trading extra misdiagnosis for sensitivity.
"""

from repro.experiments.figures import figure4

from conftest import archive, bench_settings


def test_fig4_diagnosis_accuracy(benchmark):
    settings = bench_settings()
    fig = benchmark.pedantic(
        figure4, args=(settings,), rounds=1, iterations=1
    )
    archive(fig)
    zero_diag = dict(fig.series["ZERO-FLOW correct diagnosis"])
    zero_mis = dict(fig.series["ZERO-FLOW misdiagnosis"])
    two_diag = dict(fig.series["TWO-FLOW correct diagnosis"])
    two_mis = dict(fig.series["TWO-FLOW misdiagnosis"])
    pms = sorted(zero_diag)
    top = pms[-1]

    # No misbehavior -> no correct-diagnosis signal at all.
    assert zero_diag[0.0] == 0.0
    assert two_diag[0.0] == 0.0
    # Blatant misbehavior is essentially always diagnosed.
    assert zero_diag[top] > 90.0
    assert two_diag[top] > 90.0
    # Diagnosis grows broadly with PM (allow plateau noise).
    assert zero_diag[top] >= zero_diag[pms[1]] >= zero_diag[0.0]
    # ZERO-FLOW misdiagnosis stays small at every PM.
    assert all(v < 12.0 for v in zero_mis.values())
    # The TWO-FLOW tradeoff: more misdiagnosis than ZERO-FLOW.
    mid_pms = [pm for pm in pms if 0.0 < pm < top]
    if mid_pms:
        assert max(two_mis[pm] for pm in mid_pms) > max(
            zero_mis[pm] for pm in mid_pms
        )
    benchmark.extra_info["zero_diag_at_max_pm"] = zero_diag[top]
    benchmark.extra_info["zero_misdiag_max"] = max(zero_mis.values())
