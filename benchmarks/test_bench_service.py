"""Sustained-throughput benchmark of the online detection service.

Drives the Zipf load generator (:mod:`repro.service.loadgen`) through
``DetectionService`` at the acceptance geometry — at least 100k
distinct senders against an 8 x 10k-entry sharded LRU store — and
appends sustained observations/sec plus p99 first-sight-to-flag
latency to ``benchmarks/BENCH_service.json`` (same trajectory format
as ``BENCH_engine.json``; see benchmarks/README.md).

Correctness invariants (no honest sender flagged, cheaters flagged,
distinct-sender floor, evictions actually exercised) are asserted on
every run.  The obs/sec floor — the larger of the absolute 50k floor
and the committed per-scale baseline minus tolerance — is enforced
only under ``REPRO_BENCH_GATE`` so noisy developer machines don't
flake; ``REPRO_BENCH_REBASE`` re-pins the baseline.
"""

from __future__ import annotations

import os
import pathlib
from datetime import datetime, timezone

from repro.service.loadgen import (
    ABSOLUTE_FLOOR_OBS_PER_SEC,
    BENCH_SCALES,
    REGRESSION_TOLERANCE,
    append_trajectory,
    run_bench,
)

TRAJECTORY_PATH = pathlib.Path(__file__).parent / "BENCH_service.json"


def _scale() -> str:
    if os.environ.get("REPRO_QUICK"):
        return "quick"
    if os.environ.get("REPRO_FULL"):
        return "full"
    return "bench"


def test_service_sustained_throughput():
    scale = _scale()
    config = BENCH_SCALES[scale]
    result = run_bench(config)  # asserts no honest sender flagged

    # The acceptance geometry, checked at every scale on every run.
    assert result.distinct_senders >= 100_000, (
        f"only {result.distinct_senders:,} distinct senders; the bench "
        f"must churn >= 100k keys to exercise the LRU budget"
    )
    assert result.evictions > 0, (
        "no evictions: the stream never exceeded the per-shard entry "
        "budget, so bounded memory was not exercised"
    )
    assert result.flagged > 0
    assert result.p99_flag_latency_s is not None

    record = result.to_record()
    record["utc"] = datetime.now(timezone.utc).isoformat(timespec="seconds")
    record["scale"] = scale
    baseline = append_trajectory(
        TRAJECTORY_PATH, scale, record,
        rebase=bool(os.environ.get("REPRO_BENCH_REBASE")),
    )

    if os.environ.get("REPRO_BENCH_GATE"):
        floor = max(
            ABSOLUTE_FLOOR_OBS_PER_SEC,
            baseline["obs_per_sec"] * (1.0 - REGRESSION_TOLERANCE),
        )
        assert record["obs_per_sec"] >= floor, (
            f"service ingest regression: {record['obs_per_sec']:,.0f} "
            f"obs/sec is below the gate floor {floor:,.0f} "
            f"(absolute floor {ABSOLUTE_FLOOR_OBS_PER_SEC:,}, baseline "
            f"{baseline['obs_per_sec']:,} minus "
            f"{REGRESSION_TOLERANCE:.0%} tolerance)"
        )
