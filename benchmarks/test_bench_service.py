"""Sustained-throughput benchmark of the online detection service.

Drives the Zipf load generator (:mod:`repro.service.loadgen`) through
``DetectionService`` at the acceptance geometry — at least 100k
distinct senders against an 8 x 10k-entry sharded LRU store — and
appends sustained observations/sec plus p99 first-sight-to-flag
latency to ``benchmarks/BENCH_service.json`` (same trajectory format
as ``BENCH_engine.json``; see benchmarks/README.md).

Two columns per scale: the single-process ingest hot path (scale key
``quick``/``bench``/``full``) and the 4-worker
:class:`~repro.service.workers.IngestWorkerPool` end to end (scale
key suffixed ``-w4``: route + ship + worker decode + fold).  Every
record carries the host's schedulable core count — a multi-worker
number from a 1-core container measures routing overhead, not
speedup, so the >= 2x multi-worker speedup target is gated (under
``REPRO_BENCH_GATE``) only on hosts with 4+ cores.

Correctness invariants (no honest sender flagged, cheaters flagged,
distinct-sender floor, evictions actually exercised) are asserted on
every run.  The obs/sec floor — the larger of the absolute 50k floor
and the committed per-scale baseline minus tolerance — is enforced
only under ``REPRO_BENCH_GATE`` so noisy developer machines don't
flake; ``REPRO_BENCH_REBASE`` re-pins the baseline.
"""

from __future__ import annotations

import dataclasses
import os
import pathlib
from datetime import datetime, timezone

from repro.service.loadgen import (
    ABSOLUTE_FLOOR_OBS_PER_SEC,
    BENCH_SCALES,
    REGRESSION_TOLERANCE,
    append_trajectory,
    available_cores,
    run_bench,
)

TRAJECTORY_PATH = pathlib.Path(__file__).parent / "BENCH_service.json"

#: Worker count of the multi-worker column.
POOL_WORKERS = 4
#: Multi-worker speedup target vs the same run's single-process rate
#: (gated only on hosts where the workers can actually run in
#: parallel — see ``MIN_CORES_FOR_SPEEDUP_GATE``).
POOL_SPEEDUP_TARGET = 2.0
MIN_CORES_FOR_SPEEDUP_GATE = 4


def _scale() -> str:
    if os.environ.get("REPRO_QUICK"):
        return "quick"
    if os.environ.get("REPRO_FULL"):
        return "full"
    return "bench"


def _bench_and_record(config, scale_key, gate_floor=True):
    result = run_bench(config)  # asserts no honest sender flagged

    # The acceptance geometry, checked at every scale on every run.
    assert result.distinct_senders >= 100_000, (
        f"only {result.distinct_senders:,} distinct senders; the bench "
        f"must churn >= 100k keys to exercise the LRU budget"
    )
    assert result.evictions > 0, (
        "no evictions: the stream never exceeded the per-shard entry "
        "budget, so bounded memory was not exercised"
    )
    assert result.flagged > 0
    assert result.p99_flag_latency_s is not None

    record = result.to_record()
    record["utc"] = datetime.now(timezone.utc).isoformat(timespec="seconds")
    record["scale"] = scale_key
    baseline = append_trajectory(
        TRAJECTORY_PATH, scale_key, record,
        rebase=bool(os.environ.get("REPRO_BENCH_REBASE")),
    )

    if os.environ.get("REPRO_BENCH_GATE") and gate_floor:
        floor = max(
            ABSOLUTE_FLOOR_OBS_PER_SEC,
            baseline["obs_per_sec"] * (1.0 - REGRESSION_TOLERANCE),
        )
        assert record["obs_per_sec"] >= floor, (
            f"service ingest regression [{scale_key}]: "
            f"{record['obs_per_sec']:,.0f} obs/sec is below the gate "
            f"floor {floor:,.0f} (absolute floor "
            f"{ABSOLUTE_FLOOR_OBS_PER_SEC:,}, baseline "
            f"{baseline['obs_per_sec']:,} minus "
            f"{REGRESSION_TOLERANCE:.0%} tolerance)"
        )
    return record


def test_service_sustained_throughput():
    scale = _scale()
    _bench_and_record(BENCH_SCALES[scale], scale)


def test_service_multi_worker_throughput():
    """The multi-worker column: the same workload through a 4-worker
    pool, recorded under its own baseline key and — on multi-core
    hosts under the gate — required to beat the single-process rate
    by the 2x target."""
    scale = _scale()
    config = dataclasses.replace(BENCH_SCALES[scale], workers=POOL_WORKERS)
    cores = available_cores()
    # On a host that can't run the workers in parallel (fewer cores
    # than workers), the pool measures pure routing/IPC overhead —
    # record the honest number, but don't hold it to the obs/sec
    # floor a parallel host would meet.
    pool_record = _bench_and_record(
        config, f"{scale}-w{POOL_WORKERS}",
        gate_floor=cores >= MIN_CORES_FOR_SPEEDUP_GATE,
    )
    assert pool_record["workers"] == POOL_WORKERS
    assert pool_record["cores"] == cores

    if (os.environ.get("REPRO_BENCH_GATE")
            and cores >= MIN_CORES_FOR_SPEEDUP_GATE):
        single = run_bench(BENCH_SCALES[scale])
        speedup = pool_record["obs_per_sec"] / single.obs_per_sec
        assert speedup >= POOL_SPEEDUP_TARGET, (
            f"{POOL_WORKERS}-worker pool sustained only "
            f"{pool_record['obs_per_sec']:,.0f} obs/sec vs "
            f"{single.obs_per_sec:,.0f} single-process "
            f"({speedup:.2f}x) on a {cores}-core host; the "
            f"multi-worker geometry must deliver >= "
            f"{POOL_SPEEDUP_TARGET:.0f}x there"
        )
