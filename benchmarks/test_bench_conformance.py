"""Tracing and conformance-replay overhead.

Two concerns:

* with no trace attached, the producers' ``trace is not None`` guards
  are the only cost — a traced-capable build must run the detectors
  benchmark scenario at the same speed as the seed;
* with tracing attached *and* the full rule engine replaying the
  trace, the end-to-end cost stays within 1.5x of the untraced run,
  and the trace of a misbehaving cell still replays violation-free
  (sequencing rules are orthogonal to backoff cheating).
"""

import time

from repro.experiments.scenarios import (
    PROTOCOL_CORRECT,
    ScenarioConfig,
    build_scenario,
)
from repro.net.topology import circle_topology
from repro.sim.trace import TraceLog
from repro.validation import ProtocolChecker


def _run(config, trace=None):
    sim, nodes, collector = build_scenario(config, trace=trace)
    for node in nodes:
        node.start()
    sim.run(until=config.duration_us)
    return collector


def _timed(config, trace=None):
    # CPU time, not wall clock: the sim is compute-bound, and the
    # overhead ratio must not be decided by scheduler preemption on a
    # loaded host.
    start = time.process_time()
    collector = _run(config, trace=trace)
    return collector, time.process_time() - start


def test_tracing_and_replay_overhead(benchmark):
    """Trace + full-rule replay stays under 1.5x of the untraced run."""
    topo = circle_topology(8, misbehaving=(3,), pm_percent=60.0)
    config = ScenarioConfig(topology=topo, protocol=PROTOCOL_CORRECT,
                            duration_us=1_000_000, seed=1)

    baseline = benchmark(_run, config)
    assert baseline.deliveries

    # Same-machine comparison after the benchmark warmed the path;
    # untraced and traced samples interleave so a sustained load burst
    # hits both sides, and min-of-N discards transient spikes.
    base_t = traced_t = float("inf")
    untraced = traced = trace = None
    for _ in range(4):
        untraced, t = _timed(config)
        base_t = min(base_t, t)
        trace = TraceLog()
        traced, t = _timed(config, trace=trace)
        traced_t = min(traced_t, t)

    # Tracing must never perturb behaviour, only record it.
    assert traced.flows[1].delivered_packets == \
        untraced.flows[1].delivered_packets
    assert len(trace) > 10_000

    check_start = time.process_time()
    report = ProtocolChecker().check(trace)
    check_t = time.process_time() - check_start
    assert report.ok, report.by_rule()
    assert report.transmissions > 1_000

    ratio = (traced_t + check_t) / base_t if base_t > 0 else 1.0
    benchmark.extra_info["trace_events"] = len(trace)
    benchmark.extra_info["traced_plus_check_ratio"] = round(ratio, 3)
    assert ratio < 1.5, (
        f"tracing+replay took {ratio:.2f}x the untraced run "
        f"(trace {traced_t:.2f}s, check {check_t:.2f}s, base {base_t:.2f}s)"
    )
