"""Detector subsystem — figure regeneration and stage overhead.

Two concerns:

* the ``detectors`` comparison figure keeps its qualitative shape
  (every detector catches a blatant cheater, none convicts an honest
  circle at its defaults, CUSUM/estimator trade latency for silence);
* routing every judged packet through the pluggable detector stage
  costs essentially nothing over the seed's hard-wired diagnosis path
  — the adapter is one extra method call per reception.
"""

import time
from dataclasses import replace

from repro.experiments.figures import MISBEHAVING_NODE, figure_detectors
from repro.experiments.scenarios import (
    PROTOCOL_CORRECT,
    ScenarioConfig,
    run_scenario,
)
from repro.net.topology import circle_topology

from conftest import archive, bench_settings


def test_detectors_figure(benchmark, executor):
    settings = bench_settings()
    fig = benchmark.pedantic(
        figure_detectors, args=(settings,),
        kwargs={"executor": executor}, rounds=1, iterations=1,
    )
    archive(fig)
    top = max(settings.pm_values)
    for spec in settings.detectors:
        detection = dict(fig.series[f"{spec} - detection %"])
        alarms = dict(fig.series[f"{spec} - false alarm %"])
        # A blatant cheater is caught, an honest circle is not.
        assert detection[top] > 50.0, spec
        assert detection[0.0] == 0.0, spec
        assert alarms[0.0] < 10.0, spec
        # Time-to-detection exists wherever the cheater got flagged.
        ttd = dict(fig.series.get(f"{spec} - TTD (pkts)", ()))
        assert top in ttd and ttd[top] >= 1.0, spec
        benchmark.extra_info[f"{spec}_detection_at_top"] = detection[top]
        benchmark.extra_info[f"{spec}_ttd_pkts_at_top"] = ttd[top]


def _timed_run(config):
    start = time.perf_counter()
    result = run_scenario(config)
    return result, time.perf_counter() - start


def test_detector_stage_overhead(benchmark):
    """The registry path must not slow down the receiver pipeline.

    Compares one misbehaving-circle second run through the seed path
    (``detector=None``) against the same run routed through each
    registered detector.  The window adapter must also stay
    bit-identical — the overhead being measured is pure dispatch.
    """
    topo = circle_topology(8, misbehaving=(MISBEHAVING_NODE,),
                           pm_percent=60.0)
    base = ScenarioConfig(topology=topo, protocol=PROTOCOL_CORRECT,
                          duration_us=1_000_000, seed=1)

    baseline = benchmark(run_scenario, base)
    assert baseline.collector.deliveries

    # Warm-up already happened (benchmark ran the baseline repeatedly);
    # time each detector path once against a fresh baseline timing.
    _, base_t = _timed_run(base)
    for spec in ("window", "cusum", "estimator"):
        result, spec_t = _timed_run(replace(base, detector=spec))
        ratio = spec_t / base_t if base_t > 0 else 1.0
        benchmark.extra_info[f"{spec}_overhead_ratio"] = round(ratio, 3)
        # Generous bound: same-machine, same-run comparison.  The
        # detector stage is O(1) per packet; anything past 1.5x means
        # an accidental quadratic or allocation storm crept in.
        assert ratio < 1.5, f"{spec} run took {ratio:.2f}x the seed path"
        if spec == "window":
            assert result.collector.deliveries == \
                baseline.collector.deliveries
