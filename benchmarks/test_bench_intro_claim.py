"""Section 1 motivating claim — one [0, CW/4] cheater under 802.11.

"For a network containing 8 nodes sending packets to a common
receiver, with one of the 8 nodes misbehaving by selecting backoff
values from range [0, CW/4], the throughput of the other 7 nodes is
degraded by as much as 50%."
"""

from repro.experiments.figures import intro_claim

from conftest import archive, bench_settings


def test_intro_quarter_window_claim(benchmark):
    settings = bench_settings()
    fig = benchmark.pedantic(
        intro_claim, args=(settings,), rounds=1, iterations=1
    )
    archive(fig)
    fair = fig.series["fair share (all honest)"][0][1]
    degraded = fig.series["honest AVG with cheater"][0][1]
    cheater = fig.series["cheater (MSB)"][0][1]
    # The cheater takes several honest shares for itself...
    assert cheater > 2.5 * fair
    # ...and honest senders lose a large fraction of their fair share
    # ("as much as 50%"; we require at least 25% at bench scale).
    assert degraded < 0.75 * fair
    benchmark.extra_info["degradation_percent"] = fig.meta[
        "degradation_percent"
    ]
