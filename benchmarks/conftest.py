"""Shared configuration for the benchmark suite.

Each ``test_bench_*`` module regenerates one table/figure of the paper
at a reduced scale (a pure-Python substrate on one core cannot afford
50 s x 30 seeds per data point), checks its qualitative shape, and
archives the rendered ASCII table under ``benchmark_results/``.

Scale selection:

* default           — ``BENCH_SETTINGS`` below (seconds per figure);
* ``REPRO_FULL=1``  — the paper's full scale (hours of CPU);
* ``REPRO_QUICK=1`` — the smallest smoke scale.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments.executor import ExperimentExecutor
from repro.experiments.report import render_table
from repro.experiments.settings import (
    EvalSettings,
    PAPER_SETTINGS,
    QUICK_SETTINGS,
)

#: Scale used by default for `pytest benchmarks/`.
BENCH_SETTINGS = EvalSettings(
    duration_us=1_500_000,
    seeds=(1, 2),
    pm_values=(0.0, 20.0, 40.0, 60.0, 80.0, 100.0),
    network_sizes=(1, 4, 16, 64),
    fig8_pm_values=(40.0, 80.0),
    random_topologies=2,
    random_nodes=30,
    random_misbehaving=4,
)

#: Longer horizon for the Figure 8 time series (needs several 1 s bins).
FIG8_BENCH_SETTINGS = EvalSettings(
    duration_us=5_000_000,
    seeds=(1, 2),
    fig8_pm_values=(40.0, 80.0),
)

RESULTS_DIR = pathlib.Path(__file__).parent / "benchmark_results"


def bench_settings() -> EvalSettings:
    if os.environ.get("REPRO_QUICK"):
        return QUICK_SETTINGS
    if os.environ.get("REPRO_FULL"):
        return PAPER_SETTINGS
    return BENCH_SETTINGS


def fig8_settings() -> EvalSettings:
    if os.environ.get("REPRO_QUICK"):
        return QUICK_SETTINGS
    if os.environ.get("REPRO_FULL"):
        return PAPER_SETTINGS
    return FIG8_BENCH_SETTINGS


@pytest.fixture(scope="session")
def settings() -> EvalSettings:
    return bench_settings()


@pytest.fixture(scope="session")
def executor():
    """One persistent worker pool shared by every figure bench.

    Figure generators flatten their whole sweep grid into a single
    batch on this executor, so the suite pays pool spawn cost once
    instead of once per sweep point.
    """
    with ExperimentExecutor() as shared:
        yield shared


def archive(fig) -> str:
    """Render a figure result, save it, and return the table text."""
    table = render_table(fig)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{fig.figure_id}.txt"
    path.write_text(table + "\n", encoding="utf-8")
    print()
    print(table)
    return table
