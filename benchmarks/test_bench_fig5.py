"""Figure 5 — throughput comparison, IEEE 802.11 vs CORRECT, vs PM.

The paper's claims: under 802.11 the misbehaving node's throughput
("802.11 - MSB") rises steeply with PM while the honest average
("802.11 - AVG") collapses; under the proposed scheme "CORRECT - MSB"
stays near the fair share except as PM approaches 100, and
"CORRECT - AVG" is barely affected.
"""

from repro.experiments.figures import figure5

from conftest import archive, bench_settings


def test_fig5_throughput_comparison(benchmark):
    settings = bench_settings()
    fig = benchmark.pedantic(
        figure5, args=(settings,), rounds=1, iterations=1
    )
    archive(fig)
    msb_dcf = dict(fig.series["802.11 - MSB"])
    avg_dcf = dict(fig.series["802.11 - AVG"])
    msb_cor = dict(fig.series["CORRECT - MSB"])
    avg_cor = dict(fig.series["CORRECT - AVG"])
    pms = sorted(msb_dcf)
    top = pms[-1]
    fair = avg_dcf[0.0]
    mid = [pm for pm in pms if 0.0 < pm <= 80.0]

    # 802.11: the cheater wins big and honest nodes pay for it.
    assert msb_dcf[top] > 3.0 * fair
    assert avg_dcf[top] < 0.5 * fair
    if mid:
        worst_gain_dcf = max(msb_dcf[pm] / fair for pm in mid)
        worst_gain_cor = max(msb_cor[pm] / fair for pm in mid)
        # CORRECT pins the cheater near fair share where 802.11 lets
        # it run away.
        assert worst_gain_cor < 0.6 * worst_gain_dcf
        assert worst_gain_cor < 2.0
        # Honest nodes keep most of their fair share under CORRECT.
        assert min(avg_cor[pm] for pm in mid) > 0.75 * fair
    # At PM=100 the correction scheme cannot restrain (paper caveat):
    assert msb_cor[top] > 2.0 * fair
    benchmark.extra_info["fair_share_kbps"] = fair
    benchmark.extra_info["msb_80211_at_max"] = msb_dcf[top]
    benchmark.extra_info["msb_correct_at_max"] = msb_cor[top]
