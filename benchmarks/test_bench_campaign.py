"""Journal overhead of the crash-safe campaign layer.

The campaign journal buys durability with one fsync per settled run.
This module measures what that costs against the same sweep collected
purely in memory (``ExperimentExecutor.run`` alone, no journal, no
summary rewrites) and appends both timings to
``benchmarks/BENCH_campaign.json`` in the ``BENCH_engine.json``
trajectory format, so the overhead is tracked PR over PR.

Gates:

* **Always**: the journaled campaign's per-run metrics are bit-
  identical to the in-memory sweep's — durability must not perturb
  results.
* **Under ``REPRO_BENCH_GATE``** (CI): journal overhead <= 5% of the
  in-memory wall time at this scale.  Developer machines skip the
  timing gate (fsync cost is wildly filesystem-dependent) but still
  check identity.
"""

import hashlib
import json
import os
import pathlib
import time
from datetime import datetime, timezone

from repro.experiments.campaign import (
    CampaignAggregator,
    JournalWriter,
    expand_cells,
    parse_campaign,
    read_journal,
    run_campaign,
)
from repro.experiments.campaign.journal import METRIC_FIELDS
from repro.experiments.executor import ExperimentExecutor

TRAJECTORY_PATH = pathlib.Path(__file__).parent / "BENCH_campaign.json"
TRAJECTORY_CAP = 200
#: Tolerated journal overhead vs the in-memory sweep (CI gate).
OVERHEAD_TOLERANCE = 0.05


def _workload():
    """(scale name, spec) for the overhead measurement.

    Runs must be long enough that per-run fsync cost amortizes the way
    it does in real campaigns (sub-millisecond fsync vs tens of
    milliseconds of simulation); sub-10ms runs would measure the
    filesystem, not the campaign layer.
    """
    if os.environ.get("REPRO_QUICK"):
        return "quick", ("scenario=circle:3; pm=0|60; seeds=1-6; "
                         "seconds=2.0")
    return "bench", ("scenario=circle:3; pm=0|30|60; seeds=1-10; "
                     "seconds=5.0")


def _metric_signature(metric_rows):
    """Digest of every run's metrics, in deterministic cell order."""
    return hashlib.sha256(
        json.dumps(metric_rows, sort_keys=True).encode()
    ).hexdigest()[:16]


def _load_trajectory():
    if TRAJECTORY_PATH.exists():
        return json.loads(TRAJECTORY_PATH.read_text())
    return {"schema": 1,
            "workload": "journaled campaign vs in-memory sweep, "
                        "circle:3 PM x seed grid",
            "baselines": {}, "trajectory": []}


def _time_campaign_machinery(out_dir, cells, metric_rows):
    """Wall time of everything the campaign adds to the raw sweep.

    Replays the orchestrator's exact extra work for this cell list —
    fingerprinting, the journal header, one append per settled run
    with the per-chunk fsync pattern, streaming aggregation, and the
    per-chunk atomic summary rewrite — against real record payloads.
    """
    from repro.experiments.campaign.orchestrator import (
        DEFAULT_CHUNK_SIZE,
        _fingerprint_cells,
        write_summary,
    )

    out_dir.mkdir(parents=True, exist_ok=True)
    summary_path = out_dir / "summary.json"
    start = time.perf_counter()
    fingerprinted, duplicates = _fingerprint_cells(cells)
    aggregator = CampaignAggregator()
    with JournalWriter(out_dir / "journal.jsonl") as writer:
        writer.append({"kind": "campaign", "spec": "bench", "cells":
                       len(fingerprinted)})
        pending = list(zip(fingerprinted, metric_rows))
        for chunk_start in range(0, len(pending), DEFAULT_CHUNK_SIZE):
            chunk = pending[chunk_start:chunk_start + DEFAULT_CHUNK_SIZE]
            for (fingerprint, cell), metrics in chunk:
                record = {
                    "kind": "run", "fp": fingerprint, "cell": cell.key,
                    "group": cell.group, "seed": cell.seed,
                    "status": "ok", "metrics": metrics,
                }
                writer.append(record, sync=False)
                aggregator.add(record)
            writer.sync()
            write_summary(summary_path, "bench", (0, 1),
                          len(fingerprinted), duplicates, aggregator)
    write_summary(summary_path, "bench", (0, 1), len(fingerprinted),
                  duplicates, aggregator)
    return time.perf_counter() - start


def test_journal_overhead_trajectory(tmp_path, monkeypatch):
    # The run cache would let the second sweep replay the first one's
    # results and fake a near-zero wall time; measure uncached.
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_BATCH", raising=False)
    scale, spec_text = _workload()
    spec = parse_campaign(spec_text)
    cells = expand_cells(spec)
    configs = [cell.config for cell in cells]
    # Scheduler/allocator noise on a shared box easily exceeds the
    # few-percent effect under measurement; interleave the paths and
    # take each one's best of REPEATS.
    repeats = 2 if scale == "bench" else 3

    ex = ExperimentExecutor(workers=1, on_failure="flag")
    try:
        ex.run(configs[:2])  # warm allocator and code paths
    finally:
        ex.close()

    journal_wall = memory_wall = float("inf")
    journaled_metrics = memory_metrics = None
    for repeat in range(repeats):
        # Default chunk size: both paths then run one executor batch,
        # so the delta is journal + summary + fingerprint cost, not
        # the executor's fixed per-batch cost.
        start = time.perf_counter()
        report = run_campaign(spec, tmp_path / f"campaign-{repeat}",
                              workers=1)
        journal_wall = min(journal_wall, time.perf_counter() - start)
        assert report.exit_code == 0 and report.ok == len(cells)
        records = [r for r in read_journal(report.journal_path).records
                   if r["kind"] == "run"]
        journaled_metrics = [r["metrics"] for r in records]

        ex = ExperimentExecutor(workers=1, on_failure="flag")
        try:
            start = time.perf_counter()
            outcomes = ex.run(configs)
            memory_wall = min(memory_wall, time.perf_counter() - start)
        finally:
            ex.close()
        memory_metrics = [
            {name: getattr(outcome, name) for name in METRIC_FIELDS}
            for outcome in outcomes
        ]

    # Durability must not perturb results: same cells, same metrics,
    # same order — checked on every run, gated or not.
    signature = _metric_signature(journaled_metrics)
    assert signature == _metric_signature(memory_metrics), (
        "journaled campaign metrics diverge from the in-memory sweep"
    )

    # The paired-sweep delta (`overhead_paired`) is trajectory data
    # only: on a shared box, scheduler noise across two ~1 s sweeps
    # easily exceeds the few-percent effect.  The *gate* times the
    # durability machinery directly — the exact extra work the
    # campaign does on top of the executor sweep (fingerprinting,
    # journal appends + per-chunk fsync, aggregation, atomic summary
    # rewrites) — which is deterministic enough to bound.
    machinery_wall = _time_campaign_machinery(
        tmp_path / "machinery", cells, journaled_metrics
    )
    overhead = machinery_wall / memory_wall
    record = {
        "utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "scale": scale,
        "runs": len(cells),
        "signature": signature,
        "journal": {"wall_s": round(journal_wall, 3)},
        "memory": {"wall_s": round(memory_wall, 3)},
        "machinery": {"wall_s": round(machinery_wall, 4)},
        "overhead": round(overhead, 4),
        "overhead_paired": round(journal_wall / memory_wall - 1.0, 4),
    }

    data = _load_trajectory()
    baseline = data["baselines"].get(scale)
    if baseline is None or os.environ.get("REPRO_BENCH_REBASE"):
        data["baselines"][scale] = record
        baseline = record
    data["trajectory"] = (data["trajectory"] + [record])[-TRAJECTORY_CAP:]
    TRAJECTORY_PATH.write_text(json.dumps(data, indent=2) + "\n")

    if os.environ.get("REPRO_BENCH_GATE"):
        assert overhead <= OVERHEAD_TOLERANCE, (
            f"journal overhead {overhead:.1%} exceeds the "
            f"{OVERHEAD_TOLERANCE:.0%} bound "
            f"({machinery_wall:.4f}s of durability machinery vs "
            f"{memory_wall:.3f}s of in-memory sweep)"
        )


def test_streaming_aggregation_cost_is_negligible(tmp_path):
    """Aggregator update cost per record (pure CPU, no I/O)."""
    agg = CampaignAggregator()
    record = {
        "kind": "run", "fp": "fp", "cell": "c", "group": "g",
        "seed": 1, "status": "ok",
        "metrics": {name: 1.0 for name in METRIC_FIELDS},
    }
    n = 20_000
    start = time.perf_counter()
    for i in range(n):
        agg.add({**record, "fp": f"fp{i}", "group": f"g{i % 8}"})
    per_record_us = (time.perf_counter() - start) / n * 1e6
    assert agg.ok == n
    # A simulation run takes >= milliseconds; aggregation must stay
    # orders of magnitude below that.
    assert per_record_us < 500.0
