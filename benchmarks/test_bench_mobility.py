"""Mobility bench: diagnosis within a drive-by cheater's contact window.

The paper motivates the small-W design with mobility: a receiver
cannot accumulate a long behavioral profile of a sender that is only
briefly in range.  This bench drives a PM=90 cheater through the cell
at increasing speeds and reports what fraction of its delivered
packets stood diagnosed — the W=5 window keeps that fraction high even
at vehicular speeds.
"""

from repro.core.sender_policy import PartialCountdownPolicy
from repro.mac.correct import CorrectMac
from repro.metrics.collector import MetricsCollector
from repro.net.mobility import LinearMobility
from repro.net.node import build_node
from repro.net.traffic import BackloggedSource
from repro.phy.constants import PhyTimings
from repro.phy.medium import Medium
from repro.phy.propagation import ShadowingModel
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry

from conftest import bench_settings


def drive_by(speed_mps: float, duration_us: int, seed: int):
    sim = Simulator()
    registry = RngRegistry(seed)
    medium = Medium(sim, ShadowingModel(), rng=registry.stream("shadowing"),
                    timings=PhyTimings())
    collector = MetricsCollector(misbehaving={2})
    receiver = CorrectMac(sim, medium, 0, registry, collector)
    honest = CorrectMac(sim, medium, 1, registry, collector)
    cheater = CorrectMac(sim, medium, 2, registry, collector,
                         policy=PartialCountdownPolicy(90.0))
    build_node(medium, receiver, (0.0, 0.0))
    n1 = build_node(medium, honest, (150.0, 0.0), BackloggedSource(0))
    n2 = build_node(medium, cheater, (-240.0, 0.0), BackloggedSource(0))
    LinearMobility(sim, medium, 2, velocity_mps=(speed_mps, 0.0))
    n1.start()
    n2.start()
    sim.run(until=duration_us)
    stats = collector.flows[2]
    frac = (stats.diagnosed_packets / stats.delivered_packets
            if stats.delivered_packets else 0.0)
    return frac, stats.delivered_packets


def test_drive_by_cheater_diagnosed_at_speed(benchmark):
    settings = bench_settings()
    duration = max(settings.duration_us, 3_000_000)

    def run_all():
        out = {}
        for speed in (0.0, 10.0, 30.0, 60.0):
            fractions = []
            packets = 0
            for seed in settings.seeds:
                frac, n = drive_by(speed, duration, seed)
                fractions.append(frac)
                packets += n
            out[speed] = (sum(fractions) / len(fractions), packets)
        return out

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    for speed, (frac, packets) in rows.items():
        print(f"  speed={speed:5.1f} m/s: {100 * frac:5.1f}% of "
              f"{packets} delivered packets stood diagnosed")
    # Even a 60 m/s fly-through is diagnosed on most of its packets:
    # W=5 needs only a handful of exchanges.
    for speed, (frac, packets) in rows.items():
        assert packets > 20
        assert frac > 0.5, f"speed {speed}: only {frac:.0%} diagnosed"
    benchmark.extra_info["rows"] = {
        str(k): {"diagnosed_fraction": v[0], "packets": v[1]}
        for k, v in rows.items()
    }
