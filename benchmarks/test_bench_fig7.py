"""Figure 7 — Jain's fairness index vs network size (no misbehavior).

Paper claims: for ZERO-FLOW the fairness index of the correction
scheme is comparable to IEEE 802.11; for TWO-FLOW it may be slightly
lower (occasional false deviations earn small penalties), but stays
close.
"""

from repro.experiments.figures import figure7

from conftest import archive, bench_settings


def test_fig7_fairness_vs_network_size(benchmark, executor):
    settings = bench_settings()
    fig = benchmark.pedantic(
        figure7, args=(settings,), kwargs={"executor": executor},
        rounds=1, iterations=1,
    )
    archive(fig)
    for scenario in ("ZERO-FLOW", "TWO-FLOW"):
        dcf = dict(fig.series[f"{scenario} 802.11"])
        cor = dict(fig.series[f"{scenario} CORRECT"])
        for n in sorted(dcf):
            assert 0.0 < dcf[n] <= 1.0
            assert 0.0 < cor[n] <= 1.0
            # "Comparable": within 0.15 of the baseline at every size
            # (the paper's curves differ by a few hundredths).
            assert abs(cor[n] - dcf[n]) < 0.15, (
                f"{scenario} n={n}: 802.11={dcf[n]:.3f} CORRECT={cor[n]:.3f}"
            )
        # A single sender is trivially fair.
        if 1 in dcf:
            assert dcf[1] > 0.999
            assert cor[1] > 0.999
    benchmark.extra_info["zero_flow_gap_max"] = max(
        abs(dict(fig.series["ZERO-FLOW CORRECT"])[n]
            - dict(fig.series["ZERO-FLOW 802.11"])[n])
        for n in dict(fig.series["ZERO-FLOW 802.11"])
    )
