"""Adversary bench: adaptive cheaters vs the paper's resistance claims.

Quantifies two claims made in the text (not plotted in any figure):

* Section 4.3 — a sender that adapts to W and THRESH still pays a
  penalty for every perceived deviation, so dodging *diagnosis* does
  not buy throughput;
* Section 3.2 — a cheater that serves its penalties in full cannot
  gain a significant advantage.

Compares throughput gain (MSB / honest fair share) for: a naive PM=80
cheater, the threshold-aware cheater, and the penalty-respecting
cheater, all under the CORRECT protocol.
"""

from repro.core.sender_policy import PartialCountdownPolicy
from repro.core.smart_cheaters import (
    PenaltyRespectingCheaterPolicy,
    ThresholdAwareCheaterPolicy,
)
from repro.experiments.runner import run_seeds
from repro.experiments.scenarios import PROTOCOL_CORRECT, ScenarioConfig
from repro.metrics.stats import mean
from repro.net.topology import circle_topology

from conftest import bench_settings

CHEATER = 3


def gain_for(policy_factory, settings):
    topo = circle_topology(8, misbehaving=(CHEATER,), pm_percent=80.0)
    config = ScenarioConfig(
        topology=topo, protocol=PROTOCOL_CORRECT,
        duration_us=settings.duration_us,
        policy_overrides={CHEATER: policy_factory()},
    )
    results = run_seeds(config, settings.seeds)
    msb = mean([r.msb_throughput_bps for r in results])
    avg = mean([r.avg_throughput_bps for r in results])
    diag = mean([r.correct_diagnosis_percent for r in results])
    return msb / max(avg, 1.0), diag


def test_adaptive_adversaries_gain_little(benchmark):
    settings = bench_settings()

    def run_all():
        return {
            "naive PM=80": gain_for(
                lambda: PartialCountdownPolicy(80.0), settings
            ),
            "threshold-aware": gain_for(
                lambda: ThresholdAwareCheaterPolicy(pm_percent=80.0),
                settings,
            ),
            "penalty-respecting": gain_for(
                lambda: PenaltyRespectingCheaterPolicy(pm_percent=80.0),
                settings,
            ),
        }

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    for name, (gain, diag) in rows.items():
        print(f"  {name:20s} throughput gain = {gain:4.2f}x   "
              f"diagnosed on {diag:5.1f}% of packets")
    # The threshold-aware cheater successfully suppresses diagnosis...
    assert rows["threshold-aware"][1] < rows["naive PM=80"][1]
    # ...but none of the adversaries earns a meaningful advantage.
    for name, (gain, _) in rows.items():
        assert gain < 1.5, f"{name}: gain {gain:.2f}x"
    benchmark.extra_info["rows"] = {
        k: {"gain": g, "diag": d} for k, (g, d) in rows.items()
    }
