"""Journal record encode/decode, truncated-tail recovery, repair, and
streaming-aggregator determinism — the durability half of the campaign
layer's crash-safety contract."""

import json
import zlib

import pytest
from hypothesis import given, settings as hyp_settings, strategies as st

from repro.experiments.campaign.journal import (
    CampaignAggregator,
    JournalCorruptError,
    JournalRecordError,
    JournalWriter,
    METRIC_FIELDS,
    decode_record,
    encode_record,
    read_journal,
    repair_journal,
)


def run_record(fp, group="g", seed=1, status="ok", **metrics):
    rec = {
        "kind": "run", "fp": fp, "cell": f"{group}/seed={seed}",
        "group": group, "seed": seed, "status": status,
    }
    if status == "ok":
        rec["metrics"] = {"avg_throughput_bps": 1.0e6, **metrics}
    else:
        rec["error"] = "boom"
        rec["attempts"] = 2
    return rec


# ----------------------------------------------------------------------
# Record codec
# ----------------------------------------------------------------------
class TestCodec:
    def test_round_trip(self):
        rec = run_record("abc123", metrics=3.5)
        assert decode_record(encode_record(rec)) == rec

    def test_line_is_single_line_sorted_keys(self):
        line = encode_record({"b": 1, "a": 2})
        assert "\n" not in line
        checksum, payload = line.split(" ", 1)
        assert len(checksum) == 8
        assert payload == '{"a":2,"b":1}'

    @pytest.mark.parametrize("line", [
        "",                                 # empty
        "deadbeef",                         # no separator
        "xyz {}",                           # short checksum field
        "nothexno {}",                      # non-hex checksum
        "00000000 {}",                      # wrong checksum
        encode_record({"a": 1})[:-2],       # torn payload
        encode_record({"a": 1}).replace('"a"', '"b"'),  # flipped byte
        f"{zlib.crc32(b'[1,2]') & 0xFFFFFFFF:08x} [1,2]",  # not an object
        f"{zlib.crc32(b'nope') & 0xFFFFFFFF:08x} nope",    # not JSON
    ])
    def test_bad_lines_rejected(self, line):
        with pytest.raises(JournalRecordError):
            decode_record(line)

    @given(st.dictionaries(
        st.text(min_size=1, max_size=8),
        st.one_of(
            st.integers(-(10 ** 12), 10 ** 12),
            st.floats(allow_nan=False, allow_infinity=False),
            st.text(max_size=20),
            st.none(),
            st.booleans(),
        ),
        max_size=6,
    ))
    @hyp_settings(max_examples=100, deadline=None)
    def test_encode_decode_round_trips(self, record):
        assert decode_record(encode_record(record)) == record


# ----------------------------------------------------------------------
# File-level replay
# ----------------------------------------------------------------------
class TestReadJournal:
    def write(self, path, records):
        with JournalWriter(path) as writer:
            for rec in records:
                writer.append(rec)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.touch()
        result = read_journal(path)
        assert result.records == [] and not result.truncated

    def test_replay_preserves_order(self, tmp_path):
        path = tmp_path / "j.jsonl"
        records = [run_record(f"fp{i}", seed=i) for i in range(5)]
        self.write(path, records)
        result = read_journal(path)
        assert result.records == records
        assert not result.truncated
        assert result.valid_bytes == path.stat().st_size
        assert not result.needs_newline

    def test_unterminated_tail_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self.write(path, [run_record("fp0"), run_record("fp1")])
        good_size = path.stat().st_size
        with path.open("ab") as fh:  # torn write: no newline
            fh.write(encode_record(run_record("fp2")).encode()[:25])
        result = read_journal(path)
        assert [r["fp"] for r in result.records] == ["fp0", "fp1"]
        assert result.truncated
        assert result.valid_bytes == good_size

    def test_tail_missing_only_newline_is_kept(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self.write(path, [run_record("fp0")])
        with path.open("ab") as fh:
            fh.write(encode_record(run_record("fp1")).encode())
        result = read_journal(path)
        assert [r["fp"] for r in result.records] == ["fp0", "fp1"]
        assert not result.truncated
        assert result.needs_newline
        assert result.valid_bytes == path.stat().st_size

    def test_terminated_bad_final_line_tolerated(self, tmp_path):
        # A torn payload that still got its newline (buffered write cut
        # mid-flush) must also count as a tail casualty, not corruption.
        path = tmp_path / "j.jsonl"
        self.write(path, [run_record("fp0")])
        good_size = path.stat().st_size
        with path.open("ab") as fh:
            fh.write(encode_record(run_record("fp1")).encode()[:30] + b"\n")
        result = read_journal(path)
        assert [r["fp"] for r in result.records] == ["fp0"]
        assert result.truncated
        assert result.valid_bytes == good_size

    def test_non_utf8_tail_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self.write(path, [run_record("fp0")])
        with path.open("ab") as fh:
            fh.write(b"\xff\xfe garbage")
        result = read_journal(path)
        assert [r["fp"] for r in result.records] == ["fp0"]
        assert result.truncated

    def test_mid_file_damage_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self.write(path, [run_record(f"fp{i}") for i in range(3)])
        data = path.read_bytes()
        # flip a byte inside the FIRST record's payload
        path.write_bytes(data[:20] + b"X" + data[21:])
        with pytest.raises(JournalCorruptError, match="record 1"):
            read_journal(path)

    @given(
        records=st.lists(
            st.dictionaries(
                st.sampled_from(["kind", "fp", "status", "n"]),
                st.one_of(st.integers(0, 99), st.text(max_size=8)),
                min_size=1, max_size=3,
            ),
            min_size=1, max_size=6,
        ),
        cut=st.integers(1, 40),
    )
    @hyp_settings(max_examples=60, deadline=None)
    def test_any_tail_cut_recovers_prefix(self, tmp_path_factory,
                                          records, cut):
        """SIGKILL model: cut N bytes off the end — the journal must
        replay a clean prefix, never raise, never invent records."""
        path = tmp_path_factory.mktemp("j") / "j.jsonl"
        with JournalWriter(path) as writer:
            for rec in records:
                writer.append(rec)
        data = path.read_bytes()
        cut = min(cut, len(data) - 1)
        kept = data[:len(data) - cut]
        path.write_bytes(kept)
        result = read_journal(path)
        assert result.records == records[:len(result.records)]
        # every line the cut left intact must be recovered; the torn
        # tail may add one more if it happens to decode
        n_intact = kept.count(b"\n")
        assert n_intact <= len(result.records) <= n_intact + 1


# ----------------------------------------------------------------------
# Repair
# ----------------------------------------------------------------------
class TestRepair:
    def test_noop_on_clean_journal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with JournalWriter(path) as writer:
            writer.append(run_record("fp0"))
        before = path.read_bytes()
        assert repair_journal(path, read_journal(path)) is False
        assert path.read_bytes() == before

    def test_truncates_torn_tail_then_appendable(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with JournalWriter(path) as writer:
            writer.append(run_record("fp0"))
        with path.open("ab") as fh:
            fh.write(b'00000000 {"torn')
        assert repair_journal(path, read_journal(path)) is True
        # append after repair must yield a fully clean journal
        with JournalWriter(path) as writer:
            writer.append(run_record("fp1"))
        result = read_journal(path)
        assert [r["fp"] for r in result.records] == ["fp0", "fp1"]
        assert not result.truncated

    def test_restores_missing_newline(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with path.open("ab") as fh:
            fh.write(encode_record(run_record("fp0")).encode())
        assert repair_journal(path, read_journal(path)) is True
        assert path.read_bytes().endswith(b"\n")
        with JournalWriter(path) as writer:
            writer.append(run_record("fp1"))
        assert [r["fp"] for r in read_journal(path).records] == \
            ["fp0", "fp1"]


# ----------------------------------------------------------------------
# Writer durability + aggregator determinism
# ----------------------------------------------------------------------
class TestWriterAndAggregator:
    def test_writer_appends_are_immediately_durable(self, tmp_path):
        path = tmp_path / "j.jsonl"
        writer = JournalWriter(path)
        try:
            writer.append(run_record("fp0"))
            # visible to an independent reader before close()
            assert len(read_journal(path).records) == 1
        finally:
            writer.close()
        with pytest.raises(Exception):
            writer.append(run_record("fp1"))

    def test_aggregator_counts_and_metrics(self):
        agg = CampaignAggregator()
        for i, value in enumerate([1.0, 2.0, 3.0]):
            agg.add(run_record(f"fp{i}", group="a",
                               avg_throughput_bps=value))
        agg.add(run_record("fp3", group="a", status="failed"))
        agg.add(run_record("fp4", group="b", status="quarantined"))
        agg.add({"kind": "campaign", "spec": "ignored"})
        assert (agg.ok, agg.failed, agg.quarantined) == (3, 1, 1)
        assert agg.settled == 5
        groups = agg.groups()
        assert list(groups) == ["a", "b"]
        stats = groups["a"]["metrics"]["avg_throughput_bps"]
        assert stats["n"] == 3
        assert stats["mean"] == pytest.approx(2.0)
        assert stats["ci95"] > 0.0

    def test_aggregation_is_bit_deterministic(self):
        records = [
            run_record(f"fp{i}", group=f"g{i % 3}",
                       avg_throughput_bps=1e6 / (i + 1))
            for i in range(50)
        ]

        def summarize():
            agg = CampaignAggregator()
            for rec in records:
                agg.add(rec)
            return json.dumps(agg.groups(), sort_keys=True)

        assert summarize() == summarize()

    def test_metric_fields_cover_ok_records(self):
        rec = run_record("fp0")
        assert set(rec["metrics"]) <= set(METRIC_FIELDS)
