"""Draw-for-draw equivalence of pooled MT streams vs ``random.Random``.

The batch kernel's bit-identity guarantee reduces to one invariant:
:class:`repro.sim.vecrng.VectorRandom` must produce *exactly* the
sequence the C ``random.Random`` would for every method the simulator
touches (``random``, ``getrandbits`` and everything ``random.Random``
derives from them), under every interleaving with the pool's bulk
operations.  These tests pin that invariant directly.
"""

from __future__ import annotations

import random

import pytest

from repro.sim.rng import binomial
from repro.sim.vecrng import HAVE_NUMPY

if not HAVE_NUMPY:  # pragma: no cover - numpy ships with the toolchain
    pytest.skip("numpy unavailable", allow_module_level=True)

from repro.sim.vecrng import VectorRandom, VectorStreamPool

SEEDS = (0, 1, 1234, 2**63 - 1)


def test_random_matches_cpython_draw_for_draw():
    pool = VectorStreamPool(4)
    for seed in SEEDS:
        ref = random.Random(seed)
        vec = pool.stream(seed)
        for _ in range(5000):  # crosses several refill boundaries
            assert vec.random() == ref.random()


def test_getrandbits_matches_across_widths():
    pool = VectorStreamPool(2)
    for seed in (7, 99):
        ref = random.Random(seed)
        vec = pool.stream(seed)
        for k in (1, 5, 31, 32, 33, 64, 65, 128, 613):
            for _ in range(50):
                assert vec.getrandbits(k) == ref.getrandbits(k)
        assert vec.getrandbits(0) == ref.getrandbits(0) == 0
        with pytest.raises(ValueError):
            vec.getrandbits(-1)


def test_derived_methods_match():
    # randrange goes through _randbelow_with_getrandbits; gauss caches
    # a second sample in gauss_next — both inherited, both must track.
    pool = VectorStreamPool(2)
    ref = random.Random(42)
    vec = pool.stream(42)
    for _ in range(500):
        assert vec.randrange(1, 1000) == ref.randrange(1, 1000)
    for _ in range(501):  # odd count leaves gauss_next populated
        assert vec.gauss(0.0, 1.0) == ref.gauss(0.0, 1.0)
    assert vec.random() == ref.random()


def test_state_roundtrip_and_cross_compatibility():
    pool = VectorStreamPool(2)
    vec = pool.stream(5)
    ref = random.Random(5)
    for _ in range(1001):  # odd: cursor mid-buffer
        vec.random(), ref.random()
    state = vec.getstate()
    assert state == ref.getstate()
    # A C stream resumed from the pooled stream's state must continue
    # identically, and vice versa.
    resumed = random.Random()
    resumed.setstate(state)
    tail = [vec.random() for _ in range(1000)]
    assert tail == [resumed.random() for _ in range(1000)]
    vec2 = pool.stream(0)
    vec2.setstate(state)
    assert [vec2.random() for _ in range(1000)] == tail


def test_binomial_dispatch_matches_scalar_stream():
    # binomial() routes pooled streams through the inlined loops
    # (_bernoulli_count / _binomial_inversion); the samples and the
    # stream positions afterwards must match a C stream exactly.
    pool = VectorStreamPool(2)
    ref = random.Random(11)
    vec = pool.stream(11)
    cases = [(1, 0.3), (32, 0.7), (40, 0.05), (500, 0.02), (200, 0.97),
             (5000, 0.999), (64, 0.5), (0, 0.5), (10, 0.0), (10, 1.0)]
    for n, p in cases:
        assert binomial(vec, n, p) == binomial(ref, n, p)
    assert vec.random() == ref.random()  # streams still aligned


def test_bernoulli_deficits_bulk_matches_scalar_loop():
    # The medium's per-edge bulk draw (many streams at once) must
    # consume each stream exactly like the scalar small-n loop.
    for entries_count in (3, 8, 40):  # below and above _BULK_THRESHOLD
        pool = VectorStreamPool(4)
        streams = [pool.stream(1000 + i) for i in range(entries_count)]
        refs = [random.Random(1000 + i) for i in range(entries_count)]
        entries = [(s, 1 + (i * 7) % 32, 0.05 + 0.9 * (i / entries_count))
                   for i, s in enumerate(streams)]
        deficits = pool.bernoulli_deficits(entries)
        for (stream, n, p), deficit, ref in zip(entries, deficits, refs):
            busy = sum(ref.random() < p for _ in range(n))
            assert int(deficit) == n - busy
            assert stream.random() == ref.random()


def test_bulk_and_scalar_interleaving_stays_aligned():
    pool = VectorStreamPool(2)
    vec = pool.stream(77)
    ref = random.Random(77)
    for round_ in range(200):
        n = 1 + (round_ * 13) % 32
        p = 0.5
        (deficit,) = pool.bernoulli_deficits([(vec, n, p)])
        busy = sum(ref.random() < p for _ in range(n))
        assert int(deficit) == n - busy
        assert vec.getrandbits(17) == ref.getrandbits(17)
        assert vec.random() == ref.random()


def test_bulk_draw_with_mid_batch_sweep_refill():
    # Regression: _normalize_row sweeps *every* stream past the sweep
    # cursor.  If a late entry in a bulk draw triggers a refill, the
    # sweep shifts the buffers of earlier entries too — their gather
    # positions must be recorded after all refills, not before.
    from repro.sim.vecrng import _SWEEP_CURSOR, _TWO_BLOCKS

    pool = VectorStreamPool(8)
    swept = pool.stream(21)     # parked inside the sweep window
    trigger = pool.stream(22)   # forces the refill mid-batch
    extras = [pool.stream(30 + i) for i in range(6)]
    refs = {id(s): random.Random(seed) for s, seed in
            zip([swept, trigger, *extras], [21, 22, *range(30, 36)])}

    # Order matters: swept advances first (its refill sweeps nobody,
    # the others are still below the sweep cursor), then trigger lands
    # past the bulk-refill threshold *without* crossing its own refill
    # so swept stays parked inside the sweep window.
    for _ in range(500):  # cursor 1000: >= _SWEEP_CURSOR
        swept.random(), refs[id(swept)].random()
    assert _SWEEP_CURSOR <= swept._cur <= _TWO_BLOCKS - 64
    for _ in range(282):  # cursor 1188: past the bulk refill threshold
        trigger.random(), refs[id(trigger)].random()
    assert trigger._cur > _TWO_BLOCKS - 64
    assert swept._cur >= _SWEEP_CURSOR  # still inside the sweep window

    entries = [(s, 16, 0.5) for s in [swept, *extras, trigger]]
    deficits = pool.bernoulli_deficits(entries)
    for (stream, n, p), deficit in zip(entries, deficits):
        ref = refs[id(stream)]
        busy = sum(ref.random() < p for _ in range(n))
        assert int(deficit) == n - busy
        assert stream.random() == ref.random()


def test_pool_grows_past_capacity():
    pool = VectorStreamPool(2)
    streams = [pool.stream(i) for i in range(70)]
    assert len(pool) == 70
    for i, s in enumerate(streams):  # earlier rows survive the realloc
        assert s.random() == random.Random(i).random()


def test_seed_reseed_matches():
    pool = VectorStreamPool(2)
    vec = pool.stream(3)
    vec.random()
    vec.seed(9)
    assert vec.random() == random.Random(9).random()
