"""Failure-injection tests for the MAC: timeouts, retries, drops.

These exercise the unhappy paths explicitly: a destination that never
answers (CTS timeout and retry-limit drops), lost ACK cycles, and
contention windows growing across retries.
"""

import pytest

from repro.mac.correct import CorrectMac
from repro.mac.dcf import DcfMac

from tests.conftest import World


class TestUnreachableDestination:
    def make_world(self, mac_cls):
        w = World(seed=61)
        # Destination far outside reception range: RTSs die silently.
        w.add_receiver(mac_cls, 0, (5000.0, 0.0))
        w.add_sender(mac_cls, 1, (0.0, 0.0), dst=0)
        return w

    @pytest.mark.parametrize("mac_cls", [DcfMac, CorrectMac])
    def test_packets_dropped_at_retry_limit(self, mac_cls):
        w = self.make_world(mac_cls)
        w.run(2_000_000)
        mac = w.nodes[1].mac
        assert mac.packets_delivered == 0
        assert mac.packets_dropped > 0
        # Each dropped packet consumed exactly retry_limit RTS attempts.
        assert mac.rts_sent == pytest.approx(
            mac.packets_dropped * mac.retry_limit, abs=mac.retry_limit
        )

    def test_drops_reported_to_collector(self):
        w = self.make_world(DcfMac)
        w.run(2_000_000)
        assert w.collector.flows[1].dropped_packets > 0

    def test_sender_keeps_cycling_after_drops(self):
        """The queue never wedges: drops are followed by new packets."""
        w = self.make_world(DcfMac)
        w.run(3_000_000)
        assert w.nodes[1].mac.packets_dropped >= 5


class TestRetryBackoffGrowth:
    def test_80211_retry_draws_from_doubled_window(self):
        """Observe the policy being asked for growing windows."""
        calls = []

        from repro.core.sender_policy import ConformingPolicy

        class SpyPolicy(ConformingPolicy):
            def select_backoff(self, rng, cw):
                calls.append(cw)
                return super().select_backoff(rng, cw)

        w = World(seed=62)
        w.add_receiver(DcfMac, 0, (5000.0, 0.0))
        w.add_sender(DcfMac, 1, (0.0, 0.0), dst=0, policy=SpyPolicy())
        w.run(400_000)
        assert 31 in calls
        assert 63 in calls
        assert 127 in calls

    def test_correct_retry_backoffs_are_deterministic(self):
        """Two identical runs produce identical retry schedules."""
        def rts_times(seed):
            w = World(seed=seed)
            from repro.sim.trace import TraceLog

            w.medium.trace = TraceLog()
            w.add_receiver(CorrectMac, 0, (5000.0, 0.0))
            w.add_sender(CorrectMac, 1, (0.0, 0.0), dst=0)
            w.run(300_000)
            return [e.time for e in w.medium.trace
                    if e.kind == "tx_start" and e.node == 1]

        assert rts_times(63) == rts_times(63)


class TestResponderTimeout:
    def test_responder_releases_after_missing_data(self):
        """If the DATA never arrives after our CTS, the responder
        must clear and serve the next sender."""
        w = World(seed=64)
        w.add_receiver(CorrectMac, 0, (0.0, 0.0))
        w.add_sender(CorrectMac, 1, (150.0, 0.0), dst=0)
        w.run(1_000_000)
        receiver = w.nodes[0].mac
        # Steady state: not stuck responding at an arbitrary horizon.
        assert w.collector.flows[1].delivered_packets > 100
        # Forced check: wedge the responder on a phantom sender and
        # verify the data-timeout path releases it (progress resumes).
        from repro.mac.dcf import _Responder

        delivered_before = w.collector.flows[1].delivered_packets
        receiver._responding = True
        receiver._responder = _Responder(src=99, attempt=1)
        receiver._responder.timeout = receiver.sim.schedule(
            receiver.exchange_timing.data_timeout,
            receiver._responder_timeout,
        )
        receiver._update_blocked()
        receiver.sim.run(until=receiver.sim.now + 3_000_000)
        assert w.collector.flows[1].delivered_packets > delivered_before + 50
