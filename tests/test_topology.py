"""Tests for the evaluation topologies."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.topology import (
    CIRCLE_RADIUS_M,
    FlowSpec,
    circle_positions,
    circle_topology,
    random_topology,
)
from repro.phy.propagation import distance


class TestCirclePositions:
    def test_all_on_circle(self):
        for pos in circle_positions(8):
            assert math.hypot(*pos) == pytest.approx(CIRCLE_RADIUS_M)

    def test_equidistant_neighbors(self):
        positions = circle_positions(8)
        gaps = [
            distance(positions[i], positions[(i + 1) % 8])
            for i in range(8)
        ]
        assert max(gaps) - min(gaps) < 1e-9

    def test_single_sender(self):
        assert len(circle_positions(1)) == 1

    def test_zero_senders_rejected(self):
        with pytest.raises(ValueError):
            circle_positions(0)


class TestCircleTopology:
    def test_paper_setup(self):
        topo = circle_topology(8, misbehaving=(3,), pm_percent=50.0)
        assert topo.node_ids == [0, 1, 2, 3, 4, 5, 6, 7, 8]
        assert topo.misbehaving_senders == [3]
        assert all(f.dst == 0 for f in topo.flows)
        assert all(f.rate_bps is None for f in topo.flows)  # backlogged

    def test_receiver_at_origin(self):
        topo = circle_topology(8)
        assert topo.positions[0] == (0.0, 0.0)

    def test_interferers_placement(self):
        topo = circle_topology(8, with_interferers=True)
        assert topo.positions[101] == (-500.0, 0.0)  # A
        assert topo.positions[103] == (500.0, 0.0)   # C
        interferer_flows = [f for f in topo.flows if not f.measured]
        assert len(interferer_flows) == 2
        assert all(f.rate_bps == 500_000 for f in interferer_flows)

    def test_interferer_geometry_matches_paper(self):
        """A-B at 500 m from R; far senders barely sense them."""
        topo = circle_topology(8, with_interferers=True)
        r_to_a = distance(topo.positions[0], topo.positions[101])
        assert r_to_a == pytest.approx(500.0)
        # Sender diametrically opposite A is 650 m from A.
        far_sender = max(
            range(1, 9),
            key=lambda i: distance(topo.positions[i], topo.positions[101]),
        )
        assert distance(topo.positions[far_sender], topo.positions[101]) == (
            pytest.approx(650.0)
        )

    def test_flow_of_lookup(self):
        topo = circle_topology(4)
        assert topo.flow_of(2).src == 2
        with pytest.raises(KeyError):
            topo.flow_of(99)

    def test_misbehavior_only_marked_nodes(self):
        topo = circle_topology(8, misbehaving=(3, 5), pm_percent=40.0)
        assert set(topo.misbehaving_senders) == {3, 5}
        assert topo.flow_of(3).pm_percent == 40.0
        assert topo.flow_of(4).pm_percent == 0.0


class TestRandomTopology:
    def test_population(self):
        topo = random_topology(random.Random(1), 40, 5, pm_percent=30.0)
        assert len(topo.node_ids) == 40
        assert len(topo.flows) == 40  # every node originates one flow
        assert len(topo.misbehaving_senders) == 5

    def test_positions_within_area(self):
        topo = random_topology(random.Random(2), 40, 5)
        for x, y in topo.positions.values():
            assert 0.0 <= x <= 1500.0
            assert 0.0 <= y <= 700.0

    def test_flows_prefer_neighbors(self):
        topo = random_topology(random.Random(3), 40, 0)
        in_range = sum(
            1 for f in topo.flows
            if distance(topo.positions[f.src], topo.positions[f.dst]) <= 250.0
        )
        # In a 40-node/1.05 km^2 field nearly everyone has a neighbor.
        assert in_range >= 35

    def test_no_self_flows(self):
        topo = random_topology(random.Random(4), 40, 5)
        assert all(f.src != f.dst for f in topo.flows)

    def test_deterministic_given_rng(self):
        a = random_topology(random.Random(5), 20, 3, pm_percent=10.0)
        b = random_topology(random.Random(5), 20, 3, pm_percent=10.0)
        assert a.positions == b.positions
        assert a.flows == b.flows

    @given(st.integers(min_value=2, max_value=60),
           st.integers(min_value=0, max_value=10))
    @settings(max_examples=30)
    def test_misbehaving_count_respected(self, n, k):
        if k > n:
            return
        topo = random_topology(random.Random(6), n, k, pm_percent=50.0)
        assert len(topo.misbehaving_senders) == k

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            random_topology(random.Random(1), 1, 0)
        with pytest.raises(ValueError):
            random_topology(random.Random(1), 10, 11)


class TestFlowSpec:
    def test_misbehaving_property(self):
        assert FlowSpec(src=1, dst=0, pm_percent=10.0).misbehaving
        assert not FlowSpec(src=1, dst=0, pm_percent=0.0).misbehaving
