"""Tests for the shared medium: sensing classes, delivery, collisions."""

import pytest

from repro.mac.frames import Frame, FrameKind
from repro.phy.constants import PhyTimings
from repro.phy.medium import Medium
from repro.phy.propagation import ShadowingModel
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry


class RecordingListener:
    """Minimal MediumListener that records every callback."""

    def __init__(self, node_id):
        self.node_id = node_id
        self.busy_edges = []
        self.idle_edges = []
        self.marginal_changes = 0
        self.frames = []
        self.corrupted = 0
        self._medium = None
        self._sim = None

    def on_channel_busy(self):
        self.busy_edges.append(self._sim.now)

    def on_channel_idle(self):
        self.idle_edges.append(self._sim.now)

    def on_marginal_change(self):
        self.marginal_changes += 1

    def on_frame(self, frame):
        self.frames.append(frame)

    def on_frame_corrupted(self):
        self.corrupted += 1


def make_world(sigma=0.0, seed=1):
    sim = Simulator()
    registry = RngRegistry(seed)
    medium = Medium(sim, ShadowingModel(sigma_db=sigma),
                    rng=registry.stream("shadowing"), timings=PhyTimings())
    return sim, medium


def add_listener(sim, medium, node_id, position):
    listener = RecordingListener(node_id)
    listener._sim = sim
    listener._medium = medium
    medium.register(listener, position)
    return listener


def frame(src, dst, kind=FrameKind.DATA, payload=100):
    return Frame(kind=kind, src=src, dst=dst, size_bytes=payload,
                 duration_us=0, payload_bytes=payload)


class TestRegistration:
    def test_duplicate_registration_rejected(self):
        sim, medium = make_world()
        add_listener(sim, medium, 1, (0, 0))
        with pytest.raises(ValueError):
            add_listener(sim, medium, 1, (10, 0))

    def test_link_probabilities_cached_and_symmetric_distance(self):
        sim, medium = make_world(sigma=1.0)
        add_listener(sim, medium, 1, (0, 0))
        add_listener(sim, medium, 2, (100, 0))
        ab = medium.link(1, 2)
        ba = medium.link(2, 1)
        assert ab.distance_m == pytest.approx(ba.distance_m)
        assert medium.link(1, 2) is ab  # cached

    def test_self_link_is_perfect(self):
        sim, medium = make_world()
        add_listener(sim, medium, 1, (0, 0))
        assert medium.link(1, 1).sense == 1.0


class TestSensingEdges:
    def test_strong_busy_and_idle_edges(self):
        sim, medium = make_world()
        a = add_listener(sim, medium, 1, (0, 0))
        b = add_listener(sim, medium, 2, (100, 0))  # strong link
        sim.schedule(10, lambda: medium.start_transmission(1, frame(1, 2), 200))
        sim.run()
        assert b.busy_edges == [10]
        assert b.idle_edges == [210]

    def test_transmitter_senses_itself_busy(self):
        sim, medium = make_world()
        a = add_listener(sim, medium, 1, (0, 0))
        add_listener(sim, medium, 2, (100, 0))
        sim.schedule(0, lambda: medium.start_transmission(1, frame(1, 2), 100))
        sim.run()
        assert a.busy_edges == [0]
        assert a.idle_edges == [100]

    def test_overlapping_strong_transmissions_single_busy_period(self):
        sim, medium = make_world()
        c = add_listener(sim, medium, 3, (50, 0))
        add_listener(sim, medium, 1, (0, 0))
        add_listener(sim, medium, 2, (100, 0))
        sim.schedule(0, lambda: medium.start_transmission(1, frame(1, 3), 100))
        sim.schedule(50, lambda: medium.start_transmission(2, frame(2, 3), 100))
        sim.run()
        assert c.busy_edges == [0]
        assert c.idle_edges == [150]

    def test_negligible_links_ignored(self):
        sim, medium = make_world()
        far = add_listener(sim, medium, 9, (10_000, 0))
        add_listener(sim, medium, 1, (0, 0))
        sim.schedule(0, lambda: medium.start_transmission(1, frame(1, 9), 100))
        sim.run()
        assert far.busy_edges == []
        assert far.marginal_changes == 0
        assert far.frames == []

    def test_marginal_link_reports_changes_not_edges(self):
        sim, medium = make_world(sigma=1.0)
        # 550 m: sense probability exactly 0.5 -> marginal.
        mid = add_listener(sim, medium, 5, (550, 0))
        add_listener(sim, medium, 1, (0, 0))
        add_listener(sim, medium, 2, (100, 0))
        sim.schedule(0, lambda: medium.start_transmission(1, frame(1, 2), 100))
        sim.run()
        assert mid.busy_edges == []
        assert mid.marginal_changes == 2  # start and end
        p_during = 0.5
        # After the run the marginal set is empty again.
        assert medium.marginal_busy_probability(5) == 0.0
        assert 0.4 < p_during < 0.6  # documented expectation

    def test_combined_marginal_probability(self):
        sim, medium = make_world(sigma=1.0)
        mid = add_listener(sim, medium, 5, (0, 0))
        add_listener(sim, medium, 1, (550, 0))
        add_listener(sim, medium, 2, (0, 550))
        probes = []
        sim.schedule(0, lambda: medium.start_transmission(1, frame(1, 5), 100))
        sim.schedule(10, lambda: medium.start_transmission(2, frame(2, 5), 100))
        sim.schedule(50, lambda: probes.append(medium.marginal_busy_probability(5)))
        sim.run()
        # Two p=0.5 marginals: 1 - 0.5*0.5 = 0.75.
        assert probes[0] == pytest.approx(0.75, abs=0.01)


class TestDelivery:
    def test_clean_delivery_on_strong_link(self):
        sim, medium = make_world()
        add_listener(sim, medium, 1, (0, 0))
        b = add_listener(sim, medium, 2, (100, 0))
        f = frame(1, 2)
        sim.schedule(0, lambda: medium.start_transmission(1, f, 100))
        sim.run()
        assert b.frames == [f]
        assert b.corrupted == 0

    def test_overhearers_also_decode(self):
        sim, medium = make_world()
        add_listener(sim, medium, 1, (0, 0))
        add_listener(sim, medium, 2, (100, 0))
        c = add_listener(sim, medium, 3, (0, 100))
        sim.schedule(0, lambda: medium.start_transmission(1, frame(1, 2), 100))
        sim.run()
        assert len(c.frames) == 1

    def test_out_of_range_no_delivery(self):
        sim, medium = make_world()
        add_listener(sim, medium, 1, (0, 0))
        far = add_listener(sim, medium, 2, (400, 0))  # sensed, not received
        sim.schedule(0, lambda: medium.start_transmission(1, frame(1, 2), 100))
        sim.run()
        assert far.frames == []
        assert far.corrupted == 1  # energy sensed but not decodable

    def test_equal_power_collision_corrupts_both(self):
        sim, medium = make_world()
        r = add_listener(sim, medium, 0, (0, 0))
        add_listener(sim, medium, 1, (-100, 0))
        add_listener(sim, medium, 2, (100, 0))
        sim.schedule(0, lambda: medium.start_transmission(1, frame(1, 0), 100))
        sim.schedule(0, lambda: medium.start_transmission(2, frame(2, 0), 100))
        sim.run()
        assert r.frames == []
        assert r.corrupted == 2

    def test_capture_strong_over_weak(self):
        """A much closer transmitter captures over a distant one."""
        sim, medium = make_world()
        r = add_listener(sim, medium, 0, (0, 0))
        add_listener(sim, medium, 1, (50, 0))     # very close
        add_listener(sim, medium, 2, (500, 0))    # far interferer
        near = frame(1, 0)
        sim.schedule(0, lambda: medium.start_transmission(1, near, 100))
        sim.schedule(0, lambda: medium.start_transmission(2, frame(2, 0), 100))
        sim.run()
        # 20 dB margin >> 10 dB capture threshold at sigma=0.
        assert near in r.frames

    def test_half_duplex_transmitter_deaf(self):
        sim, medium = make_world()
        add_listener(sim, medium, 1, (0, 0))
        b = add_listener(sim, medium, 2, (100, 0))
        sim.schedule(0, lambda: medium.start_transmission(1, frame(1, 2), 100))
        sim.schedule(10, lambda: medium.start_transmission(2, frame(2, 1), 50))
        sim.run()
        # Node 1 was transmitting for the whole of node 2's frame.
        listener1 = next(
            s.listener for n, s in medium._states.items() if n == 1
        )
        assert listener1.frames == []

    def test_partial_overlap_still_corrupts(self):
        sim, medium = make_world()
        r = add_listener(sim, medium, 0, (0, 0))
        add_listener(sim, medium, 1, (-100, 0))
        add_listener(sim, medium, 2, (100, 0))
        sim.schedule(0, lambda: medium.start_transmission(1, frame(1, 0), 100))
        sim.schedule(90, lambda: medium.start_transmission(2, frame(2, 0), 100))
        sim.run()
        assert r.frames == []

    def test_zero_airtime_rejected(self):
        sim, medium = make_world()
        add_listener(sim, medium, 1, (0, 0))
        with pytest.raises(ValueError):
            medium.start_transmission(1, frame(1, 1), 0)

    def test_counters(self):
        sim, medium = make_world()
        add_listener(sim, medium, 1, (0, 0))
        add_listener(sim, medium, 2, (100, 0))
        sim.schedule(0, lambda: medium.start_transmission(1, frame(1, 2), 100))
        sim.run()
        assert medium.transmissions_started == 1
        assert medium.frames_decoded == 1
        assert medium.active_transmissions == 0
