"""Tests for sender-side receiver auditing via g (Section 4.4)."""

import pytest

from repro.core.backoff_function import g_assignment
from repro.core.receiver_verify import ReceiverAuditor


class TestReceiverAudit:
    def test_honest_assignment_passes(self):
        auditor = ReceiverAuditor(receiver_id=0, sender_id=3)
        honest = g_assignment(0, 3, 0)
        verdict = auditor.check_assignment(honest)
        assert not verdict.receiver_misbehaving
        assert verdict.corrected_backoff == honest

    def test_assignment_with_penalty_passes(self):
        """Penalties only add, so above-g values are legitimate."""
        auditor = ReceiverAuditor(0, 3)
        honest = g_assignment(0, 3, 0)
        verdict = auditor.check_assignment(honest + 25)
        assert not verdict.receiver_misbehaving

    def test_under_assignment_flagged_and_corrected(self):
        auditor = ReceiverAuditor(0, 3)
        # Find a counter whose honest value is positive.
        counter = next(c for c in range(50) if g_assignment(0, 3, c) > 0)
        auditor._packet_counter = counter
        honest = g_assignment(0, 3, counter)
        verdict = auditor.check_assignment(honest - 1)
        assert verdict.receiver_misbehaving
        assert verdict.corrected_backoff == honest
        assert auditor.violations == 1

    def test_counter_advances_per_check(self):
        auditor = ReceiverAuditor(0, 3)
        auditor.check_assignment(100)
        auditor.check_assignment(100)
        assert auditor.packets_audited == 2

    def test_explicit_counter_keying(self):
        """Sequence-number keying keeps both ends aligned under loss."""
        auditor = ReceiverAuditor(0, 3)
        honest_for_seq9 = g_assignment(0, 3, 9)
        verdict = auditor.check_assignment(honest_for_seq9, counter=9)
        assert not verdict.receiver_misbehaving
        assert verdict.honest_minimum == honest_for_seq9

    def test_negative_assignment_rejected(self):
        auditor = ReceiverAuditor(0, 3)
        with pytest.raises(ValueError):
            auditor.check_assignment(-1)

    def test_cheating_receiver_detected_over_sequence(self):
        """A receiver always assigning 0 is caught quickly."""
        auditor = ReceiverAuditor(0, 3)
        flagged = sum(
            auditor.check_assignment(0).receiver_misbehaving
            for _ in range(64)
        )
        # g is roughly uniform on [0, 31]; ~97% of zeros violate it.
        assert flagged > 48
