"""End-to-end tests of the fault-injection layer.

Each fault family is exercised through :func:`build_scenario` /
:func:`run_scenario` and observed through the injector's counters and
the paper metrics, plus the subsystem's two determinism contracts:

* faults **off** (``faults=None`` or a no-op profile) leaves results
  bit-identical and creates no fault RNG stream;
* faults **on** is itself deterministic — same ``(scenario, seed,
  profile)`` twice gives bit-identical results.
"""

import pytest

from repro.experiments.scenarios import ScenarioConfig, run_scenario
from repro.faults import (
    ClockDriftFault,
    FaultProfile,
    FrameCorruptionFault,
    FrameLossFault,
    JammingFault,
    NodeCrashFault,
)
from repro.mac.timing import with_clock_drift
from repro.net.topology import circle_topology
from repro.phy.constants import PhyTimings
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry

SECOND = 1_000_000


def config(n_senders=1, duration_us=SECOND // 2, **kwargs):
    return ScenarioConfig(
        topology=circle_topology(n_senders), duration_us=duration_us,
        seed=1, **kwargs
    )


def loss(rate, kinds=(), **kwargs):
    return FaultProfile(
        frame_loss=(FrameLossFault(rate=rate, frame_kinds=kinds, **kwargs),)
    )


def run_data(result):
    """Bit-exact payload of a run, for determinism comparisons."""
    return (result.throughputs(), result.events_processed,
            result.faults_injected)


class TestFrameLoss:
    def test_total_ack_loss_starves_the_sender(self):
        clean = run_scenario(config())
        starved = run_scenario(config(faults=loss(1.0, ("ack",))))
        assert starved.faults_injected["frames_dropped"] > 0
        # Every exchange times out at the sender and is retried under a
        # grown window, so delivered goodput collapses.
        assert sum(starved.throughputs().values()) < (
            0.5 * sum(clean.throughputs().values())
        )

    def test_kind_filter_only_touches_targeted_frames(self):
        # RTS frames only flow sender -> receiver; a loss model aimed
        # at them must never drop anything on the reverse link.
        result = run_scenario(
            config(faults=loss(1.0, ("rts",)), duration_us=SECOND // 5)
        )
        assert result.faults_injected["frames_dropped"] > 0
        # With every RTS lost, no exchange starts: nothing is delivered.
        assert sum(result.throughputs().values()) == 0.0

    def test_link_filter(self):
        # (src=0, listener=1) is the receiver's ACK/CTS link; a filter
        # on a link that does not exist in the topology never fires.
        ghost = FaultProfile(frame_loss=(
            FrameLossFault(rate=1.0, links=((7, 8),)),
        ))
        result = run_scenario(config(faults=ghost))
        assert "frames_dropped" not in result.faults_injected
        targeted = FaultProfile(frame_loss=(
            FrameLossFault(rate=1.0, links=((0, 1),)),
        ))
        result = run_scenario(config(faults=targeted,
                                     duration_us=SECOND // 5))
        assert result.faults_injected["frames_dropped"] > 0

    def test_bursts_drop_more_consecutive_frames(self):
        plain = run_scenario(config(faults=loss(0.05, ("ack",))))
        bursty = run_scenario(
            config(faults=loss(0.05, ("ack",), burst_mean=8.0))
        )
        assert bursty.faults_injected["frames_dropped"] > (
            plain.faults_injected["frames_dropped"]
        )


class TestFrameCorruption:
    def test_corruption_counter_and_degradation(self):
        clean = run_scenario(config())
        profile = FaultProfile(frame_corruption=(
            FrameCorruptionFault(rate=1.0, frame_kinds=("cts",)),
        ))
        corrupted = run_scenario(config(faults=profile))
        assert corrupted.faults_injected["frames_corrupted"] > 0
        assert "frames_dropped" not in corrupted.faults_injected
        assert sum(corrupted.throughputs().values()) < (
            sum(clean.throughputs().values())
        )

    def test_loss_evaluated_before_corruption(self):
        profile = FaultProfile(
            frame_loss=(FrameLossFault(rate=1.0, frame_kinds=("ack",)),),
            frame_corruption=(
                FrameCorruptionFault(rate=1.0, frame_kinds=("ack",)),
            ),
        )
        result = run_scenario(config(faults=profile))
        assert result.faults_injected["frames_dropped"] > 0
        assert "frames_corrupted" not in result.faults_injected


class TestJamming:
    def test_begin_jam_marks_channel_busy(self):
        from repro.phy.medium import Medium
        from repro.phy.propagation import ShadowingModel

        class Listener:
            busy = idle = 0

            def on_channel_busy(self):
                self.busy += 1

            def on_channel_idle(self):
                self.idle += 1

            def on_marginal_change(self):
                pass

            def on_frame(self, frame):
                pass

            def on_frame_corrupted(self):
                pass

        sim = Simulator()
        registry = RngRegistry(1)
        medium = Medium(sim, ShadowingModel(), rng=registry.stream("shadowing"),
                        timings=PhyTimings())
        listener = Listener()
        listener.node_id = 1
        medium.register(listener, (0.0, 0.0))
        sim.schedule(10, lambda: medium.begin_jam(100))
        sim.run(until=1000)
        assert listener.busy == 1 and listener.idle == 1
        assert medium.jam_bursts == 1

    def test_begin_jam_rejects_nonpositive_duration(self):
        from repro.phy.medium import Medium
        from repro.phy.propagation import ShadowingModel

        sim = Simulator()
        medium = Medium(sim, ShadowingModel(),
                        rng=RngRegistry(1).stream("shadowing"),
                        timings=PhyTimings())
        with pytest.raises(ValueError):
            medium.begin_jam(0)

    def test_jamming_degrades_throughput(self):
        clean = run_scenario(config())
        profile = FaultProfile(jamming=(
            JammingFault(bursts_per_s=100.0, mean_burst_us=3000),
        ))
        jammed = run_scenario(config(faults=profile))
        assert jammed.faults_injected["jam_bursts"] > 0
        assert jammed.faults_injected["jam_airtime_us"] > 0
        assert sum(jammed.throughputs().values()) < (
            sum(clean.throughputs().values())
        )


class TestNodeCrash:
    def test_crash_halts_the_sender(self):
        clean = run_scenario(config(duration_us=SECOND))
        profile = FaultProfile(node_crashes=(
            NodeCrashFault(node=1, crash_at_us=SECOND // 2),
        ))
        crashed = run_scenario(config(duration_us=SECOND, faults=profile))
        assert crashed.faults_injected["crashes"] == 1
        ratio = sum(crashed.throughputs().values()) / (
            sum(clean.throughputs().values())
        )
        # Sender 1 only transmits for the first half of the run.
        assert 0.3 < ratio < 0.7

    def test_restart_resumes_traffic(self):
        crash_only = FaultProfile(node_crashes=(
            NodeCrashFault(node=1, crash_at_us=SECOND // 4),
        ))
        with_restart = FaultProfile(node_crashes=(
            NodeCrashFault(node=1, crash_at_us=SECOND // 4,
                           restart_at_us=SECOND // 2),
        ))
        halted = run_scenario(config(duration_us=SECOND, faults=crash_only))
        resumed = run_scenario(config(duration_us=SECOND,
                                      faults=with_restart))
        assert resumed.faults_injected["restarts"] == 1
        assert sum(resumed.throughputs().values()) > (
            sum(halted.throughputs().values())
        )

    def test_unknown_crash_node_rejected(self):
        profile = FaultProfile(node_crashes=(
            NodeCrashFault(node=42, crash_at_us=1000),
        ))
        with pytest.raises(ValueError, match="unknown node"):
            run_scenario(config(faults=profile))


class TestClockDrift:
    def test_drift_scales_the_slot_clock(self):
        from repro.experiments.scenarios import build_scenario

        profile = FaultProfile(clock_drifts=(
            ClockDriftFault(node=1, drift_ppm=500_000.0),
        ))
        sim, nodes, _ = build_scenario(config(n_senders=2, faults=profile))
        macs = {node.mac.node_id: node.mac for node in nodes}
        assert macs[1].timings.slot_us == 30  # 20 us * 1.5
        assert macs[2].timings.slot_us == 20  # everyone else untouched

    def test_with_clock_drift_helper(self):
        timings = PhyTimings()
        assert with_clock_drift(timings, 0.0) == timings
        assert with_clock_drift(timings, 500_000.0).slot_us == 30
        assert with_clock_drift(timings, -999_999.0).slot_us == 1


class TestDeterminism:
    def test_noop_profile_is_bit_identical_to_no_faults(self):
        baseline = run_scenario(config(faults=None))
        noop = FaultProfile(
            frame_loss=(FrameLossFault(rate=0.0, frame_kinds=("ack",)),),
            jamming=(JammingFault(bursts_per_s=0.0, mean_burst_us=100),),
        )
        quiet = run_scenario(config(faults=noop))
        assert run_data(quiet) == run_data(baseline)

    def test_no_injector_without_a_live_profile(self):
        from repro.experiments.scenarios import build_scenario

        sim, _, _ = build_scenario(config(faults=None))
        assert sim.fault_injector is None
        noop = FaultProfile(frame_loss=(FrameLossFault(rate=0.0),))
        sim, _, _ = build_scenario(config(faults=noop))
        assert sim.fault_injector is None

    def test_fault_streams_created_lazily_per_family(self):
        from repro.faults import FaultInjector

        registry = RngRegistry(1)
        FaultInjector(Simulator(), registry, FaultProfile(node_crashes=(
            NodeCrashFault(node=1, crash_at_us=1),
        )))
        for name in ("faults/frame_loss", "faults/corruption",
                     "faults/jamming"):
            assert not registry.has_stream(name)
        FaultInjector(Simulator(), registry, loss(0.5))
        assert registry.has_stream("faults/frame_loss")
        assert not registry.has_stream("faults/corruption")
        assert not registry.has_stream("faults/jamming")

    def test_faulted_run_is_reproducible(self):
        profile = FaultProfile(
            frame_loss=(FrameLossFault(rate=0.2, frame_kinds=("ack",),
                                       burst_mean=3.0),),
            jamming=(JammingFault(bursts_per_s=20.0, mean_burst_us=2000),),
            node_crashes=(NodeCrashFault(node=1, crash_at_us=SECOND // 4,
                                         restart_at_us=SECOND // 3),),
        )
        first = run_scenario(config(faults=profile))
        second = run_scenario(config(faults=profile))
        assert run_data(first) == run_data(second)
        assert first.faults_injected  # the profile actually fired

    def test_fault_models_compose_without_cross_perturbation(self):
        # Adding a jamming model must not change which frames the loss
        # model drops: each family draws from its own stream, so the
        # drop count under loss-only and loss+crash agree (a crash
        # schedule consumes no randomness at all).
        just_loss = run_scenario(config(faults=loss(0.3, ("ack",))))
        with_crash = FaultProfile(
            frame_loss=(FrameLossFault(rate=0.3, frame_kinds=("ack",)),),
            node_crashes=(NodeCrashFault(
                node=1, crash_at_us=SECOND // 2 - 1,
            ),),
        )
        mixed = run_scenario(config(faults=with_crash))
        # Until the crash fires (end of run), the two runs are the
        # same simulation; the loss stream draws identically.
        assert mixed.faults_injected["frames_dropped"] <= (
            just_loss.faults_injected["frames_dropped"]
        )
        assert mixed.faults_injected["frames_dropped"] > 0
