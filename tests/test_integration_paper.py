"""End-to-end checks of the paper's headline claims (scaled down).

These tests run the actual evaluation scenarios briefly and assert the
*qualitative* results the paper reports.  They are the closest thing
to an executable summary of the reproduction.
"""

import pytest

from repro.experiments.runner import run_seeds
from repro.experiments.scenarios import (
    PROTOCOL_80211,
    PROTOCOL_CORRECT,
    ScenarioConfig,
)
from repro.metrics.stats import mean
from repro.net.topology import circle_topology

DURATION = 2_500_000
SEEDS = (1, 2, 3)


def run(protocol, pm, with_interferers=False):
    topo = circle_topology(
        8, misbehaving=(3,) if pm else (), pm_percent=pm,
        with_interferers=with_interferers,
    )
    cfg = ScenarioConfig(topology=topo, protocol=protocol,
                         duration_us=DURATION)
    return run_seeds(cfg, SEEDS)


@pytest.fixture(scope="module")
def correct_pm60():
    return run(PROTOCOL_CORRECT, 60.0)


@pytest.fixture(scope="module")
def dcf_pm60():
    return run(PROTOCOL_80211, 60.0)


class TestSection1Claim:
    def test_misbehavior_degrades_honest_nodes_under_80211(self, dcf_pm60):
        honest_baseline = run(PROTOCOL_80211, 0.0)
        fair = mean([r.avg_throughput_bps for r in honest_baseline])
        degraded = mean([r.avg_throughput_bps for r in dcf_pm60])
        assert degraded < 0.85 * fair

    def test_cheater_gains_under_80211(self, dcf_pm60):
        msb = mean([r.msb_throughput_bps for r in dcf_pm60])
        avg = mean([r.avg_throughput_bps for r in dcf_pm60])
        assert msb > 2.0 * avg


class TestCorrectionScheme:
    def test_cheater_restrained_under_correct(self, correct_pm60, dcf_pm60):
        msb_correct = mean([r.msb_throughput_bps for r in correct_pm60])
        msb_80211 = mean([r.msb_throughput_bps for r in dcf_pm60])
        assert msb_correct < 0.6 * msb_80211

    def test_honest_nodes_protected_under_correct(self, correct_pm60):
        honest_baseline = run(PROTOCOL_CORRECT, 0.0)
        fair = mean([r.avg_throughput_bps for r in honest_baseline])
        protected = mean([r.avg_throughput_bps for r in correct_pm60])
        assert protected > 0.85 * fair

    def test_correct_msb_near_fair_share(self, correct_pm60):
        msb = mean([r.msb_throughput_bps for r in correct_pm60])
        avg = mean([r.avg_throughput_bps for r in correct_pm60])
        assert msb < 1.6 * avg


class TestDiagnosisScheme:
    def test_diagnosis_monotone_in_pm(self):
        rates = []
        for pm in (20.0, 60.0, 100.0):
            results = run(PROTOCOL_CORRECT, pm)
            rates.append(mean([r.correct_diagnosis_percent for r in results]))
        assert rates[0] < rates[1] < rates[2]
        assert rates[2] > 95.0

    def test_zero_flow_misdiagnosis_near_zero(self, correct_pm60):
        mis = mean([r.misdiagnosis_percent for r in correct_pm60])
        assert mis < 8.0

    def test_two_flow_trades_misdiagnosis_for_sensitivity(self):
        """TWO-FLOW: higher correct diagnosis at small PM, but higher
        misdiagnosis (the paper's stated tradeoff).  Probed at PM=10,
        below this reproduction's diagnosis knee (see EXPERIMENTS.md:
        our knee sits lower than the paper's because the stronger
        correction penalties feed back into B_exp)."""
        zero = run(PROTOCOL_CORRECT, 10.0, with_interferers=False)
        two = run(PROTOCOL_CORRECT, 10.0, with_interferers=True)
        diag_zero = mean([r.correct_diagnosis_percent for r in zero])
        diag_two = mean([r.correct_diagnosis_percent for r in two])
        mis_zero = mean([r.misdiagnosis_percent for r in zero])
        mis_two = mean([r.misdiagnosis_percent for r in two])
        assert diag_two > diag_zero
        assert mis_two > mis_zero


class TestProtocolOverheadWithoutMisbehavior:
    def test_correct_matches_80211_throughput(self):
        """Figure 6: the curves almost overlap."""
        for n in (2, 8):
            topo = circle_topology(n)
            a = run_seeds(
                ScenarioConfig(topology=topo, protocol=PROTOCOL_80211,
                               duration_us=DURATION), SEEDS,
            )
            b = run_seeds(
                ScenarioConfig(topology=topo, protocol=PROTOCOL_CORRECT,
                               duration_us=DURATION), SEEDS,
            )
            t_a = mean([r.avg_throughput_bps for r in a])
            t_b = mean([r.avg_throughput_bps for r in b])
            assert abs(t_a - t_b) / t_a < 0.12

    def test_fairness_comparable(self):
        topo = circle_topology(8)
        a = run_seeds(
            ScenarioConfig(topology=topo, protocol=PROTOCOL_80211,
                           duration_us=DURATION), SEEDS,
        )
        b = run_seeds(
            ScenarioConfig(topology=topo, protocol=PROTOCOL_CORRECT,
                           duration_us=DURATION), SEEDS,
        )
        f_a = mean([r.fairness_index for r in a])
        f_b = mean([r.fairness_index for r in b])
        assert abs(f_a - f_b) < 0.1
