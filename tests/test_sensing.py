"""Tests for the conforming-station idle-slot counter."""

import random

import pytest

from repro.phy.sensing import IdleSlotCounter
from repro.sim.engine import SimulationError

SLOT = 20
DIFS = 50
EIFS = 308


def make_counter(start=0):
    return IdleSlotCounter(SLOT, random.Random(1), difs_us=DIFS,
                           start_time=start)


class TestCleanIdle:
    def test_initial_difs_deference(self):
        c = make_counter()
        # Counting starts at DIFS = 50; at t=50+3*20=110 three slots done.
        assert c.idle_slots(110) == 3

    def test_no_slots_before_deference_ends(self):
        c = make_counter()
        assert c.idle_slots(DIFS) == 0
        assert c.idle_slots(DIFS + SLOT - 1) == 0

    def test_partial_slot_not_counted(self):
        c = make_counter()
        assert c.idle_slots(DIFS + SLOT + 5) == 1

    def test_queries_are_cumulative_and_stable(self):
        c = make_counter()
        assert c.idle_slots(DIFS + 2 * SLOT) == 2
        assert c.idle_slots(DIFS + 2 * SLOT) == 2
        assert c.idle_slots(DIFS + 4 * SLOT) == 4

    def test_time_cannot_go_backwards_silently(self):
        c = make_counter()
        c.idle_slots(200)
        # A backwards clock (drift fault + resync gone wrong) would
        # rewind the cursor at the next strong edge and double-count
        # slots, so it is rejected loudly rather than ignored.
        with pytest.raises(SimulationError, match="backwards"):
            c.idle_slots(100)
        # Re-querying at the frontier still works after the rejection.
        assert c.idle_slots(200) == c.idle_slots(200)


class TestStrongBusy:
    def test_no_counting_while_busy(self):
        c = make_counter()
        c.set_strong(True, 50)
        assert c.idle_slots(5000) == 0

    def test_partial_slot_discarded_at_busy_edge(self):
        c = make_counter()
        # 2 full slots then busy mid-third-slot.
        c.set_strong(True, DIFS + 2 * SLOT + 10)
        assert c.idle_slots(DIFS + 2 * SLOT + 10) == 2

    def test_deference_after_busy(self):
        c = make_counter()
        c.set_strong(True, 100)
        c.set_strong(False, 300)  # DIFS deference: counting from 350
        before = c.idle_slots(300)
        assert c.idle_slots(300 + DIFS + SLOT) == before + 1

    def test_eifs_deference_after_error(self):
        c = make_counter()
        c.set_strong(True, 100)
        c.set_strong(False, 300, ifs_us=EIFS)
        before = c.idle_slots(300)
        # Nothing counted during [300, 300+EIFS).
        assert c.idle_slots(300 + EIFS) == before
        assert c.idle_slots(300 + EIFS + SLOT) == before + 1

    def test_difference_between_difs_and_eifs(self):
        """EIFS skips (EIFS-DIFS)/SLOT more slots than DIFS would."""
        difs_counter = make_counter()
        eifs_counter = make_counter()
        for counter, ifs in ((difs_counter, DIFS), (eifs_counter, EIFS)):
            counter.set_strong(True, 100)
            counter.set_strong(False, 300, ifs_us=ifs)
        horizon = 300 + 2000
        gap = difs_counter.idle_slots(horizon) - eifs_counter.idle_slots(horizon)
        # (EIFS-DIFS)/SLOT = 12.9 slots of extra deference; slot-clock
        # realignment makes the observable gap 12 or 13.
        assert gap in (12, 13)


class TestMarginal:
    def test_p_zero_counts_everything(self):
        c = make_counter()
        c.set_marginal_probability(0.0, 50)
        assert c.idle_slots(50 + 10 * SLOT) == 10

    def test_p_one_counts_nothing(self):
        c = make_counter()
        c.set_marginal_probability(1.0, 50)
        assert c.idle_slots(50 + 100 * SLOT) == 0

    def test_intermediate_p_counts_fraction(self):
        counts = []
        for seed in range(30):
            c = IdleSlotCounter(SLOT, random.Random(seed), difs_us=DIFS)
            c.set_marginal_probability(0.8, 50)
            counts.append(c.idle_slots(50 + 1000 * SLOT))
        mean = sum(counts) / len(counts)
        assert 150 < mean < 250  # ~= 1000 * 0.2

    def test_invalid_probability(self):
        c = make_counter()
        with pytest.raises(ValueError):
            c.set_marginal_probability(1.5, 10)

    def test_marginal_then_clear(self):
        c = make_counter()
        c.set_marginal_probability(1.0, 50)
        c.set_marginal_probability(0.0, 50 + 10 * SLOT)
        assert c.idle_slots(50 + 20 * SLOT) == 10

    def test_strong_busy_overrides_marginal(self):
        c = make_counter()
        c.set_marginal_probability(0.5, 50)
        c.set_strong(True, 50)
        assert c.idle_slots(50 + 100 * SLOT) == 0


class TestIntervalSemantics:
    def test_b_act_is_snapshot_difference(self):
        """The receiver computes B_act as a difference of snapshots."""
        c = make_counter()
        ref = c.idle_slots(500)
        c.set_strong(True, 500)
        c.set_strong(False, 700)
        now = 700 + DIFS + 12 * SLOT
        b_act = c.idle_slots(now) - ref
        assert b_act == 12

    def test_invalid_slot_size(self):
        with pytest.raises(ValueError):
            IdleSlotCounter(0, random.Random(1))
