"""End-to-end chaos: SIGKILL and SIGTERM the campaign *orchestrator*
(`python -m repro campaign`) mid-run, resume with ``--resume``, and
assert the acceptance criterion — aggregates bit-identical to an
uninterrupted reference run, zero duplicated journal records.

The spec is sized (60 one-second cells, ``--chunk 1``) so the
orchestrator journals dozens of records over several wall seconds,
leaving a wide window to kill it between appends.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.experiments.campaign import (
    EXIT_INTERRUPTED,
    JOURNAL_NAME,
    SUMMARY_NAME,
    read_journal,
)

REPO = pathlib.Path(__file__).resolve().parent.parent
SPEC = "scenario=circle:3; pm=0|60; seeds=1-30; seconds=1.0"
CELLS = 60
DEADLINE_S = 180.0


def campaign_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    # keep runs pure: no cross-run cache, no replica batching
    env.pop("REPRO_CACHE", None)
    env.pop("REPRO_BATCH", None)
    return env


def launch(out_dir, *extra):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "campaign", SPEC,
         "--dir", str(out_dir), "--workers", "1", "--chunk", "1",
         "--quiet", *extra],
        cwd=REPO, env=campaign_env(),
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
    )


def journal_lines(out_dir):
    """Complete (newline-terminated) journal lines; 1st is the header."""
    path = pathlib.Path(out_dir) / JOURNAL_NAME
    try:
        return path.read_bytes().count(b"\n")
    except FileNotFoundError:
        return 0


def wait_for_records(proc, out_dir, n):
    """Poll until the journal holds >= n settled run records."""
    deadline = time.monotonic() + DEADLINE_S
    while time.monotonic() < deadline:
        if journal_lines(out_dir) >= n + 1:  # + header
            return
        if proc.poll() is not None:
            pytest.fail(
                f"campaign exited (rc={proc.returncode}) before "
                f"{n} records were journaled — spec too quick to chaos"
            )
        time.sleep(0.01)
    pytest.fail(f"no {n} journal records within {DEADLINE_S}s")


def finish(proc):
    out, err = proc.communicate(timeout=DEADLINE_S)
    return proc.returncode, out.decode(), err.decode()


def assert_settled_exactly_once(out_dir):
    result = read_journal(pathlib.Path(out_dir) / JOURNAL_NAME)
    assert not result.truncated  # resume repaired any torn tail
    runs = [r for r in result.records if r["kind"] == "run"]
    fps = [r["fp"] for r in runs]
    assert len(fps) == len(set(fps)) == CELLS
    return runs


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """One uninterrupted campaign: the bit-identity baseline."""
    out_dir = tmp_path_factory.mktemp("chaos") / "ref"
    rc, out, err = finish(launch(out_dir))
    assert rc == 0, f"reference campaign failed:\n{out}\n{err}"
    assert_settled_exactly_once(out_dir)
    return {
        "summary": (out_dir / SUMMARY_NAME).read_bytes(),
        "journal": (out_dir / JOURNAL_NAME).read_bytes(),
    }


class TestOrchestratorSigkill:
    def test_sigkill_then_resume_is_bit_identical(self, tmp_path,
                                                  reference):
        out_dir = tmp_path / "killed"
        proc = launch(out_dir)
        wait_for_records(proc, out_dir, 3)
        proc.kill()  # SIGKILL: no drain, no flush, no atexit
        proc.wait(timeout=DEADLINE_S)
        settled_at_kill = journal_lines(out_dir) - 1
        assert settled_at_kill < CELLS, "campaign finished before kill"

        rc, out, err = finish(launch(out_dir, "--resume", str(out_dir)))
        assert rc == 0, f"resume failed:\n{out}\n{err}"
        assert f"{settled_at_kill} resumed" in out or "resumed" in out

        assert_settled_exactly_once(out_dir)
        assert (out_dir / SUMMARY_NAME).read_bytes() == \
            reference["summary"]
        assert (out_dir / JOURNAL_NAME).read_bytes() == \
            reference["journal"]

    def test_double_sigkill_then_resume(self, tmp_path, reference):
        # Kill, resume, kill the resume, resume again: settlement must
        # stay exactly-once across any number of crash/resume cycles.
        out_dir = tmp_path / "killed-twice"
        proc = launch(out_dir)
        wait_for_records(proc, out_dir, 2)
        proc.kill()
        proc.wait(timeout=DEADLINE_S)

        proc = launch(out_dir, "--resume", str(out_dir))
        wait_for_records(proc, out_dir, journal_lines(out_dir) + 2)
        proc.kill()
        proc.wait(timeout=DEADLINE_S)
        assert journal_lines(out_dir) - 1 < CELLS, \
            "campaign finished before second kill"

        rc, out, err = finish(launch(out_dir, "--resume", str(out_dir)))
        assert rc == 0, f"second resume failed:\n{out}\n{err}"
        assert_settled_exactly_once(out_dir)
        assert (out_dir / SUMMARY_NAME).read_bytes() == \
            reference["summary"]
        assert (out_dir / JOURNAL_NAME).read_bytes() == \
            reference["journal"]


class TestOrchestratorSigterm:
    def test_sigterm_drains_and_resumes_identically(self, tmp_path,
                                                    reference):
        out_dir = tmp_path / "terminated"
        proc = launch(out_dir)
        wait_for_records(proc, out_dir, 2)
        proc.send_signal(signal.SIGTERM)
        rc, out, err = finish(proc)
        assert rc == EXIT_INTERRUPTED, \
            f"wanted drain exit {EXIT_INTERRUPTED}, got {rc}:\n{out}\n{err}"
        assert "interrupted (resumable)" in out

        # graceful drain flushed cleanly: journal replays with no torn
        # tail, and the summary on disk matches the drained records
        result = read_journal(out_dir / JOURNAL_NAME)
        assert not result.truncated
        drained = len([r for r in result.records if r["kind"] == "run"])
        assert 0 < drained < CELLS
        summary = json.loads((out_dir / SUMMARY_NAME).read_text())
        assert summary["settled"] == drained
        assert summary["complete"] is False

        rc, out, err = finish(launch(out_dir, "--resume", str(out_dir)))
        assert rc == 0, f"resume after drain failed:\n{out}\n{err}"
        assert_settled_exactly_once(out_dir)
        assert (out_dir / SUMMARY_NAME).read_bytes() == \
            reference["summary"]
        assert (out_dir / JOURNAL_NAME).read_bytes() == \
            reference["journal"]
