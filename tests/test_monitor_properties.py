"""Property-based tests of the receiver monitor over random traces.

These drive :class:`~repro.core.monitor.SenderMonitor` with randomly
generated sender behaviours and check the scheme's two safety/liveness
properties:

* **soundness** — a sender that always waits at least its assignment
  (plus reconstructed retry stages) is never penalised nor diagnosed,
  whatever the packet/retry pattern;
* **completeness** — a sender that persistently waits at most a small
  fraction of its assignment is diagnosed within a bounded number of
  packets.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.backoff_function import retry_backoff
from repro.core.monitor import SenderMonitor
from repro.core.params import ProtocolConfig


def drive_monitor(behaviour, packets, attempts_pattern, extra_wait,
                  seed=1, config=None):
    """Feed a monitor a synthetic trace; returns (monitor, verdicts).

    ``behaviour(nominal) -> waited`` maps the conforming wait for a
    packet (assignment plus any retry stages) to the actual idle slots
    elapsed at the receiver.
    """
    cfg = config or ProtocolConfig()
    monitor = SenderMonitor(3, cfg, random.Random(seed))
    verdicts = []
    idle = 0
    verdict = monitor.on_rts(1, idle)  # first contact, unchecked
    monitor.on_response_sent("ack", 1, idle)
    for index in range(packets):
        attempt = attempts_pattern[index % len(attempts_pattern)]
        nominal = verdict.assignment + sum(
            retry_backoff(verdict.assignment, 3, i)
            for i in range(2, attempt + 1)
        )
        idle += behaviour(nominal) + extra_wait
        verdict = monitor.on_rts(attempt, idle)
        verdicts.append(verdict)
        monitor.on_response_sent("ack", attempt, idle)
    return monitor, verdicts


class TestSoundness:
    @given(
        st.integers(min_value=5, max_value=40),
        st.lists(st.integers(min_value=1, max_value=4), min_size=1,
                 max_size=4),
        st.integers(min_value=0, max_value=30),
        st.integers(min_value=0, max_value=2 ** 16),
    )
    @settings(max_examples=60, deadline=None)
    def test_conforming_sender_never_flagged(
        self, packets, attempts, extra_wait, seed
    ):
        monitor, verdicts = drive_monitor(
            behaviour=lambda nominal: nominal,
            packets=packets,
            attempts_pattern=attempts,
            extra_wait=extra_wait,
            seed=seed,
        )
        assert monitor.deviations_observed == 0
        assert all(v.penalty == 0 for v in verdicts)
        assert not monitor.is_misbehaving

    @given(st.integers(min_value=0, max_value=2 ** 16))
    @settings(max_examples=30, deadline=None)
    def test_overwaiting_sender_never_flagged(self, seed):
        monitor, verdicts = drive_monitor(
            behaviour=lambda nominal: nominal * 2 + 5,
            packets=20,
            attempts_pattern=[1],
            extra_wait=0,
            seed=seed,
        )
        assert monitor.deviations_observed == 0
        assert not monitor.is_misbehaving


class TestCompleteness:
    @given(
        st.floats(min_value=0.0, max_value=0.4),
        st.integers(min_value=0, max_value=2 ** 16),
    )
    @settings(max_examples=40, deadline=None)
    def test_persistent_cheater_diagnosed_quickly(self, fraction, seed):
        """Waiting <= 40% of the requirement must trip W=5/THRESH=20
        within a handful of packets."""
        monitor, verdicts = drive_monitor(
            behaviour=lambda nominal: int(nominal * fraction),
            packets=15,
            attempts_pattern=[1],
            extra_wait=0,
            seed=seed,
        )
        assert monitor.is_misbehaving
        first_flagged = next(
            (i for i, v in enumerate(verdicts) if v.diagnosed), None
        )
        assert first_flagged is not None
        assert first_flagged <= 10

    @given(st.integers(min_value=0, max_value=2 ** 16))
    @settings(max_examples=30, deadline=None)
    def test_cheater_penalties_grow_assignments(self, seed):
        monitor, verdicts = drive_monitor(
            behaviour=lambda nominal: 0,
            packets=10,
            attempts_pattern=[1],
            extra_wait=0,
            seed=seed,
        )
        assignments = [v.assignment for v in verdicts]
        # Later assignments dwarf the honest [0, 31] range.
        assert max(assignments[3:]) > 31


class TestPenaltyBoundedness:
    @given(st.integers(min_value=0, max_value=2 ** 16))
    @settings(max_examples=20, deadline=None)
    def test_cap_bounds_assignment_growth(self, seed):
        cfg = ProtocolConfig(penalty_cap_slots=100)
        monitor, verdicts = drive_monitor(
            behaviour=lambda nominal: 0,
            packets=30,
            attempts_pattern=[1],
            extra_wait=0,
            seed=seed,
            config=cfg,
        )
        assert all(v.assignment <= 100 + cfg.cw_min for v in verdicts)
