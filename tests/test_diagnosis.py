"""Tests for the W/THRESH diagnosis window."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.diagnosis import DiagnosisWindow


class TestWindowSemantics:
    def test_not_misbehaving_initially(self):
        win = DiagnosisWindow(window=5, thresh=20)
        assert not win.is_misbehaving

    def test_flags_when_sum_exceeds_thresh(self):
        win = DiagnosisWindow(window=5, thresh=20)
        for _ in range(4):
            assert not win.update(5.0)  # sums 5, 10, 15, 20 (== not >)
        assert win.update(5.0)  # sum 25 > 20

    def test_sum_equal_to_thresh_not_flagged(self):
        win = DiagnosisWindow(window=5, thresh=20)
        win.update(20.0)
        assert not win.is_misbehaving

    def test_old_samples_roll_out(self):
        win = DiagnosisWindow(window=3, thresh=10)
        win.update(100.0)
        assert win.is_misbehaving
        win.update(0.0)
        win.update(0.0)
        win.update(0.0)  # the 100 has rolled out
        assert not win.is_misbehaving
        assert win.windowed_sum == 0.0

    def test_negative_differences_offset_positive(self):
        """Over-waiting on some packets excuses under-waiting on others."""
        win = DiagnosisWindow(window=5, thresh=20)
        win.update(30.0)
        assert win.is_misbehaving
        win.update(-30.0)
        assert not win.is_misbehaving

    def test_window_one_behaves_like_per_packet_test(self):
        win = DiagnosisWindow(window=1, thresh=4)
        assert win.update(5.0)
        assert not win.update(3.0)

    def test_reset_clears_history(self):
        win = DiagnosisWindow(window=3, thresh=5)
        win.update(100.0)
        win.reset()
        assert not win.is_misbehaving
        assert win.windowed_sum == 0.0
        assert win.contents == ()

    def test_counters(self):
        win = DiagnosisWindow(window=2, thresh=0)
        win.update(1.0)   # sum 1 > 0: flagged
        win.update(-5.0)  # sum -4: not flagged
        assert win.observations == 2
        assert win.flagged_observations == 1

    def test_contents_ordered_oldest_first(self):
        win = DiagnosisWindow(window=3, thresh=100)
        for v in (1.0, 2.0, 3.0, 4.0):
            win.update(v)
        assert win.contents == (2.0, 3.0, 4.0)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            DiagnosisWindow(window=0, thresh=10)


class TestWindowProperties:
    @given(st.lists(st.floats(min_value=-1e4, max_value=1e4), min_size=1,
                    max_size=100))
    @settings(max_examples=100)
    def test_sum_matches_last_w_entries(self, values):
        w = 5
        win = DiagnosisWindow(window=w, thresh=0)
        for v in values:
            win.update(v)
        assert win.windowed_sum == pytest.approx(sum(values[-w:]), abs=1e-6)

    @given(st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=6,
                    max_size=50))
    @settings(max_examples=50)
    def test_persistent_cheater_eventually_flagged(self, values):
        """All-positive differences above thresh/W must trigger."""
        win = DiagnosisWindow(window=5, thresh=20)
        flagged = False
        for v in values:
            flagged = win.update(v + 4.0) or flagged  # each > thresh/W
        assert flagged

    @given(st.lists(st.floats(min_value=-100.0, max_value=0.0), min_size=1,
                    max_size=50))
    @settings(max_examples=50)
    def test_overwaiting_sender_never_flagged(self, values):
        win = DiagnosisWindow(window=5, thresh=20)
        for v in values:
            assert not win.update(v)


class TestWindowEdgeCases:
    """Eviction bookkeeping under float accumulation, and counters."""

    @given(st.lists(
        st.floats(min_value=-1e12, max_value=1e12,
                  allow_nan=False, allow_infinity=False),
        min_size=10, max_size=200,
    ))
    @settings(max_examples=100)
    def test_eviction_keeps_running_sum_consistent(self, values):
        """After every update, the incrementally maintained sum must
        match a from-scratch recomputation over the window contents —
        i.e. eviction subtracts exactly what insertion added, with no
        float drift relative to the same left-to-right summation."""
        win = DiagnosisWindow(window=7, thresh=0)
        for v in values:
            win.update(v)
            recomputed = 0.0
            for kept in win.contents:
                recomputed += kept
            assert win.windowed_sum == pytest.approx(
                recomputed, rel=1e-9, abs=1e-6
            )

    def test_mixed_magnitude_eviction(self):
        """A huge sample rolling out must not leave residue behind."""
        win = DiagnosisWindow(window=3, thresh=1e6)
        for v in (1e15, 1.0, 1.0, 1.0):  # the 1e15 has rolled out
            win.update(v)
        assert win.contents == (1.0, 1.0, 1.0)
        assert win.windowed_sum == pytest.approx(sum(win.contents))

    @given(st.lists(st.floats(min_value=-100.0, max_value=100.0),
                    min_size=1, max_size=60))
    @settings(max_examples=50)
    def test_observation_counters_monotone_and_exact(self, values):
        win = DiagnosisWindow(window=5, thresh=10)
        flagged = 0
        for i, v in enumerate(values, start=1):
            if win.update(v):
                flagged += 1
            assert win.observations == i
            assert win.flagged_observations == flagged
        assert 0 <= win.flagged_observations <= win.observations

    def test_counters_survive_eviction(self):
        """Counters are lifetime tallies, not window-bounded."""
        win = DiagnosisWindow(window=2, thresh=0)
        for _ in range(10):
            win.update(1.0)  # always above thresh
        assert win.observations == 10
        assert win.flagged_observations == 10
        assert len(win.contents) == 2

    def test_reset_clears_counters(self):
        win = DiagnosisWindow(window=2, thresh=0)
        win.update(1.0)
        win.reset()
        assert win.observations == 0
        assert win.flagged_observations == 0
