"""Tests for the adaptive THRESH estimator (future-work extension)."""

import random

import pytest

from repro.core.adaptive import AdaptiveThreshold


class TestAdaptiveThreshold:
    def test_uninitialised_falls_back_to_paper_value(self):
        adaptive = AdaptiveThreshold()
        assert adaptive.current_thresh() == 20.0

    def test_clean_channel_lowers_threshold(self):
        """Near-zero honest noise should allow a tight threshold."""
        adaptive = AdaptiveThreshold(min_thresh=4.0)
        rng = random.Random(1)
        for _ in range(500):
            adaptive.update(rng.gauss(0.0, 0.5))
        assert adaptive.current_thresh() < 20.0

    def test_noisy_channel_raises_threshold(self):
        """TWO-FLOW-like noise should push the threshold up."""
        adaptive = AdaptiveThreshold(max_thresh=200.0)
        rng = random.Random(2)
        for _ in range(500):
            adaptive.update(rng.gauss(5.0, 15.0))
        assert adaptive.current_thresh() > 20.0

    def test_threshold_clamped(self):
        adaptive = AdaptiveThreshold(min_thresh=10.0, max_thresh=30.0)
        rng = random.Random(3)
        for _ in range(200):
            adaptive.update(rng.gauss(100.0, 50.0))
        assert adaptive.current_thresh() == 30.0
        calm = AdaptiveThreshold(min_thresh=10.0, max_thresh=30.0)
        for _ in range(200):
            calm.update(0.0)
        assert calm.current_thresh() == 10.0

    def test_tracks_mean_and_std(self):
        adaptive = AdaptiveThreshold(ewma_alpha=0.1)
        rng = random.Random(4)
        for _ in range(3000):
            adaptive.update(rng.gauss(3.0, 2.0))
        assert adaptive.mean == pytest.approx(3.0, abs=1.0)
        assert adaptive.std == pytest.approx(2.0, abs=1.0)

    def test_sample_counter(self):
        adaptive = AdaptiveThreshold()
        for _ in range(5):
            adaptive.update(1.0)
        assert adaptive.samples == 5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": 0},
            {"target_false_rate": 0.0},
            {"target_false_rate": 0.6},
            {"ewma_alpha": 0.0},
            {"min_thresh": 50.0, "max_thresh": 10.0},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            AdaptiveThreshold(**kwargs)

    def test_higher_confidence_gives_higher_threshold(self):
        strict = AdaptiveThreshold(target_false_rate=0.001, max_thresh=1000.0)
        lax = AdaptiveThreshold(target_false_rate=0.1, max_thresh=1000.0)
        rng = random.Random(5)
        samples = [rng.gauss(0.0, 5.0) for _ in range(500)]
        for s in samples:
            strict.update(s)
            lax.update(s)
        assert strict.current_thresh() > lax.current_thresh()
