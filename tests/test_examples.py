"""Smoke tests: every example script runs and prints sane output.

The heavyweight figure-reproduction driver is exercised at the QUICK
scale via the environment toggle.
"""

import runpy
import sys

import pytest


def run_example(path, argv=None, monkeypatch=None):
    if monkeypatch is not None:
        monkeypatch.setattr(sys, "argv", [path] + (argv or []))
    return runpy.run_path(path, run_name="__main__")


class TestExamples:
    def test_quickstart(self, capsys, monkeypatch):
        run_example("examples/quickstart.py", monkeypatch=monkeypatch)
        out = capsys.readouterr().out
        assert "misbehaving" in out
        assert "Correct diagnosis" in out

    def test_adhoc_random_network(self, capsys, monkeypatch):
        run_example("examples/adhoc_random_network.py",
                    monkeypatch=monkeypatch)
        out = capsys.readouterr().out
        assert "Diagnosis summary" in out
        assert "Caught" in out

    def test_extensions_demo(self, capsys, monkeypatch):
        run_example("examples/extensions_demo.py", monkeypatch=monkeypatch)
        out = capsys.readouterr().out
        assert "proof of misbehavior: YES" in out
        assert "VIOLATION" in out
        assert "adaptive" in out

    def test_driveby_mobility(self, capsys, monkeypatch):
        run_example("examples/driveby_mobility.py", monkeypatch=monkeypatch)
        out = capsys.readouterr().out
        assert "m/s" in out
        assert "diagnosed" in out

    @pytest.mark.slow
    def test_hotspot_misbehavior(self, capsys, monkeypatch):
        run_example("examples/hotspot_misbehavior.py",
                    monkeypatch=monkeypatch)
        out = capsys.readouterr().out
        assert "CORRECT cheater" in out

    def test_reproduce_figures_quick(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_QUICK", "1")
        monkeypatch.setattr(
            sys, "argv", ["examples/reproduce_figures.py", "intro"]
        )
        run_example("examples/reproduce_figures.py")
        out = capsys.readouterr().out
        assert "intro" in out
        assert "generated in" in out
