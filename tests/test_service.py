"""Tests for the online detection service (repro.service).

Covers the wire codec, the sharded LRU detector store, the verdict
log, the ingest facade (in-process, stdin-style streams, TCP), the
HTTP query API, and the subsystem's central promise: serving a
detector changes nothing — the ``window`` detector hosted online
produces the identical per-sender flag/clear verdict sequence as the
same detector inside the in-sim ``SenderMonitor`` on the same
observation stream.
"""

from __future__ import annotations

import io
import json
import socket
import threading
import urllib.request

import pytest

from repro.detect import Observation
from repro.detect.window import WindowDetector
from repro.experiments.scenarios import (
    PROTOCOL_CORRECT,
    ScenarioConfig,
    run_scenario,
)
from repro.net import circle_topology
from repro.service import (
    DetectionService,
    ServiceHTTPServer,
    ShardedDetectorStore,
    TcpIngestServer,
    VerdictLog,
    WireError,
    decode_lines,
    decode_record,
    encode_record,
    ingest_stream,
    record_scenario_stream,
    recorded_verdicts,
    replay_stream,
    sender_of_line,
    shard_of,
)
from repro.service.store import FlagEvent


def obs(b_exp, b_act, retries=1, time_us=0):
    return Observation(b_exp=b_exp, b_act=b_act, retries=retries,
                       time_us=time_us)


def window_factory(window=5, thresh=20.0):
    return lambda: WindowDetector(window=window, thresh=thresh)


# ----------------------------------------------------------------------
# Wire codec
# ----------------------------------------------------------------------
class TestCodec:
    def test_round_trip(self):
        original = obs(31.0, 7.5, retries=2, time_us=480)
        sender, decoded = decode_record(encode_record("node-3", original))
        assert sender == "node-3"
        assert decoded == original

    def test_wire_line_is_flat_sorted_json(self):
        line = encode_record("3", obs(31, 7))
        data = json.loads(line)
        assert data == {"v": 1, "sender": "3", "b_exp": 31.0,
                        "b_act": 7.0, "retries": 1, "time_us": 0}
        assert "\n" not in line

    def test_invalid_json_rejected(self):
        with pytest.raises(WireError, match="not valid JSON"):
            decode_record("{nope")

    def test_non_object_rejected(self):
        with pytest.raises(WireError, match="JSON object.*list"):
            decode_record("[1, 2]")

    def test_missing_sender_rejected(self):
        line = json.dumps(obs(31, 7).to_dict())
        with pytest.raises(WireError, match="'sender'"):
            decode_record(line)

    def test_bad_sender_rejected(self):
        for sender in ("", 3, None):
            record = obs(31, 7).to_dict()
            record["sender"] = sender
            with pytest.raises(WireError, match="'sender'"):
                decode_record(json.dumps(record))

    def test_oversized_sender_rejected(self):
        record = obs(31, 7).to_dict()
        record["sender"] = "x" * 300
        with pytest.raises(WireError, match="256"):
            decode_record(json.dumps(record))

    def test_observation_schema_errors_become_wire_errors(self):
        record = obs(31, 7).to_dict()
        record["sender"] = "3"
        record["bogus"] = 1
        with pytest.raises(WireError, match="bogus"):
            decode_record(json.dumps(record))

    def test_decode_lines_skips_blank_keepalives(self):
        lines = [encode_record("a", obs(1, 1)), "", "   ",
                 encode_record("b", obs(2, 2))]
        decoded = list(decode_lines(lines))
        assert [sender for sender, _ in decoded] == ["a", "b"]

    def test_sender_of_line_matches_decode(self):
        for sender in ("3", "node-x", "a b", "station_42"):
            line = encode_record(sender, obs(31, 7))
            assert sender_of_line(line) == sender
            assert sender_of_line(line) == decode_record(line)[0]

    def test_sender_of_line_undecided_never_wrong(self):
        """The scan may answer None (undecided) but never a sender
        different from the strict decoder's."""
        # Escaped sender: the raw span contains backslashes -> None.
        record = obs(31, 7).to_dict()
        record["sender"] = 'quo"te\\'
        line = json.dumps(record, separators=(",", ":"), sort_keys=True)
        assert sender_of_line(line) is None
        assert decode_record(line)[0] == 'quo"te\\'
        # Non-ASCII sender: json.dumps \u-escapes it -> None, and the
        # strict decoder still recovers the real key.
        unicode_line = encode_record("ü", obs(31, 7))
        assert sender_of_line(unicode_line) is None
        assert decode_record(unicode_line)[0] == "ü"
        # No sender span at all -> None (decode rejects too).
        assert sender_of_line(json.dumps(obs(31, 7).to_dict())) is None
        # Oversized span -> None, deferring to decode's rejection.
        record["sender"] = "x" * 300
        long_line = json.dumps(record, separators=(",", ":"),
                               sort_keys=True)
        assert sender_of_line(long_line) is None


# ----------------------------------------------------------------------
# Sharded store
# ----------------------------------------------------------------------
class TestShardOf:
    def test_deterministic_and_in_range(self):
        for sender in ("1", "3", "node-x", "ffff"):
            index = shard_of(sender, 8)
            assert 0 <= index < 8
            assert index == shard_of(sender, 8)  # stable across calls

    def test_spreads_keys(self):
        hit = {shard_of(str(i), 8) for i in range(1000)}
        assert hit == set(range(8))


class TestShardedDetectorStore:
    def test_verdict_matches_bare_detector(self):
        store = ShardedDetectorStore(window_factory(), shards=2,
                                     max_entries=8)
        bare = WindowDetector(window=5, thresh=20.0)
        for i in range(10):
            o = obs(31.0, 2.0, time_us=i)
            verdict, _ = store.observe("3", o)
            assert verdict is bare.observe(o)

    def test_first_flag_event_once_per_tenure(self):
        store = ShardedDetectorStore(window_factory(), shards=1,
                                     max_entries=8)
        events = []
        for i in range(6):
            _, event = store.observe("3", obs(31.0, 0.0, time_us=i * 10))
            if event is not None:
                events.append(event)
        assert len(events) == 1
        event = events[0]
        assert isinstance(event, FlagEvent)
        assert event.sender == "3"
        assert event.observations == 1  # deficit 31 > thresh 20: first obs
        assert event.wall >= event.first_obs_wall

    def test_lru_eviction_counts_and_bounds(self):
        store = ShardedDetectorStore(window_factory(), shards=1,
                                     max_entries=3)
        for i in range(10):
            store.observe(str(i), obs(1.0, 1.0))
        stats = store.stats()
        assert stats["entries"] == 3
        assert stats["evictions"] == 7
        assert len(store) == 3
        # Oldest evicted: senders 0..6 gone, 7..9 resident.
        assert store.get("0") is None
        assert store.get("9") is not None

    def test_touch_refreshes_lru_order(self):
        store = ShardedDetectorStore(window_factory(), shards=1,
                                     max_entries=2)
        store.observe("a", obs(1, 1))
        store.observe("b", obs(1, 1))
        store.observe("a", obs(1, 1))  # refresh a; b is now coldest
        store.observe("c", obs(1, 1))  # evicts b
        assert store.get("a") is not None
        assert store.get("b") is None
        assert store.get("c") is not None

    def test_recycled_detector_judges_like_fresh(self):
        """Evict a flagged sender, readmit it: verdicts start clean."""
        store = ShardedDetectorStore(window_factory(), shards=1,
                                     max_entries=1)
        for _ in range(3):
            store.observe("cheat", obs(31.0, 0.0))
        assert store.get("cheat")["flagged"]
        store.observe("other", obs(1.0, 1.0))  # evicts (and recycles)
        assert store.stats()["flagged_evictions"] == 1
        verdict, event = store.observe("cheat", obs(1.0, 1.0))
        assert verdict is False  # no residue from the earlier tenure
        snapshot = store.get("cheat")
        assert snapshot["observations"] == 1
        assert snapshot["flagged_observations"] == 0

    def test_transition_log_bounded_and_ordered(self):
        store = ShardedDetectorStore(window_factory(window=1, thresh=5.0),
                                     shards=1, max_entries=4,
                                     transition_cap=4)
        for i in range(20):
            # Alternate flagging/clear observations: a transition each.
            deficit = 10.0 if i % 2 == 0 else -10.0
            store.observe("3", obs(max(deficit, 0.0),
                                   max(-deficit, 0.0), time_us=i))
        transitions = store.get("3")["transitions"]
        assert len(transitions) == 4  # capped, oldest dropped
        kinds = [t["verdict"] for t in transitions]
        assert kinds in (["flag", "clear"] * 2, ["clear", "flag"] * 2)

    def test_snapshot_and_flagged_senders(self):
        store = ShardedDetectorStore(window_factory(), shards=4,
                                     max_entries=8)
        store.observe("honest", obs(5.0, 5.0))
        store.observe("cheat", obs(31.0, 0.0))
        assert store.flagged_senders() == ["cheat"]
        snapshot = store.get("cheat")
        assert snapshot["flagged"] is True
        assert snapshot["first_flag"]["observations"] == 1
        assert snapshot["shard"] == shard_of("cheat", 4)

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="shards"):
            ShardedDetectorStore(window_factory(), shards=0)
        with pytest.raises(ValueError, match="max_entries"):
            ShardedDetectorStore(window_factory(), max_entries=0)
        with pytest.raises(ValueError, match="transition_cap"):
            ShardedDetectorStore(window_factory(), transition_cap=1)


# ----------------------------------------------------------------------
# Verdict log
# ----------------------------------------------------------------------
def _flag_event(sender, time_us=100):
    return FlagEvent(sender=sender, time_us=time_us, wall=2.0,
                     first_obs_wall=1.5, observations=4)


class TestVerdictLog:
    def test_ids_dense_from_one(self):
        log = VerdictLog()
        assert [log.publish(_flag_event(str(i))) for i in range(3)] \
            == [1, 2, 3]

    def test_events_after_cursor(self):
        log = VerdictLog()
        for i in range(5):
            log.publish(_flag_event(str(i)))
        events, newest, info = log.events_after(2)
        assert [e["id"] for e in events] == [3, 4, 5]
        assert newest == 5
        assert info == {"oldest": 1, "dropped": 0}
        assert events[0]["latency_s"] == pytest.approx(0.5)
        events, newest, _ = log.events_after(5)
        assert events == [] and newest == 5

    def test_limit_moves_cursor_to_last_returned(self):
        log = VerdictLog()
        for i in range(5):
            log.publish(_flag_event(str(i)))
        events, newest, _ = log.events_after(0, limit=2)
        assert [e["id"] for e in events] == [1, 2]
        assert newest == 2  # resuming from here misses nothing

    def test_cap_drops_oldest_and_counts(self):
        log = VerdictLog(cap=3)
        for i in range(5):
            log.publish(_flag_event(str(i)))
        stats = log.stats()
        assert stats == {"flags": 5, "retained": 3, "dropped": 2,
                         "oldest": 3, "cap": 3}
        events, _, info = log.events_after(0)
        assert [e["id"] for e in events] == [3, 4, 5]
        # The docstring's promise: every read reports the retained
        # window, so a resuming poller can detect its gap.
        assert info == {"oldest": 3, "dropped": 2}

    def test_empty_log_reports_no_oldest(self):
        events, newest, info = VerdictLog().events_after(0)
        assert events == [] and newest == 0
        assert info == {"oldest": None, "dropped": 0}

    def test_wait_for_returns_immediately_when_ready(self):
        log = VerdictLog()
        log.publish(_flag_event("3"))
        events, newest, _ = log.wait_for(0, timeout=0.01)
        assert [e["id"] for e in events] == [1]

    def test_wait_for_times_out_empty(self):
        log = VerdictLog()
        events, newest, info = log.wait_for(0, timeout=0.01)
        assert events == [] and newest == 0
        assert info == {"oldest": None, "dropped": 0}

    def test_wait_for_wakes_on_publish(self):
        log = VerdictLog()
        got = {}

        def wait():
            got["events"], got["newest"], _ = log.wait_for(0, timeout=5.0)

        waiter = threading.Thread(target=wait)
        waiter.start()
        log.publish(_flag_event("3"))
        waiter.join(timeout=5.0)
        assert not waiter.is_alive()
        assert [e["sender"] for e in got["events"]] == ["3"]


# ----------------------------------------------------------------------
# Ingest facade
# ----------------------------------------------------------------------
class TestDetectionService:
    def test_ingest_and_stats(self):
        service = DetectionService(shards=2, max_entries=8)
        assert service.ingest_observation("3", obs(31.0, 0.0)) is True
        assert service.ingest_observation("5", obs(1.0, 1.0)) is False
        stats = service.stats()
        assert stats["detector"] == "window"
        assert stats["observations"] == 2
        assert stats["store"]["currently_flagged"] == 1
        assert stats["verdicts"]["flags"] == 1

    def test_ingest_stream_counts_rejects(self):
        service = DetectionService(shards=1, max_entries=8)
        lines = [
            encode_record("3", obs(31.0, 0.0)),
            "",                       # keep-alive, skipped
            "{broken",                # rejected
            encode_record("5", obs(1.0, 1.0)),
            json.dumps({"v": 1, "b_exp": 1}),  # missing fields: rejected
        ]
        errors = io.StringIO()
        ingested, rejected = ingest_stream(service, lines, errors=errors)
        assert (ingested, rejected) == (2, 2)
        assert service.stats()["decode_errors"] == 2
        report = errors.getvalue()
        assert "line 3" in report and "line 5" in report

    def test_cusum_detector_spec_served(self):
        service = DetectionService(detector="cusum:h=2.0,k=0.25",
                                   shards=1, max_entries=8)
        flagged = False
        for _ in range(20):
            flagged = service.ingest_observation("3", obs(31.0, 3.0))
        assert flagged
        assert service.stats()["detector"] == "cusum:h=2.0,k=0.25"

    def test_concurrent_counters_are_exact(self):
        """Counter updates from many ingest threads must not lose
        increments: ``_ingested``/``decode_errors``/``disconnects``
        are lock-guarded, and an unlocked ``+=`` would silently skew
        them (this hammer fails reliably without the lock)."""
        service = DetectionService(shards=4, max_entries=1_000)
        threads_n, per_thread = 8, 2_000
        start_gate = threading.Barrier(threads_n)

        def hammer(worker):
            start_gate.wait()
            for i in range(per_thread):
                service.ingest_observation(
                    f"{worker}-{i % 50}", obs(1.0, 1.0, time_us=i)
                )
                service.record_decode_error()
                service.record_disconnect()

        threads = [
            threading.Thread(target=hammer, args=(n,))
            for n in range(threads_n)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not any(thread.is_alive() for thread in threads)
        stats = service.stats()
        expected = threads_n * per_thread
        assert stats["observations"] == expected
        assert stats["decode_errors"] == expected
        assert stats["disconnects"] == expected
        assert service._ingested == expected

    def test_gap_reported_when_cursor_precedes_retention(self):
        """A poller resuming from before the retained window must see
        the gap (dropped events it can never observe), not a silently
        truncated history."""
        service = DetectionService(shards=1, max_entries=64,
                                   verdict_cap=3)
        for i in range(6):  # six first flags through a cap-3 log
            service.ingest_observation(f"cheat-{i}", obs(31.0, 0.0))
        payload = service.api_verdicts("0")
        assert [e["id"] for e in payload["events"]] == [4, 5, 6]
        assert payload["oldest"] == 4
        assert payload["dropped"] == 3
        assert payload["gap"] is True  # ids 1..3 are unobservable
        # Resuming from the returned cursor: no gap.
        follow = service.api_verdicts(str(payload["next"]))
        assert follow["events"] == [] and follow["gap"] is False
        # A cursor exactly at the retention edge is not a gap either.
        assert service.api_verdicts("3")["gap"] is False

    def test_spool_replay_restores_flag_history(self, tmp_path):
        from repro.service import FlagSpool, spool_path

        path = spool_path(tmp_path, 0, 1)
        with FlagSpool(path, detector="window") as spool:
            service = DetectionService(shards=1, max_entries=8,
                                       spool=spool)
            service.ingest_observation("cheat", obs(31.0, 0.0))
            service.ingest_observation("honest", obs(1.0, 1.0))
            before = service.api_verdicts("0")
        with FlagSpool(path, detector="window") as spool:
            restarted = DetectionService(shards=1, max_entries=8,
                                         spool=spool)
            assert restarted.replayed_flags == 1
            after = restarted.api_verdicts("0")
        assert after["events"] == before["events"]  # byte-identical
        assert len(spool.replayed) == 1  # replay never re-appends


class TestTcpIngest:
    def test_stream_over_socket(self):
        service = DetectionService(shards=1, max_entries=8)
        server = TcpIngestServer(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            with socket.create_connection((host, port), timeout=5) as conn:
                payload = "\n".join([
                    encode_record("3", obs(31.0, 0.0)),
                    "{broken",
                    encode_record("5", obs(1.0, 1.0)),
                ]) + "\n"
                conn.sendall(payload.encode())
                conn.shutdown(socket.SHUT_WR)
                reply = conn.makefile().read()
            rejects = [json.loads(line) for line in reply.splitlines()]
            assert len(rejects) == 1
            assert "JSON" in rejects[0]["error"]
            deadline = 50
            while service.stats()["observations"] < 2 and deadline:
                threading.Event().wait(0.05)
                deadline -= 1
            stats = service.stats()
            assert stats["observations"] == 2
            assert stats["decode_errors"] == 1
        finally:
            server.shutdown()
            server.server_close()

    def test_client_dying_mid_stream_is_counted_not_raised(self):
        """A peer that resets the connection mid-record must not dump
        a traceback from the handler thread: the reset is counted as a
        disconnect and everything ingested before it survives."""
        service = DetectionService(shards=1, max_entries=8)
        server = TcpIngestServer(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            conn = socket.create_connection((host, port), timeout=5)
            conn.sendall((encode_record("3", obs(31.0, 0.0)) + "\n"
                          + '{"half a rec').encode())  # dies mid-line
            deadline = 100
            while service.stats()["observations"] < 1 and deadline:
                threading.Event().wait(0.05)
                deadline -= 1
            # SO_LINGER with zero timeout turns close() into a hard
            # RST, which surfaces as ConnectionResetError server-side.
            import struct
            conn.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                            struct.pack("ii", 1, 0))
            conn.close()
            deadline = 100
            while service.stats()["disconnects"] < 1 and deadline:
                threading.Event().wait(0.05)
                deadline -= 1
            stats = service.stats()
            assert stats["disconnects"] == 1
            assert stats["observations"] == 1  # pre-reset line folded in
        finally:
            server.shutdown()
            server.server_close()


# ----------------------------------------------------------------------
# HTTP API
# ----------------------------------------------------------------------
@pytest.fixture
def api():
    """(base_url, service) with a live threaded HTTP server."""
    service = DetectionService(shards=2, max_entries=8)
    server = ServiceHTTPServer(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}", service
    finally:
        server.shutdown()
        server.server_close()


def _get(url):
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestHttpApi:
    def test_stats(self, api):
        base, service = api
        service.ingest_observation("3", obs(31.0, 0.0))
        status, body = _get(f"{base}/stats")
        assert status == 200
        assert body["observations"] == 1
        assert body["store"]["shards"] == 2

    def test_verdicts_polling(self, api):
        base, service = api
        service.ingest_observation("3", obs(31.0, 0.0))
        service.ingest_observation("7", obs(1.0, 1.0))
        status, body = _get(f"{base}/verdicts")
        assert status == 200
        assert [e["sender"] for e in body["events"]] == ["3"]
        assert body["flagged"] == ["3"]
        cursor = body["next"]
        status, body = _get(f"{base}/verdicts?after={cursor}")
        assert body["events"] == []
        assert body["next"] == cursor

    def test_sender_snapshot_and_404(self, api):
        base, service = api
        service.ingest_observation("3", obs(31.0, 0.0))
        status, body = _get(f"{base}/senders/3")
        assert status == 200
        assert body["flagged"] is True
        status, body = _get(f"{base}/senders/unknown")
        assert status == 404
        assert "evicted" in body["error"]

    def test_unknown_endpoint_lists_routes(self, api):
        base, _ = api
        status, body = _get(f"{base}/nope")
        assert status == 404
        assert "/verdicts" in body["endpoints"]

    def test_bad_query_param_is_400(self, api):
        base, _ = api
        status, body = _get(f"{base}/verdicts?after=abc")
        assert status == 400
        assert "'after'" in body["error"]
        status, body = _get(f"{base}/watch?timeout=-1")
        assert status == 400

    def test_watch_long_poll_wakes_on_flag(self, api):
        base, service = api
        got = {}

        def poll():
            got["status"], got["body"] = _get(
                f"{base}/watch?after=0&timeout=10"
            )

        poller = threading.Thread(target=poll)
        poller.start()
        service.ingest_observation("3", obs(31.0, 0.0))
        poller.join(timeout=10.0)
        assert not poller.is_alive()
        assert got["status"] == 200
        assert [e["sender"] for e in got["body"]["events"]] == ["3"]

    def test_watch_timeout_returns_empty(self, api):
        base, _ = api
        status, body = _get(f"{base}/watch?after=0&timeout=0.05")
        assert status == 200
        assert body["events"] == []
        assert body["gap"] is False and body["dropped"] == 0

    def test_verdicts_limit_walk_loses_nothing(self, api):
        """Walking the full event list with ?limit=N across polls
        (always resuming from the returned ``next``) must yield every
        event exactly once, whatever N."""
        base, service = api
        for i in range(10):
            service.ingest_observation(f"cheat-{i}", obs(31.0, 0.0))
        for limit in (1, 3, 4, 10, 25):
            walked, cursor, polls = [], 0, 0
            while True:
                status, body = _get(
                    f"{base}/verdicts?after={cursor}&limit={limit}"
                )
                assert status == 200
                assert len(body["events"]) <= limit
                if not body["events"]:
                    assert body["next"] == cursor
                    break
                walked.extend(e["id"] for e in body["events"])
                cursor = body["next"]
                polls += 1
                assert polls <= 20, "cursor walk failed to terminate"
            assert walked == list(range(1, 11))  # no loss, no dupes

    def test_verdicts_gap_surfaces_over_http(self):
        """Cap overflow between polls: the next poll's payload says
        events were dropped instead of silently skipping them."""
        service = DetectionService(shards=1, max_entries=64,
                                   verdict_cap=2)
        server = ServiceHTTPServer(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            base = f"http://{host}:{port}"
            for i in range(5):
                service.ingest_observation(f"cheat-{i}", obs(31.0, 0.0))
            status, body = _get(f"{base}/verdicts?after=1")
            assert status == 200
            assert [e["id"] for e in body["events"]] == [4, 5]
            assert body["oldest"] == 4
            assert body["dropped"] == 3
            assert body["gap"] is True  # ids 2 and 3 fell out of view
        finally:
            server.shutdown()
            server.server_close()


# ----------------------------------------------------------------------
# Sim adapter: the served-equals-simulated contract
# ----------------------------------------------------------------------
def _scenario(seconds=0.4, seed=1):
    topo = circle_topology(8, misbehaving=(3,), pm_percent=60.0)
    return ScenarioConfig(topology=topo, protocol=PROTOCOL_CORRECT,
                          duration_us=int(seconds * 1_000_000), seed=seed)


class TestSimAdapter:
    def test_recording_does_not_perturb_the_run(self):
        config = _scenario()
        records, recorded_result = record_scenario_stream(config)
        plain_result = run_scenario(config)
        assert recorded_result.events_processed \
            == plain_result.events_processed
        assert recorded_result.event_counts == plain_result.event_counts
        assert recorded_result.collector.deliveries \
            == plain_result.collector.deliveries
        assert records, "a saturated 0.4 s run must judge observations"

    def test_stream_is_judged_observations_in_arrival_order(self):
        records, _ = record_scenario_stream(_scenario())
        assert [r.seq for r in records] == sorted(r.seq for r in records)
        senders = {r.sender for r in records}
        assert "3" in senders and len(senders) > 1

    def test_rejects_baseline_protocol(self):
        topo = circle_topology(4)
        config = ScenarioConfig(topology=topo, protocol="802.11",
                                duration_us=100_000, seed=1)
        with pytest.raises(ValueError, match="correct"):
            record_scenario_stream(config)

    def test_served_verdicts_bit_identical_to_sim(self):
        """THE subsystem contract: window served online == in-sim."""
        records, _ = record_scenario_stream(_scenario())
        in_sim = recorded_verdicts(records)
        service = DetectionService(detector="window", shards=4,
                                   max_entries=10_000)
        served = replay_stream(service, records)
        assert served == in_sim
        # The cheater must actually have been flagged at some point,
        # or the equality above proves nothing interesting.
        assert any(in_sim["3"]), "cheater at PM=60 never flagged in-sim"
        honest = [s for s in in_sim if s != "3"]
        assert honest and all(not any(in_sim[s]) for s in honest)

    def test_wire_round_trip_preserves_bit_identity(self):
        """Same contract with the JSONL wire format in the middle."""
        records, _ = record_scenario_stream(_scenario(seconds=0.25))
        lines = [encode_record(r.sender, r.observation) for r in records]
        service = DetectionService(detector="window", shards=4,
                                   max_entries=10_000)
        errors = io.StringIO()
        ingested, rejected = ingest_stream(service, lines, errors=errors)
        assert rejected == 0 and ingested == len(records)
        for sender, sequence in recorded_verdicts(records).items():
            snapshot = service.store.get(sender)
            assert snapshot["observations"] == len(sequence)
            assert snapshot["flagged"] == sequence[-1]
            assert snapshot["flagged_observations"] == sum(sequence)


# ----------------------------------------------------------------------
# Load generator (bench correctness at toy scale)
# ----------------------------------------------------------------------
class TestLoadgen:
    def test_generate_stream_is_deterministic(self):
        from repro.service import BenchConfig, generate_stream

        config = BenchConfig(senders=500, observations=1_500, seed=9)
        one, cheaters_one = generate_stream(config)
        two, cheaters_two = generate_stream(config)
        assert one == two and cheaters_one == cheaters_two
        assert len(one) == 1_500
        assert len({sender for sender, _ in one}) == 500

    def test_run_bench_invariants_at_toy_scale(self):
        from repro.service import BenchConfig, run_bench

        config = BenchConfig(senders=2_000, observations=8_000,
                             shards=2, max_entries=400, seed=3)
        result = run_bench(config)  # asserts honest-never-flagged
        assert result.distinct_senders == 2_000
        assert result.evictions > 0
        assert result.flagged > 0
        assert result.obs_per_sec > 0
        record = result.to_record()
        assert record["observations"] == 8_000
        assert record["p99_flag_latency_ms"] is not None

    def test_config_validation(self):
        from repro.service import BenchConfig

        with pytest.raises(ValueError, match="senders"):
            BenchConfig(senders=0)
        with pytest.raises(ValueError, match="observations"):
            BenchConfig(senders=100, observations=50)
        with pytest.raises(ValueError, match="cheater_fraction"):
            BenchConfig(cheater_fraction=1.5)
        with pytest.raises(ValueError, match="pm"):
            BenchConfig(pm=0.0)
        with pytest.raises(ValueError, match="workers"):
            BenchConfig(workers=0)

    def test_p99_tiny_samples(self):
        """Nearest-rank p99 on samples the naive ``int(0.99*n)-1``
        index got wrong: it answered the *minimum* of a 2-element
        sample (and crashed the spirit of p99 generally below n=100,
        where the only honest answer is the maximum)."""
        from repro.service import p99_latency

        assert p99_latency([]) is None
        assert p99_latency([0.7]) == 0.7
        assert p99_latency([0.1, 0.9]) == 0.9  # naive formula said 0.1
        assert p99_latency([0.1, 0.5, 0.9]) == 0.9
        ninety_nine = [float(i) for i in range(1, 100)]
        assert p99_latency(ninety_nine) == 99.0
        hundred = [float(i) for i in range(1, 101)]
        assert p99_latency(hundred) == 99.0  # rank ceil(99.0) = 99
        two_hundred = [float(i) for i in range(1, 201)]
        assert p99_latency(two_hundred) == 198.0  # rank ceil(198.0)

    @pytest.mark.parametrize(
        "config_kwargs, expected_flagged",
        [
            (dict(senders=50, observations=500, cheater_fraction=0.0), 0),
            # cheater_every = round(1/fraction): 0.001 puts only rank
            # 0 (the hottest) among the cheaters; 0.04 adds rank 25.
            (dict(senders=20, observations=800,
                  cheater_fraction=0.001), 1),
            (dict(senders=50, observations=2_000,
                  cheater_fraction=0.04), 2),
        ],
    )
    def test_run_bench_p99_with_few_flagged_senders(
        self, config_kwargs, expected_flagged,
    ):
        """The bench's p99 must be well-defined for 0, 1 and 2 flagged
        senders — the regime where the old ``int(0.99*n)-1`` index
        answered the minimum (n=2) or the question was vacuous (n=0).
        The stream is deterministic given the seed, so the flagged
        counts here are exact, not probabilistic."""
        from repro.service import BenchConfig, run_bench

        config = BenchConfig(shards=1, max_entries=1_000, seed=5,
                             **config_kwargs)
        result = run_bench(config)
        assert result.flagged == expected_flagged
        if expected_flagged == 0:
            assert result.p99_flag_latency_s is None
            assert result.to_record()["p99_flag_latency_ms"] is None
        else:
            assert result.p99_flag_latency_s is not None
            assert result.p99_flag_latency_s >= 0.0
            assert result.to_record()["p99_flag_latency_ms"] >= 0.0

    def test_trajectory_append_and_baseline(self, tmp_path):
        from repro.service.loadgen import append_trajectory

        path = tmp_path / "BENCH_service.json"
        first = {"obs_per_sec": 100_000, "utc": "2026-01-01T00:00:00+00:00"}
        baseline = append_trajectory(path, "quick", first)
        assert baseline == first
        second = {"obs_per_sec": 90_000, "utc": "2026-01-02T00:00:00+00:00"}
        baseline = append_trajectory(path, "quick", second)
        assert baseline == first  # sticky until rebased
        baseline = append_trajectory(path, "quick", second, rebase=True)
        assert baseline == second
        data = json.loads(path.read_text())
        assert data["schema"] == 1
        assert len(data["trajectory"]) == 3
