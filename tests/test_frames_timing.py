"""Tests for frame sizes, airtimes and exchange timing."""

import pytest

from repro.mac.frames import (
    Frame,
    FrameKind,
    ack_size,
    cts_size,
    data_size,
    rts_size,
)
from repro.mac.timing import ExchangeTiming
from repro.phy.constants import (
    DEFAULT_TIMINGS,
    PhyTimings,
    transmission_time_us,
)


class TestFrameSizes:
    def test_standard_sizes(self):
        assert rts_size(False) == 20
        assert cts_size(False) == 14
        assert ack_size(False) == 14
        assert data_size(512) == 540

    def test_modified_protocol_pays_header_cost(self):
        assert rts_size(True) == 21      # + attempt byte
        assert cts_size(True) == 16      # + 2-byte assigned backoff
        assert ack_size(True) == 16

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            data_size(-1)


class TestAirtime:
    def test_plcp_overhead_dominates_short_frames(self):
        # 14-byte ACK at 2 Mbps: 192 + ceil(112/2) = 248 us.
        assert transmission_time_us(14) == 248

    def test_data_frame_at_2mbps(self):
        # 540 bytes: 192 + 4320/2 = 2352 us.
        assert transmission_time_us(540) == 2352

    def test_rate_scaling(self):
        fast = transmission_time_us(540, bit_rate=11_000_000)
        slow = transmission_time_us(540, bit_rate=1_000_000)
        assert fast < transmission_time_us(540) < slow

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            transmission_time_us(-1)


class TestPhyTimings:
    def test_difs_definition(self):
        t = PhyTimings()
        assert t.difs_us == t.sifs_us + 2 * t.slot_us == 50

    def test_eifs_definition(self):
        t = PhyTimings()
        # EIFS = SIFS + ACK airtime + DIFS = 10 + 248 + 50.
        assert t.eifs_us == 308

    def test_default_contention_windows(self):
        assert DEFAULT_TIMINGS.cw_min == 31
        assert DEFAULT_TIMINGS.cw_max == 1023


class TestExchangeTiming:
    @pytest.fixture
    def et(self):
        return ExchangeTiming(PhyTimings(), payload_bytes=512,
                              modified_protocol=True)

    def test_nav_nesting(self, et):
        """Each frame's NAV covers strictly less than the previous."""
        assert et.rts_nav > et.cts_nav > et.data_nav > 0

    def test_rts_nav_covers_rest_of_exchange(self, et):
        assert et.rts_nav == (
            3 * 10 + et.cts_airtime + et.data_airtime + et.ack_airtime
        )

    def test_timeouts_exceed_expected_response_time(self, et):
        # CTS arrives SIFS + cts_airtime after the RTS ends.
        assert et.cts_timeout > 10 + et.cts_airtime
        assert et.ack_timeout > 10 + et.ack_airtime
        assert et.data_timeout > 10 + et.data_airtime

    def test_exchange_airtime_sum(self, et):
        assert et.exchange_airtime == (
            et.rts_airtime + et.cts_airtime + et.data_airtime
            + et.ack_airtime + 30
        )

    def test_modified_protocol_slightly_slower(self):
        plain = ExchangeTiming(PhyTimings(), 512, modified_protocol=False)
        modified = ExchangeTiming(PhyTimings(), 512, modified_protocol=True)
        assert modified.exchange_airtime >= plain.exchange_airtime


class TestFrameRecord:
    def test_frame_is_immutable(self):
        f = Frame(kind=FrameKind.RTS, src=1, dst=2, size_bytes=20,
                  duration_us=100)
        with pytest.raises(AttributeError):
            f.src = 9

    def test_defaults(self):
        f = Frame(kind=FrameKind.ACK, src=1, dst=2, size_bytes=14,
                  duration_us=0)
        assert f.attempt == 0
        assert f.assigned_backoff == -1
        assert f.payload_bytes == 0
