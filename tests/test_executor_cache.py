"""Tests for the batched executor and the content-addressed run cache.

Covers the determinism contract (workers=1, workers=N, and a warm
cache all produce bit-identical figure data), cache-key sensitivity
(any config field or the code-version stamp flips the key), the
run-count probes, and the profiling hooks' no-perturbation guarantee.
"""

import dataclasses
import os

import pytest

from repro.experiments import cache as cache_mod
from repro.experiments.cache import (
    RunCache,
    UncacheableConfigError,
    active_cache,
    config_fingerprint,
)
from repro.experiments.executor import (
    ExperimentExecutor,
    TaskBatch,
    default_workers,
)
from repro.experiments.figures import generate_figures
from repro.experiments.runner import run_seeds
from repro.experiments.scenarios import (
    PROTOCOL_80211,
    PROTOCOL_CORRECT,
    ScenarioConfig,
)
from repro.experiments.settings import EvalSettings
from repro.net.topology import circle_topology

SHORT = 400_000  # 0.4 s keeps these tests quick

#: Micro scale for whole-figure determinism checks.
MICRO = EvalSettings(
    duration_us=SHORT,
    seeds=(1, 2),
    pm_values=(0.0, 100.0),
    network_sizes=(1, 2),
    fig8_pm_values=(80.0,),
    random_topologies=1,
    random_nodes=8,
    random_misbehaving=2,
)


def config(protocol=PROTOCOL_CORRECT, pm=0.0, **kwargs):
    topo = circle_topology(3, misbehaving=(2,) if pm else (), pm_percent=pm)
    return ScenarioConfig(
        topology=topo, protocol=protocol, duration_us=SHORT, seed=1, **kwargs
    )


def figure_data(fig):
    """The bit-exact payload of a figure: series, errors and meta."""
    return (fig.series, fig.errors, fig.meta)


class TestDeterminism:
    def test_figure_identical_workers_1_vs_n(self):
        seq = generate_figures(["fig5"], MICRO, workers=1)["fig5"]
        par = generate_figures(["fig5"], MICRO, workers=2)["fig5"]
        assert figure_data(seq) == figure_data(par)

    def test_figure_identical_from_warm_cache(self, tmp_path):
        cache = RunCache(tmp_path)
        with ExperimentExecutor(workers=1, cache=cache) as cold:
            first = generate_figures(["fig5"], MICRO, executor=cold)["fig5"]
            assert cold.runs_executed > 0
        with ExperimentExecutor(workers=1, cache=cache) as warm:
            second = generate_figures(["fig5"], MICRO, executor=warm)["fig5"]
            # The run-count probe: a warm cache performs zero simulations.
            assert warm.runs_executed == 0
            assert warm.cache_hits > 0
        assert figure_data(first) == figure_data(second)

    def test_batched_matches_unbatched_runner(self):
        direct = run_seeds(config(pm=50.0), (1, 2), workers=1)
        with ExperimentExecutor(workers=1) as ex:
            injected = run_seeds(config(pm=50.0), (1, 2), executor=ex)
        for a, b in zip(direct, injected):
            assert a.throughputs() == b.throughputs()
            assert a.events_processed == b.events_processed


class TestCacheKeys:
    def test_fingerprint_stable_across_equal_configs(self):
        assert config_fingerprint(config()) == config_fingerprint(config())

    @pytest.mark.parametrize("change", [
        {"duration_us": SHORT + 1},
        {"seed": 2},
        {"payload_bytes": 256},
        {"protocol": PROTOCOL_80211},
        {"use_rts_cts": False},
        {"refuse_diagnosed": True},
    ])
    def test_fingerprint_sensitive_to_every_field(self, change):
        base = config_fingerprint(config())
        flipped = dataclasses.replace(config(), **change)
        assert config_fingerprint(flipped) != base

    def test_fingerprint_sensitive_to_topology(self):
        assert config_fingerprint(config()) != config_fingerprint(
            config(pm=50.0)
        )

    def test_code_version_invalidates_key(self, tmp_path, monkeypatch):
        cache = RunCache(tmp_path)
        key_now = cache.key_for(config())
        monkeypatch.setattr(cache_mod, "code_version", lambda: "other")
        assert cache.key_for(config()) != key_now

    def test_code_version_stamp_misses_cache(self, tmp_path, monkeypatch):
        cache = RunCache(tmp_path)
        with ExperimentExecutor(workers=1, cache=cache) as ex:
            ex.run([config()])
        monkeypatch.setattr(cache_mod, "code_version", lambda: "other")
        with ExperimentExecutor(workers=1, cache=cache) as ex:
            ex.run([config()])
            assert ex.cache_hits == 0
            assert ex.runs_executed == 1

    def test_unstable_policy_is_uncacheable(self):
        class AnonymousPolicy:
            misbehaving = False

        bad = config(policy_overrides={1: AnonymousPolicy()})
        with pytest.raises(UncacheableConfigError):
            config_fingerprint(bad)

    def test_uncacheable_config_still_runs(self, tmp_path):
        from repro.core.sender_policy import ConformingPolicy

        class AnonymousPolicy(ConformingPolicy):
            __repr__ = object.__repr__

        cache = RunCache(tmp_path)
        bad = config(policy_overrides={1: AnonymousPolicy()})
        with ExperimentExecutor(workers=1, cache=cache) as ex:
            first = ex.run([bad])
            second = ex.run([bad])
            assert ex.runs_executed == 2  # never cached, never deduped
        assert first[0].throughputs() == second[0].throughputs()
        assert cache.entries() == []


class TestCacheStore:
    def test_roundtrip_and_clear(self, tmp_path):
        cache = RunCache(tmp_path)
        with ExperimentExecutor(workers=1, cache=cache) as ex:
            [result] = ex.run([config()])
        hit = cache.get(config())
        assert hit is not None
        assert hit.throughputs() == result.throughputs()
        assert cache.stats()["entries"] == 1
        assert cache.clear() == 1
        assert cache.get(config()) is None

    def test_corrupt_entry_treated_as_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put(config(), run_seeds(config(), (1,), workers=1)[0])
        [entry] = cache.entries()
        entry.write_bytes(b"not a pickle")
        assert cache.get(config()) is None
        assert cache.entries() == []

    def test_active_cache_env_toggle(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert active_cache() is None
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert active_cache() is None
        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "runs"))
        cache = active_cache()
        assert isinstance(cache, RunCache)
        assert cache.directory == tmp_path / "runs"


class TestExecutor:
    def test_duplicate_configs_simulated_once(self):
        with ExperimentExecutor(workers=1) as ex:
            a, b = ex.run([config(), config()])
            assert ex.runs_executed == 1
            assert ex.dedup_hits == 1
        assert a.throughputs() == b.throughputs()

    def test_results_in_input_order(self):
        configs = [config().with_seed(s) for s in (3, 1, 2)]
        with ExperimentExecutor(workers=1) as ex:
            results = ex.run(configs)
        assert [r.config.seed for r in results] == [3, 1, 2]

    def test_closed_executor_rejects_runs(self):
        ex = ExperimentExecutor(workers=1)
        ex.close()
        with pytest.raises(RuntimeError):
            ex.run([config()])

    def test_batch_handles_slice_results(self):
        batch = TaskBatch()
        first = batch.add_seeds(config(), (1, 2))
        second = batch.add([config().with_seed(3)])
        batch.execute(workers=1)
        assert [r.config.seed for r in first.results] == [1, 2]
        assert [r.config.seed for r in second.results] == [3]

    def test_batch_rejects_double_execute(self):
        batch = TaskBatch()
        batch.add([config()])
        batch.execute(workers=1)
        with pytest.raises(RuntimeError):
            batch.execute(workers=1)
        with pytest.raises(RuntimeError):
            batch.add([config()])

    def test_handle_before_execute_rejected(self):
        batch = TaskBatch()
        handle = batch.add([config()])
        with pytest.raises(RuntimeError):
            handle.results


class TestProfiling:
    def test_profile_does_not_perturb_results(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        plain = run_seeds(config(pm=50.0), (1,), workers=1)[0]
        monkeypatch.setenv("REPRO_PROFILE", "1")
        profiled = run_seeds(config(pm=50.0), (1,), workers=1)[0]
        assert plain.throughputs() == profiled.throughputs()
        assert plain.events_processed == profiled.events_processed
        assert not plain.event_counts
        assert profiled.event_counts
        assert sum(profiled.event_counts.values()) == (
            profiled.events_processed
        )
        err = capsys.readouterr().err
        assert "ev/s" in err and "[profile]" in err


class TestDefaultWorkers:
    def test_env_unset_uses_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert default_workers() >= 1

    def test_valid_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert default_workers() == 4

    @pytest.mark.parametrize("bad", ["0", "-3", "abc", "2.5"])
    def test_invalid_env_rejected(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_WORKERS", bad)
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            default_workers()
