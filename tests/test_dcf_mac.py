"""Integration tests for the standard 802.11 DCF MAC."""

import pytest

from repro.core.sender_policy import PartialCountdownPolicy
from repro.mac.dcf import DcfMac

from tests.conftest import World


class TestSingleFlow:
    def test_backlogged_sender_delivers_packets(self):
        w = World()
        w.add_receiver(DcfMac, 0, (0.0, 0.0))
        w.add_sender(DcfMac, 1, (150.0, 0.0), dst=0)
        w.run(1_000_000)
        flow = w.collector.flows[1]
        assert flow.delivered_packets > 100
        assert flow.delivered_bytes == flow.delivered_packets * 512

    def test_throughput_close_to_channel_capacity(self):
        """One saturated flow: throughput near the protocol ceiling."""
        w = World()
        w.add_receiver(DcfMac, 0, (0.0, 0.0))
        w.add_sender(DcfMac, 1, (150.0, 0.0), dst=0)
        w.run(2_000_000)
        bps = w.collector.throughput_bps(1, 2_000_000)
        # 512B payload per ~3.0ms cycle at 2 Mbps: roughly 1.1-1.4 Mbps.
        assert 900_000 < bps < 1_600_000

    def test_sender_counters_consistent(self):
        w = World()
        w.add_receiver(DcfMac, 0, (0.0, 0.0))
        node = w.add_sender(DcfMac, 1, (150.0, 0.0), dst=0)
        w.run(500_000)
        mac = node.mac
        assert mac.rts_sent >= mac.packets_delivered
        assert mac.packets_dropped == 0  # clean channel, no contention

    def test_out_of_range_receiver_gets_nothing(self):
        w = World()
        w.add_receiver(DcfMac, 0, (0.0, 0.0))
        w.add_sender(DcfMac, 1, (900.0, 0.0), dst=0)  # beyond CS range
        w.run(500_000)
        assert w.collector.flows[1].delivered_packets == 0


class TestContention:
    def test_two_senders_share_roughly_equally(self):
        w = World()
        w.add_receiver(DcfMac, 0, (0.0, 0.0))
        w.add_sender(DcfMac, 1, (150.0, 0.0), dst=0)
        w.add_sender(DcfMac, 2, (-150.0, 0.0), dst=0)
        w.run(3_000_000)
        t1 = w.collector.throughput_bps(1, 3_000_000)
        t2 = w.collector.throughput_bps(2, 3_000_000)
        assert t1 > 0 and t2 > 0
        assert 0.5 < t1 / t2 < 2.0

    def test_total_throughput_conserved_under_contention(self):
        w = World()
        w.add_receiver(DcfMac, 0, (0.0, 0.0))
        for i in range(1, 5):
            w.add_sender(DcfMac, i, (150.0 * (-1) ** i, 150.0 * (i % 2)),
                         dst=0)
        w.run(2_000_000)
        total = sum(
            w.collector.throughput_bps(i, 2_000_000) for i in range(1, 5)
        )
        assert 700_000 < total < 1_500_000

    def test_retries_happen_under_contention(self):
        w = World()
        w.add_receiver(DcfMac, 0, (0.0, 0.0))
        nodes = [
            w.add_sender(DcfMac, i, (150.0 * (-1) ** i, 100.0 * i), dst=0)
            for i in range(1, 5)
        ]
        w.run(2_000_000)
        total_rts = sum(n.mac.rts_sent for n in nodes)
        total_delivered = sum(n.mac.packets_delivered for n in nodes)
        assert total_rts > total_delivered  # some collisions occurred


class TestMisbehaviorUnder80211:
    def test_partial_countdown_gains_throughput(self):
        w = World()
        w.add_receiver(DcfMac, 0, (0.0, 0.0))
        w.add_sender(DcfMac, 1, (150.0, 0.0), dst=0)
        w.add_sender(DcfMac, 2, (-150.0, 0.0), dst=0,
                     policy=PartialCountdownPolicy(80.0))
        w.run(3_000_000)
        honest = w.collector.throughput_bps(1, 3_000_000)
        cheater = w.collector.throughput_bps(2, 3_000_000)
        assert cheater > honest * 1.3


class TestHiddenTerminals:
    def test_hidden_senders_collide_at_receiver(self):
        """Two senders out of CS range of each other collide often."""
        w = World()
        w.add_receiver(DcfMac, 0, (0.0, 0.0))
        # 1200 m apart: mutually hidden, both within 600... keep both
        # in receive range of R (250 m) but out of sense range of each
        # other is impossible with these radii; use sense-range edges.
        n1 = w.add_sender(DcfMac, 1, (240.0, 0.0), dst=0)
        n2 = w.add_sender(DcfMac, 2, (-240.0, 0.0), dst=0)
        w.run(2_000_000)
        delivered = (
            w.collector.flows[1].delivered_packets
            + w.collector.flows[2].delivered_packets
        )
        assert delivered > 0  # they are 480 m apart: still sensed; sanity

    def test_truly_hidden_pair_still_makes_progress(self):
        w = World()
        # R halfway between two senders 1120 m apart: each 560 m from
        # the other (hidden), 280 m from R — outside the deterministic
        # 250 m receive range, so use 240 m per side with an offset R.
        w.add_receiver(DcfMac, 0, (0.0, 0.0))
        w.add_sender(DcfMac, 1, (245.0, 0.0), dst=0)
        w.add_sender(DcfMac, 2, (-245.0, 0.0), dst=0)
        w.run(2_000_000)
        total = (
            w.collector.flows[1].delivered_packets
            + w.collector.flows[2].delivered_packets
        )
        assert total > 50


class TestNavAndEifs:
    def test_overhearer_defers_via_nav(self):
        """A third node overhearing RTS/CTS must not collide mid-exchange."""
        w = World()
        w.add_receiver(DcfMac, 0, (0.0, 0.0))
        w.add_sender(DcfMac, 1, (150.0, 0.0), dst=0)
        w.add_sender(DcfMac, 2, (0.0, 150.0), dst=0)
        w.run(2_000_000)
        # With NAV + carrier sense the exchange succeeds at high rate:
        # delivered / RTS ratio should be reasonably high.
        delivered = sum(w.collector.flows[i].delivered_packets for i in (1, 2))
        rts = sum(n.mac.rts_sent for n in w.nodes if n.source is not None)
        assert delivered / rts > 0.7
