"""Scalar vs replica-batched execution: bit-identical by property.

The batch kernel (:mod:`repro.sim.batch`) promises that pooling the
replicas of a scenario changes *nothing* about any replica's results.
Rather than pinning a handful of golden values, these tests let
hypothesis pick the seed sets and assert full :class:`RunResult`
metric equality between ``run_scenario`` and ``run_scenario_batch``
for the two scenario families the paper leans on: an honest saturated
CSMA/CA cell, and an RTS/CTS cell containing a backoff cheater under
the CORRECT receiver.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.scenarios import (
    PROTOCOL_80211,
    PROTOCOL_CORRECT,
    ScenarioConfig,
    run_scenario,
)
from repro.net.topology import circle_topology
from repro.sim.vecrng import HAVE_NUMPY

if not HAVE_NUMPY:  # pragma: no cover - numpy ships with the toolchain
    pytest.skip("numpy unavailable", allow_module_level=True)

from repro.sim.batch import batchable, run_scenario_batch

#: Short horizon: equivalence is structural, not statistical — if the
#: kernels diverge at all they diverge within a few exchanges.
DURATION_US = 150_000

seed_sets = st.lists(
    st.integers(min_value=0, max_value=2**32 - 1),
    min_size=1, max_size=5, unique=True,
)


def _honest_csma(seed: int) -> ScenarioConfig:
    return ScenarioConfig(
        topology=circle_topology(4),
        protocol=PROTOCOL_80211,
        use_rts_cts=False,
        duration_us=DURATION_US,
        seed=seed,
    )


def _cheating_rts_cts(seed: int) -> ScenarioConfig:
    return ScenarioConfig(
        topology=circle_topology(4, misbehaving=(3,), pm_percent=70.0),
        protocol=PROTOCOL_CORRECT,
        use_rts_cts=True,
        duration_us=DURATION_US,
        seed=seed,
    )


def _assert_identical(scalar, batched):
    assert scalar.events_processed == batched.events_processed
    assert scalar.event_counts == batched.event_counts
    assert scalar.throughputs() == batched.throughputs()
    assert scalar.fairness_index == batched.fairness_index
    assert scalar.avg_throughput_bps == batched.avg_throughput_bps
    assert scalar.msb_throughput_bps == batched.msb_throughput_bps
    assert (scalar.correct_diagnosis_percent
            == batched.correct_diagnosis_percent)
    assert scalar.misdiagnosis_percent == batched.misdiagnosis_percent


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seeds=seed_sets)
def test_honest_csma_cell_bit_identical(seeds):
    configs = [_honest_csma(seed) for seed in seeds]
    batched = run_scenario_batch(configs)
    for config, batch_result in zip(configs, batched):
        _assert_identical(run_scenario(config), batch_result)


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seeds=seed_sets)
def test_cheating_rts_cts_cell_bit_identical(seeds):
    configs = [_cheating_rts_cts(seed) for seed in seeds]
    batched = run_scenario_batch(configs)
    for config, batch_result in zip(configs, batched):
        _assert_identical(run_scenario(config), batch_result)


def test_results_returned_in_input_order():
    configs = [_honest_csma(seed) for seed in (9, 4, 7)]
    for config, result in zip(configs, run_scenario_batch(configs)):
        assert result.config is config


def test_divergent_configs_rejected():
    with pytest.raises(ValueError, match="differ only in seed"):
        run_scenario_batch([_honest_csma(1), _cheating_rts_cts(2)])


def test_fault_injected_configs_are_not_batchable():
    from repro.faults import FaultProfile, FrameLossFault

    faulty = ScenarioConfig(
        topology=circle_topology(4),
        protocol=PROTOCOL_80211,
        duration_us=DURATION_US,
        seed=1,
        faults=FaultProfile(frame_loss=(FrameLossFault(rate=0.5),)),
    )
    assert not batchable(faulty)
    assert batchable(_honest_csma(1))
    with pytest.raises(ValueError, match="not batchable"):
        run_scenario_batch([faulty, faulty.with_seed(2)])


def test_executor_batch_path_matches_scalar(monkeypatch, tmp_path):
    from repro.experiments.executor import ExperimentExecutor

    configs = [_cheating_rts_cts(seed) for seed in (1, 2, 3)]
    monkeypatch.setenv("REPRO_BATCH", "1")
    with ExperimentExecutor(workers=1, cache=None) as executor:
        batched = executor.run(configs)
        assert executor.batched_runs == len(configs)
    monkeypatch.setenv("REPRO_BATCH", "0")
    with ExperimentExecutor(workers=1, cache=None) as executor:
        scalars = executor.run(configs)
        assert executor.batched_runs == 0
    for scalar, batch_result in zip(scalars, batched):
        _assert_identical(scalar, batch_result)
