"""Tests for the ASCII figure plotter."""

import pytest

from repro.experiments.figures import FigureResult
from repro.experiments.plots import MARKERS, render_plot


def sample_figure():
    fig = FigureResult("figX", "Sample", "PM", "Kbps")
    fig.add_point("up", 0.0, 0.0)
    fig.add_point("up", 50.0, 50.0)
    fig.add_point("up", 100.0, 100.0)
    fig.add_point("down", 0.0, 100.0)
    fig.add_point("down", 50.0, 50.0)
    fig.add_point("down", 100.0, 0.0)
    return fig


class TestRenderPlot:
    def test_contains_title_axes_and_legend(self):
        text = render_plot(sample_figure())
        assert "figX: Sample" in text
        assert "x: PM" in text
        assert "y: Kbps" in text
        assert "= up" in text
        assert "= down" in text

    def test_markers_assigned_in_order(self):
        text = render_plot(sample_figure())
        assert f"{MARKERS[0]} = up" in text
        assert f"{MARKERS[1]} = down" in text

    def test_extreme_points_land_on_borders(self):
        fig = sample_figure()
        text = render_plot(fig, width=40, height=10)
        rows = [line for line in text.splitlines() if "|" in line]
        assert len(rows) == 10
        top, bottom = rows[0], rows[-1]
        # "up" peaks at the top-right; "down" starts at the top-left.
        assert top.rstrip().endswith(MARKERS[0])
        assert MARKERS[1] in top
        assert MARKERS[0] in bottom or MARKERS[1] in bottom

    def test_empty_figure(self):
        fig = FigureResult("e", "Empty", "x", "y")
        assert "no data" in render_plot(fig)

    def test_flat_series_does_not_crash(self):
        fig = FigureResult("f", "Flat", "x", "y")
        for x in (0.0, 1.0, 2.0):
            fig.add_point("c", x, 5.0)
        text = render_plot(fig)
        assert "c" in text

    def test_too_small_area_rejected(self):
        with pytest.raises(ValueError):
            render_plot(sample_figure(), width=4, height=2)

    def test_y_axis_labels_show_range(self):
        text = render_plot(sample_figure())
        assert "100" in text
        assert "0" in text
