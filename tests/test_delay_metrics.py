"""Tests for the MAC access-delay metrics.

The paper frames selfish misbehavior as seeking "higher throughput or
lower delay"; these tests check that the delay accounting works and
that a backoff cheater indeed sees lower access delay under 802.11,
while the CORRECT penalties take that advantage away.
"""

import pytest

from repro.core.sender_policy import PartialCountdownPolicy
from repro.mac.correct import CorrectMac
from repro.mac.dcf import DcfMac
from repro.metrics.collector import MetricsCollector

from tests.conftest import World


class TestAccounting:
    def test_mean_delay_computed(self):
        c = MetricsCollector()
        c.on_sender_success(1, 0, attempts=1, time=100, delay_us=3000)
        c.on_sender_success(1, 0, attempts=3, time=200, delay_us=5000)
        assert c.mean_delay_us(1) == pytest.approx(4000.0)
        assert c.flows[1].mean_attempts == pytest.approx(2.0)

    def test_unknown_sender_zero(self):
        assert MetricsCollector().mean_delay_us(42) == 0.0

    def test_no_acks_zero(self):
        c = MetricsCollector()
        c.on_sender_drop(1, 0, 100)
        assert c.mean_delay_us(1) == 0.0
        assert c.flows[1].mean_attempts == 0.0


class TestDelayInSimulation:
    def test_delays_are_plausible(self):
        """A lone saturated sender's delay ~= one exchange cycle."""
        w = World()
        w.add_receiver(DcfMac, 0, (0.0, 0.0))
        w.add_sender(DcfMac, 1, (150.0, 0.0), dst=0)
        w.run(1_000_000)
        delay = w.collector.mean_delay_us(1)
        # DIFS + ~CWmin/2 backoff + four-way exchange: 3-4 ms.
        assert 2_500 < delay < 6_000

    def test_cheater_gets_lower_delay_under_80211(self):
        w = World(seed=3)
        w.add_receiver(DcfMac, 0, (0.0, 0.0))
        w.add_sender(DcfMac, 1, (150.0, 0.0), dst=0)
        w.add_sender(DcfMac, 2, (-150.0, 0.0), dst=0,
                     policy=PartialCountdownPolicy(80.0))
        w.run(3_000_000)
        assert w.collector.mean_delay_us(2) < w.collector.mean_delay_us(1)

    def test_correct_removes_delay_advantage(self):
        w = World(seed=3)
        w.add_receiver(CorrectMac, 0, (0.0, 0.0))
        w.add_sender(CorrectMac, 1, (150.0, 0.0), dst=0)
        w.add_sender(CorrectMac, 2, (-150.0, 0.0), dst=0,
                     policy=PartialCountdownPolicy(80.0))
        w.run(3_000_000)
        honest = w.collector.mean_delay_us(1)
        cheater = w.collector.mean_delay_us(2)
        assert cheater > 0.8 * honest

    def test_contention_increases_delay(self):
        lone = World(seed=4)
        lone.add_receiver(DcfMac, 0, (0.0, 0.0))
        lone.add_sender(DcfMac, 1, (150.0, 0.0), dst=0)
        lone.run(1_500_000)
        crowded = World(seed=4)
        crowded.add_receiver(DcfMac, 0, (0.0, 0.0))
        for i in range(1, 5):
            crowded.add_sender(
                DcfMac, i, (150.0 * (-1) ** i, 100.0 * i), dst=0
            )
        crowded.run(1_500_000)
        assert (crowded.collector.mean_delay_us(1)
                > lone.collector.mean_delay_us(1))
