"""Tests for the receiver-side SenderMonitor (protocol core)."""

import random

import pytest

from repro.core.backoff_function import g_assignment, retry_backoff
from repro.core.monitor import SenderMonitor
from repro.core.params import ProtocolConfig


def make_monitor(**config_kwargs) -> SenderMonitor:
    cfg = ProtocolConfig(**config_kwargs)
    return SenderMonitor(sender_id=3, config=cfg, rng=random.Random(1),
                         receiver_id=0)


class TestFirstContact:
    def test_first_packet_not_checked(self):
        mon = make_monitor()
        verdict = mon.on_rts(attempt=1, idle_slots_now=100)
        assert not verdict.checked
        assert verdict.deviation is None
        assert verdict.penalty == 0
        assert 0 <= verdict.assignment <= 31

    def test_assignment_becomes_current(self):
        mon = make_monitor()
        verdict = mon.on_rts(attempt=1, idle_slots_now=100)
        assert mon.current_assignment == verdict.assignment


class TestConformingFlow:
    def test_exact_wait_never_penalised(self):
        mon = make_monitor()
        idle = 0
        verdict = mon.on_rts(attempt=1, idle_slots_now=idle)
        for _ in range(20):
            mon.on_response_sent("ack", attempt=1, idle_slots_now=idle)
            idle += verdict.assignment  # sender waits exactly
            verdict = mon.on_rts(attempt=1, idle_slots_now=idle)
            assert verdict.checked
            assert not verdict.deviation.deviated
            assert verdict.penalty == 0
            assert not verdict.diagnosed

    def test_overwait_not_penalised(self):
        mon = make_monitor()
        verdict = mon.on_rts(attempt=1, idle_slots_now=0)
        mon.on_response_sent("ack", attempt=1, idle_slots_now=0)
        verdict2 = mon.on_rts(
            attempt=1, idle_slots_now=verdict.assignment + 50
        )
        assert not verdict2.deviation.deviated
        assert verdict2.deviation.difference < 0


class TestCheatingFlow:
    def test_shortfall_penalised(self):
        mon = make_monitor(alpha=0.9)
        verdict = mon.on_rts(attempt=1, idle_slots_now=0)
        mon.on_response_sent("ack", attempt=1, idle_slots_now=0)
        waited = max(int(verdict.assignment * 0.5) - 1, 0)
        verdict2 = mon.on_rts(attempt=1, idle_slots_now=waited)
        if verdict.assignment >= 10:
            assert verdict2.deviation.deviated
            assert verdict2.penalty > 0
            assert verdict2.assignment >= verdict2.penalty

    def test_persistent_cheat_diagnosed(self):
        mon = make_monitor(window=5, thresh=20)
        verdict = mon.on_rts(attempt=1, idle_slots_now=0)
        idle = 0
        diagnosed = False
        for _ in range(12):
            mon.on_response_sent("ack", attempt=1, idle_slots_now=idle)
            # waits nothing at all (PM = 100)
            verdict = mon.on_rts(attempt=1, idle_slots_now=idle)
            diagnosed = diagnosed or verdict.diagnosed
        assert diagnosed
        assert mon.is_misbehaving

    def test_penalty_capped(self):
        mon = make_monitor(penalty_cap_slots=40)
        mon.on_rts(attempt=1, idle_slots_now=0)
        idle = 0
        for _ in range(20):
            mon.on_response_sent("ack", attempt=1, idle_slots_now=idle)
            verdict = mon.on_rts(attempt=1, idle_slots_now=idle)
        assert verdict.penalty <= 40
        assert verdict.assignment <= 40 + 31


class TestRetransmissionReconstruction:
    def test_b_exp_includes_retry_stages_after_ack(self):
        """RTS with attempt 3 after an ACK: stages 1..3 are expected."""
        mon = make_monitor()
        v1 = mon.on_rts(attempt=1, idle_slots_now=0)
        mon.on_response_sent("ack", attempt=1, idle_slots_now=0)
        assigned = v1.assignment
        expected = assigned + sum(
            retry_backoff(assigned, mon.sender_id, i) for i in (2, 3)
        )
        v2 = mon.on_rts(attempt=3, idle_slots_now=expected)
        assert v2.deviation.b_exp == expected
        assert not v2.deviation.deviated

    def test_b_exp_after_cts_counts_only_new_stages(self):
        """After a CTS for attempt 2, an RTS(4) expects stages 3..4."""
        mon = make_monitor()
        v1 = mon.on_rts(attempt=1, idle_slots_now=0)
        assigned = v1.assignment
        mon.on_response_sent("cts", attempt=2, idle_slots_now=10)
        expected = (
            retry_backoff(assigned, mon.sender_id, 3)
            + retry_backoff(assigned, mon.sender_id, 4)
        )
        v2 = mon.on_rts(attempt=4, idle_slots_now=10 + expected)
        assert v2.deviation.b_exp == expected
        assert v2.deviation.b_act == expected
        assert not v2.deviation.deviated

    def test_attempt_regression_treated_as_new_packet(self):
        """Sender dropped its packet and restarted at attempt 1."""
        mon = make_monitor()
        v1 = mon.on_rts(attempt=1, idle_slots_now=0)
        mon.on_response_sent("cts", attempt=5, idle_slots_now=0)
        v2 = mon.on_rts(attempt=1, idle_slots_now=v1.assignment)
        # Expected = stage 1 only (fresh packet), measured vs the
        # current assignment; no crash, sane values.
        assert v2.deviation.b_exp >= 0

    def test_attempt_zero_rejected(self):
        mon = make_monitor()
        with pytest.raises(ValueError):
            mon.on_rts(attempt=0, idle_slots_now=0)

    def test_bad_response_kind_rejected(self):
        mon = make_monitor()
        with pytest.raises(ValueError):
            mon.on_response_sent("data", attempt=1, idle_slots_now=0)


class TestDeterministicG:
    def test_assignment_base_follows_g(self):
        mon = SenderMonitor(
            sender_id=3,
            config=ProtocolConfig(use_deterministic_g=True),
            rng=random.Random(2),
            receiver_id=9,
        )
        verdict = mon.on_rts(attempt=1, idle_slots_now=0, seq=17)
        assert verdict.assignment == g_assignment(9, 3, 17)

    def test_penalty_added_to_g_base(self):
        cfg = ProtocolConfig(
            use_deterministic_g=True, extra_penalty_factor=0.0,
            extra_penalty_slots=10,
        )
        mon = SenderMonitor(3, cfg, random.Random(2), receiver_id=9)
        mon.on_rts(attempt=1, idle_slots_now=0, seq=1)
        mon.on_response_sent("ack", attempt=1, idle_slots_now=0)
        verdict = mon.on_rts(attempt=1, idle_slots_now=0, seq=2)
        base = g_assignment(9, 3, 2)
        if verdict.deviation.deviated:
            assert verdict.assignment == base + verdict.penalty
        else:
            assert verdict.assignment == base
