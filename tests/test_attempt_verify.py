"""Tests for the intentional-RTS-drop attempt-number audit."""

import random

import pytest

from repro.core.attempt_verify import AttemptAuditor


def make_auditor(drop_probability=1.0, suspicion_threshold=0):
    return AttemptAuditor(
        random.Random(1),
        drop_probability=drop_probability,
        suspicion_threshold=suspicion_threshold,
    )


class TestDropDecision:
    def test_no_drops_before_suspicion_threshold(self):
        auditor = make_auditor(drop_probability=1.0, suspicion_threshold=5)
        for _ in range(4):
            assert not auditor.should_drop(7, attempt=1)
        assert auditor.should_drop(7, attempt=1)

    def test_zero_probability_never_drops(self):
        auditor = make_auditor(drop_probability=0.0)
        assert not any(auditor.should_drop(7, 1) for _ in range(100))

    def test_no_stacked_audits(self):
        auditor = make_auditor()
        assert auditor.should_drop(7, attempt=2)
        # While an audit is pending, never drop again.
        assert not auditor.should_drop(7, attempt=3)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AttemptAuditor(random.Random(1), drop_probability=2.0)
        with pytest.raises(ValueError):
            AttemptAuditor(random.Random(1), suspicion_threshold=-1)


class TestVerdicts:
    def test_honest_increment_passes(self):
        auditor = make_auditor()
        auditor.should_drop(7, attempt=2)
        outcome = auditor.on_next_rts(7, attempt=3)
        assert outcome is not None
        assert not outcome.proof_of_misbehavior
        assert not auditor.is_proven(7)

    def test_failure_to_increment_is_proof(self):
        """'Even a single failure ... is an immediate proof.'"""
        auditor = make_auditor()
        auditor.should_drop(7, attempt=2)
        outcome = auditor.on_next_rts(7, attempt=2)
        assert outcome.proof_of_misbehavior
        assert auditor.is_proven(7)

    def test_attempt_regression_is_proof(self):
        auditor = make_auditor()
        auditor.should_drop(7, attempt=3)
        outcome = auditor.on_next_rts(7, attempt=1)
        assert outcome.proof_of_misbehavior

    def test_higher_than_expected_is_not_proof(self):
        """Extra collisions between the drop and the retry are fine."""
        auditor = make_auditor()
        auditor.should_drop(7, attempt=2)
        outcome = auditor.on_next_rts(7, attempt=5)
        assert not outcome.proof_of_misbehavior

    def test_no_pending_audit_returns_none(self):
        auditor = make_auditor()
        assert auditor.on_next_rts(7, attempt=1) is None

    def test_retry_limit_reset_tolerated(self):
        """A drop at the retry limit may legitimately reset to 1."""
        auditor = make_auditor()
        auditor.should_drop(7, attempt=7)
        outcome = auditor.on_next_rts(7, attempt=1)
        assert not outcome.proof_of_misbehavior

    def test_audit_counters(self):
        auditor = make_auditor()
        auditor.should_drop(7, attempt=1)
        auditor.on_next_rts(7, attempt=2)
        assert auditor.drops_issued == 1
        assert auditor.audits_completed == 1

    def test_per_sender_isolation(self):
        auditor = make_auditor()
        auditor.should_drop(7, attempt=2)
        # Sender 8's RTS does not resolve sender 7's audit.
        assert auditor.on_next_rts(8, attempt=1) is None
        outcome = auditor.on_next_rts(7, attempt=3)
        assert outcome is not None
