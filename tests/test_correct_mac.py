"""Integration tests for the modified (CORRECT) MAC."""

import pytest

from repro.core.params import ProtocolConfig
from repro.core.sender_policy import (
    AttemptLyingPolicy,
    PartialCountdownPolicy,
)
from repro.mac.correct import CorrectMac

from tests.conftest import World


def two_node_world(**sender_kwargs):
    w = World()
    w.add_receiver(CorrectMac, 0, (0.0, 0.0))
    w.add_sender(CorrectMac, 1, (150.0, 0.0), dst=0, **sender_kwargs)
    return w


class TestAssignmentRoundTrip:
    def test_sender_adopts_receiver_assignment(self):
        w = two_node_world()
        w.run(500_000)
        receiver = w.nodes[0].mac
        sender = w.nodes[1].mac
        monitor = receiver.monitor_for(1)
        # The sender's stored assignment equals the monitor's current one.
        assert sender._assignments.get(0) == monitor.current_assignment

    def test_honest_sender_rarely_penalised(self):
        w = two_node_world()
        w.run(2_000_000)
        stats = w.collector.flows[1]
        assert stats.delivered_packets > 200
        assert stats.deviations <= stats.delivered_packets * 0.05
        assert stats.diagnosed_packets == 0

    def test_honest_throughput_matches_80211_closely(self):
        from repro.mac.dcf import DcfMac
        w1 = World(seed=9)
        w1.add_receiver(DcfMac, 0, (0.0, 0.0))
        w1.add_sender(DcfMac, 1, (150.0, 0.0), dst=0)
        w1.run(2_000_000)
        w2 = World(seed=9)
        w2.add_receiver(CorrectMac, 0, (0.0, 0.0))
        w2.add_sender(CorrectMac, 1, (150.0, 0.0), dst=0)
        w2.run(2_000_000)
        t_80211 = w1.collector.throughput_bps(1, 2_000_000)
        t_correct = w2.collector.throughput_bps(1, 2_000_000)
        assert abs(t_correct - t_80211) / t_80211 < 0.1


class TestCheaterHandling:
    def test_full_cheat_diagnosed(self):
        w = two_node_world(policy=PartialCountdownPolicy(100.0))
        w.run(1_000_000)
        receiver = w.nodes[0].mac
        assert receiver.monitor_for(1).is_misbehaving
        stats = w.collector.flows[1]
        assert stats.diagnosed_packets > stats.delivered_packets * 0.8

    def test_moderate_cheat_penalised(self):
        w = two_node_world(policy=PartialCountdownPolicy(60.0))
        w.run(1_000_000)
        stats = w.collector.flows[1]
        assert stats.deviations > 0
        assert stats.penalty_slots > 0

    def test_correction_restrains_cheater_under_contention(self):
        """The headline: with CORRECT the cheater gains little."""
        w = World(seed=5)
        w.add_receiver(CorrectMac, 0, (0.0, 0.0))
        w.add_sender(CorrectMac, 1, (150.0, 0.0), dst=0)
        w.add_sender(CorrectMac, 2, (-150.0, 0.0), dst=0)
        w.add_sender(CorrectMac, 3, (0.0, 150.0), dst=0,
                     policy=PartialCountdownPolicy(60.0))
        w.run(4_000_000)
        honest = [w.collector.throughput_bps(i, 4_000_000) for i in (1, 2)]
        cheat = w.collector.throughput_bps(3, 4_000_000)
        avg_honest = sum(honest) / 2
        assert cheat < avg_honest * 1.5

    def test_refuse_diagnosed_starves_cheater(self):
        w = World(seed=6)
        w.add_receiver(CorrectMac, 0, (0.0, 0.0), refuse_diagnosed=True)
        w.add_sender(CorrectMac, 1, (150.0, 0.0), dst=0)
        w.add_sender(
            CorrectMac, 2, (-150.0, 0.0), dst=0,
            policy=PartialCountdownPolicy(100.0),
        )
        w.run(3_000_000)
        honest = w.collector.throughput_bps(1, 3_000_000)
        cheat = w.collector.throughput_bps(2, 3_000_000)
        # Once diagnosed, the cheater gets no CTS: throughput collapses.
        assert cheat < honest * 0.5


class TestAttemptAudit:
    def test_attempt_liar_proven_by_audit(self):
        w = World(seed=7)
        w.add_receiver(CorrectMac, 0, (0.0, 0.0), enable_attempt_audit=True)
        w.add_sender(CorrectMac, 1, (150.0, 0.0), dst=0,
                     policy=AttemptLyingPolicy(50.0))
        # Crank the audit so the short test reliably probes.
        receiver = w.nodes[0].mac
        receiver.attempt_auditor.drop_probability = 0.2
        receiver.attempt_auditor.suspicion_threshold = 3
        w.run(2_000_000)
        assert receiver.attempt_auditor.drops_issued > 0
        assert receiver.attempt_auditor.is_proven(1)

    def test_honest_sender_survives_audits(self):
        w = World(seed=8)
        w.add_receiver(CorrectMac, 0, (0.0, 0.0), enable_attempt_audit=True)
        w.add_sender(CorrectMac, 1, (150.0, 0.0), dst=0)
        receiver = w.nodes[0].mac
        receiver.attempt_auditor.drop_probability = 0.2
        receiver.attempt_auditor.suspicion_threshold = 3
        w.run(2_000_000)
        assert receiver.attempt_auditor.drops_issued > 0
        assert not receiver.attempt_auditor.is_proven(1)
        # Audited drops cost little throughput.
        assert w.collector.flows[1].delivered_packets > 200


class TestReceiverAudit:
    def test_g_based_assignments_pass_sender_audit(self):
        cfg = ProtocolConfig(use_deterministic_g=True)
        w = World(seed=9)
        w.add_receiver(CorrectMac, 0, (0.0, 0.0), config=cfg)
        w.add_sender(
            CorrectMac, 1, (150.0, 0.0), dst=0,
            config=cfg, audit_sender_assignments=True,
        )
        w.run(1_000_000)
        sender = w.nodes[1].mac
        auditor = sender.receiver_auditor_for(0)
        assert auditor is not None
        assert auditor.packets_audited > 50
        assert auditor.violations == 0
        assert w.collector.receiver_audit_events == []
