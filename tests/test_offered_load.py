"""Behaviour below saturation: CBR flows that do not fill the channel.

The TWO-FLOW interferers are 500 Kbps CBR flows; these tests check the
unsaturated regime works: goodput tracks offered load, queues stay
shallow, and delays stay near one exchange time.
"""

import pytest

from repro.mac.dcf import DcfMac
from repro.net.node import build_node
from repro.net.traffic import CbrSource

from tests.conftest import World


def cbr_world(rate_bps, seconds=2, seed=31):
    w = World(seed=seed)
    w.add_receiver(DcfMac, 0, (0.0, 0.0))
    mac = DcfMac(w.sim, w.medium, 1, w.registry, w.collector,
                 payload_bytes=512)
    source = CbrSource(w.sim, dst=0, rate_bps=rate_bps, payload_bytes=512)
    node = build_node(w.medium, mac, (150.0, 0.0), source)
    w.nodes.append(node)
    w.run(seconds * 1_000_000)
    return w, source


class TestUnsaturated:
    def test_goodput_matches_offered_load(self):
        w, _ = cbr_world(rate_bps=500_000)
        goodput = w.collector.throughput_bps(1, 2_000_000)
        assert goodput == pytest.approx(500_000, rel=0.05)

    def test_queue_stays_shallow(self):
        _, source = cbr_world(rate_bps=500_000)
        assert source.queue_depth <= 2
        assert source.source_drops == 0

    def test_delay_near_single_exchange(self):
        w, _ = cbr_world(rate_bps=200_000)
        delay = w.collector.mean_delay_us(1)
        # One uncontended exchange: ~3 ms; unsaturated flow should be
        # close to that, far below queueing-dominated delays.
        assert delay < 8_000

    def test_overload_drops_at_source(self):
        # 3 Mbps offered on a 2 Mbps channel: the queue caps and drops.
        _, source = cbr_world(rate_bps=3_000_000)
        assert source.source_drops > 0

    def test_goodput_saturates_at_mac_capacity(self):
        w, _ = cbr_world(rate_bps=3_000_000)
        goodput = w.collector.throughput_bps(1, 2_000_000)
        assert 900_000 < goodput < 1_500_000
