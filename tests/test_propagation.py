"""Unit and property tests for the shadowing propagation model."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.propagation import (
    LinkProbabilities,
    ShadowingModel,
    distance,
    normal_cdf,
    normal_quantile,
)


class TestNormalHelpers:
    def test_cdf_at_zero(self):
        assert normal_cdf(0.0) == pytest.approx(0.5)

    def test_cdf_symmetry(self):
        assert normal_cdf(1.3) + normal_cdf(-1.3) == pytest.approx(1.0)

    def test_cdf_known_value(self):
        assert normal_cdf(1.959964) == pytest.approx(0.975, abs=1e-4)

    @given(st.floats(min_value=0.001, max_value=0.999))
    @settings(max_examples=100)
    def test_quantile_inverts_cdf(self, p):
        assert normal_cdf(normal_quantile(p)) == pytest.approx(p, abs=1e-6)

    def test_quantile_bounds(self):
        with pytest.raises(ValueError):
            normal_quantile(0.0)
        with pytest.raises(ValueError):
            normal_quantile(1.0)


class TestCalibration:
    """The paper's two calibration points pin the thresholds."""

    def test_receive_probability_is_half_at_250m(self):
        model = ShadowingModel()
        assert model.receive_probability(250.0) == pytest.approx(0.5)

    def test_sense_probability_is_half_at_550m(self):
        model = ShadowingModel()
        assert model.sense_probability(550.0) == pytest.approx(0.5)

    def test_receive_nearly_sure_at_150m(self):
        # The circle senders sit 150 m from R: effectively reliable.
        model = ShadowingModel()
        assert model.receive_probability(150.0) > 0.9999

    def test_sense_rare_at_650m(self):
        # The far interferer from the far side of the circle.
        model = ShadowingModel()
        assert model.sense_probability(650.0) < 0.10

    def test_interferer_sensed_strongly_at_receiver(self):
        # A at 500 m from R: "sensed with high probability by R".
        model = ShadowingModel()
        assert 0.7 < model.sense_probability(500.0) < 0.9


class TestMonotonicity:
    @given(st.floats(min_value=1.0, max_value=2000.0),
           st.floats(min_value=1.0, max_value=2000.0))
    @settings(max_examples=100)
    def test_probabilities_decrease_with_distance(self, d1, d2):
        model = ShadowingModel()
        lo, hi = sorted((d1, d2))
        assert model.receive_probability(lo) >= model.receive_probability(hi)
        assert model.sense_probability(lo) >= model.sense_probability(hi)

    @given(st.floats(min_value=1.0, max_value=5000.0))
    @settings(max_examples=100)
    def test_sense_at_least_receive(self, d):
        # Carrier sensing is strictly more permissive than decoding.
        model = ShadowingModel()
        assert model.sense_probability(d) >= model.receive_probability(d)

    def test_zero_distance_rejected(self):
        with pytest.raises(ValueError):
            ShadowingModel().mean_path_gain_db(0.0)


class TestZeroSigma:
    """sigma = 0 degenerates to deterministic range thresholds."""

    def test_step_function(self):
        model = ShadowingModel(sigma_db=0.0)
        assert model.receive_probability(249.0) == 1.0
        assert model.receive_probability(251.0) == 0.0
        assert model.sense_probability(549.0) == 1.0
        assert model.sense_probability(551.0) == 0.0


class TestClassification:
    def test_strong_marginal_negligible(self):
        model = ShadowingModel()
        assert model.link(100.0).classify() == "strong"
        assert model.link(550.0).classify() == "marginal"
        assert model.link(5000.0).classify() == "negligible"

    def test_classify_boundaries_consistent(self):
        eps = LinkProbabilities.EPS
        strong = LinkProbabilities(1.0, 1.0, 1.0)
        assert strong.classify() == "strong"
        negligible = LinkProbabilities(1.0, 0.0, eps / 2)
        assert negligible.classify() == "negligible"


class TestDistance:
    def test_euclidean(self):
        assert distance((0.0, 0.0), (3.0, 4.0)) == pytest.approx(5.0)

    @given(
        st.tuples(st.floats(-1e4, 1e4), st.floats(-1e4, 1e4)),
        st.tuples(st.floats(-1e4, 1e4), st.floats(-1e4, 1e4)),
    )
    @settings(max_examples=50)
    def test_symmetry(self, a, b):
        assert distance(a, b) == pytest.approx(distance(b, a))


class TestPathLossExponent:
    def test_beta_two_free_space(self):
        model = ShadowingModel(path_loss_exponent=2.0)
        # Doubling the distance costs 6.02 dB at beta=2.
        delta = model.mean_path_gain_db(100.0) - model.mean_path_gain_db(200.0)
        assert delta == pytest.approx(20.0 * math.log10(2.0), abs=1e-9)

    def test_higher_beta_decays_faster(self):
        free = ShadowingModel(path_loss_exponent=2.0)
        urban = ShadowingModel(path_loss_exponent=4.0)
        assert urban.mean_path_gain_db(300.0) < free.mean_path_gain_db(300.0)
