"""Tests for traffic sources."""

import pytest

from repro.net.traffic import BackloggedSource, CbrSource
from repro.sim.engine import Simulator


class FakeMac:
    def __init__(self):
        self.wakes = 0

    def wake(self):
        self.wakes += 1


class TestBacklogged:
    def test_always_has_a_packet(self):
        src = BackloggedSource(dst=5, payload_bytes=512)
        for i in range(1, 11):
            packet = src.next_packet(now=i * 100)
            assert packet is not None
            assert packet.dst == 5
            assert packet.payload_bytes == 512
            assert packet.seq == i
        assert src.packets_issued == 10

    def test_packet_done_is_noop(self):
        src = BackloggedSource(dst=1)
        src.packet_done(100)  # must not raise


class TestCbr:
    def test_interval_from_rate(self):
        sim = Simulator()
        src = CbrSource(sim, dst=1, rate_bps=500_000, payload_bytes=512)
        # 512 * 8 bits at 500 kbps -> 8192 us.
        assert src.interval_us == 8192

    def test_arrivals_follow_schedule(self):
        sim = Simulator()
        src = CbrSource(sim, dst=1, rate_bps=500_000, payload_bytes=512)
        sim.run(until=8192 * 3 + 1)
        assert src.packets_generated == 4  # t = 0, 8192, 16384, 24576

    def test_empty_queue_returns_none(self):
        sim = Simulator()
        src = CbrSource(sim, dst=1, rate_bps=500_000, start_us=100)
        assert src.next_packet(0) is None

    def test_wake_on_empty_to_busy_edge(self):
        sim = Simulator()
        src = CbrSource(sim, dst=1, rate_bps=500_000)
        mac = FakeMac()
        src.attach(mac)
        sim.run(until=1)
        assert mac.wakes == 1
        # Second arrival while queue non-empty: no extra wake.
        sim.run(until=8193)
        assert mac.wakes == 1
        # Drain, then the next arrival wakes again.
        src.next_packet(8200)
        src.next_packet(8200)
        assert src.queue_depth == 0
        sim.run(until=16385)
        assert mac.wakes == 2

    def test_queue_cap_drops_at_source(self):
        sim = Simulator()
        src = CbrSource(sim, dst=1, rate_bps=2_000_000, max_queue=4)
        sim.run(until=2048 * 20)
        assert src.queue_depth == 4
        assert src.source_drops > 0

    def test_fifo_order(self):
        sim = Simulator()
        src = CbrSource(sim, dst=1, rate_bps=500_000)
        sim.run(until=8192 * 2 + 1)
        first = src.next_packet(20000)
        second = src.next_packet(20000)
        assert first.seq < second.seq

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            CbrSource(Simulator(), dst=1, rate_bps=0)
