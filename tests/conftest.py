"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.metrics.collector import MetricsCollector
from repro.net.node import build_node
from repro.net.traffic import BackloggedSource
from repro.phy.constants import PhyTimings
from repro.phy.medium import Medium
from repro.phy.propagation import ShadowingModel
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry


@pytest.fixture
def sim():
    """A fresh event kernel."""
    return Simulator()


@pytest.fixture
def registry():
    """Deterministic RNG registry."""
    return RngRegistry(42)


@pytest.fixture
def rng():
    """A plain seeded random stream."""
    return random.Random(42)


class World:
    """A small wired-up simulation world for MAC integration tests.

    Builds a kernel, a medium (optionally with zero shadowing noise so
    links are deterministic), and helpers for adding nodes.
    """

    def __init__(self, seed: int = 42, sigma_db: float = 0.0):
        self.sim = Simulator()
        self.registry = RngRegistry(seed)
        # sigma 0 => links are deterministic step functions of range:
        # received iff d <= 250 m, sensed iff d <= 550 m.
        self.model = ShadowingModel(sigma_db=sigma_db)
        self.medium = Medium(
            self.sim, self.model, rng=self.registry.stream("shadowing"),
            timings=PhyTimings(),
        )
        self.collector = MetricsCollector()
        self.nodes = []

    def add_sender(self, mac_cls, node_id, position, dst,
                   payload_bytes=512, **mac_kwargs):
        mac = mac_cls(
            self.sim, self.medium, node_id, self.registry, self.collector,
            payload_bytes=payload_bytes, **mac_kwargs,
        )
        source = BackloggedSource(dst, payload_bytes)
        node = build_node(self.medium, mac, position, source)
        self.nodes.append(node)
        return node

    def add_receiver(self, mac_cls, node_id, position, **mac_kwargs):
        mac = mac_cls(
            self.sim, self.medium, node_id, self.registry, self.collector,
            **mac_kwargs,
        )
        node = build_node(self.medium, mac, position)
        self.nodes.append(node)
        return node

    def run(self, duration_us: int):
        for node in self.nodes:
            node.start()
        self.sim.run(until=duration_us)


@pytest.fixture
def world():
    """Deterministic-link world factory."""
    return World()
