"""Tests for basic access (DATA/ACK, no RTS/CTS).

The paper: "We assume RTS/CTS exchange is used before data
transmission.  However, the proposed scheme can be applied even when
RTS/CTS exchange is not used."  In basic access the attempt number
travels in the DATA header and the assignment in the ACK.
"""

import pytest

from repro.core.sender_policy import PartialCountdownPolicy
from repro.experiments.scenarios import (
    PROTOCOL_CORRECT,
    ScenarioConfig,
    run_scenario,
)
from repro.mac.correct import CorrectMac
from repro.mac.dcf import DcfMac
from repro.mac.frames import FrameKind
from repro.net.topology import circle_topology
from repro.sim.trace import TraceLog

from tests.conftest import World


def basic_world(mac_cls, n_senders=2, cheat_pm=None, seed=41, trace=False):
    import math

    w = World(seed=seed)
    if trace:
        w.medium.trace = TraceLog()
    w.add_receiver(mac_cls, 0, (0.0, 0.0), use_rts_cts=False)
    for i in range(1, n_senders + 1):
        angle = 2 * math.pi * i / n_senders
        kwargs = {"use_rts_cts": False}
        if cheat_pm is not None and i == 1:
            kwargs["policy"] = PartialCountdownPolicy(cheat_pm)
        w.add_sender(
            mac_cls, i,
            (150.0 * math.cos(angle), 150.0 * math.sin(angle)),
            dst=0, **kwargs,
        )
    return w


class TestBasicAccessDcf:
    def test_no_rts_cts_frames_on_air(self):
        w = basic_world(DcfMac, trace=True)
        w.run(500_000)
        kinds = {e.data["frame_kind"] for e in w.medium.trace
                 if e.kind == "tx_start"}
        assert kinds == {"data", "ack"}

    def test_delivers_packets(self):
        w = basic_world(DcfMac)
        w.run(1_000_000)
        assert w.collector.flows[1].delivered_packets > 100

    def test_higher_goodput_than_four_way(self):
        """Without hidden terminals, skipping RTS/CTS saves overhead."""
        basic = basic_world(DcfMac, n_senders=1, seed=43)
        basic.run(1_000_000)
        four_way = World(seed=43)
        four_way.add_receiver(DcfMac, 0, (0.0, 0.0))
        four_way.add_sender(DcfMac, 1, (150.0, 0.0), dst=0)
        four_way.run(1_000_000)
        assert (basic.collector.throughput_bps(1, 1_000_000)
                > four_way.collector.throughput_bps(1, 1_000_000))

    def test_contention_still_shares(self):
        w = basic_world(DcfMac, n_senders=3)
        w.run(2_000_000)
        tps = [w.collector.throughput_bps(i, 2_000_000) for i in (1, 2, 3)]
        assert all(t > 0 for t in tps)
        assert max(tps) < 3 * min(tps)


class TestBasicAccessCorrect:
    def test_assignment_travels_in_ack(self):
        w = basic_world(CorrectMac)
        w.run(500_000)
        sender = w.nodes[1].mac
        receiver = w.nodes[0].mac
        assert (sender._assignments.get(0)
                == receiver.monitor_for(1).current_assignment)

    def test_honest_sender_clean(self):
        w = basic_world(CorrectMac)
        w.run(2_000_000)
        stats = w.collector.flows[1]
        assert stats.delivered_packets > 200
        assert stats.deviations <= stats.delivered_packets * 0.05
        assert stats.diagnosed_packets == 0

    def test_cheater_detected_and_restrained(self):
        w = basic_world(CorrectMac, n_senders=3, cheat_pm=70.0, seed=44)
        w.run(3_000_000)
        stats = w.collector.flows[1]
        assert stats.deviations > 0
        assert stats.diagnosed_packets > stats.delivered_packets * 0.3
        cheat = w.collector.throughput_bps(1, 3_000_000)
        honest = (w.collector.throughput_bps(2, 3_000_000)
                  + w.collector.throughput_bps(3, 3_000_000)) / 2
        assert cheat < 1.5 * honest

    def test_scenario_config_plumbs_flag(self):
        topo = circle_topology(2, misbehaving=(1,), pm_percent=100.0)
        result = run_scenario(ScenarioConfig(
            topology=topo, protocol=PROTOCOL_CORRECT,
            duration_us=800_000, seed=2, use_rts_cts=False,
        ))
        assert result.correct_diagnosis_percent > 50.0

    def test_duplicate_data_reacked_without_window_update(self):
        """Direct duplicate handling on the receiver."""
        w = basic_world(CorrectMac)
        w.run(300_000)
        receiver = w.nodes[0].mac
        monitor = receiver.monitor_for(1)
        observed_before = monitor.packets_observed
        resp = receiver._make_data_response(
            _fake_data(src=1, seq=w.nodes[1].mac._seq), duplicate=True
        )
        assert resp is not None
        assert resp.extra["duplicate"]
        assert monitor.packets_observed == observed_before


def _fake_data(src, seq):
    from repro.mac.frames import Frame, data_size

    return Frame(
        kind=FrameKind.DATA, src=src, dst=0,
        size_bytes=data_size(512), duration_us=258,
        seq=seq, attempt=1, payload_bytes=512,
    )
