"""Per-rule fixtures for the streaming conformance checker.

Every rule gets a conforming and a minimally-violating hand-built
trace; the three historical checker bugs (whole-trace access-mode
inference, NAV flagging SIFS responses, turnaround horizon overwrite)
each get a regression fixture that failed before the fix; and the
replay layer plus ``python -m repro check`` are exercised end to end.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.backoff_function import retry_backoff
from repro.experiments.scenarios import ScenarioConfig
from repro.net.topology import circle_topology
from repro.phy.constants import ACK_SIZE_BYTES, PhyTimings
from repro.sim.trace import TraceLog
from repro.validation import ProtocolChecker, replay_config, run_matrix
from repro.validation.checker import RULE_NAMES

T = PhyTimings()
SIFS = T.sifs_us
DIFS = T.difs_us
EIFS = T.eifs_us
ACK_AIR = T.frame_airtime_us(ACK_SIZE_BYTES)


def check(log: TraceLog):
    return ProtocolChecker().check(log)


# ----------------------------------------------------------------------
# half-duplex / min-turnaround (incl. the horizon-overwrite bugfix)
# ----------------------------------------------------------------------
class TestTransmissionSpacing:
    def test_clean_spacing_passes(self):
        log = TraceLog()
        log.record(0, "tx_start", 1, frame_kind="rts", dst=2, end=100,
                   duration_us=0)
        log.record(100 + SIFS, "tx_start", 1, frame_kind="rts", dst=2,
                   end=300, duration_us=0)
        assert check(log).ok

    def test_overlap_flags_half_duplex(self):
        log = TraceLog()
        log.record(0, "tx_start", 1, frame_kind="rts", dst=2, end=100,
                   duration_us=0)
        log.record(50, "tx_start", 1, frame_kind="rts", dst=2, end=200,
                   duration_us=0)
        assert check(log).by_rule().get("half-duplex") == 1

    def test_short_gap_flags_turnaround(self):
        log = TraceLog()
        log.record(0, "tx_start", 1, frame_kind="rts", dst=2, end=100,
                   duration_us=0)
        log.record(100 + SIFS - 1, "tx_start", 1, frame_kind="rts", dst=2,
                   end=300, duration_us=0)
        assert check(log).by_rule().get("min-turnaround") == 1

    def test_turnaround_not_masked_by_shorter_later_tx(self):
        """Regression: the turnaround horizon must be the running max
        of transmission ends.  The old checker overwrote it with each
        frame's end, so a short overlapping frame (itself a
        half-duplex violation) reset the horizon and hid the
        turnaround violation of the next frame."""
        log = TraceLog()
        log.record(0, "tx_start", 1, frame_kind="data", dst=2, end=500,
                   duration_us=0)
        # Shorter frame inside the first: half-duplex violation, and
        # its early end (100) must not shrink the horizon (500).
        log.record(50, "tx_start", 1, frame_kind="rts", dst=2, end=100,
                   duration_us=0)
        log.record(504, "tx_start", 1, frame_kind="rts", dst=2, end=700,
                   duration_us=0)
        by_rule = check(log).by_rule()
        assert by_rule.get("half-duplex") == 1
        assert by_rule.get("min-turnaround") == 1


# ----------------------------------------------------------------------
# Response rules (incl. the per-flow access-mode bugfix)
# ----------------------------------------------------------------------
def _four_way(log: TraceLog, src: int, dst: int, t0: int) -> int:
    """Append one conforming RTS/CTS/DATA/ACK exchange; returns end."""
    log.record(t0, "tx_start", src, frame_kind="rts", dst=dst,
               end=t0 + 100, duration_us=0)
    log.record(t0 + 100, "decode", dst, src=src, frame_src=src,
               frame_kind="rts", dst=dst, duration_us=0)
    cts = t0 + 100 + SIFS
    log.record(cts, "tx_start", dst, frame_kind="cts", dst=src,
               end=cts + 40, duration_us=0)
    log.record(cts + 40, "decode", src, src=dst, frame_src=dst,
               frame_kind="cts", dst=src, duration_us=0)
    data = cts + 40 + SIFS
    log.record(data, "tx_start", src, frame_kind="data", dst=dst,
               end=data + 200, duration_us=0)
    log.record(data + 200, "decode", dst, src=src, frame_src=src,
               frame_kind="data", dst=dst, duration_us=0)
    ack = data + 200 + SIFS
    log.record(ack, "tx_start", dst, frame_kind="ack", dst=src,
               end=ack + 30, duration_us=0)
    log.record(ack + 30, "decode", src, src=dst, frame_src=dst,
               frame_kind="ack", dst=src, duration_us=0)
    return ack + 30


class TestResponseRules:
    def test_conforming_four_way_passes(self):
        log = TraceLog()
        _four_way(log, 1, 2, 0)
        assert check(log).ok

    def test_orphan_cts_flagged(self):
        log = TraceLog()
        log.record(500, "tx_start", 2, frame_kind="cts", dst=1, end=540,
                   duration_us=0)
        assert check(log).by_rule().get("cts-follows-rts") == 1

    def test_orphan_ack_flagged(self):
        log = TraceLog()
        log.record(500, "tx_start", 2, frame_kind="ack", dst=1, end=530,
                   duration_us=0)
        assert check(log).by_rule().get("ack-follows-data") == 1

    def test_mislaid_data_on_rts_flow_flagged(self):
        log = TraceLog()
        # The 1->2 flow uses RTS/CTS, so a DATA not SIFS-after-CTS is
        # a sequencing violation.
        log.record(0, "tx_start", 1, frame_kind="rts", dst=2, end=100,
                   duration_us=0)
        log.record(1000, "tx_start", 1, frame_kind="data", dst=2,
                   end=1200, duration_us=0)
        assert check(log).by_rule().get("data-follows-cts") == 1

    def test_mixed_access_modes_no_false_positive(self):
        """Regression: access mode is inferred per (src, dst) flow.
        The old checker toggled DATA checking on whether *any* RTS
        appeared in the whole trace, so one RTS/CTS flow made every
        basic-access DATA in the cell a false 'data-follows-cts'."""
        log = TraceLog()
        end = _four_way(log, 3, 2, 0)           # RTS/CTS flow 3->2
        t0 = end + 1000
        # Basic-access flow 1->2: DATA straight after backoff, ACKed.
        log.record(t0, "tx_start", 1, frame_kind="data", dst=2,
                   end=t0 + 200, duration_us=0)
        log.record(t0 + 200, "decode", 2, src=1, frame_src=1,
                   frame_kind="data", dst=2, duration_us=0)
        log.record(t0 + 200 + SIFS, "tx_start", 2, frame_kind="ack",
                   dst=1, end=t0 + 230 + SIFS, duration_us=0)
        report = check(log)
        assert report.ok, report.violations

    def test_spoofed_source_matches_claimed_address(self):
        # Node 9 transmits a DATA claiming src=1; the responder ACKs
        # toward 1 — the checker must match on the claimed address.
        log = TraceLog()
        log.record(100, "decode", 2, src=9, frame_src=1,
                   frame_kind="data", dst=2, duration_us=0)
        log.record(100 + SIFS, "tx_start", 2, frame_kind="ack", dst=1,
                   end=140, duration_us=0)
        assert check(log).ok

    def test_duplicate_response_flagged(self):
        log = TraceLog()
        log.record(100, "decode", 2, src=1, frame_src=1,
                   frame_kind="data", dst=2, duration_us=0)
        log.record(100 + SIFS, "tx_start", 2, frame_kind="ack", dst=1,
                   end=100 + SIFS + 30, duration_us=0)
        # Second ACK answering the same decode, properly spaced so no
        # other rule fires.
        again = 100 + 2 * SIFS + 30
        log.record(again, "tx_start", 2, frame_kind="ack", dst=1,
                   end=again + 30, duration_us=0)
        by_rule = check(log).by_rule()
        assert by_rule == {"duplicate-response": 1}

    def test_rearmed_trigger_is_not_duplicate(self):
        # A *fresh* decode re-licenses a response (basic-access
        # retransmission of a lost-ACK packet).
        log = TraceLog()
        for t0 in (100, 1000):
            log.record(t0, "decode", 2, src=1, frame_src=1,
                       frame_kind="data", dst=2, duration_us=0)
            log.record(t0 + SIFS, "tx_start", 2, frame_kind="ack",
                       dst=1, end=t0 + SIFS + 30, duration_us=0)
        assert check(log).ok


# ----------------------------------------------------------------------
# NAV (incl. the SIFS-response exemption bugfix)
# ----------------------------------------------------------------------
class TestNavRule:
    def test_backoff_tx_inside_nav_flagged(self):
        log = TraceLog()
        log.record(100, "decode", 3, src=0, frame_src=0,
                   frame_kind="cts", dst=1, duration_us=1000)
        log.record(600, "tx_start", 3, frame_kind="rts", dst=0, end=900,
                   duration_us=0)
        assert check(log).by_rule().get("nav-respected") == 1

    def test_basic_data_inside_nav_flagged(self):
        log = TraceLog()
        log.record(100, "decode", 1, src=0, frame_src=0,
                   frame_kind="cts", dst=3, duration_us=1000)
        log.record(500, "tx_start", 1, frame_kind="data", dst=2,
                   end=700, duration_us=0)
        assert check(log).by_rule().get("nav-respected") == 1

    def test_hidden_terminal_cts_response_exempt(self):
        """Regression: a responder's CTS is SIFS-scheduled and exempt
        from virtual carrier sense.  The old checker flagged the
        classic hidden-terminal shape — answer an RTS while holding a
        NAV set by an overheard frame — as a violation."""
        log = TraceLog()
        log.record(100, "decode", 2, src=0, frame_src=0,
                   frame_kind="cts", dst=1, duration_us=1000)
        log.record(300, "decode", 2, src=5, frame_src=5,
                   frame_kind="rts", dst=2, duration_us=0)
        log.record(300 + SIFS, "tx_start", 2, frame_kind="cts", dst=5,
                   end=350, duration_us=0)
        report = check(log)
        assert report.ok, report.violations

    def test_ack_response_inside_nav_exempt(self):
        log = TraceLog()
        log.record(100, "decode", 2, src=0, frame_src=0,
                   frame_kind="rts", dst=9, duration_us=2000)
        log.record(400, "decode", 2, src=1, frame_src=1,
                   frame_kind="data", dst=2, duration_us=0)
        log.record(400 + SIFS, "tx_start", 2, frame_kind="ack", dst=1,
                   end=440, duration_us=0)
        assert check(log).ok

    def test_data_response_inside_nav_exempt(self):
        log = TraceLog()
        log.record(0, "tx_start", 1, frame_kind="rts", dst=2, end=100,
                   duration_us=0)
        log.record(150, "decode", 1, src=0, frame_src=0,
                   frame_kind="cts", dst=9, duration_us=2000)
        log.record(300, "decode", 1, src=2, frame_src=2,
                   frame_kind="cts", dst=1, duration_us=0)
        log.record(300 + SIFS, "tx_start", 1, frame_kind="data", dst=2,
                   end=500, duration_us=0)
        report = check(log)
        assert report.ok, report.violations


# ----------------------------------------------------------------------
# eifs-after-error
# ----------------------------------------------------------------------
class TestEifsRule:
    def test_eifs_after_corrupt_passes(self):
        log = TraceLog()
        log.record(100, "corrupt", 1, src=2)
        log.record(150, "defer", 1, ifs_us=EIFS)
        log.record(200, "ifs", 1, ifs_us=EIFS)
        # The timer consumed the EIFS debt; later edges use DIFS.
        log.record(400, "defer", 1, ifs_us=DIFS)
        assert check(log).ok

    def test_difs_after_corrupt_flagged(self):
        log = TraceLog()
        log.record(100, "corrupt", 1, src=2)
        log.record(150, "defer", 1, ifs_us=DIFS)
        assert check(log).by_rule().get("eifs-after-error") == 1

    def test_eifs_without_error_flagged(self):
        log = TraceLog()
        log.record(150, "ifs", 1, ifs_us=EIFS)
        assert check(log).by_rule().get("eifs-after-error") == 1

    def test_decode_clears_the_eifs_debt(self):
        log = TraceLog()
        log.record(100, "corrupt", 1, src=2)
        log.record(200, "decode", 1, src=2, frame_src=2,
                   frame_kind="cts", dst=9, duration_us=0)
        log.record(300, "defer", 1, ifs_us=DIFS)
        assert check(log).ok

    def test_defer_peeks_but_does_not_consume(self):
        log = TraceLog()
        log.record(100, "corrupt", 1, src=2)
        log.record(150, "defer", 1, ifs_us=EIFS)
        log.record(300, "defer", 1, ifs_us=EIFS)
        log.record(350, "ifs", 1, ifs_us=EIFS)
        log.record(500, "ifs", 1, ifs_us=DIFS)
        assert check(log).ok

    def test_crash_clears_the_eifs_debt(self):
        log = TraceLog()
        log.record(100, "corrupt", 1, src=2)
        log.record(200, "mac_crash", 1)
        log.record(250, "corrupt", 1, src=3)  # crashed: MAC ignores it
        log.record(300, "mac_restart", 1)
        log.record(400, "defer", 1, ifs_us=DIFS)
        assert check(log).ok


# ----------------------------------------------------------------------
# backoff-conservation
# ----------------------------------------------------------------------
class TestBackoffConservation:
    def _start(self, log, t, slots, slot_us=T.slot_us, **extra):
        log.record(t, "backoff_start", 1, nominal=slots, effective=slots,
                   dst=0, stage=1, slot_us=slot_us, modified=False, **extra)

    def test_exact_minimum_passes(self):
        log = TraceLog()
        self._start(log, 0, 5)
        log.record(DIFS + 5 * T.slot_us, "backoff_commit", 1, slots=5)
        assert check(log).ok

    def test_early_commit_flagged(self):
        log = TraceLog()
        self._start(log, 0, 5)
        log.record(DIFS + 5 * T.slot_us - 1, "backoff_commit", 1, slots=5)
        assert check(log).by_rule().get("backoff-conservation") == 1

    def test_drifted_slot_uses_the_node_clock(self):
        # A +25% slot clock stretches both the DIFS and the countdown;
        # the checker must judge against the node's own slot length.
        slot = T.slot_us + 5
        need = (SIFS + 2 * slot) + 5 * slot
        log = TraceLog()
        self._start(log, 0, 5, slot_us=slot)
        log.record(need, "backoff_commit", 1, slots=5)
        assert check(log).ok
        log2 = TraceLog()
        self._start(log2, 0, 5, slot_us=slot)
        log2.record(need - 1, "backoff_commit", 1, slots=5)
        assert check(log2).by_rule().get("backoff-conservation") == 1

    def test_crash_cancels_the_pending_countdown(self):
        log = TraceLog()
        self._start(log, 0, 5)
        log.record(60, "mac_crash", 1)
        assert check(log).ok


# ----------------------------------------------------------------------
# assignment-echo
# ----------------------------------------------------------------------
def _echo_start(log, t, nominal, stage=1, node=1, dst=0):
    log.record(t, "backoff_start", node, nominal=nominal, effective=nominal,
               dst=dst, stage=stage, slot_us=T.slot_us, modified=True)
    log.record(t + DIFS + nominal * T.slot_us, "backoff_commit", node,
               slots=nominal)


class TestAssignmentEcho:
    def test_echoed_assignment_passes(self):
        log = TraceLog()
        log.record(100, "assignment", 1, src=0, value=7, carried=7,
                   frame_kind="cts")
        _echo_start(log, 200, 7)
        assert check(log).ok

    def test_ignored_assignment_flagged(self):
        log = TraceLog()
        log.record(100, "assignment", 1, src=0, value=7, carried=7,
                   frame_kind="ack")
        _echo_start(log, 200, 9)
        assert check(log).by_rule().get("assignment-echo") == 1

    def test_deterministic_retry_passes(self):
        stage1 = 13
        expected = retry_backoff(stage1, 1, 2, T.cw_min, T.cw_max)
        log = TraceLog()
        _echo_start(log, 0, stage1, stage=1)
        _echo_start(log, 10_000, expected, stage=2)
        assert check(log).ok

    def test_wrong_retry_flagged(self):
        stage1 = 13
        expected = retry_backoff(stage1, 1, 2, T.cw_min, T.cw_max)
        log = TraceLog()
        _echo_start(log, 0, stage1, stage=1)
        _echo_start(log, 10_000, expected + 1, stage=2)
        assert check(log).by_rule().get("assignment-echo") == 1

    def test_first_contact_unconstrained(self):
        # No assignment yet: any stage-1 nominal is legal.
        log = TraceLog()
        _echo_start(log, 0, 23)
        assert check(log).ok

    def test_unmodified_protocol_unconstrained(self):
        log = TraceLog()
        log.record(0, "backoff_start", 1, nominal=9, effective=9, dst=0,
                   stage=2, slot_us=T.slot_us, modified=False)
        log.record(DIFS + 9 * T.slot_us, "backoff_commit", 1, slots=9)
        assert check(log).ok


# ----------------------------------------------------------------------
# Streaming engine semantics
# ----------------------------------------------------------------------
class TestStreamingEngine:
    def test_incremental_feed_equals_one_shot(self):
        log = TraceLog()
        log.record(100, "corrupt", 1, src=2)
        log.record(150, "defer", 1, ifs_us=DIFS)        # violation
        log.record(500, "tx_start", 2, frame_kind="cts", dst=1, end=540,
                   duration_us=0)                        # violation
        checker = ProtocolChecker()
        stream = checker.stream()
        interim = []
        for event in log:
            stream.feed(event)
            interim.append(len(stream.finish().violations))
        assert interim == [0, 1, 2]
        assert stream.finish().violations == checker.check(log).violations

    def test_rule_names_cover_all_emitted_rules(self):
        assert set(RULE_NAMES) >= {
            "half-duplex", "min-turnaround", "cts-follows-rts",
            "ack-follows-data", "data-follows-cts", "duplicate-response",
            "nav-respected", "eifs-after-error", "backoff-conservation",
            "assignment-echo",
        }


# ----------------------------------------------------------------------
# End-to-end replay
# ----------------------------------------------------------------------
def _circle_config(senders, duration_us, seed, protocol="correct", **kw):
    return ScenarioConfig(
        topology=circle_topology(senders), protocol=protocol,
        duration_us=duration_us, seed=seed, **kw,
    )


class TestReplayEndToEnd:
    def test_replay_emits_mac_events_and_is_clean(self):
        report, trace = replay_config(_circle_config(3, 250_000, seed=5))
        assert report.ok, report.violations
        counts = trace.counts()
        for kind in ("tx_start", "decode", "backoff_start",
                     "backoff_commit", "ifs", "mac_state", "assignment"):
            assert counts.get(kind, 0) > 0, (kind, counts)

    def test_faulted_replay_exercises_new_rules(self):
        from repro.faults import parse_profile

        config = _circle_config(
            3, 250_000, seed=5,
            faults=parse_profile("corrupt=0.2,crash=1@0.05-0.1"),
        )
        report, trace = replay_config(config)
        assert report.ok, report.violations
        counts = trace.counts()
        assert counts.get("corrupt", 0) > 0
        assert counts.get("mac_crash", 0) == 1
        assert counts.get("mac_restart", 0) == 1

    def test_run_matrix_inline(self):
        outs = run_matrix(["correct-small"], ["none", "drift"], 150_000,
                          seed=3, workers=1)
        assert [o.ok for o in outs] == [True, True]
        assert all(o.error is None for o in outs)
        assert outs[0].trace_events > 0

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           senders=st.integers(min_value=2, max_value=4))
    def test_honest_circle_scenarios_replay_clean(self, seed, senders):
        """Property: any honest fig-3-topology run, either protocol,
        replays through the full rule set with zero violations."""
        protocol = "correct" if seed % 2 else "802.11"
        report, _ = replay_config(
            _circle_config(senders, 120_000, seed=seed, protocol=protocol)
        )
        assert report.ok, (protocol, seed, senders, report.violations[:5])


class TestCheckCli:
    def test_list_exits_zero(self, capsys):
        from repro.__main__ import main

        assert main(["check", "--list"]) == 0
        out = capsys.readouterr().out
        assert "correct-circle" in out and "fault profiles:" in out

    def test_unknown_scenario_exits_two(self, capsys):
        from repro.__main__ import main

        assert main(["check", "no-such-scenario"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_unknown_fault_profile_exits_two(self, capsys):
        from repro.__main__ import main

        assert main(["check", "correct-small", "--faults", "gremlins"]) == 2
        assert "unknown fault profile" in capsys.readouterr().err

    def test_clean_run_exits_zero(self, capsys):
        from repro.__main__ import main

        code = main(["check", "correct-small", "--seconds", "0.1",
                     "--workers", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "all 1 cell(s) conformant" in out

    def test_violations_exit_nonzero_and_tabulate(self, capsys, monkeypatch):
        import repro.validation as validation
        from repro.__main__ import main
        from repro.validation.replay import ReplayOutcome

        def fake_matrix(scenarios, profiles, duration_us, seed=1, workers=1):
            return [ReplayOutcome(
                scenario="correct-small", profile="none", ok=False,
                transmissions=10, responses_checked=4, trace_events=50,
                by_rule={"nav-respected": 2},
                violations=[("nav-respected", 123, 3, "tx inside NAV")],
            )]

        monkeypatch.setattr(validation, "run_matrix", fake_matrix)
        code = main(["check", "correct-small"])
        out = capsys.readouterr().out
        assert code == 1
        assert "nav-respected" in out and "FAIL" in out
