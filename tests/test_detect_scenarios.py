"""Scenario-level detector tests: regression + end-to-end behavior.

The acceptance bar for the detector subsystem is twofold:

* plugging ``detector="window"`` in must leave every run bit-identical
  to the pre-registry pipeline (``detector=None``) — same RNG draws,
  same event order, same deliveries;
* the alternative detectors must actually work online: flag a heavy
  cheater quickly, never flag honest senders at their defaults.
"""

import pytest

from repro.experiments.scenarios import (
    PROTOCOL_80211,
    PROTOCOL_CORRECT,
    ScenarioConfig,
    run_scenario,
)
from repro.net.topology import circle_topology

MISBEHAVING_NODE = 3


def _config(detector=None, pm=0.0, n=4, with_interferers=False,
            duration_us=800_000, seed=1):
    misbehaving = (MISBEHAVING_NODE,) if pm > 0 else ()
    topo = circle_topology(
        n, misbehaving=misbehaving, pm_percent=pm,
        with_interferers=with_interferers,
    )
    return ScenarioConfig(
        topology=topo, protocol=PROTOCOL_CORRECT,
        duration_us=duration_us, seed=seed, detector=detector,
    )


def _assert_bit_identical(config_a, config_b):
    a = run_scenario(config_a)
    b = run_scenario(config_b)
    assert a.collector.deliveries == b.collector.deliveries
    assert a.events_processed == b.events_processed
    assert a.correct_diagnosis_percent == b.correct_diagnosis_percent
    assert a.misdiagnosis_percent == b.misdiagnosis_percent
    assert a.throughputs() == b.throughputs()


class TestWindowRegression:
    """detector="window" is the pre-registry pipeline, bit for bit."""

    def test_fig6_style_honest_run(self):
        # Figure 6 setting: honest senders, no interferers.
        _assert_bit_identical(
            _config(detector=None, n=4),
            _config(detector="window", n=4),
        )

    def test_fig8_style_misbehaving_run(self):
        # Figure 8 setting: PM cheater in the TWO-FLOW circle.
        _assert_bit_identical(
            _config(detector=None, pm=80.0, n=8, with_interferers=True),
            _config(detector="window", pm=80.0, n=8, with_interferers=True),
        )

    def test_explicit_paper_params_also_identical(self):
        _assert_bit_identical(
            _config(detector=None, pm=60.0, n=8),
            _config(detector="window:W=5,thresh=20", pm=60.0, n=8),
        )


class TestDetectorBehavior:
    @pytest.mark.parametrize("spec", ["cusum", "estimator"])
    def test_flags_heavy_cheater(self, spec):
        result = run_scenario(_config(detector=spec, pm=90.0, n=8))
        assert result.detection_rate_percent > 50.0
        assert result.detection_latency_packets(MISBEHAVING_NODE) is not None
        assert result.detection_latency_us(MISBEHAVING_NODE) is not None

    @pytest.mark.parametrize("spec", ["window", "cusum", "estimator"])
    def test_honest_senders_not_flagged(self, spec):
        result = run_scenario(_config(detector=spec, pm=0.0, n=8))
        assert result.false_alarm_percent < 5.0
        if result.false_alarm_percent == 0.0:
            # No flags at all -> no sender has a detection latency.
            assert all(
                result.detection_latency_packets(s) is None
                for s in range(1, 9)
            )

    def test_detection_latency_orders_sensibly(self):
        result = run_scenario(_config(detector="window", pm=90.0, n=8))
        pkts = result.detection_latency_packets(MISBEHAVING_NODE)
        time_us = result.detection_latency_us(MISBEHAVING_NODE)
        assert pkts is not None and pkts >= 2  # first packet never judged
        assert 0 < time_us <= result.duration_us

    def test_verdict_counters_populated(self):
        result = run_scenario(_config(detector="cusum", pm=90.0, n=4))
        stats = result.collector.flows[MISBEHAVING_NODE]
        assert stats.verdicts > 0
        assert stats.flagged_verdicts <= stats.verdicts


class TestConfigValidation:
    def test_detector_rejected_for_80211(self):
        topo = circle_topology(2)
        config = ScenarioConfig(
            topology=topo, protocol=PROTOCOL_80211,
            duration_us=100_000, detector="cusum",
        )
        with pytest.raises(ValueError, match="correct"):
            run_scenario(config)

    def test_bad_spec_fails_at_build_time(self):
        from repro.detect import DetectorSpecError

        config = _config(detector="definitely-not-a-detector")
        with pytest.raises(DetectorSpecError):
            run_scenario(config)

    def test_detector_participates_in_fingerprint(self):
        from repro.experiments.cache import config_fingerprint

        assert config_fingerprint(_config(detector=None)) != \
            config_fingerprint(_config(detector="cusum"))
        assert config_fingerprint(_config(detector="cusum:h=2.0")) != \
            config_fingerprint(_config(detector="cusum:h=3.0"))
