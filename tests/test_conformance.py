"""Trace-based protocol conformance: unit tests of the checker plus
end-to-end validation that simulated scenarios obey DCF sequencing."""

import pytest

from repro.core.sender_policy import PartialCountdownPolicy
from repro.mac.correct import CorrectMac
from repro.mac.dcf import DcfMac
from repro.sim.trace import TraceLog
from repro.validation.checker import ProtocolChecker

from tests.conftest import World


class TestTraceLog:
    def test_record_and_filter(self):
        log = TraceLog()
        log.record(10, "tx_start", 1, frame_kind="rts")
        log.record(20, "decode", 2, src=1)
        log.record(30, "tx_start", 2, frame_kind="cts")
        assert len(log) == 3
        assert len(list(log.filter(kind="tx_start"))) == 2
        assert len(list(log.filter(node=2))) == 2
        assert len(list(log.filter(kind="decode", node=2))) == 1

    def test_events_keep_insertion_order(self):
        log = TraceLog()
        for t in (5, 1, 9):
            log.record(t, "x", 0)
        assert [e.time for e in log] == [5, 1, 9]


class TestCheckerUnit:
    def test_half_duplex_violation_detected(self):
        log = TraceLog()
        log.record(0, "tx_start", 1, frame_kind="rts", dst=2, end=100,
                   duration_us=0)
        log.record(50, "tx_start", 1, frame_kind="data", dst=2, end=200,
                   duration_us=0)
        report = ProtocolChecker().check(log)
        assert not report.ok
        assert report.by_rule().get("half-duplex") == 1

    def test_orphan_cts_detected(self):
        log = TraceLog()
        log.record(500, "tx_start", 2, frame_kind="cts", dst=1, end=700,
                   duration_us=0)
        report = ProtocolChecker().check(log)
        assert report.by_rule().get("cts-follows-rts") == 1

    def test_valid_exchange_passes(self):
        sifs = 10
        log = TraceLog()
        # RTS 1->2 on air [0,100]; decoded at 2 at t=100.
        log.record(0, "tx_start", 1, frame_kind="rts", dst=2, end=100,
                   duration_us=500)
        log.record(100, "decode", 2, src=1, frame_kind="rts", dst=2,
                   duration_us=500)
        # CTS 2->1 at 100+SIFS.
        log.record(100 + sifs, "tx_start", 2, frame_kind="cts", dst=1,
                   end=200, duration_us=300)
        log.record(200, "decode", 1, src=2, frame_kind="cts", dst=1,
                   duration_us=300)
        log.record(200 + sifs, "tx_start", 1, frame_kind="data", dst=2,
                   end=400, duration_us=100)
        log.record(400, "decode", 2, src=1, frame_kind="data", dst=2,
                   duration_us=100)
        log.record(400 + sifs, "tx_start", 2, frame_kind="ack", dst=1,
                   end=500, duration_us=0)
        report = ProtocolChecker().check(log)
        assert report.ok, report.violations

    def test_nav_violation_detected(self):
        log = TraceLog()
        # Node 3 decodes a CTS not addressed to it with 1000us NAV...
        log.record(100, "decode", 3, src=0, frame_kind="cts", dst=1,
                   duration_us=1000)
        # ...then transmits inside the window.
        log.record(600, "tx_start", 3, frame_kind="rts", dst=0, end=900,
                   duration_us=0)
        report = ProtocolChecker().check(log)
        assert report.by_rule().get("nav-respected") == 1

    def test_turnaround_violation_detected(self):
        log = TraceLog()
        log.record(0, "tx_start", 1, frame_kind="rts", dst=2, end=100,
                   duration_us=0)
        log.record(105, "tx_start", 1, frame_kind="rts", dst=2, end=300,
                   duration_us=0)
        report = ProtocolChecker().check(log)
        assert report.by_rule().get("min-turnaround") == 1


def run_traced_world(mac_cls, n_senders, duration_us=800_000, cheat=None):
    w = World(seed=21)
    w.medium.trace = TraceLog()
    w.add_receiver(mac_cls, 0, (0.0, 0.0))
    import math

    for i in range(1, n_senders + 1):
        angle = 2 * math.pi * i / n_senders
        policy = None
        if cheat is not None and i == cheat:
            policy = PartialCountdownPolicy(80.0)
        kwargs = {"policy": policy} if policy else {}
        w.add_sender(
            mac_cls, i,
            (150.0 * math.cos(angle), 150.0 * math.sin(angle)),
            dst=0, **kwargs,
        )
    w.run(duration_us)
    return w


class TestEndToEndConformance:
    @pytest.mark.parametrize("mac_cls", [DcfMac, CorrectMac])
    def test_contending_cell_is_conformant(self, mac_cls):
        w = run_traced_world(mac_cls, n_senders=4)
        report = ProtocolChecker().check(w.medium.trace)
        assert report.transmissions > 100
        assert report.ok, report.by_rule()

    def test_cheating_cell_still_sequencing_conformant(self):
        """A backoff cheater violates fairness, not frame sequencing."""
        w = run_traced_world(CorrectMac, n_senders=4, cheat=2)
        report = ProtocolChecker().check(w.medium.trace)
        assert report.ok, report.by_rule()

    def test_tracing_does_not_change_results(self):
        untraced = World(seed=22)
        untraced.add_receiver(DcfMac, 0, (0.0, 0.0))
        untraced.add_sender(DcfMac, 1, (150.0, 0.0), dst=0)
        untraced.run(500_000)
        traced = World(seed=22)
        traced.medium.trace = TraceLog()
        traced.add_receiver(DcfMac, 0, (0.0, 0.0))
        traced.add_sender(DcfMac, 1, (150.0, 0.0), dst=0)
        traced.run(500_000)
        assert (untraced.collector.flows[1].delivered_packets
                == traced.collector.flows[1].delivered_packets)


class TestBasicAccessConformance:
    def test_basic_access_cell_is_conformant(self):
        from tests.test_basic_access import basic_world

        w = basic_world(DcfMac, n_senders=3, trace=True)
        w.run(800_000)
        report = ProtocolChecker().check(w.medium.trace)
        assert report.transmissions > 100
        assert report.ok, report.by_rule()
