"""Tests for the correction (penalty) scheme."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.correction import compute_penalty, next_assignment
from repro.core.params import ProtocolConfig


def config(**kwargs) -> ProtocolConfig:
    return ProtocolConfig(**kwargs)


class TestComputePenalty:
    def test_zero_deviation_zero_penalty(self):
        assert compute_penalty(0.0, config()) == 0

    def test_flat_additional_term(self):
        cfg = config(extra_penalty_factor=0.0, extra_penalty_slots=20)
        assert compute_penalty(4.0, cfg) == 24

    def test_proportional_additional_term(self):
        cfg = config(extra_penalty_factor=1.0, extra_penalty_slots=0)
        assert compute_penalty(6.0, cfg) == 12

    def test_combined_form(self):
        cfg = config(extra_penalty_factor=0.25, extra_penalty_slots=20)
        assert compute_penalty(8.0, cfg) == 30  # 8*1.25 + 20

    def test_cap_applies(self):
        cfg = config(penalty_cap_slots=50)
        assert compute_penalty(1000.0, cfg) == 50

    def test_cap_zero_disables(self):
        cfg = config(penalty_cap_slots=0, extra_penalty_factor=0.0,
                     extra_penalty_slots=0)
        assert compute_penalty(10_000.0, cfg) == 10_000

    def test_negative_deviation_rejected(self):
        with pytest.raises(ValueError):
            compute_penalty(-1.0, config())

    @given(st.floats(min_value=0.0, max_value=1e6))
    @settings(max_examples=100)
    def test_monotone_in_deviation(self, d):
        cfg = config()
        assert compute_penalty(d + 1.0, cfg) >= compute_penalty(d, cfg)

    @given(st.floats(min_value=0.001, max_value=1e6))
    @settings(max_examples=100)
    def test_penalty_at_least_deviation(self, d):
        """The paper's P = D + additional: never less than D itself
        (absent the lockout cap)."""
        cfg = config(penalty_cap_slots=0)
        assert compute_penalty(d, cfg) >= int(d)


class TestNextAssignment:
    def test_within_window_without_penalty(self):
        rng = random.Random(1)
        cfg = config()
        for _ in range(200):
            value = next_assignment(rng, cfg)
            assert 0 <= value <= cfg.cw_min

    def test_penalty_added_on_top(self):
        rng = random.Random(2)
        cfg = config()
        value = next_assignment(rng, cfg, penalty=100)
        assert value >= 100

    def test_explicit_base_used(self):
        rng = random.Random(3)
        cfg = config()
        assert next_assignment(rng, cfg, penalty=7, base=10) == 17

    def test_base_out_of_range_rejected(self):
        rng = random.Random(4)
        with pytest.raises(ValueError):
            next_assignment(rng, config(), base=99)

    def test_negative_penalty_rejected(self):
        rng = random.Random(5)
        with pytest.raises(ValueError):
            next_assignment(rng, config(), penalty=-1)

    def test_uniformity_of_random_base(self):
        rng = random.Random(6)
        cfg = config()
        n = 32_000
        counts = [0] * (cfg.cw_min + 1)
        for _ in range(n):
            counts[next_assignment(rng, cfg)] += 1
        expected = n / (cfg.cw_min + 1)
        assert all(0.7 * expected < k < 1.3 * expected for k in counts)


class TestConfigValidation:
    def test_paper_defaults(self):
        cfg = ProtocolConfig()
        assert cfg.alpha == 0.9
        assert cfg.window == 5
        assert cfg.thresh == 20
        assert cfg.cw_min == 31
        assert cfg.cw_max == 1023

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": 0.0},
            {"alpha": 1.5},
            {"window": 0},
            {"thresh": -1},
            {"cw_min": 0},
            {"cw_min": 64, "cw_max": 32},
            {"extra_penalty_factor": -0.5},
            {"extra_penalty_slots": -1},
            {"penalty_cap_slots": -1},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ProtocolConfig(**kwargs)
