"""Tests for sender (mis)behaviour policies."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sender_policy import (
    AttemptLyingPolicy,
    ConformingPolicy,
    NoDoublingPolicy,
    PartialCountdownPolicy,
    ShrunkenWindowPolicy,
    policy_for_pm,
)


class TestConforming:
    def test_counts_everything(self):
        p = ConformingPolicy()
        assert p.effective_countdown(17) == 17
        assert not p.misbehaving

    def test_selects_within_window(self):
        p = ConformingPolicy()
        rng = random.Random(1)
        assert all(0 <= p.select_backoff(rng, 31) <= 31 for _ in range(100))

    def test_standard_cw_schedule(self):
        p = ConformingPolicy()
        assert p.next_contention_window(1) == 31
        assert p.next_contention_window(3) == 127

    def test_honest_attempt(self):
        assert ConformingPolicy().reported_attempt(4) == 4


class TestPartialCountdown:
    def test_paper_semantics(self):
        """PM = x counts down (100 - x)% of the assigned value."""
        p = PartialCountdownPolicy(40.0)
        assert p.effective_countdown(20) == 12

    def test_pm_zero_is_conforming_countdown(self):
        assert PartialCountdownPolicy(0.0).effective_countdown(20) == 20

    def test_pm_hundred_counts_nothing(self):
        assert PartialCountdownPolicy(100.0).effective_countdown(500) == 0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            PartialCountdownPolicy(-1.0)
        with pytest.raises(ValueError):
            PartialCountdownPolicy(101.0)

    def test_flagged_as_misbehaving(self):
        assert PartialCountdownPolicy(50.0).misbehaving

    @given(
        st.floats(min_value=0.0, max_value=100.0),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=100)
    def test_never_exceeds_nominal(self, pm, nominal):
        p = PartialCountdownPolicy(pm)
        effective = p.effective_countdown(nominal)
        assert 0 <= effective <= nominal

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=50)
    def test_monotone_in_pm(self, nominal):
        mild = PartialCountdownPolicy(20.0).effective_countdown(nominal)
        severe = PartialCountdownPolicy(80.0).effective_countdown(nominal)
        assert severe <= mild


class TestShrunkenWindow:
    def test_selects_from_quarter_window(self):
        p = ShrunkenWindowPolicy(4.0)
        rng = random.Random(2)
        values = [p.select_backoff(rng, 31) for _ in range(200)]
        assert max(values) <= 7
        assert p.misbehaving

    def test_divisor_below_one_rejected(self):
        with pytest.raises(ValueError):
            ShrunkenWindowPolicy(0.5)

    def test_countdown_still_full(self):
        assert ShrunkenWindowPolicy(4.0).effective_countdown(10) == 10


class TestNoDoubling:
    def test_cw_pinned_to_minimum(self):
        p = NoDoublingPolicy()
        assert p.next_contention_window(1) == 31
        assert p.next_contention_window(5) == 31
        assert p.misbehaving


class TestAttemptLying:
    def test_always_reports_one(self):
        p = AttemptLyingPolicy(50.0)
        assert p.reported_attempt(1) == 1
        assert p.reported_attempt(6) == 1

    def test_also_shortens_countdown(self):
        assert AttemptLyingPolicy(50.0).effective_countdown(20) == 10


class TestFactory:
    def test_zero_pm_gives_conforming(self):
        assert isinstance(policy_for_pm(0.0), ConformingPolicy)
        assert not policy_for_pm(0.0).misbehaving

    def test_positive_pm_gives_partial_countdown(self):
        p = policy_for_pm(60.0)
        assert isinstance(p, PartialCountdownPolicy)
        assert p.pm_percent == 60.0
