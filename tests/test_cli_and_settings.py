"""Tests for the CLI entry point and evaluation-scale settings."""

import pytest

from repro.__main__ import main
from repro.experiments.settings import (
    DEFAULT_SETTINGS,
    PAPER_SETTINGS,
    QUICK_SETTINGS,
    active_settings,
    cache_enabled,
    env_flag,
    profile_enabled,
)


class TestSettings:
    def test_paper_scale_matches_paper(self):
        assert PAPER_SETTINGS.duration_us == 50_000_000
        assert len(PAPER_SETTINGS.seeds) == 30
        assert PAPER_SETTINGS.pm_values[-1] == 100.0
        assert PAPER_SETTINGS.network_sizes == (1, 2, 4, 8, 16, 32, 64)
        assert PAPER_SETTINGS.random_topologies == 30
        assert PAPER_SETTINGS.random_nodes == 40
        assert PAPER_SETTINGS.random_misbehaving == 5
        assert PAPER_SETTINGS.fig8_bin_us == 1_000_000

    def test_scales_ordered(self):
        assert (QUICK_SETTINGS.duration_us < DEFAULT_SETTINGS.duration_us
                < PAPER_SETTINGS.duration_us)
        assert len(QUICK_SETTINGS.seeds) <= len(DEFAULT_SETTINGS.seeds)

    def test_active_settings_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        monkeypatch.delenv("REPRO_QUICK", raising=False)
        assert active_settings() is DEFAULT_SETTINGS
        monkeypatch.setenv("REPRO_FULL", "1")
        assert active_settings() is PAPER_SETTINGS
        monkeypatch.setenv("REPRO_QUICK", "1")  # quick wins over full
        assert active_settings() is QUICK_SETTINGS

    def test_duration_seconds_property(self):
        assert PAPER_SETTINGS.duration_s == 50.0

    def test_env_flag_semantics(self, monkeypatch):
        monkeypatch.delenv("REPRO_X", raising=False)
        assert not env_flag("REPRO_X")
        monkeypatch.setenv("REPRO_X", "0")
        assert not env_flag("REPRO_X")
        monkeypatch.setenv("REPRO_X", "1")
        assert env_flag("REPRO_X")

    def test_cache_and_profile_flags(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_PROFILE", "0")
        assert cache_enabled()
        assert not profile_enabled()


class TestCli:
    def test_run_subcommand(self, capsys):
        code = main([
            "run", "--pm", "100", "--seconds", "0.5", "--senders", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "MSB (cheater)" in out
        assert "correct diagnosis" in out

    def test_run_honest_omits_msb(self, capsys):
        code = main(["run", "--seconds", "0.3", "--senders", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "MSB" not in out
        assert "fairness" in out

    def test_run_80211(self, capsys):
        code = main([
            "run", "--protocol", "802.11", "--pm", "50",
            "--seconds", "0.3", "--senders", "2",
        ])
        assert code == 0

    def test_figures_unknown_id(self, capsys):
        code = main(["figures", "figZZ"])
        assert code == 2
        assert "unknown" in capsys.readouterr().err

    def test_figures_unknown_id_lists_available(self, capsys):
        from repro.experiments import ALL_FIGURES

        code = main(["figures", "figZZ", "fig4"])
        assert code == 2
        err = capsys.readouterr().err
        assert "figZZ" in err
        for fid in ALL_FIGURES:
            assert fid in err
        assert "detectors" in err

    def test_run_with_detector(self, capsys):
        code = main([
            "run", "--pm", "100", "--seconds", "0.5", "--senders", "4",
            "--detector", "cusum:h=2.0,k=0.25",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "detection rate" in out
        assert "time to detection" in out

    def test_run_bad_detector_spec(self, capsys):
        code = main([
            "run", "--seconds", "0.3", "--detector", "nope",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "bad --detector spec" in err
        assert "window" in err  # lists registered names

    def test_run_detector_requires_correct_protocol(self, capsys):
        code = main([
            "run", "--protocol", "802.11", "--seconds", "0.3",
            "--detector", "cusum",
        ])
        assert code == 2
        assert "correct" in capsys.readouterr().err

    def test_theory_subcommand(self, capsys):
        code = main(["theory", "--sizes", "2", "--seconds", "0.5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Bianchi" in out

    def test_missing_subcommand_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_cache_inspect(self, tmp_path, capsys):
        code = main(["cache", "--dir", str(tmp_path / "runs")])
        assert code == 0
        out = capsys.readouterr().out
        assert "entries:      0" in out
        assert "code version:" in out

    def test_cache_clear(self, tmp_path, capsys):
        from repro.experiments.cache import RunCache
        from repro.experiments.runner import run_seeds
        from repro.experiments.scenarios import ScenarioConfig
        from repro.net.topology import circle_topology

        cache = RunCache(tmp_path / "runs")
        cfg = ScenarioConfig(
            topology=circle_topology(2), duration_us=300_000, seed=1
        )
        cache.put(cfg, run_seeds(cfg, (1,), workers=1)[0])
        code = main(["cache", "--clear", "--dir", str(tmp_path / "runs")])
        assert code == 0
        assert "removed 1 cached run(s)" in capsys.readouterr().out
        assert cache.entries() == []
