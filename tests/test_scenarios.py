"""Tests for scenario assembly, determinism and the multi-seed runner."""

import pytest

from repro.experiments.runner import run_configs, run_seeds
from repro.experiments.scenarios import (
    PROTOCOL_80211,
    PROTOCOL_CORRECT,
    ScenarioConfig,
    build_scenario,
    run_scenario,
)
from repro.net.topology import circle_topology

SHORT = 600_000  # 0.6 s keeps these tests quick


def config(protocol=PROTOCOL_CORRECT, pm=0.0, **kwargs):
    topo = circle_topology(
        4, misbehaving=(3,) if pm else (), pm_percent=pm
    )
    return ScenarioConfig(
        topology=topo, protocol=protocol, duration_us=SHORT, seed=1, **kwargs
    )


class TestBuild:
    def test_build_creates_all_nodes(self):
        sim, nodes, collector = build_scenario(config())
        assert len(nodes) == 5  # receiver + 4 senders

    def test_senders_preregistered_in_collector(self):
        _, _, collector = build_scenario(config())
        assert set(collector.flows) == {1, 2, 3, 4}

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            run_scenario(config(protocol="aloha"))

    def test_interferers_not_measured(self):
        topo = circle_topology(2, with_interferers=True)
        cfg = ScenarioConfig(topology=topo, duration_us=SHORT, seed=1)
        _, _, collector = build_scenario(cfg)
        assert collector.measured_senders == {1, 2}


class TestDeterminism:
    def test_same_seed_same_results(self):
        a = run_scenario(config(pm=50.0))
        b = run_scenario(config(pm=50.0))
        assert a.events_processed == b.events_processed
        assert a.throughputs() == b.throughputs()
        assert a.correct_diagnosis_percent == b.correct_diagnosis_percent

    def test_different_seeds_differ(self):
        a = run_scenario(config())
        b = run_scenario(config().with_seed(2))
        assert a.throughputs() != b.throughputs()

    def test_with_seed_preserves_everything_else(self):
        base = config()
        reseeded = base.with_seed(9)
        assert reseeded.seed == 9
        assert reseeded.topology is base.topology
        assert reseeded.duration_us == base.duration_us


class TestRunResult:
    def test_metrics_exposed(self):
        result = run_scenario(config(pm=100.0))
        assert result.duration_us == SHORT
        assert 0.0 <= result.fairness_index <= 1.0
        assert result.msb_throughput_bps > 0
        assert result.correct_diagnosis_percent > 50.0

    def test_honest_run_has_no_msb(self):
        result = run_scenario(config(pm=0.0))
        assert result.msb_throughput_bps == 0.0
        assert result.avg_throughput_bps > 0


class TestRunner:
    def test_run_seeds_sequential_order(self):
        results = run_seeds(config(), seeds=(1, 2, 3), workers=1)
        assert [r.config.seed for r in results] == [1, 2, 3]

    def test_run_seeds_parallel_matches_sequential(self):
        seq = run_seeds(config(), seeds=(1, 2), workers=1)
        par = run_seeds(config(), seeds=(1, 2), workers=2)
        for a, b in zip(seq, par):
            assert a.throughputs() == b.throughputs()

    def test_run_seeds_empty_rejected(self):
        with pytest.raises(ValueError):
            run_seeds(config(), seeds=())

    def test_run_configs_heterogeneous(self):
        configs = [config(), config(protocol=PROTOCOL_80211)]
        results = run_configs(configs, workers=1)
        assert results[0].config.protocol == PROTOCOL_CORRECT
        assert results[1].config.protocol == PROTOCOL_80211

    def test_run_configs_empty_rejected(self):
        with pytest.raises(ValueError):
            run_configs([])


class TestProtocolDifferences:
    def test_cheater_restrained_only_under_correct(self):
        r_80211 = run_scenario(
            config(protocol=PROTOCOL_80211, pm=80.0).with_seed(3)
        )
        r_correct = run_scenario(
            config(protocol=PROTOCOL_CORRECT, pm=80.0).with_seed(3)
        )
        gain_80211 = r_80211.msb_throughput_bps / max(
            r_80211.avg_throughput_bps, 1.0
        )
        gain_correct = r_correct.msb_throughput_bps / max(
            r_correct.avg_throughput_bps, 1.0
        )
        assert gain_80211 > gain_correct
