"""Tests for mobility: position updates, models, and the paper's
fast-detection motivation (a drive-by cheater must be diagnosed
within its short contact window)."""

import math
import random

import pytest

from repro.core.sender_policy import PartialCountdownPolicy
from repro.mac.correct import CorrectMac
from repro.mac.dcf import DcfMac
from repro.net.mobility import LinearMobility, RandomWaypointMobility
from repro.sim.engine import Simulator

from tests.conftest import World


class TestMediumPositionUpdates:
    def test_update_changes_links(self, world):
        w = world
        w.add_receiver(DcfMac, 0, (0.0, 0.0))
        w.add_sender(DcfMac, 1, (150.0, 0.0), dst=0)
        strong = w.medium.link(1, 0)
        assert strong.classify() == "strong"
        w.medium.update_position(1, (5000.0, 0.0))
        assert w.medium.link(1, 0).classify() == "negligible"

    def test_update_unknown_node_rejected(self, world):
        with pytest.raises(KeyError):
            world.medium.update_position(99, (0.0, 0.0))

    def test_inflight_transmission_bookkeeping_balanced(self, world):
        """Moving a node mid-transmission must not leak busy counts."""
        w = world
        w.add_receiver(DcfMac, 0, (0.0, 0.0))
        w.add_sender(DcfMac, 1, (150.0, 0.0), dst=0)
        # Move node 1 far away shortly after the sim starts, while its
        # first frames are on the air.
        w.sim.schedule(1_000, lambda: w.medium.update_position(1, (9000.0, 0.0)))
        w.run(200_000)
        assert not w.medium.strong_busy(0)
        assert w.medium.active_transmissions == 0


class TestLinearMobility:
    def test_straight_line_motion(self):
        w = World()
        w.add_receiver(DcfMac, 0, (0.0, 0.0))
        w.add_sender(DcfMac, 1, (0.0, 0.0), dst=0)
        LinearMobility(w.sim, w.medium, 1, velocity_mps=(10.0, 0.0),
                       step_us=100_000)
        w.sim.run(until=1_000_000)
        x, y = w.medium.position_of(1)
        assert x == pytest.approx(10.0, abs=0.01)
        assert y == 0.0

    def test_stop_freezes(self):
        w = World()
        w.add_receiver(DcfMac, 0, (0.0, 0.0))
        w.add_sender(DcfMac, 1, (0.0, 0.0), dst=0)
        mover = LinearMobility(w.sim, w.medium, 1, velocity_mps=(10.0, 0.0))
        w.sim.schedule(500_000, mover.stop)
        w.sim.run(until=2_000_000)
        x, _ = w.medium.position_of(1)
        assert x <= 5.0

    def test_invalid_step(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            LinearMobility(sim, None, 1, (1.0, 0.0), step_us=0)


class TestRandomWaypoint:
    def test_stays_within_area(self):
        w = World()
        w.add_receiver(DcfMac, 0, (0.0, 0.0))
        w.add_sender(DcfMac, 1, (100.0, 100.0), dst=0)
        RandomWaypointMobility(
            w.sim, w.medium, 1, random.Random(5), area=(500.0, 300.0),
            min_speed_mps=20.0, max_speed_mps=50.0,
        )
        for horizon in range(1, 20):
            w.sim.run(until=horizon * 500_000)
            x, y = w.medium.position_of(1)
            assert -1.0 <= x <= 501.0
            assert -1.0 <= y <= 301.0

    def test_legs_completed(self):
        w = World()
        w.add_receiver(DcfMac, 0, (0.0, 0.0))
        w.add_sender(DcfMac, 1, (100.0, 100.0), dst=0)
        mover = RandomWaypointMobility(
            w.sim, w.medium, 1, random.Random(6), area=(200.0, 200.0),
            min_speed_mps=50.0, max_speed_mps=50.0,
        )
        w.sim.run(until=60_000_000)
        assert mover.legs_completed > 2

    def test_invalid_speeds(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            RandomWaypointMobility(sim, None, 1, random.Random(1),
                                   min_speed_mps=0.0)


class TestDriveByCheater:
    """The motivating scenario: a cheater passes through the cell.

    The modified protocol needs only W=5 packets to diagnose; a
    drive-by cheater at vehicular speed is still in range for hundreds
    of packet exchanges, so it must stand diagnosed while in contact.
    """

    def run_drive_by(self, speed_mps):
        w = World(seed=51)
        w.add_receiver(CorrectMac, 0, (0.0, 0.0))
        w.add_sender(CorrectMac, 1, (150.0, 0.0), dst=0)
        # Cheater starts at the cell edge and crosses the cell.
        w.add_sender(CorrectMac, 2, (-240.0, 0.0), dst=0,
                     policy=PartialCountdownPolicy(90.0))
        LinearMobility(w.sim, w.medium, 2, velocity_mps=(speed_mps, 0.0))
        w.run(4_000_000)
        return w

    def test_fast_cheater_still_diagnosed(self):
        w = self.run_drive_by(speed_mps=30.0)  # crosses ~120 m in 4 s
        stats = w.collector.flows[2]
        assert stats.delivered_packets > 50  # still plenty of contact
        assert stats.diagnosed_packets > 0.5 * stats.delivered_packets

    def test_mobile_honest_sender_not_misdiagnosed(self):
        w = World(seed=52)
        w.add_receiver(CorrectMac, 0, (0.0, 0.0))
        w.add_sender(CorrectMac, 1, (-240.0, 0.0), dst=0)
        LinearMobility(w.sim, w.medium, 1, velocity_mps=(30.0, 0.0))
        w.run(4_000_000)
        stats = w.collector.flows[1]
        assert stats.delivered_packets > 50
        assert stats.diagnosed_packets < 0.1 * stats.delivered_packets
