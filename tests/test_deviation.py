"""Tests for equation 1 (deviation identification)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.deviation import check_deviation


class TestEquationOne:
    def test_exact_compliance_not_deviating(self):
        v = check_deviation(b_exp=20, b_act=20, alpha=0.9)
        assert not v.deviated
        assert v.deviation == 0.0
        assert v.difference == 0.0

    def test_small_shortfall_within_alpha_tolerated(self):
        # 19 >= 0.9 * 20 = 18: tolerated.
        v = check_deviation(b_exp=20, b_act=19, alpha=0.9)
        assert not v.deviated

    def test_shortfall_beyond_alpha_flagged(self):
        # 17 < 18: deviation of magnitude 18 - 17 = 1.
        v = check_deviation(b_exp=20, b_act=17, alpha=0.9)
        assert v.deviated
        assert v.deviation == pytest.approx(1.0)

    def test_overwait_gives_negative_difference(self):
        v = check_deviation(b_exp=20, b_act=35, alpha=0.9)
        assert not v.deviated
        assert v.difference == -15.0

    def test_zero_expected_backoff_never_deviates(self):
        v = check_deviation(b_exp=0, b_act=0, alpha=0.9)
        assert not v.deviated

    def test_alpha_one_requires_full_wait(self):
        assert check_deviation(10, 9, alpha=1.0).deviated
        assert not check_deviation(10, 10, alpha=1.0).deviated

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            check_deviation(10, 5, alpha=0.0)
        with pytest.raises(ValueError):
            check_deviation(10, 5, alpha=1.5)

    def test_negative_observations_rejected(self):
        with pytest.raises(ValueError):
            check_deviation(-1, 0, 0.9)
        with pytest.raises(ValueError):
            check_deviation(0, -1, 0.9)


class TestDeviationProperties:
    @given(
        st.integers(min_value=0, max_value=5000),
        st.integers(min_value=0, max_value=5000),
        st.floats(min_value=0.1, max_value=1.0),
    )
    @settings(max_examples=200)
    def test_deviation_magnitude_consistency(self, b_exp, b_act, alpha):
        v = check_deviation(b_exp, b_act, alpha)
        if v.deviated:
            assert v.deviation == pytest.approx(alpha * b_exp - b_act)
            assert v.deviation > 0
        else:
            assert v.deviation == 0.0

    @given(
        st.integers(min_value=0, max_value=5000),
        st.integers(min_value=0, max_value=5000),
        st.floats(min_value=0.1, max_value=1.0),
    )
    @settings(max_examples=200)
    def test_difference_is_signed_gap(self, b_exp, b_act, alpha):
        v = check_deviation(b_exp, b_act, alpha)
        assert v.difference == pytest.approx(b_exp - b_act)

    @given(
        st.integers(min_value=1, max_value=5000),
        st.floats(min_value=0.1, max_value=0.9),
    )
    @settings(max_examples=100)
    def test_smaller_alpha_is_more_permissive(self, b_exp, alpha):
        """Anything tolerated at alpha stays tolerated at alpha' < alpha."""
        b_act = math.ceil(alpha * b_exp)  # at/above the boundary
        assert not check_deviation(b_exp, b_act, alpha).deviated
        assert not check_deviation(b_exp, b_act, alpha / 2).deviated

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=50)
    def test_full_wait_never_deviates(self, b_exp):
        assert not check_deviation(b_exp, b_exp, 0.9).deviated
