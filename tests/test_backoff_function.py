"""Tests for the deterministic backoff functions f and g."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.backoff_function import (
    contention_window,
    expected_backoff_sum,
    f_fraction,
    f_raw,
    g_assignment,
    retry_backoff,
)
from repro.phy.constants import CW_MAX, CW_MIN


class TestContentionWindow:
    def test_standard_schedule(self):
        # 31, 63, 127, 255, 511, 1023, 1023, ...
        assert contention_window(1) == 31
        assert contention_window(2) == 63
        assert contention_window(3) == 127
        assert contention_window(6) == 1023
        assert contention_window(7) == 1023

    def test_attempt_must_be_positive(self):
        with pytest.raises(ValueError):
            contention_window(0)

    def test_huge_attempt_does_not_overflow(self):
        assert contention_window(10_000) == CW_MAX

    @given(st.integers(min_value=1, max_value=20))
    def test_monotone_nondecreasing(self, attempt):
        assert contention_window(attempt + 1) >= contention_window(attempt)


class TestFRaw:
    def test_paper_formula(self):
        # f = (5*X + 2*attempt + 1) mod 32, X = (backoff + nodeId) mod 32
        backoff, node_id, attempt = 10, 3, 2
        x = (backoff + node_id) % 32
        assert f_raw(backoff, node_id, attempt) == (5 * x + 2 * attempt + 1) % 32

    @given(
        st.integers(min_value=0, max_value=4000),
        st.integers(min_value=0, max_value=300),
        st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=200)
    def test_range(self, backoff, node_id, attempt):
        assert 0 <= f_raw(backoff, node_id, attempt) <= CW_MIN

    def test_deterministic(self):
        assert f_raw(7, 4, 3) == f_raw(7, 4, 3)

    def test_colliding_nodes_separate(self):
        """Distinct nodeIds with the same backoff map to distinct values.

        a=5 is coprime with 32, so x -> 5x + c is a bijection mod 32:
        two colliding senders sharing a backoff value but different
        (mod-32) identities always compute different retry backoffs.
        """
        backoff, attempt = 12, 2
        outputs = {f_raw(backoff, node, attempt) for node in range(32)}
        assert len(outputs) == 32

    def test_negative_backoff_rejected(self):
        with pytest.raises(ValueError):
            f_raw(-1, 0, 1)

    def test_attempt_zero_rejected(self):
        with pytest.raises(ValueError):
            f_raw(0, 0, 0)


class TestFraction:
    @given(
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=100)
    def test_in_unit_interval(self, backoff, node_id, attempt):
        assert 0.0 <= f_fraction(backoff, node_id, attempt) <= 32 / 31


class TestRetryBackoff:
    @given(
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=100)
    def test_bounded_by_window(self, backoff, node_id, attempt):
        value = retry_backoff(backoff, node_id, attempt)
        cw = contention_window(attempt)
        # round(fraction * cw) with fraction <= 32/31 can exceed cw by
        # at most cw/31; assert the practical bound.
        assert 0 <= value <= cw + cw // 31 + 1

    def test_receiver_can_reconstruct(self):
        """Sender and receiver evaluate the identical function."""
        sender_view = retry_backoff(17, 5, 3)
        receiver_view = retry_backoff(17, 5, 3)
        assert sender_view == receiver_view


class TestExpectedBackoffSum:
    def test_first_attempt_only_is_assigned(self):
        assert expected_backoff_sum(21, 9, 1, 1) == 21

    def test_paper_formula_from_ack(self):
        """B_exp = backoff + sum_{i=2}^{attempt} f(...)*CW_i."""
        assigned, node = 14, 6
        expected = assigned + sum(
            retry_backoff(assigned, node, i) for i in (2, 3)
        )
        assert expected_backoff_sum(assigned, node, 1, 3) == expected

    def test_mid_exchange_reference_skips_consumed_stages(self):
        """After a CTS for attempt 2, only stages >= 3 are observable."""
        assigned, node = 14, 6
        assert expected_backoff_sum(assigned, node, 3, 4) == (
            retry_backoff(assigned, node, 3) + retry_backoff(assigned, node, 4)
        )

    def test_invalid_stage_ranges(self):
        with pytest.raises(ValueError):
            expected_backoff_sum(5, 1, 0, 1)
        with pytest.raises(ValueError):
            expected_backoff_sum(5, 1, 3, 2)

    @given(
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=0, max_value=50),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=100)
    def test_monotone_in_last_stage(self, assigned, node, last):
        shorter = expected_backoff_sum(assigned, node, 1, last)
        longer = expected_backoff_sum(assigned, node, 1, last + 1)
        assert longer >= shorter


class TestG:
    @given(
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=100_000),
    )
    @settings(max_examples=100)
    def test_range(self, receiver, sender, counter):
        assert 0 <= g_assignment(receiver, sender, counter) <= CW_MIN

    def test_deterministic_and_shared(self):
        assert g_assignment(1, 2, 3) == g_assignment(1, 2, 3)

    def test_varies_with_counter(self):
        values = {g_assignment(1, 2, c) for c in range(64)}
        assert len(values) > 10  # spread over the range, not constant

    def test_roughly_uniform(self):
        counts = [0] * (CW_MIN + 1)
        n = 8000
        for c in range(n):
            counts[g_assignment(9, 4, c)] += 1
        expected = n / (CW_MIN + 1)
        assert all(0.5 * expected < k < 1.5 * expected for k in counts)
