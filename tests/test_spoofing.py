"""Address-spoofing misbehavior and the authentication countermeasure."""

import pytest

from repro.core.sender_policy import PartialCountdownPolicy
from repro.mac.correct import CorrectMac
from repro.mac.spoofing import AuthenticatingReceiverMac, SpoofingSenderMac

from tests.conftest import World

ALIASES = (201, 202, 203, 204, 205, 206)


def cheater_throughput(w, duration_us):
    """The spoofer's goodput is recorded under its alias addresses."""
    return sum(
        w.collector.throughput_bps(alias, duration_us)
        for alias in ALIASES + (3,)
    )


def spoofing_world(authenticated: bool, seed: int = 71):
    """One spoofing cheater vs two honest senders at a CORRECT AP."""
    resolver = (lambda addr: 3 if addr in ALIASES else addr) if authenticated \
        else None
    w = World(seed=seed)
    w.add_receiver(
        AuthenticatingReceiverMac, 0, (0.0, 0.0),
        identity_resolver=resolver,
    )
    w.add_sender(CorrectMac, 1, (150.0, 0.0), dst=0)
    w.add_sender(CorrectMac, 2, (-150.0, 0.0), dst=0)
    w.add_sender(
        SpoofingSenderMac, 3, (0.0, 150.0), dst=0,
        aliases=ALIASES, policy=PartialCountdownPolicy(80.0),
    )
    return w


class TestSpoofingAttack:
    def test_aliases_rotate_on_air(self):
        from repro.sim.trace import TraceLog

        w = spoofing_world(authenticated=False)
        w.medium.trace = TraceLog()
        w.run(500_000)
        rts_sources = {
            e.data["dst"] for e in w.medium.trace
            if e.kind == "tx_start" and e.node == 3
            and e.data["frame_kind"] == "rts"
        }
        # Frames from node 3 are addressed to the AP...
        assert rts_sources == {0}
        # ...and the AP opened monitors under several alias identities.
        receiver = w.nodes[0].mac
        alias_monitors = set(receiver._monitors) & set(ALIASES)
        assert len(alias_monitors) >= 3

    def test_spoofing_evades_penalties_and_diagnosis(self):
        w = spoofing_world(authenticated=False)
        w.run(3_000_000)
        receiver = w.nodes[0].mac
        flagged = [
            alias for alias in ALIASES
            if alias in receiver._monitors
            and receiver._monitors[alias].is_misbehaving
        ]
        # No single alias accumulates enough history to be diagnosed.
        assert len(flagged) <= 1
        # And the cheater clears more than an honest share.
        cheat = cheater_throughput(w, 3_000_000)
        honest = (w.collector.throughput_bps(1, 3_000_000)
                  + w.collector.throughput_bps(2, 3_000_000)) / 2
        assert cheat > 1.25 * honest

    def test_alias_rotation_resets_monitor_history(self):
        w = spoofing_world(authenticated=False)
        w.run(2_000_000)
        receiver = w.nodes[0].mac
        alias_monitors = [
            receiver._monitors[a] for a in ALIASES
            if a in receiver._monitors
        ]
        # History is split across many shallow monitors.
        assert len(alias_monitors) >= 3
        per_alias = [m.packets_observed for m in alias_monitors]
        total = sum(per_alias)
        assert max(per_alias) < total


class TestAuthenticationCountermeasure:
    def test_principal_monitoring_restores_diagnosis(self):
        w = spoofing_world(authenticated=True)
        w.run(3_000_000)
        receiver = w.nodes[0].mac
        # All aliases resolved to principal 3: one deep monitor.
        monitor = receiver.monitor_for(3)
        assert monitor.packets_observed > 50
        assert monitor.is_misbehaving
        assert monitor.deviations_observed > 10

    def test_principal_monitoring_restores_restraint(self):
        unauth = spoofing_world(authenticated=False, seed=72)
        unauth.run(3_000_000)
        auth = spoofing_world(authenticated=True, seed=72)
        auth.run(3_000_000)
        cheat_unauth = cheater_throughput(unauth, 3_000_000)
        cheat_auth = cheater_throughput(auth, 3_000_000)
        assert cheat_auth < 0.75 * cheat_unauth

    def test_honest_senders_unaffected_by_resolver(self):
        w = spoofing_world(authenticated=True)
        w.run(2_000_000)
        receiver = w.nodes[0].mac
        for honest in (1, 2):
            monitor = receiver.monitor_for(honest)
            assert not monitor.is_misbehaving


class TestConstruction:
    def test_needs_aliases(self):
        w = World()
        with pytest.raises(ValueError):
            w.add_sender(SpoofingSenderMac, 3, (0.0, 150.0), dst=0,
                         aliases=())
