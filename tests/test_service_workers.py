"""Tests for multi-process ingest (repro.service.workers + spool).

Covers worker routing (disjointness, decorrelation from shard
placement), the scatter-gather query surface, the merged ``/verdicts``
cursor (no loss, no duplication across limited polls), the
crash-safety of the flag spool (graceful restart, SIGKILL restart,
torn-tail repair), and the subsystem's inherited central promise: the
worker pool serves the identical verdicts the single-process service
does on the same stream.
"""

from __future__ import annotations

import io
import json
import os
import signal
import threading
import time

import pytest

from repro.detect import Observation
from repro.service import (
    DetectionService,
    FlagSpool,
    IngestWorkerPool,
    ServiceHTTPServer,
    SpoolError,
    WireError,
    encode_record,
    ingest_stream,
    read_spool_events,
    shard_of,
    spool_path,
    worker_of,
)
from repro.service.store import FlagEvent


def obs(b_exp, b_act, retries=1, time_us=0):
    return Observation(b_exp=b_exp, b_act=b_act, retries=retries,
                       time_us=time_us)


def cheat_line(sender, time_us=0):
    return encode_record(sender, obs(31.0, 0.0, time_us=time_us))


def honest_line(sender, time_us=0):
    return encode_record(sender, obs(31.0, 31.0, time_us=time_us))


@pytest.fixture
def pool3():
    pool = IngestWorkerPool(workers=3, shards=4, max_entries=1_000)
    try:
        yield pool
    finally:
        pool.close()


# ----------------------------------------------------------------------
# Routing
# ----------------------------------------------------------------------
class TestWorkerOf:
    def test_deterministic_and_in_range(self):
        for sender in ("1", "3", "node-x", "ffff"):
            index = worker_of(sender, 4)
            assert 0 <= index < 4
            assert index == worker_of(sender, 4)

    def test_spreads_keys(self):
        hit = {worker_of(str(i), 4) for i in range(1000)}
        assert hit == set(range(4))

    def test_single_worker_owns_everything(self):
        assert all(worker_of(str(i), 1) == 0 for i in range(100))

    def test_decorrelated_from_shard_placement(self):
        """The reason worker_of has its own crc seed: the senders one
        worker owns must still spread over all of that worker's
        shards.  With worker_of == shard_of, worker k of 4 would only
        ever fill shards {k, k+4} of 8."""
        workers, shards = 4, 8
        for worker in range(workers):
            owned = [str(i) for i in range(4_000)
                     if worker_of(str(i), workers) == worker]
            hit = {shard_of(sender, shards) for sender in owned}
            assert hit == set(range(shards)), (
                f"worker {worker}'s senders land on only {sorted(hit)} "
                f"of {shards} shards: worker/shard placement correlated"
            )


# ----------------------------------------------------------------------
# Pool ingest + scatter-gather queries
# ----------------------------------------------------------------------
class TestIngestWorkerPool:
    def test_requires_at_least_one_worker(self):
        with pytest.raises(ValueError, match="workers"):
            IngestWorkerPool(workers=0)

    def test_ingest_and_merged_stats(self, pool3):
        for i in range(300):
            pool3.ingest_line(honest_line(str(i % 30), time_us=i))
        pool3.barrier()
        stats = pool3.api_stats()
        assert stats["workers"] == 3
        assert stats["observations"] == 300
        assert stats["decode_errors"] == 0
        assert stats["misroutes"] == 0
        assert stats["store"]["entries"] == 30
        assert len(stats["per_worker"]) == 3
        # Every observation landed on exactly one worker.
        assert sum(w["observations"] for w in stats["per_worker"]) == 300

    def test_malformed_line_raises_before_routing(self, pool3):
        with pytest.raises(WireError):
            pool3.ingest_line("{broken")
        with pytest.raises(WireError):
            pool3.ingest_line(json.dumps({"v": 1, "b_exp": 1}))

    def test_ingest_stream_compatibility(self, pool3):
        """The stdin pump drives the pool exactly like a service."""
        lines = [honest_line("a"), "", "{broken", honest_line("b")]
        errors = io.StringIO()
        ingested, rejected = ingest_stream(pool3, lines, errors=errors)
        assert (ingested, rejected) == (2, 1)
        pool3.barrier()
        stats = pool3.api_stats()
        assert stats["observations"] == 2
        assert stats["decode_errors"] == 1

    def test_exotic_sender_routed_via_full_decode(self, pool3):
        """A \\u-escaped sender defeats the fast scan; the router must
        fall back to a strict decode and still route it correctly."""
        pool3.ingest_line(encode_record("ü", obs(31.0, 0.0)))
        pool3.barrier()
        stats = pool3.api_stats()
        assert stats["observations"] == 1
        assert stats["misroutes"] == 0
        snapshot = pool3.api_sender("ü")
        assert snapshot is not None and snapshot["flagged"] is True

    def test_sender_query_routes_to_owning_worker(self, pool3):
        for i in range(60):
            pool3.ingest_line(honest_line(str(i)))
        for sender in ("0", "17", "42"):
            snapshot = pool3.api_sender(sender)
            assert snapshot["sender"] == sender
            assert snapshot["worker"] == worker_of(sender, 3)
        assert pool3.api_sender("never-seen") is None

    def test_queries_observe_all_prior_ingest_without_barrier(self, pool3):
        """FIFO pipes + batch flush before queries: a query issued
        after ingest_line returned sees that line, no explicit
        barrier needed."""
        for i in range(10):
            pool3.ingest_line(cheat_line(f"cheat-{i}", time_us=i))
        stats = pool3.api_stats()  # no barrier()
        assert stats["observations"] == 10
        assert stats["store"]["currently_flagged"] == 10

    def test_close_is_idempotent(self):
        pool = IngestWorkerPool(workers=2)
        pool.ingest_line(honest_line("a"))
        pool.close()
        pool.close()


class TestMergedVerdicts:
    def test_merged_events_tag_worker_and_seq(self, pool3):
        for i in range(12):
            pool3.ingest_line(cheat_line(f"cheat-{i}", time_us=i))
        payload = pool3.api_verdicts()
        assert len(payload["events"]) == 12
        for event in payload["events"]:
            assert event["worker"] == worker_of(event["sender"], 3)
            assert event["seq"] >= 1
            assert "id" not in event  # (worker, seq) is the identity
        assert payload["gap"] is False
        assert sorted(payload["flagged"]) == payload["flagged"]
        assert len(payload["flagged"]) == 12

    def test_merge_is_chronological(self, pool3):
        """Flags ingested in a known wall-clock order come back merged
        in that order even though three logs were scattered."""
        for i in range(9):
            pool3.ingest_line(cheat_line(f"cheat-{i}", time_us=i))
            pool3.barrier()  # serialize: each flag's wall strictly later
        payload = pool3.api_verdicts()
        assert [e["sender"] for e in payload["events"]] \
            == [f"cheat-{i}" for i in range(9)]

    def test_cursor_walk_loses_nothing(self, pool3):
        """Walking the merged history with every limit must visit each
        (worker, seq) exactly once — the ISSUE's cursor-resumption
        contract."""
        for i in range(20):
            pool3.ingest_line(cheat_line(f"cheat-{i}", time_us=i))
        pool3.barrier()
        full = [(e["worker"], e["seq"])
                for e in pool3.api_verdicts()["events"]]
        assert len(full) == 20
        for limit in (1, 3, 7, 20, 50):
            walked, cursor, polls = [], None, 0
            while True:
                payload = pool3.api_verdicts(cursor, limit)
                if not payload["events"]:
                    break
                walked.extend(
                    (e["worker"], e["seq"]) for e in payload["events"]
                )
                cursor = payload["next"]
                polls += 1
                assert polls <= 40, "cursor walk failed to terminate"
            assert walked == full, f"walk with limit={limit} diverged"

    def test_cursor_validation(self, pool3):
        with pytest.raises(ValueError, match="3"):
            pool3.api_verdicts("1.2")  # wrong component count
        with pytest.raises(ValueError, match="integer"):
            pool3.api_verdicts("a.b.c")
        with pytest.raises(ValueError, match=">= 0"):
            pool3.api_verdicts("-1.0.0")
        # "0" and None both mean "from the beginning".
        assert pool3.api_verdicts("0") == pool3.api_verdicts(None)

    def test_watch_returns_events_or_times_out(self, pool3):
        payload = pool3.api_watch(timeout=0.05)
        assert payload["events"] == []
        pool3.ingest_line(cheat_line("cheat"))
        payload = pool3.api_watch(timeout=5.0)
        assert [e["sender"] for e in payload["events"]] == ["cheat"]


# ----------------------------------------------------------------------
# Equivalence with the single-process service
# ----------------------------------------------------------------------
class TestPoolEquivalence:
    def test_pool_verdicts_identical_to_single_process(self):
        """The inherited central contract: sharding ingest over worker
        processes changes nothing about who gets flagged, when (in
        stream time), or after how many observations."""
        lines = []
        for i in range(600):
            sender = str(i % 40)
            cheating = int(sender) % 8 == 3
            lines.append(
                cheat_line(sender, time_us=i) if cheating
                else honest_line(sender, time_us=i)
            )
        single = DetectionService(shards=4, max_entries=1_000)
        for line in lines:
            single.ingest_line(line)
        pool = IngestWorkerPool(workers=4, shards=4, max_entries=1_000)
        try:
            pool.ingest_lines(lines)
            pool.barrier()
            single_payload = single.api_verdicts("0")
            pool_payload = pool.api_verdicts()

            def key(event):
                return (event["sender"], event["time_us"],
                        event["observations"])

            assert sorted(map(key, pool_payload["events"])) \
                == sorted(map(key, single_payload["events"]))
            assert pool_payload["flagged"] == single_payload["flagged"]
            # And the honest-sender-never-flagged invariant holds.
            assert all(int(s) % 8 == 3 for s in pool_payload["flagged"])
            for sender in ("3", "11", "0", "1"):
                mine = pool.api_sender(sender)
                theirs = single.api_sender(sender)
                for field in ("flagged", "observations",
                              "flagged_observations", "transitions"):
                    assert mine[field] == theirs[field]
        finally:
            pool.close()

    def test_multi_worker_bench_invariants_at_toy_scale(self):
        from repro.service import BenchConfig, run_bench

        config = BenchConfig(senders=2_000, observations=8_000,
                             shards=2, max_entries=400, seed=3,
                             workers=2)
        result = run_bench(config)  # asserts honest-never-flagged
        assert result.distinct_senders == 2_000
        assert result.flagged > 0
        assert result.obs_per_sec > 0
        record = result.to_record()
        assert record["workers"] == 2
        assert record["cores"] >= 1


# ----------------------------------------------------------------------
# HTTP API over the pool
# ----------------------------------------------------------------------
class TestPoolHttpApi:
    def test_endpoints_over_pool(self):
        import urllib.request

        pool = IngestWorkerPool(workers=2, shards=2, max_entries=100)
        server = ServiceHTTPServer(pool)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            base = f"http://{host}:{port}"
            for i in range(5):
                pool.ingest_line(cheat_line(f"cheat-{i}", time_us=i))
            pool.barrier()

            def get(url):
                try:
                    with urllib.request.urlopen(url, timeout=10) as resp:
                        return resp.status, json.loads(resp.read())
                except urllib.error.HTTPError as error:
                    return error.code, json.loads(error.read())

            status, body = get(f"{base}/stats")
            assert status == 200 and body["observations"] == 5
            status, body = get(f"{base}/verdicts")
            assert status == 200 and len(body["events"]) == 5
            cursor = body["next"]
            status, body = get(f"{base}/verdicts?after={cursor}")
            assert status == 200 and body["events"] == []
            assert body["next"] == cursor
            status, body = get(f"{base}/verdicts?after=0.1.2")
            assert status == 400 and "2 dot-joined" in body["error"]
            status, body = get(f"{base}/senders/cheat-0")
            assert status == 200 and body["flagged"] is True
        finally:
            server.shutdown()
            server.server_close()
            pool.close()


# ----------------------------------------------------------------------
# Spool: crash-safe flag history
# ----------------------------------------------------------------------
def _flag_event(sender, time_us=100):
    return FlagEvent(sender=sender, time_us=time_us, wall=2.25,
                     first_obs_wall=1.5, observations=4)


class TestFlagSpool:
    def test_round_trip(self, tmp_path):
        path = spool_path(tmp_path, 0, 1)
        with FlagSpool(path, detector="window") as spool:
            assert spool.replayed == []
            for i in range(5):
                spool.append(_flag_event(str(i), time_us=i))
        with FlagSpool(path, detector="window") as spool:
            assert [e.sender for e in spool.replayed] \
                == [str(i) for i in range(5)]
            assert not spool.repaired
            # Wall clocks round-trip exactly (JSON float repr).
            assert spool.replayed[0] == _flag_event("0", time_us=0)

    def test_replay_appends_only_new_events(self, tmp_path):
        path = spool_path(tmp_path, 0, 1)
        with FlagSpool(path, detector="window") as spool:
            spool.append(_flag_event("a"))
        with FlagSpool(path, detector="window") as spool:
            spool.append(_flag_event("b"))
        events = read_spool_events(path)
        assert [e.sender for e in events] == ["a", "b"]  # no dupes

    def test_torn_tail_repaired_on_reopen(self, tmp_path):
        path = spool_path(tmp_path, 0, 1)
        with FlagSpool(path, detector="window") as spool:
            spool.append(_flag_event("kept"))
        with path.open("ab") as fh:
            fh.write(b"deadbeef {\"torn mid-append")  # no newline
        with FlagSpool(path, detector="window") as spool:
            assert spool.repaired
            assert [e.sender for e in spool.replayed] == ["kept"]
        # The repair truncated the torn bytes away durably.
        with FlagSpool(path, detector="window") as spool:
            assert not spool.repaired

    def test_geometry_and_detector_mismatch_refused(self, tmp_path):
        path = spool_path(tmp_path, 0, 2)
        FlagSpool(path, detector="window", worker=0, workers=2).close()
        with pytest.raises(SpoolError, match="workers"):
            FlagSpool(path, detector="window", worker=0, workers=4)
        with pytest.raises(SpoolError, match="detector"):
            FlagSpool(path, detector="cusum:h=2.0,k=0.25",
                      worker=0, workers=2)
        with pytest.raises(SpoolError, match="worker"):
            FlagSpool(spool_path(tmp_path, 0, 2), detector="window",
                      worker=1, workers=2)

    def test_worker_slot_validation(self, tmp_path):
        with pytest.raises(ValueError, match="worker"):
            FlagSpool(tmp_path / "x.jsonl", detector="window",
                      worker=2, workers=2)

    def test_not_a_spool_refused(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        from repro.experiments.campaign.journal import encode_record \
            as enc
        path.write_text(enc({"kind": "campaign", "schema": 1}) + "\n")
        with pytest.raises(SpoolError, match="not a flag spool"):
            FlagSpool(path, detector="window")


class TestPoolRestartReplay:
    def _flag_some(self, pool, n=9):
        for i in range(n):
            pool.ingest_line(cheat_line(f"cheat-{i}", time_us=i))
        pool.barrier()

    def test_graceful_restart_replays_history(self, tmp_path):
        pool = IngestWorkerPool(workers=3, spool_dir=tmp_path)
        self._flag_some(pool)
        before = pool.api_verdicts()
        pool.close()

        restarted = IngestWorkerPool(workers=3, spool_dir=tmp_path)
        try:
            assert restarted.replayed_flags == 9
            after = restarted.api_verdicts()
            assert after["events"] == before["events"]  # byte-identical
            assert restarted.api_stats()["replayed_flags"] == 9
        finally:
            restarted.close()

    def test_sigkill_restart_replays_history(self, tmp_path):
        """SIGKILL every worker mid-flight: appends are flushed per
        event, so the restarted pool replays every published flag —
        no graceful shutdown required."""
        pool = IngestWorkerPool(workers=3, spool_dir=tmp_path)
        self._flag_some(pool)
        before = pool.api_verdicts()
        for handle in pool._handles:
            os.kill(handle.process.pid, signal.SIGKILL)
        deadline = time.monotonic() + 30.0
        for handle in pool._handles:
            handle.process.join(max(0.1, deadline - time.monotonic()))
        pool.close()  # reaps; pipes are already dead

        restarted = IngestWorkerPool(workers=3, spool_dir=tmp_path)
        try:
            assert restarted.replayed_flags == 9
            after = restarted.api_verdicts()
            assert after["events"] == before["events"]
            # Replayed flags keep flowing into the same spool:
            # flag one more and restart again.
            restarted.ingest_line(cheat_line("late", time_us=99))
            restarted.barrier()
        finally:
            restarted.close()
        third = IngestWorkerPool(workers=3, spool_dir=tmp_path)
        try:
            assert third.replayed_flags == 10
        finally:
            third.close()

    def test_restart_with_different_worker_count_refused(self, tmp_path):
        pool = IngestWorkerPool(workers=2, spool_dir=tmp_path)
        self._flag_some(pool, n=4)
        pool.close()
        from repro.service import WorkerPoolError
        with pytest.raises(WorkerPoolError, match="workers"):
            IngestWorkerPool(workers=3, spool_dir=tmp_path)

    def test_single_process_and_pool_spools_are_distinct(self, tmp_path):
        """A 1-worker pool and a bare DetectionService use the same
        spool slot (worker 0 of 1): history written by one is replayed
        by the other."""
        service = DetectionService(
            spool=FlagSpool(spool_path(tmp_path, 0, 1), detector="window")
        )
        service.ingest_observation("cheat", obs(31.0, 0.0))
        service.close()
        pool = IngestWorkerPool(workers=1, spool_dir=tmp_path)
        try:
            assert pool.replayed_flags == 1
            assert [e["sender"] for e in pool.api_verdicts()["events"]] \
                == ["cheat"]
        finally:
            pool.close()
