"""Tests for the Bianchi saturation model and sim-vs-theory validation."""

import pytest

from repro.analysis.bianchi import saturation_throughput, solve_tau
from repro.experiments.scenarios import (
    PROTOCOL_80211,
    ScenarioConfig,
    run_scenario,
)
from repro.net.topology import circle_topology


class TestTau:
    def test_single_station_closed_form(self):
        # p = 0: tau = 2/(W+2) with W = CWmin + 1 = 32... the standard
        # single-station result for CWmin=31 is 2/33 with mean backoff
        # CWmin/2; our convention gives 2/(CWmin+2).
        assert solve_tau(1) == pytest.approx(2.0 / 33, rel=0.05)

    def test_tau_decreases_with_contention(self):
        taus = [solve_tau(n) for n in (2, 4, 8, 16, 32)]
        assert all(a > b for a, b in zip(taus, taus[1:]))

    def test_tau_in_unit_interval(self):
        for n in (1, 2, 7, 50):
            assert 0.0 < solve_tau(n) < 1.0

    def test_fixed_point_property(self):
        n = 8
        tau = solve_tau(n)
        p = 1.0 - (1.0 - tau) ** (n - 1)
        from repro.analysis.bianchi import _tau_given_p

        assert _tau_given_p(p, 32, 5) == pytest.approx(tau, abs=1e-6)

    def test_invalid_station_count(self):
        with pytest.raises(ValueError):
            solve_tau(0)


class TestSaturationThroughput:
    def test_aggregate_decreases_slowly_with_n(self):
        """Classic DCF result: aggregate throughput degrades gently."""
        s2 = saturation_throughput(2).throughput_bps
        s32 = saturation_throughput(32).throughput_bps
        assert s32 < s2
        assert s32 > 0.5 * s2  # RTS/CTS keeps collisions cheap

    def test_per_station_scales_inversely(self):
        s8 = saturation_throughput(8)
        assert s8.per_station_bps == pytest.approx(
            s8.throughput_bps / 8
        )

    def test_collision_probability_grows_with_n(self):
        p4 = saturation_throughput(4).collision_probability
        p16 = saturation_throughput(16).collision_probability
        assert p16 > p4

    def test_throughput_below_channel_rate(self):
        for n in (1, 8, 64):
            assert saturation_throughput(n).throughput_bps < 2_000_000

    def test_modified_protocol_slightly_lower(self):
        plain = saturation_throughput(8, modified_protocol=False)
        modified = saturation_throughput(8, modified_protocol=True)
        assert modified.throughput_bps <= plain.throughput_bps


class TestSimulatorAgreesWithTheory:
    """The substrate validation: simulated DCF vs the Markov model."""

    @pytest.mark.parametrize("n", [2, 8])
    def test_aggregate_throughput_within_tolerance(self, n):
        topo = circle_topology(n)
        result = run_scenario(ScenarioConfig(
            topology=topo, protocol=PROTOCOL_80211,
            duration_us=3_000_000, seed=1,
        ))
        simulated = sum(result.throughputs().values())
        predicted = saturation_throughput(n).throughput_bps
        # Different approximations on both sides: 20% tolerance.
        assert abs(simulated - predicted) / predicted < 0.20, (
            f"n={n}: simulated={simulated:.0f} predicted={predicted:.0f}"
        )
