"""Property-based invariants of the full simulation.

These run many tiny simulations with hypothesis-chosen parameters and
check global properties that must hold regardless of topology, seed or
misbehavior: conservation (you cannot deliver more than the channel
can carry), determinism, and bounded metrics.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.scenarios import (
    PROTOCOL_80211,
    PROTOCOL_CORRECT,
    ScenarioConfig,
    run_scenario,
)
from repro.net.topology import circle_topology
from repro.phy.constants import CHANNEL_BIT_RATE

TINY_DURATION = 400_000  # 0.4 s per hypothesis example


def tiny_config(n, pm, seed, protocol):
    topo = circle_topology(
        n, misbehaving=(1,) if pm > 0 else (), pm_percent=pm
    )
    return ScenarioConfig(
        topology=topo, protocol=protocol,
        duration_us=TINY_DURATION, seed=seed,
    )


class TestConservation:
    @given(
        st.integers(min_value=1, max_value=6),
        st.sampled_from([0.0, 50.0, 100.0]),
        st.integers(min_value=1, max_value=50),
        st.sampled_from([PROTOCOL_80211, PROTOCOL_CORRECT]),
    )
    @settings(max_examples=12, deadline=None)
    def test_goodput_bounded_by_channel_rate(self, n, pm, seed, protocol):
        result = run_scenario(tiny_config(n, pm, seed, protocol))
        total = sum(result.throughputs().values())
        assert total <= CHANNEL_BIT_RATE

    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=8, deadline=None)
    def test_metrics_within_ranges(self, n, seed):
        result = run_scenario(tiny_config(n, 100.0, seed, PROTOCOL_CORRECT))
        assert 0.0 <= result.correct_diagnosis_percent <= 100.0
        assert 0.0 <= result.misdiagnosis_percent <= 100.0
        assert 0.0 < result.fairness_index <= 1.0


class TestDeterminism:
    @given(
        st.integers(min_value=1, max_value=5),
        st.sampled_from([0.0, 70.0]),
        st.integers(min_value=1, max_value=30),
    )
    @settings(max_examples=6, deadline=None)
    def test_rerun_is_bit_identical(self, n, pm, seed):
        a = run_scenario(tiny_config(n, pm, seed, PROTOCOL_CORRECT))
        b = run_scenario(tiny_config(n, pm, seed, PROTOCOL_CORRECT))
        assert a.events_processed == b.events_processed
        assert a.throughputs() == b.throughputs()
        assert len(a.collector.deliveries) == len(b.collector.deliveries)


class TestAccountingConsistency:
    @given(
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=1, max_value=25),
    )
    @settings(max_examples=8, deadline=None)
    def test_sender_and_receiver_counts_agree(self, n, seed):
        """Every receiver-counted delivery has a sender-side ACK, give
        or take the final in-flight exchange."""
        from repro.experiments.scenarios import build_scenario

        config = tiny_config(n, 0.0, seed, PROTOCOL_CORRECT)
        sim, nodes, collector = build_scenario(config)
        for node in nodes:
            node.start()
        sim.run(until=config.duration_us)
        delivered = sum(s.delivered_packets for s in collector.flows.values())
        acked = sum(s.acked_packets for s in collector.flows.values())
        # ACKs can trail deliveries by at most the number of senders
        # (one in-flight exchange each at the horizon).
        assert 0 <= delivered - acked <= n
