"""Tests for the pluggable detection subsystem (repro.detect)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.diagnosis import DiagnosisWindow
from repro.core.monitor import SenderMonitor
from repro.core.params import PAPER_CONFIG
from repro.detect import (
    OBSERVATION_SCHEMA_VERSION,
    CusumDetector,
    CwminEstimatorDetector,
    Detector,
    DetectorSpecError,
    Observation,
    ObservationDecodeError,
    WindowDetector,
    detector_factory,
    make_detector,
    parse_spec,
    registered_detectors,
)

#: Observation streams used by property tests: (b_exp, b_act) pairs.
pairs = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1000.0),
        st.floats(min_value=0.0, max_value=1000.0),
    ),
    min_size=1,
    max_size=80,
)


def obs(b_exp, b_act, retries=1, time_us=0):
    return Observation(b_exp=b_exp, b_act=b_act, retries=retries,
                       time_us=time_us)


class TestObservation:
    def test_difference_matches_deviation_arithmetic(self):
        assert obs(31, 7).difference == float(31 - 7)
        assert obs(3.5, 10.0).difference == -6.5

    def test_frozen(self):
        with pytest.raises(AttributeError):
            obs(1, 2).b_exp = 3

    def test_protocol_conformance(self):
        for spec in registered_detectors():
            assert isinstance(
                make_detector(spec, PAPER_CONFIG), Detector
            )


#: JSON-representable observations (finite floats only; JSON has no
#: portable NaN/Inf, and from_dict rejects them anyway).
observations = st.builds(
    Observation,
    b_exp=st.floats(min_value=0.0, max_value=1e6,
                    allow_nan=False, allow_infinity=False),
    b_act=st.floats(min_value=0.0, max_value=1e6,
                    allow_nan=False, allow_infinity=False),
    retries=st.integers(min_value=1, max_value=16),
    time_us=st.integers(min_value=0, max_value=10**12),
)


class TestObservationCodec:
    """The versioned to_dict/from_dict wire schema (strict by design)."""

    @given(observations)
    @settings(max_examples=200)
    def test_round_trip(self, observation):
        """from_dict(to_dict(o)) == o, including through real JSON."""
        import json

        record = observation.to_dict()
        assert record["v"] == OBSERVATION_SCHEMA_VERSION
        assert Observation.from_dict(record) == observation
        rewired = json.loads(json.dumps(record))
        assert Observation.from_dict(rewired) == observation

    def _rejects(self, data, *needles):
        with pytest.raises(ObservationDecodeError) as err:
            Observation.from_dict(data)
        message = str(err.value)
        for needle in needles:
            assert needle in message, (
                f"error message {message!r} does not name {needle!r}"
            )

    def test_non_mapping_rejected(self):
        self._rejects([1, 2, 3], "JSON object", "list")

    def test_missing_version_rejected(self):
        record = obs(31, 7).to_dict()
        del record["v"]
        self._rejects(record, "'v'")

    def test_unsupported_version_rejected(self):
        record = obs(31, 7).to_dict()
        record["v"] = 99
        self._rejects(record, "99", str(OBSERVATION_SCHEMA_VERSION))

    def test_missing_field_named(self):
        record = obs(31, 7).to_dict()
        del record["b_act"]
        self._rejects(record, "b_act", "missing")

    def test_unknown_field_named(self):
        record = obs(31, 7).to_dict()
        record["rssi"] = -42
        self._rejects(record, "rssi", "unknown")

    def test_bool_is_not_a_number(self):
        record = obs(31, 7).to_dict()
        record["b_exp"] = True
        self._rejects(record, "b_exp", "number")

    def test_bool_is_not_an_integer(self):
        record = obs(31, 7).to_dict()
        record["retries"] = True
        self._rejects(record, "retries", "integer")

    def test_non_finite_backoff_rejected(self):
        for bad in (float("nan"), float("inf")):
            record = obs(31, 7).to_dict()
            record["b_act"] = bad
            self._rejects(record, "b_act", "finite")

    def test_float_retries_rejected(self):
        record = obs(31, 7).to_dict()
        record["retries"] = 1.5
        self._rejects(record, "retries", "integer")

    def test_range_violations_rejected(self):
        record = obs(31, 7).to_dict()
        record["retries"] = 0
        self._rejects(record, "retries", ">= 1")
        record = obs(31, 7).to_dict()
        record["time_us"] = -5
        self._rejects(record, "time_us", ">= 0")


class TestWindowAdapter:
    @given(pairs)
    @settings(max_examples=100)
    def test_matches_diagnosis_window_verdict_for_verdict(self, stream):
        """The adapter and the raw window must agree on every packet."""
        raw = DiagnosisWindow(window=5, thresh=20.0)
        adapted = WindowDetector(window=5, thresh=20.0)
        for b_exp, b_act in stream:
            expected = raw.update(float(b_exp - b_act))
            assert adapted.observe(obs(b_exp, b_act)) is expected
            assert adapted.is_misbehaving is raw.is_misbehaving
            assert adapted.windowed_sum == raw.windowed_sum

    def test_counters_forward_to_window(self):
        det = WindowDetector(window=2, thresh=0.0)
        det.observe(obs(5, 0))   # sum 5 > 0: flagged
        det.observe(obs(0, 10))  # sum -5: clear
        assert det.observations == 2
        assert det.flagged_observations == 1

    def test_thresh_setter_reaches_window(self):
        det = WindowDetector(window=5, thresh=20.0)
        det.thresh = 100.0
        assert det.window.thresh == 100.0
        assert det.thresh == 100.0

    def test_reset(self):
        det = WindowDetector(window=3, thresh=5.0)
        det.observe(obs(100, 0))
        assert det.is_misbehaving
        det.reset()
        assert not det.is_misbehaving
        assert det.windowed_sum == 0.0


class TestCusum:
    def test_honest_stream_never_flagged(self):
        det = CusumDetector(h=2.0, k=0.25, norm=31.0)
        rng = random.Random(7)
        for _ in range(500):
            # Honest sender: deficit fluctuates around zero.
            x = rng.uniform(-10.0, 10.0)
            det.observe(obs(b_exp=x if x > 0 else 0.0,
                            b_act=-x if x < 0 else 0.0))
        assert not det.is_misbehaving

    def test_sustained_deficit_flags(self):
        det = CusumDetector(h=2.0, k=0.25, norm=31.0)
        flagged = False
        for _ in range(20):
            flagged = det.observe(obs(b_exp=31.0, b_act=3.0)) or flagged
        assert flagged and det.is_misbehaving

    def test_statistic_clamped_at_zero(self):
        det = CusumDetector(h=2.0, k=0.25, norm=31.0)
        for _ in range(50):
            det.observe(obs(b_exp=0.0, b_act=100.0))  # over-waiting
        assert det.statistic == 0.0

    def test_recovers_after_cheating_stops(self):
        det = CusumDetector(h=2.0, k=0.25, norm=31.0)
        for _ in range(20):
            det.observe(obs(b_exp=31.0, b_act=0.0))
        assert det.is_misbehaving
        for _ in range(200):
            det.observe(obs(b_exp=10.0, b_act=10.0))
        assert not det.is_misbehaving

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CusumDetector(h=0.0)
        with pytest.raises(ValueError):
            CusumDetector(k=-1.0)
        with pytest.raises(ValueError):
            CusumDetector(norm=0.0)


class TestEstimator:
    def test_silent_until_min_samples(self):
        det = CwminEstimatorDetector(fraction=0.5, min_samples=8,
                                     window=64, cw_min=31.0)
        for _ in range(7):
            assert not det.observe(obs(b_exp=31.0, b_act=0.0))
        assert det.observe(obs(b_exp=31.0, b_act=0.0))

    def test_estimate_tracks_ratio(self):
        det = CwminEstimatorDetector(cw_min=31.0)
        for _ in range(10):
            det.observe(obs(b_exp=30.0, b_act=15.0))
        assert det.estimate == pytest.approx(15.5)

    def test_honest_sender_not_flagged(self):
        det = CwminEstimatorDetector(fraction=0.5, min_samples=8,
                                     window=64, cw_min=31.0)
        rng = random.Random(11)
        for _ in range(300):
            b = rng.uniform(0.0, 62.0)
            det.observe(obs(b_exp=b, b_act=b + rng.uniform(-2.0, 2.0)))
        assert not det.is_misbehaving

    def test_window_eviction_forgets_old_cheating(self):
        det = CwminEstimatorDetector(fraction=0.5, min_samples=4,
                                     window=8, cw_min=31.0)
        for _ in range(8):
            det.observe(obs(b_exp=31.0, b_act=1.0))
        assert det.is_misbehaving
        for _ in range(8):  # honest samples push the cheating out
            det.observe(obs(b_exp=20.0, b_act=20.0))
        assert not det.is_misbehaving

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CwminEstimatorDetector(fraction=0.0)
        with pytest.raises(ValueError):
            CwminEstimatorDetector(fraction=1.0)
        with pytest.raises(ValueError):
            CwminEstimatorDetector(min_samples=0)
        with pytest.raises(ValueError):
            CwminEstimatorDetector(min_samples=10, window=5)
        with pytest.raises(ValueError):
            CwminEstimatorDetector(cw_min=0.0)


class TestRegistry:
    def test_builtins_registered(self):
        assert set(registered_detectors()) >= {
            "window", "cusum", "estimator"
        }

    def test_parse_plain_name(self):
        assert parse_spec("window") == ("window", {})

    def test_parse_with_params(self):
        name, params = parse_spec("cusum:h=2.5,k=0.1")
        assert name == "cusum"
        assert params == {"h": 2.5, "k": 0.1}

    def test_unknown_name_lists_registered(self):
        with pytest.raises(DetectorSpecError) as err:
            parse_spec("nonsense")
        msg = str(err.value)
        for name in registered_detectors():
            assert name in msg

    def test_empty_spec_rejected(self):
        with pytest.raises(DetectorSpecError):
            parse_spec("")
        with pytest.raises(DetectorSpecError):
            parse_spec("   ")

    def test_malformed_param_actionable(self):
        with pytest.raises(DetectorSpecError, match="key=value"):
            parse_spec("cusum:h")

    def test_unknown_param_lists_accepted(self):
        with pytest.raises(DetectorSpecError) as err:
            parse_spec("cusum:bogus=1")
        assert "h, k, norm" in str(err.value)

    def test_duplicate_param_rejected(self):
        with pytest.raises(DetectorSpecError, match="twice"):
            parse_spec("cusum:h=1,h=2")

    def test_non_numeric_value_rejected(self):
        with pytest.raises(DetectorSpecError, match="not a number"):
            parse_spec("cusum:h=abc")

    def test_invalid_value_cites_spec(self):
        with pytest.raises(DetectorSpecError, match="window:W=0"):
            make_detector("window:W=0", PAPER_CONFIG)

    def test_defaults_come_from_config(self):
        det = make_detector("window", PAPER_CONFIG)
        assert det.window.window == PAPER_CONFIG.window
        assert det.thresh == PAPER_CONFIG.thresh
        cus = make_detector("cusum", PAPER_CONFIG)
        assert cus.norm == float(PAPER_CONFIG.cw_min)
        est = make_detector("estimator", PAPER_CONFIG)
        assert est.cw_min == float(PAPER_CONFIG.cw_min)

    def test_spec_overrides_config(self):
        det = make_detector("window:W=64,thresh=40", PAPER_CONFIG)
        assert det.window.window == 64
        assert det.thresh == 40.0

    def test_factory_returns_fresh_instances(self):
        factory = detector_factory("cusum", PAPER_CONFIG)
        a, b = factory(), factory()
        assert a is not b
        a.observe(obs(31, 0))
        assert b.statistic == 0.0

    def test_factory_validates_eagerly(self):
        with pytest.raises(DetectorSpecError):
            detector_factory("nope", PAPER_CONFIG)

    @given(pairs)
    @settings(max_examples=25)
    def test_detectors_deterministic(self, stream):
        """Same observation stream -> same verdicts (no hidden RNG)."""
        for spec in registered_detectors():
            one = make_detector(spec, PAPER_CONFIG)
            two = make_detector(spec, PAPER_CONFIG)
            for b_exp, b_act in stream:
                o = obs(b_exp, b_act)
                assert one.observe(o) is two.observe(o)
            assert one.is_misbehaving is two.is_misbehaving


class TestRegistrySpecErrorTokens:
    """Spec errors must name the offending token, not just a category
    — operators paste spec strings into CLI flags and campaign files,
    and 'bad spec' without the token is undebuggable at a distance."""

    def _error(self, spec):
        with pytest.raises(DetectorSpecError) as err:
            parse_spec(spec)
        return str(err.value)

    def test_unknown_name_names_the_token(self):
        message = self._error("cusmu:h=2.0")
        assert "cusmu" in message
        for name in registered_detectors():
            assert name in message  # ...and offers the alternatives

    def test_unknown_param_names_the_token(self):
        message = self._error("window:treshold=20")
        assert "treshold" in message
        assert "W, thresh" in message

    def test_duplicate_param_names_the_key(self):
        assert "'k'" in self._error("cusum:k=1,k=2")

    def test_malformed_numeric_names_the_value(self):
        message = self._error("estimator:fraction=half")
        assert "half" in message and "fraction" in message

    def test_dangling_assignment_quotes_the_fragment(self):
        assert "'thresh='" in self._error("window:thresh=")

    def test_empty_spec_lists_registered(self):
        message = self._error("   ")
        for name in registered_detectors():
            assert name in message


def _detector_fingerprint(detector):
    """Every externally observable piece of detector state."""
    fingerprint = {
        "misbehaving": detector.is_misbehaving,
        "observations": getattr(detector, "observations", None),
        "flagged_observations": getattr(
            detector, "flagged_observations", None
        ),
    }
    for attr in ("windowed_sum", "statistic", "estimate", "thresh"):
        if hasattr(detector, attr):
            fingerprint[attr] = getattr(detector, attr)
    return fingerprint


class TestResetLifecycle:
    """reset() must equal fresh construction, bit for bit.

    The service's sharded store recycles evicted detector instances
    through reset() (repro.service.store), so an evicted-then-
    readmitted sender is judged by a recycled detector: any residue
    would make its verdicts diverge from a never-seen sender's.
    """

    @given(dirty=pairs, stream=pairs)
    @settings(max_examples=50)
    def test_reset_equals_fresh_for_all_families(self, dirty, stream):
        for spec in registered_detectors():
            recycled = make_detector(spec, PAPER_CONFIG)
            for b_exp, b_act in dirty:
                recycled.observe(obs(b_exp, b_act))
            recycled.reset()
            fresh = make_detector(spec, PAPER_CONFIG)
            assert _detector_fingerprint(recycled) == \
                _detector_fingerprint(fresh), spec
            for b_exp, b_act in stream:
                o = obs(b_exp, b_act)
                assert recycled.observe(o) is fresh.observe(o), spec
            assert _detector_fingerprint(recycled) == \
                _detector_fingerprint(fresh), spec


class _RecordingDetector:
    """Fake detector capturing what the monitor feeds it."""

    def __init__(self):
        self.seen = []

    def observe(self, observation):
        self.seen.append(observation)
        return False

    @property
    def is_misbehaving(self):
        return False

    def reset(self):
        self.seen.clear()


class TestMonitorIntegration:
    def _drive(self, monitor, idle, attempt=1):
        verdict = monitor.on_rts(attempt, idle, now_us=idle * 20)
        monitor.on_response_sent("ack", attempt, idle)
        return verdict

    def test_first_packet_not_fed_to_detector(self):
        det = _RecordingDetector()
        monitor = SenderMonitor(1, PAPER_CONFIG, random.Random(1),
                                detector=det)
        self._drive(monitor, idle=0)
        assert det.seen == []  # no expectation existed yet

    def test_subsequent_packets_feed_observations(self):
        det = _RecordingDetector()
        monitor = SenderMonitor(1, PAPER_CONFIG, random.Random(1),
                                detector=det)
        self._drive(monitor, idle=0)
        self._drive(monitor, idle=10)
        assert len(det.seen) == 1
        seen = det.seen[0]
        assert seen.b_act == 10
        assert seen.b_exp >= 0
        assert seen.retries == 1
        assert seen.time_us == 200

    def test_default_detector_is_paper_window(self):
        monitor = SenderMonitor(1, PAPER_CONFIG, random.Random(1))
        assert isinstance(monitor.detector, WindowDetector)
        assert isinstance(monitor.diagnosis, DiagnosisWindow)
        assert monitor.diagnosis.window == PAPER_CONFIG.window
