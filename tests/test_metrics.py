"""Tests for metrics collection, fairness and cross-run statistics."""

import math

import pytest

from repro.metrics.collector import MetricsCollector
from repro.metrics.fairness import jain_index
from repro.metrics.stats import (
    Summary,
    Z95,
    elementwise_mean,
    mean,
    summarize,
    t_critical,
)


class TestJainIndex:
    def test_perfect_fairness(self):
        assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_monopoly(self):
        assert jain_index([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_paper_formula(self):
        values = [1.0, 2.0, 3.0]
        expected = (6.0 ** 2) / (3 * (1 + 4 + 9))
        assert jain_index(values) == pytest.approx(expected)

    def test_all_zero_defined_as_fair(self):
        assert jain_index([0.0, 0.0]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            jain_index([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            jain_index([1.0, -1.0])

    def test_bounds(self):
        values = [3.0, 1.0, 7.0, 2.0]
        index = jain_index(values)
        assert 1.0 / len(values) <= index <= 1.0


class TestCollector:
    def make(self):
        return MetricsCollector(misbehaving={3}, measured_senders={1, 2, 3})

    def test_delivery_accounting(self):
        c = self.make()
        c.on_delivery(src=1, dst=0, payload_bytes=512, time=100,
                      diagnosed=False)
        c.on_delivery(src=1, dst=0, payload_bytes=512, time=200,
                      diagnosed=False)
        assert c.flows[1].delivered_packets == 2
        assert c.throughput_bps(1, 1_000_000) == pytest.approx(
            2 * 512 * 8
        )

    def test_unmeasured_senders_excluded_from_summaries(self):
        c = self.make()
        c.on_delivery(src=101, dst=102, payload_bytes=512, time=1,
                      diagnosed=True)
        assert 101 not in c.throughputs(1_000_000)
        assert c.misdiagnosis_percent() == 0.0

    def test_correct_diagnosis_percent(self):
        c = self.make()
        for i in range(10):
            c.on_delivery(src=3, dst=0, payload_bytes=512, time=i,
                          diagnosed=(i < 7))
        assert c.correct_diagnosis_percent() == pytest.approx(70.0)

    def test_misdiagnosis_percent(self):
        c = self.make()
        for i in range(20):
            c.on_delivery(src=1, dst=0, payload_bytes=512, time=i,
                          diagnosed=(i < 1))
        assert c.misdiagnosis_percent() == pytest.approx(5.0)

    def test_avg_and_msb_split(self):
        c = self.make()
        for _ in range(4):
            c.on_delivery(src=1, dst=0, payload_bytes=512, time=1,
                          diagnosed=False)
        for _ in range(2):
            c.on_delivery(src=2, dst=0, payload_bytes=512, time=1,
                          diagnosed=False)
        for _ in range(9):
            c.on_delivery(src=3, dst=0, payload_bytes=512, time=1,
                          diagnosed=True)
        duration = 1_000_000
        avg = c.average_wellbehaved_throughput(duration)
        msb = c.average_misbehaving_throughput(duration)
        assert avg == pytest.approx((4 + 2) / 2 * 512 * 8)
        assert msb == pytest.approx(9 * 512 * 8)

    def test_empty_collector_rates_are_zero(self):
        c = self.make()
        assert c.correct_diagnosis_percent() == 0.0
        assert c.misdiagnosis_percent() == 0.0
        assert c.average_misbehaving_throughput(1000) == 0.0

    def test_time_series_binning(self):
        c = self.make()
        # Two packets in bin 0 (one diagnosed), one in bin 2 (diagnosed).
        c.on_delivery(src=3, dst=0, payload_bytes=1, time=100_000,
                      diagnosed=True)
        c.on_delivery(src=3, dst=0, payload_bytes=1, time=900_000,
                      diagnosed=False)
        c.on_delivery(src=3, dst=0, payload_bytes=1, time=2_500_000,
                      diagnosed=True)
        series = c.diagnosis_time_series(1_000_000, 3_000_000)
        assert series == [50.0, 0.0, 100.0]

    def test_time_series_invalid_bin(self):
        with pytest.raises(ValueError):
            self.make().diagnosis_time_series(0, 100)

    def test_drop_accounting(self):
        c = self.make()
        c.on_sender_drop(1, 0, 50)
        assert c.flows[1].dropped_packets == 1

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            self.make().throughput_bps(1, 0)


class TestStats:
    def test_summarize_basic(self):
        s = summarize([2.0, 4.0, 6.0])
        assert s.mean == pytest.approx(4.0)
        assert s.std == pytest.approx(2.0)
        assert s.n == 3
        assert s.ci95 > 0

    def test_single_sample(self):
        s = summarize([5.0])
        assert s == Summary(mean=5.0, std=0.0, ci95=0.0, n=1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_mean_empty_is_zero(self):
        assert mean([]) == 0.0

    def test_elementwise_mean(self):
        assert elementwise_mean([[1.0, 2.0], [3.0, 4.0]]) == [2.0, 3.0]

    def test_elementwise_mean_shape_mismatch(self):
        with pytest.raises(ValueError):
            elementwise_mean([[1.0], [1.0, 2.0]])

    def test_elementwise_mean_empty(self):
        assert elementwise_mean([]) == []


class TestStudentT:
    """Small-sample CIs must widen with the Student-t distribution.

    The original code multiplied the standard error by the normal
    z=1.96 for every n; at n=5 the correct t(4, 0.975)=2.776 makes the
    interval ~42% wider, so the old intervals dramatically overstated
    the confidence of few-seed sweeps.
    """

    def test_exact_table_values(self):
        assert t_critical(1) == pytest.approx(12.7062)
        assert t_critical(4) == pytest.approx(2.7764)
        assert t_critical(29) == pytest.approx(2.0452)
        assert t_critical(120) == pytest.approx(1.9799)

    def test_interpolation_between_anchors(self):
        # 50 sits between the 40 and 60 anchors; the 1/df-interpolated
        # value must land strictly between them and near the true
        # t(50, 0.975) = 2.0086.
        t50 = t_critical(50)
        assert t_critical(60) < t50 < t_critical(40)
        assert t50 == pytest.approx(2.0086, abs=5e-3)

    def test_large_df_converges_to_normal(self):
        assert t_critical(121) == Z95
        assert t_critical(10_000) == Z95

    def test_monotonically_decreasing(self):
        values = [t_critical(df) for df in range(1, 130)]
        assert values == sorted(values, reverse=True)
        assert all(v >= Z95 for v in values)

    def test_invalid_df_rejected(self):
        with pytest.raises(ValueError):
            t_critical(0)
        with pytest.raises(ValueError):
            t_critical(-3)

    def test_summarize_uses_student_t_not_z(self):
        # Would fail before the fix: the n=5 interval used z=1.96,
        # ~40% too narrow relative to t(4, 0.975)=2.7764.
        values = [10.0, 12.0, 9.0, 14.0, 11.0]
        s = summarize(values)
        expected = 2.7764 * s.std / math.sqrt(5)
        assert s.ci95 == pytest.approx(expected, rel=1e-6)
        too_narrow = 1.96 * s.std / math.sqrt(5)
        assert s.ci95 > too_narrow * 1.4

    def test_summarize_two_samples(self):
        # n=2 is the extreme case: t(1, 0.975) = 12.706 vs 1.96.
        s = summarize([1.0, 3.0])
        assert s.ci95 == pytest.approx(
            12.7062 * s.std / math.sqrt(2), rel=1e-6
        )
