"""Tests for metrics collection, fairness and cross-run statistics."""

import pytest

from repro.metrics.collector import MetricsCollector
from repro.metrics.fairness import jain_index
from repro.metrics.stats import Summary, elementwise_mean, mean, summarize


class TestJainIndex:
    def test_perfect_fairness(self):
        assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_monopoly(self):
        assert jain_index([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_paper_formula(self):
        values = [1.0, 2.0, 3.0]
        expected = (6.0 ** 2) / (3 * (1 + 4 + 9))
        assert jain_index(values) == pytest.approx(expected)

    def test_all_zero_defined_as_fair(self):
        assert jain_index([0.0, 0.0]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            jain_index([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            jain_index([1.0, -1.0])

    def test_bounds(self):
        values = [3.0, 1.0, 7.0, 2.0]
        index = jain_index(values)
        assert 1.0 / len(values) <= index <= 1.0


class TestCollector:
    def make(self):
        return MetricsCollector(misbehaving={3}, measured_senders={1, 2, 3})

    def test_delivery_accounting(self):
        c = self.make()
        c.on_delivery(src=1, dst=0, payload_bytes=512, time=100,
                      diagnosed=False)
        c.on_delivery(src=1, dst=0, payload_bytes=512, time=200,
                      diagnosed=False)
        assert c.flows[1].delivered_packets == 2
        assert c.throughput_bps(1, 1_000_000) == pytest.approx(
            2 * 512 * 8
        )

    def test_unmeasured_senders_excluded_from_summaries(self):
        c = self.make()
        c.on_delivery(src=101, dst=102, payload_bytes=512, time=1,
                      diagnosed=True)
        assert 101 not in c.throughputs(1_000_000)
        assert c.misdiagnosis_percent() == 0.0

    def test_correct_diagnosis_percent(self):
        c = self.make()
        for i in range(10):
            c.on_delivery(src=3, dst=0, payload_bytes=512, time=i,
                          diagnosed=(i < 7))
        assert c.correct_diagnosis_percent() == pytest.approx(70.0)

    def test_misdiagnosis_percent(self):
        c = self.make()
        for i in range(20):
            c.on_delivery(src=1, dst=0, payload_bytes=512, time=i,
                          diagnosed=(i < 1))
        assert c.misdiagnosis_percent() == pytest.approx(5.0)

    def test_avg_and_msb_split(self):
        c = self.make()
        for _ in range(4):
            c.on_delivery(src=1, dst=0, payload_bytes=512, time=1,
                          diagnosed=False)
        for _ in range(2):
            c.on_delivery(src=2, dst=0, payload_bytes=512, time=1,
                          diagnosed=False)
        for _ in range(9):
            c.on_delivery(src=3, dst=0, payload_bytes=512, time=1,
                          diagnosed=True)
        duration = 1_000_000
        avg = c.average_wellbehaved_throughput(duration)
        msb = c.average_misbehaving_throughput(duration)
        assert avg == pytest.approx((4 + 2) / 2 * 512 * 8)
        assert msb == pytest.approx(9 * 512 * 8)

    def test_empty_collector_rates_are_zero(self):
        c = self.make()
        assert c.correct_diagnosis_percent() == 0.0
        assert c.misdiagnosis_percent() == 0.0
        assert c.average_misbehaving_throughput(1000) == 0.0

    def test_time_series_binning(self):
        c = self.make()
        # Two packets in bin 0 (one diagnosed), one in bin 2 (diagnosed).
        c.on_delivery(src=3, dst=0, payload_bytes=1, time=100_000,
                      diagnosed=True)
        c.on_delivery(src=3, dst=0, payload_bytes=1, time=900_000,
                      diagnosed=False)
        c.on_delivery(src=3, dst=0, payload_bytes=1, time=2_500_000,
                      diagnosed=True)
        series = c.diagnosis_time_series(1_000_000, 3_000_000)
        assert series == [50.0, 0.0, 100.0]

    def test_time_series_invalid_bin(self):
        with pytest.raises(ValueError):
            self.make().diagnosis_time_series(0, 100)

    def test_drop_accounting(self):
        c = self.make()
        c.on_sender_drop(1, 0, 50)
        assert c.flows[1].dropped_packets == 1

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            self.make().throughput_bps(1, 0)


class TestStats:
    def test_summarize_basic(self):
        s = summarize([2.0, 4.0, 6.0])
        assert s.mean == pytest.approx(4.0)
        assert s.std == pytest.approx(2.0)
        assert s.n == 3
        assert s.ci95 > 0

    def test_single_sample(self):
        s = summarize([5.0])
        assert s == Summary(mean=5.0, std=0.0, ci95=0.0, n=1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_mean_empty_is_zero(self):
        assert mean([]) == 0.0

    def test_elementwise_mean(self):
        assert elementwise_mean([[1.0, 2.0], [3.0, 4.0]]) == [2.0, 3.0]

    def test_elementwise_mean_shape_mismatch(self):
        with pytest.raises(ValueError):
            elementwise_mean([[1.0], [1.0, 2.0]])

    def test_elementwise_mean_empty(self):
        assert elementwise_mean([]) == []
