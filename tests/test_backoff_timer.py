"""Tests for the backoff countdown engine."""

import random

import pytest

from repro.mac.backoff_timer import BackoffTimer
from repro.sim.engine import Simulator

SLOT = 20
DIFS = 50
EIFS = 308


class Harness:
    """A timer with controllable channel inputs."""

    def __init__(self, p_busy=0.0, ifs=DIFS, seed=1):
        self.sim = Simulator()
        self.p_busy = p_busy
        self.ifs = ifs
        self.expired_at = []
        self.timer = BackoffTimer(
            self.sim, SLOT, random.Random(seed),
            marginal_probability=lambda: self.p_busy,
            ifs_provider=lambda: self.ifs,
            on_expire=lambda: self.expired_at.append(self.sim.now),
        )


class TestCleanCountdown:
    def test_zero_slots_expires_after_ifs(self):
        h = Harness()
        h.timer.start(0)
        h.sim.run()
        assert h.expired_at == [DIFS]

    def test_n_slots_expire_after_ifs_plus_slots(self):
        h = Harness()
        h.timer.start(7)
        h.sim.run()
        assert h.expired_at == [DIFS + 7 * SLOT]

    def test_negative_slots_rejected(self):
        h = Harness()
        with pytest.raises(ValueError):
            h.timer.start(-1)

    def test_double_start_rejected(self):
        h = Harness()
        h.timer.start(5)
        with pytest.raises(RuntimeError):
            h.timer.start(5)

    def test_cancel_prevents_expiry(self):
        h = Harness()
        h.timer.start(5)
        h.timer.cancel()
        h.sim.run()
        assert h.expired_at == []

    def test_restart_after_expiry(self):
        h = Harness()
        h.timer.start(2)
        h.sim.run()
        h.timer.start(3)
        h.sim.run()
        assert len(h.expired_at) == 2

    def test_slots_counted_accumulates(self):
        h = Harness()
        h.timer.start(6)
        h.sim.run()
        assert h.timer.slots_counted == 6


class TestFreezeResume:
    def test_block_during_ifs_restarts_ifs(self):
        h = Harness()
        h.timer.start(3)
        h.sim.schedule(30, lambda: h.timer.set_blocked(True))
        h.sim.schedule(100, lambda: h.timer.set_blocked(False))
        h.sim.run()
        # Resumes at 100, waits full DIFS again, then 3 slots.
        assert h.expired_at == [100 + DIFS + 3 * SLOT]

    def test_partial_slot_progress_discarded(self):
        h = Harness()
        h.timer.start(3)
        # Block mid-second-slot: 1 whole slot credited, partial lost.
        t_block = DIFS + SLOT + 10
        h.sim.schedule(t_block, lambda: h.timer.set_blocked(True))
        h.sim.schedule(500, lambda: h.timer.set_blocked(False))
        h.sim.run()
        assert h.expired_at == [500 + DIFS + 2 * SLOT]

    def test_block_exactly_on_slot_boundary(self):
        h = Harness()
        h.timer.start(3)
        t_block = DIFS + 2 * SLOT  # two slots fully elapsed
        h.sim.schedule(t_block, lambda: h.timer.set_blocked(True))
        h.sim.schedule(600, lambda: h.timer.set_blocked(False))
        h.sim.run()
        assert h.expired_at == [600 + DIFS + 1 * SLOT]

    def test_start_while_blocked_waits_for_unblock(self):
        h = Harness()
        h.timer.set_blocked(True)
        h.timer.start(2)
        h.sim.schedule(400, lambda: h.timer.set_blocked(False))
        h.sim.run()
        assert h.expired_at == [400 + DIFS + 2 * SLOT]

    def test_idempotent_blocked_updates(self):
        h = Harness()
        h.timer.start(2)
        h.timer.set_blocked(False)  # no-op
        h.sim.run()
        assert h.expired_at == [DIFS + 2 * SLOT]

    def test_expiry_committed_on_same_timestamp_block(self):
        """A countdown completing exactly when the channel goes busy
        still transmits — this preserves genuine collision races."""
        h = Harness()
        h.timer.start(2)
        t_done = DIFS + 2 * SLOT
        h.sim.schedule(t_done, lambda: h.timer.set_blocked(True))
        h.sim.run()
        assert h.expired_at == [t_done]


class TestEifs:
    def test_ifs_provider_consulted_each_defer(self):
        h = Harness()
        ifs_values = [EIFS, DIFS]
        h.ifs = None
        h.timer.ifs_provider = lambda: ifs_values.pop(0)
        h.timer.start(1)
        h.sim.run()
        assert h.expired_at == [EIFS + SLOT]


class TestMarginalSampling:
    def test_all_busy_slots_block_forever(self):
        h = Harness(p_busy=1.0)
        h.timer.start(1)
        h.sim.run(until=100_000)
        assert h.expired_at == []

    def test_expiry_time_stochastically_longer(self):
        clean = Harness(p_busy=0.0)
        clean.timer.start(30)
        clean.sim.run()
        noisy_times = []
        for seed in range(10):
            h = Harness(p_busy=0.6, seed=seed)
            h.timer.start(30)
            h.sim.run(until=10_000_000)
            noisy_times.append(h.expired_at[0])
        assert all(t >= clean.expired_at[0] for t in noisy_times)
        assert sum(noisy_times) / len(noisy_times) > clean.expired_at[0] * 1.5

    def test_marginal_change_resegments(self):
        h = Harness(p_busy=0.0)
        h.timer.start(10)

        def go_marginal():
            h.p_busy = 1.0
            h.timer.marginal_changed()

        def go_clean():
            h.p_busy = 0.0
            h.timer.marginal_changed()

        h.sim.schedule(DIFS + 2 * SLOT, go_marginal)
        h.sim.schedule(DIFS + 2 * SLOT + 1000, go_clean)
        h.sim.run()
        # 2 slots before the marginal stall, 8 after it clears.
        assert h.expired_at == [DIFS + 2 * SLOT + 1000 + 8 * SLOT]

    def test_mean_countdown_matches_inverse_idle_probability(self):
        p = 0.5
        times = []
        for seed in range(20):
            h = Harness(p_busy=p, seed=seed)
            h.timer.start(40)
            h.sim.run(until=10_000_000)
            times.append(h.expired_at[0] - DIFS)
        mean_slots = sum(times) / len(times) / SLOT
        # Each decrement takes 1/(1-p) = 2 slots on average.
        assert 40 * 1.7 < mean_slots < 40 * 2.4
