"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.engine import SimulationError, Simulator, Watchdog


class TestScheduling:
    def test_single_event_fires_at_time(self, sim):
        fired = []
        sim.schedule(100, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [100]

    def test_zero_delay_allowed(self, sim):
        fired = []
        sim.schedule(0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [0]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_schedule_at_absolute_time(self, sim):
        fired = []
        sim.schedule_at(250, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [250]

    def test_schedule_at_past_rejected(self, sim):
        sim.schedule(100, lambda: None)
        sim.run()
        assert sim.now == 100
        with pytest.raises(SimulationError):
            sim.schedule_at(50, lambda: None)

    def test_events_fire_in_time_order(self, sim):
        order = []
        sim.schedule(300, lambda: order.append("c"))
        sim.schedule(100, lambda: order.append("a"))
        sim.schedule(200, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_fire_fifo(self, sim):
        order = []
        for tag in ("first", "second", "third"):
            sim.schedule(50, lambda tag=tag: order.append(tag))
        sim.run()
        assert order == ["first", "second", "third"]

    def test_nested_scheduling_from_callback(self, sim):
        fired = []

        def outer():
            fired.append(("outer", sim.now))
            sim.schedule(10, lambda: fired.append(("inner", sim.now)))

        sim.schedule(5, outer)
        sim.run()
        assert fired == [("outer", 5), ("inner", 15)]

    def test_nested_zero_delay_fires_same_timestamp(self, sim):
        fired = []

        def outer():
            sim.schedule(0, lambda: fired.append(sim.now))

        sim.schedule(7, outer)
        sim.run()
        assert fired == [7]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        handle = sim.schedule(100, lambda: fired.append(1))
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        handle = sim.schedule(100, lambda: None)
        handle.cancel()
        handle.cancel()
        sim.run()
        assert not handle.pending

    def test_pending_transitions(self, sim):
        handle = sim.schedule(100, lambda: None)
        assert handle.pending
        sim.run()
        assert not handle.pending
        assert handle.fired

    def test_cancel_one_of_several(self, sim):
        fired = []
        sim.schedule(10, lambda: fired.append("keep1"))
        victim = sim.schedule(10, lambda: fired.append("victim"))
        sim.schedule(10, lambda: fired.append("keep2"))
        victim.cancel()
        sim.run()
        assert fired == ["keep1", "keep2"]


class TestHorizon:
    def test_run_until_stops_before_late_events(self, sim):
        fired = []
        sim.schedule(100, lambda: fired.append("early"))
        sim.schedule(900, lambda: fired.append("late"))
        sim.run(until=500)
        assert fired == ["early"]
        assert sim.now == 500

    def test_clock_advances_to_horizon_when_queue_drains(self, sim):
        sim.schedule(10, lambda: None)
        sim.run(until=1_000_000)
        assert sim.now == 1_000_000

    def test_event_exactly_at_horizon_fires(self, sim):
        fired = []
        sim.schedule(500, lambda: fired.append(1))
        sim.run(until=500)
        assert fired == [1]

    def test_resume_after_horizon(self, sim):
        fired = []
        sim.schedule(900, lambda: fired.append(sim.now))
        sim.run(until=500)
        sim.run(until=1000)
        assert fired == [900]

    def test_default_horizon_from_constructor(self):
        sim = Simulator(until=50)
        fired = []
        sim.schedule(100, lambda: fired.append(1))
        sim.run()
        assert fired == []
        assert sim.now == 50


class TestStopAndIntrospection:
    def test_stop_halts_processing(self, sim):
        fired = []

        def stopper():
            fired.append("stop")
            sim.stop()

        sim.schedule(10, stopper)
        sim.schedule(20, lambda: fired.append("never"))
        sim.run()
        assert fired == ["stop"]

    def test_peek_returns_next_time(self, sim):
        sim.schedule(30, lambda: None)
        sim.schedule(10, lambda: None)
        assert sim.peek() == 10

    def test_peek_skips_cancelled(self, sim):
        first = sim.schedule(10, lambda: None)
        sim.schedule(30, lambda: None)
        first.cancel()
        assert sim.peek() == 30

    def test_peek_empty_returns_none(self, sim):
        assert sim.peek() is None

    def test_events_processed_counts_fired_only(self, sim):
        sim.schedule(10, lambda: None)
        cancelled = sim.schedule(20, lambda: None)
        cancelled.cancel()
        sim.run()
        assert sim.events_processed == 1

    def test_reentrant_run_rejected(self, sim):
        def recurse():
            sim.run()

        sim.schedule(1, recurse)
        with pytest.raises(SimulationError):
            sim.run()


class TestDispatchLoopParity:
    """The fast and watched dispatch loops must count identically.

    ``REPRO_PROFILE`` plus a watchdog routes dispatch through
    ``_run_watched``; without a watchdog the same run uses
    ``_run_fast``.  Both results and every per-subsystem event tally
    must agree — a double-counted dispatch in either loop would skew
    the kernel profiles that performance work keys off (and would
    betray a dispatch executed twice).
    """

    def test_profiled_counters_match_between_fast_and_watched(self):
        from repro.experiments.scenarios import ScenarioConfig, build_scenario
        from repro.net.topology import circle_topology

        def run(watchdog):
            config = ScenarioConfig(
                topology=circle_topology(3, misbehaving=(2,), pm_percent=60.0),
                protocol="correct",
                duration_us=250_000,
                seed=5,
            )
            sim, nodes, collector = build_scenario(
                config, profile=True, watchdog=watchdog
            )
            for node in nodes:
                node.start()
            sim.run(until=config.duration_us)
            return sim, collector

        fast_sim, fast_collector = run(watchdog=None)
        watched_sim, watched_collector = run(
            watchdog=Watchdog(max_events=10_000_000)
        )
        assert fast_sim.events_processed > 0
        assert fast_sim.events_processed == watched_sim.events_processed
        assert dict(fast_sim.event_counts) == dict(watched_sim.event_counts)
        assert sum(fast_sim.event_counts.values()) == fast_sim.events_processed
        assert (fast_collector.throughputs(250_000)
                == watched_collector.throughputs(250_000))
