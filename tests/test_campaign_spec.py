"""Campaign spec grammar: parsing, canonical formatting, expansion,
sharding — including the hypothesis parse/format/parse round-trip the
resume path's spec-identity check depends on."""

import pytest
from hypothesis import given, settings as hyp_settings, strategies as st

from repro.experiments.campaign.spec import (
    CampaignSpec,
    CampaignSpecError,
    ScenarioAxis,
    expand_cells,
    format_campaign,
    parse_campaign,
    shard_cells,
)
from repro.experiments.scenarios import PROTOCOL_80211, PROTOCOL_CORRECT


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------
class TestParse:
    def test_minimal_spec_defaults(self):
        spec = parse_campaign("scenario=circle:8")
        assert spec.scenarios == (ScenarioAxis("circle", 8),)
        assert spec.protocols == (PROTOCOL_CORRECT,)
        assert spec.pm_values == (0.0,)
        assert spec.detectors == (None,)
        assert spec.fault_specs == (None,)
        assert spec.seeds == (1,)
        assert spec.duration_us == 1_000_000

    def test_full_spec(self):
        spec = parse_campaign(
            "scenario=circle:8|circle:4+interferers|random:20/3; "
            "protocol=correct|802.11; pm=0|50|100; cheater=2; "
            "detector=-|cusum:h=2.0,k=0.25; faults=-|ack-loss=0.3@4; "
            "seeds=1-3|7; seconds=2.5"
        )
        assert spec.scenarios == (
            ScenarioAxis("circle", 8),
            ScenarioAxis("circle", 4, interferers=True),
            ScenarioAxis("random", 20, misbehaving=3),
        )
        assert spec.protocols == (PROTOCOL_CORRECT, PROTOCOL_80211)
        assert spec.pm_values == (0.0, 50.0, 100.0)
        assert spec.cheater == 2
        assert spec.detectors == (None, "cusum:h=2.0,k=0.25")
        assert spec.fault_specs == (None, "ack-loss=0.3@4")
        assert spec.seeds == (1, 2, 3, 7)
        assert spec.duration_us == 2_500_000

    def test_newlines_and_comments_are_axis_separators(self):
        spec = parse_campaign(
            "# quick sweep\n"
            "scenario=circle:3   # ZERO-FLOW\n"
            "pm=0|60\n"
            "seeds=1-2\n"
        )
        assert spec.pm_values == (0.0, 60.0)
        assert spec.seeds == (1, 2)

    def test_seeds_are_sorted_and_deduplicated(self):
        spec = parse_campaign("scenario=circle:2; seeds=5|1-3|2")
        assert spec.seeds == (1, 2, 3, 5)

    def test_axis_values_deduplicated(self):
        spec = parse_campaign("scenario=circle:2|circle:2; pm=0|0")
        assert spec.scenarios == (ScenarioAxis("circle", 2),)
        assert spec.pm_values == (0.0,)

    @pytest.mark.parametrize("bad", [
        "",                                     # no scenario axis
        "pm=50",                                # missing scenario
        "scenario=circle:8; scenario=circle:4", # duplicate axis
        "scenario=triangle:3",                  # unknown kind
        "scenario=circle:0",                    # no nodes
        "scenario=random:5",                    # missing /M
        "scenario=random:5/5",                  # M >= N
        "scenario=random:5/1+interferers",      # random has no variant
        "scenario=circle:8; protocol=tcp",      # unknown protocol
        "scenario=circle:8; pm=120",            # pm out of range
        "scenario=circle:8; pm=",               # empty value
        "scenario=circle:8; seeds=3-1",         # descending range
        "scenario=circle:8; seeds=x",           # non-integer seed
        "scenario=circle:8; seconds=0",         # non-positive horizon
        "scenario=circle:8; seconds=nan",       # non-finite
        "scenario=circle:8; cheater=0",         # not a sender id
        "scenario=circle:8; detector=warp:x=1", # unknown detector
        "scenario=circle:8; faults=zap=1",      # unknown fault key
        "scenario=circle:8; color=red",         # unknown axis
        "scenario=circle:8; pm",                # no '='
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(CampaignSpecError):
            parse_campaign(bad)


# ----------------------------------------------------------------------
# Formatting / round-trip
# ----------------------------------------------------------------------
class TestRoundTrip:
    def test_format_is_canonical(self):
        text = format_campaign(parse_campaign("scenario=circle:3;pm= 0 | 60"))
        assert text == ("scenario=circle:3; protocol=correct; pm=0.0|60.0; "
                        "cheater=3; detector=-; faults=-; seeds=1; "
                        "seconds=1.0")

    def test_seed_ranges_compress(self):
        spec = parse_campaign("scenario=circle:2; seeds=1|2|3|4|9|11|12|13")
        assert "seeds=1-4|9|11-13" in format_campaign(spec)

    @given(st.from_regex(r"seeds=[0-9]{1,3}(-[0-9]{1,3})?"
                         r"(\|[0-9]{1,3}(-[0-9]{1,3})?){0,4}",
                         fullmatch=True))
    @hyp_settings(max_examples=50, deadline=None)
    def test_seed_axis_text_round_trips(self, seeds_axis):
        try:
            spec = parse_campaign(f"scenario=circle:2; {seeds_axis}")
        except CampaignSpecError:
            return  # descending ranges are legitimately rejected
        assert parse_campaign(format_campaign(spec)) == spec

    @given(
        scenarios=st.lists(
            st.one_of(
                st.builds(
                    ScenarioAxis,
                    kind=st.just("circle"),
                    nodes=st.integers(1, 64),
                    interferers=st.booleans(),
                ),
                st.builds(
                    ScenarioAxis,
                    kind=st.just("random"),
                    nodes=st.integers(2, 40),
                    misbehaving=st.integers(0, 1),
                ),
            ),
            min_size=1, max_size=3, unique=True,
        ),
        protocols=st.sampled_from([
            (PROTOCOL_CORRECT,), (PROTOCOL_80211,),
            (PROTOCOL_CORRECT, PROTOCOL_80211),
        ]),
        pm_values=st.lists(
            st.floats(0.0, 100.0, allow_nan=False),
            min_size=1, max_size=4, unique=True,
        ).map(tuple),
        cheater=st.integers(1, 8),
        detectors=st.lists(
            st.sampled_from([None, "window:W=5,thresh=20",
                             "cusum:h=2.0,k=0.25",
                             "estimator:fraction=0.5"]),
            min_size=1, max_size=3, unique=True,
        ).map(tuple),
        fault_specs=st.lists(
            st.sampled_from([None, "ack-loss=0.3@4", "jam=2:5000",
                             "crash=2@0.5-1.5", "drift=1:50000"]),
            min_size=1, max_size=3, unique=True,
        ).map(tuple),
        seeds=st.lists(
            st.integers(0, 10_000), min_size=1, max_size=20, unique=True,
        ).map(lambda s: tuple(sorted(s))),
        duration_us=st.integers(1, 60_000_000),
    )
    @hyp_settings(max_examples=100, deadline=None)
    def test_spec_round_trips_exactly(self, **kwargs):
        spec = CampaignSpec(scenarios=tuple(kwargs.pop("scenarios")),
                            **kwargs)
        assert parse_campaign(format_campaign(spec)) == spec


# ----------------------------------------------------------------------
# Expansion
# ----------------------------------------------------------------------
class TestExpansion:
    def test_grid_size_and_order(self):
        spec = parse_campaign(
            "scenario=circle:3; pm=0|60; seeds=1-3; seconds=0.2"
        )
        cells = expand_cells(spec)
        assert len(cells) == 6
        # seeds innermost, grid order deterministic
        assert [c.seed for c in cells] == [1, 2, 3, 1, 2, 3]
        assert cells[0].group.endswith("pm=0/det=-/faults=-")
        assert cells[3].group.endswith("pm=60/det=-/faults=-")
        assert all(c.key == f"{c.group}/seed={c.seed}" for c in cells)

    def test_cell_configs_carry_axes(self):
        spec = parse_campaign(
            "scenario=circle:4; pm=50; detector=cusum:h=2.0,k=0.25; "
            "faults=ack-loss=0.2; seeds=7; seconds=0.5"
        )
        (cell,) = expand_cells(spec)
        assert cell.config.seed == 7
        assert cell.config.duration_us == 500_000
        assert cell.config.detector == "cusum:h=2.0,k=0.25"
        assert cell.config.faults is not None
        assert tuple(cell.config.topology.misbehaving_senders) == (3,)

    def test_pm_zero_has_no_cheater(self):
        spec = parse_campaign("scenario=circle:4; pm=0")
        (cell,) = expand_cells(spec)
        assert tuple(cell.config.topology.misbehaving_senders) == ()

    def test_80211_detector_combination_skipped(self):
        spec = parse_campaign(
            "scenario=circle:2; protocol=correct|802.11; "
            "detector=-|cusum:h=2.0,k=0.25"
        )
        cells = expand_cells(spec)
        # correct x {-, cusum} + 802.11 x {-} = 3, not 4
        assert len(cells) == 3
        assert not any(
            c.config.protocol == PROTOCOL_80211
            and c.config.detector is not None
            for c in cells
        )

    def test_cheater_must_exist(self):
        spec = parse_campaign("scenario=circle:2; pm=50; cheater=3")
        with pytest.raises(CampaignSpecError, match="cheater 3"):
            expand_cells(spec)

    def test_random_topologies_vary_by_seed(self):
        spec = parse_campaign("scenario=random:6/1; pm=50; seeds=1-2")
        cells = expand_cells(spec)
        assert cells[0].config.topology != cells[1].config.topology


# ----------------------------------------------------------------------
# Sharding
# ----------------------------------------------------------------------
class TestSharding:
    def shards(self, cells, count):
        return [shard_cells(cells, i, count) for i in range(count)]

    def test_shards_partition_the_grid(self):
        cells = expand_cells(parse_campaign(
            "scenario=circle:3; pm=0|30|60; seeds=1-5"
        ))
        for count in (1, 2, 3, 7, len(cells) + 3):
            shards = self.shards(cells, count)
            merged = [cell for shard in shards for cell in shard]
            assert sorted(c.key for c in merged) == \
                sorted(c.key for c in cells)
            assert max(len(s) for s in shards) - \
                min(len(s) for s in shards) <= 1

    def test_round_robin_spreads_groups(self):
        cells = expand_cells(parse_campaign(
            "scenario=circle:3; pm=0|60; seeds=1-4"
        ))
        for shard in self.shards(cells, 2):
            assert len({c.group for c in shard}) == 2  # both PM groups

    def test_sharding_is_deterministic(self):
        spec = parse_campaign("scenario=circle:3; pm=0|60; seeds=1-4")
        first = [c.key for c in shard_cells(expand_cells(spec), 1, 3)]
        second = [c.key for c in shard_cells(expand_cells(spec), 1, 3)]
        assert first == second

    @pytest.mark.parametrize("index,count", [(-1, 2), (2, 2), (0, 0)])
    def test_bad_shard_rejected(self, index, count):
        with pytest.raises(CampaignSpecError):
            shard_cells([], index, count)
