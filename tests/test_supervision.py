"""Tests for supervised execution: kernel watchdog, executor crash /
hang / retry handling, cache degradation, and figure-level failure
flagging.

The worker-crash scenarios inject a sender policy that calls
``os._exit`` (or sleeps) from inside the simulation; on the pool path
that kills a real worker process, which is exactly the failure the
executor must survive.  The policies are module-level classes so the
pool can unpickle the configs that embed them.

NOTE: crash/hang policies must override a *sender* node (ids ``1..n``
in :func:`circle_topology`); node 0 is the common receiver and never
consults a sender policy.
"""

import json
import os
import time

import pytest

from repro.core.sender_policy import ConformingPolicy
from repro.experiments.cache import RunCache
from repro.experiments.executor import (
    ExperimentExecutor,
    FailedRun,
    RunFailedError,
)
from repro.experiments.figures import FigureResult, _add_stat_point
from repro.experiments.report import render_table, to_json
from repro.experiments.scenarios import RunResult, ScenarioConfig, run_scenario
from repro.experiments.settings import (
    max_retries,
    run_timeout_s,
    watchdog_from_env,
)
from repro.net.topology import circle_topology
from repro.sim.engine import SimulationStalled, Simulator, Watchdog

SHORT = 200_000  # 0.2 s of simulated time keeps pool tests quick


def config(policy=None, seed=1):
    overrides = {1: policy} if policy is not None else {}
    return ScenarioConfig(
        topology=circle_topology(3), duration_us=SHORT, seed=seed,
        policy_overrides=overrides,
    )


class CrashingPolicy(ConformingPolicy):
    """Kills the hosting process the first time node 1 counts down."""

    def effective_countdown(self, nominal_slots):
        os._exit(17)


class HangingPolicy(ConformingPolicy):
    """Wedges the hosting process (no progress, no crash)."""

    def effective_countdown(self, nominal_slots):
        time.sleep(300)


class TransientCrashPolicy(ConformingPolicy):
    """Crashes only while the marker file is absent (first attempt)."""

    def __init__(self, marker):
        self.marker = str(marker)

    def effective_countdown(self, nominal_slots):
        if not os.path.exists(self.marker):
            open(self.marker, "w").close()
            os._exit(17)
        return nominal_slots


class FailOncePolicy(ConformingPolicy):
    """Raises on its first consultation, conforms afterwards."""

    def __init__(self):
        self.tripped = False

    def effective_countdown(self, nominal_slots):
        if not self.tripped:
            self.tripped = True
            raise RuntimeError("transient fault")
        return nominal_slots


def run_data(result):
    return (result.throughputs(), result.events_processed)


def sleep_task(seconds):
    """Module-level so the worker pool can unpickle it."""
    time.sleep(seconds)
    return seconds


# ----------------------------------------------------------------------
# Kernel watchdog
# ----------------------------------------------------------------------
class TestWatchdog:
    def test_max_events_trips_with_trace(self):
        from repro.experiments.scenarios import build_scenario

        sim, nodes, _ = build_scenario(
            config(), watchdog=Watchdog(max_events=200)
        )
        for node in nodes:
            node.start()
        with pytest.raises(SimulationStalled) as excinfo:
            sim.run(until=SHORT)
        assert "200" in excinfo.value.reason
        assert excinfo.value.trace  # recent dispatches for diagnosis
        assert "most recent events" in str(excinfo.value)

    def test_max_sim_us_trips(self):
        from repro.experiments.scenarios import build_scenario

        sim, nodes, _ = build_scenario(
            config(), watchdog=Watchdog(max_sim_us=5_000)
        )
        for node in nodes:
            node.start()
        with pytest.raises(SimulationStalled):
            sim.run(until=SHORT)

    def test_max_wall_trips(self):
        sim = Simulator(watchdog=Watchdog(max_wall_s=0.0, check_interval=1))
        ticks = []

        def tick():
            ticks.append(sim.now)
            sim.schedule(1, tick)

        sim.schedule(1, tick)
        with pytest.raises(SimulationStalled, match="wall clock"):
            sim.run(until=10_000)

    def test_generous_watchdog_is_bit_identical(self):
        from repro.experiments.scenarios import build_scenario

        plain = run_scenario(config())
        dog = Watchdog(max_events=10**9, max_sim_us=10**12, max_wall_s=3600.0)
        sim, nodes, collector = build_scenario(config(), watchdog=dog)
        for node in nodes:
            node.start()
        sim.run(until=SHORT)
        assert sim.events_processed == plain.events_processed

    def test_watchdog_validation(self):
        with pytest.raises(ValueError):
            Watchdog(trace_len=0)
        with pytest.raises(ValueError):
            Watchdog(check_interval=0)

    def test_watchdog_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_MAX_EVENTS", raising=False)
        monkeypatch.delenv("REPRO_MAX_WALL", raising=False)
        assert watchdog_from_env() is None
        monkeypatch.setenv("REPRO_MAX_EVENTS", "5000")
        monkeypatch.setenv("REPRO_MAX_WALL", "2.5")
        dog = watchdog_from_env()
        assert dog == Watchdog(max_events=5000, max_wall_s=2.5)

    def test_env_watchdog_guards_run_scenario(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_EVENTS", "100")
        with pytest.raises(SimulationStalled):
            run_scenario(config())


# ----------------------------------------------------------------------
# Executor supervision
# ----------------------------------------------------------------------
class TestInlineRetries:
    def test_exception_retried_then_flagged(self):
        with ExperimentExecutor(workers=1, max_retries=1,
                                retry_backoff_s=0.0,
                                on_failure="flag") as ex:
            [outcome] = ex.run([config(policy=CrashNeverPolicy())])
            assert isinstance(outcome, FailedRun)
            assert outcome.attempts == 2
            assert "RuntimeError" in outcome.error
            assert ex.runs_retried == 1 and ex.runs_failed == 1

    def test_transient_exception_retried_to_success(self):
        with ExperimentExecutor(workers=1, max_retries=2,
                                retry_backoff_s=0.0) as ex:
            [outcome] = ex.run([config(policy=FailOncePolicy())])
        assert isinstance(outcome, RunResult)
        assert ex.runs_retried == 1 and ex.runs_failed == 0

    def test_raise_mode_raises_after_batch(self):
        with ExperimentExecutor(workers=1, max_retries=0,
                                retry_backoff_s=0.0) as ex:
            with pytest.raises(RunFailedError) as excinfo:
                ex.run([config(policy=CrashNeverPolicy()), config(seed=2)])
            [failure] = excinfo.value.failures
            assert failure.config.seed == 1


class CrashNeverPolicy(ConformingPolicy):
    """Always raises (inline-path stand-in for a hard crash)."""

    def effective_countdown(self, nominal_slots):
        raise RuntimeError("synthetic failure")


class TestPoolSupervision:
    def test_worker_crash_flagged_others_bit_identical(self, tmp_path):
        # Satellite: a config whose worker dies via os._exit mid-batch
        # must not take the batch (or the parent) down; every other
        # task's results match a crash-free run bit for bit.
        clean_configs = [config(seed=s) for s in (1, 2, 3)]
        with ExperimentExecutor(workers=2, max_retries=1,
                                retry_backoff_s=0.01,
                                on_failure="flag") as ex:
            outcomes = ex.run(
                clean_configs + [config(policy=CrashingPolicy(), seed=4)]
            )
            assert ex.runs_failed == 1
            assert ex.pool_respawns >= 1
            # The pool died; a follow-up batch lazily recreates it.
            [after] = ex.run([config(seed=9)])
            assert isinstance(after, RunResult)
        crashed = outcomes[3]
        assert isinstance(crashed, FailedRun)
        assert "worker crashed" in crashed.error
        assert crashed.attempts == 2
        with ExperimentExecutor(workers=2) as reference:
            expected = reference.run(clean_configs)
        for outcome, ref in zip(outcomes[:3], expected):
            assert isinstance(outcome, RunResult)
            assert run_data(outcome) == run_data(ref)

    def test_transient_worker_crash_retried_to_success(self, tmp_path):
        policy = TransientCrashPolicy(tmp_path / "crashed-once")
        with ExperimentExecutor(workers=2, max_retries=2,
                                retry_backoff_s=0.01) as ex:
            [outcome] = ex.run([config(policy=policy)])
        assert isinstance(outcome, RunResult)
        # The first crash is unblamed (requeue, not retry): the visible
        # intervention is the pool respawn, and nothing ends up failed.
        assert ex.pool_respawns >= 1 and ex.runs_failed == 0

    def test_hung_worker_times_out(self):
        start = time.monotonic()
        with ExperimentExecutor(workers=2, run_timeout_s=1.0,
                                max_retries=0, retry_backoff_s=0.0,
                                on_failure="flag") as ex:
            [outcome] = ex.run([config(policy=HangingPolicy())])
        assert isinstance(outcome, FailedRun)
        assert "timeout after 1s" in outcome.error
        assert time.monotonic() - start < 30  # did not wait out the sleep

    def test_chaos_sweep_completes_with_failures_flagged(self, tmp_path):
        # Acceptance scenario: clean points + a deterministic crasher +
        # a hang, under timeouts and retries — the sweep finishes, only
        # the poisoned tasks are flagged, the rest are bit-identical.
        clean_configs = [config(seed=s) for s in (1, 2, 3, 4)]
        chaos = clean_configs + [
            config(policy=CrashingPolicy(), seed=5),
            config(policy=HangingPolicy(), seed=6),
        ]
        with ExperimentExecutor(workers=2, run_timeout_s=1.5,
                                max_retries=1, retry_backoff_s=0.01,
                                on_failure="flag") as ex:
            outcomes = ex.run(chaos)
        assert [type(o) for o in outcomes] == [RunResult] * 4 + [FailedRun] * 2
        assert "worker crashed" in outcomes[4].error
        assert "timeout" in outcomes[5].error
        with ExperimentExecutor(workers=2) as reference:
            expected = reference.run(clean_configs)
        for outcome, ref in zip(outcomes[:4], expected):
            assert run_data(outcome) == run_data(ref)


class TestLifecycle:
    def test_close_is_idempotent(self):
        ex = ExperimentExecutor(workers=2)
        ex.run([config()])
        ex.close()
        ex.close()  # second close must be a no-op, not an error
        with pytest.raises(RuntimeError):
            ex.run([config()])

    def test_settings_env_knobs(self, monkeypatch):
        monkeypatch.delenv("REPRO_RUN_TIMEOUT", raising=False)
        monkeypatch.delenv("REPRO_RETRIES", raising=False)
        assert run_timeout_s() is None
        assert max_retries() == 2
        monkeypatch.setenv("REPRO_RUN_TIMEOUT", "30")
        monkeypatch.setenv("REPRO_RETRIES", "0")
        assert run_timeout_s() == 30.0
        assert max_retries() == 0

    def test_invalid_on_failure_rejected(self):
        with pytest.raises(ValueError, match="on_failure"):
            ExperimentExecutor(workers=1, on_failure="ignore")

    def test_close_mid_batch_cancels_pending_and_reaps_pool(self):
        """close() during in-flight work must not drain the whole queue.

        Regression test: a single-worker pool is loaded with six
        0.5 s tasks; close() may wait for the one already running but
        must cancel the rest instead of executing them (which would
        block ~3 s and, for a real interrupted sweep, arbitrarily
        long), and must leave no live pool behind.
        """
        ex = ExperimentExecutor(workers=1)
        pool = ex._ensure_pool()
        futures = [pool.submit(sleep_task, 0.5) for _ in range(6)]
        time.sleep(0.1)  # let the first task reach a worker
        start = time.monotonic()
        ex.close()
        elapsed = time.monotonic() - start
        assert elapsed < 1.5, (
            f"close() took {elapsed:.2f}s — pending futures were drained "
            "instead of cancelled"
        )
        assert sum(1 for f in futures if f.cancelled()) >= 4
        assert ex._pool is None
        with pytest.raises(RuntimeError):
            ex.run([config()])

    def test_run_failed_error_message_is_capped(self):
        from repro.experiments.executor import MAX_REPORTED_FAILURES

        failures = [
            FailedRun(config=config(seed=s), error=f"boom {s}", attempts=3)
            for s in range(25)
        ]
        err = RunFailedError(failures)
        message = str(err)
        assert "25 run(s) failed" in message
        assert message.count("attempts=") == MAX_REPORTED_FAILURES
        assert f"... and {25 - MAX_REPORTED_FAILURES} more" in message
        assert err.failures == failures  # nothing lost, only the text

    def test_run_failed_error_small_batch_uncapped(self):
        failures = [
            FailedRun(config=config(seed=s), error="boom", attempts=1)
            for s in range(3)
        ]
        message = str(RunFailedError(failures))
        assert message.count("attempts=") == 3
        assert "more" not in message


# ----------------------------------------------------------------------
# Cache degradation
# ----------------------------------------------------------------------
class TestCacheDegradation:
    def unusable_dir(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where a directory is needed")
        return blocker / "runs"

    def test_unusable_dir_warns_once_and_disables(self, tmp_path, capsys):
        target = self.unusable_dir(tmp_path)
        cache = RunCache(target)
        assert cache.disabled
        assert cache.get(config()) is None
        result = run_scenario(config())
        assert cache.put(config(), result) is False
        RunCache(target)  # same directory: no second warning
        err = capsys.readouterr().err
        assert err.count("continuing uncached") == 1
        assert str(target) in err

    def test_executor_runs_uncached_on_unusable_dir(self, tmp_path, capsys):
        cache = RunCache(self.unusable_dir(tmp_path))
        with ExperimentExecutor(workers=1, cache=cache) as ex:
            first = ex.run([config()])
            second = ex.run([config()])
            assert ex.runs_executed == 2  # nothing was ever cached
        assert run_data(first[0]) == run_data(second[0])
        assert "continuing uncached" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Figure / report degradation
# ----------------------------------------------------------------------
def _fake_failure():
    return FailedRun(config=config(), error="synthetic", attempts=1)


class TestFigureDegradation:
    def fig(self):
        return FigureResult(figure_id="t", title="T", x_label="x",
                            y_label="y")

    def test_add_stat_point_drops_failures(self):
        fig = self.fig()
        results = [run_scenario(config()), _fake_failure()]
        _add_stat_point(fig, "s", 1.0, results,
                        lambda r: r.events_processed)
        assert fig.has_failures
        assert not fig.is_failed("s", 1.0)  # one seed survived: degraded
        [(x, y)] = fig.series["s"]
        assert (x, y) == (1.0, float(results[0].events_processed))

    def test_add_stat_point_all_failed_omits_point(self):
        fig = self.fig()
        _add_stat_point(fig, "s", 2.0, [_fake_failure()], lambda r: 0.0)
        assert fig.is_failed("s", 2.0)
        assert "s" not in fig.series

    def test_render_table_marks_failures(self):
        fig = self.fig()
        fig.add_point("ok", 1.0, 10.0)
        fig.add_point("ok", 2.0, 20.0)
        fig.mark_failed("ok", 2.0)       # degraded: value + failures
        fig.mark_failed("gone", 1.0)     # no survivors anywhere
        table = render_table(fig)
        assert "20.0*" in table
        assert "FAILED" in table
        assert "some runs failed" in table

    def test_render_table_unchanged_without_failures(self):
        fig = self.fig()
        fig.add_point("ok", 1.0, 10.0)
        table = render_table(fig)
        assert "FAILED" not in table and "*" not in table

    def test_to_json_includes_failed_points(self):
        fig = self.fig()
        fig.mark_failed("s", 1.0)
        fig.mark_failed("s")
        payload = json.loads(to_json(fig))
        assert payload["failed_points"] == {"s": [1.0, None]}
