"""End-to-end tests of receiver misbehavior and its sender-side defence.

Scenario (Section 4.4): a receiver under-assigns backoffs to a
favoured sender so that flow outruns a neighbouring honest flow.  With
the ``g``-based audit enabled, the sender detects the under-assignment
and waits the honest amount instead, erasing the advantage.
"""

import pytest

from repro.core.params import ProtocolConfig
from repro.mac.correct import CorrectMac
from repro.mac.misbehaving_receiver import UnderAssigningReceiverMac

from tests.conftest import World

G_CONFIG = ProtocolConfig(use_deterministic_g=True)


def favoured_vs_honest_world(audit: bool, seed: int = 11) -> World:
    """Two co-located flows: 1 -> 0 (cheating receiver 0 favours 1)
    and 2 -> 3 (honest pair), all within carrier sense of each other."""
    w = World(seed=seed)
    w.add_receiver(
        UnderAssigningReceiverMac, 0, (0.0, 0.0),
        config=G_CONFIG, assignment_divisor=16.0,
    )
    w.add_receiver(CorrectMac, 3, (0.0, 200.0), config=G_CONFIG)
    w.add_sender(
        CorrectMac, 1, (150.0, 0.0), dst=0,
        config=G_CONFIG, audit_sender_assignments=audit,
    )
    w.add_sender(
        CorrectMac, 2, (150.0, 200.0), dst=3,
        config=G_CONFIG, audit_sender_assignments=audit,
    )
    return w


class TestReceiverCheating:
    def test_under_assignments_happen(self):
        w = favoured_vs_honest_world(audit=False)
        w.run(2_000_000)
        receiver = w.nodes[0].mac
        assert receiver.under_assignments > 50

    def test_favoured_flow_outruns_honest_flow_without_audit(self):
        w = favoured_vs_honest_world(audit=False)
        w.run(3_000_000)
        favoured = w.collector.throughput_bps(1, 3_000_000)
        honest = w.collector.throughput_bps(2, 3_000_000)
        assert favoured > 1.2 * honest

    def test_audit_detects_violations(self):
        w = favoured_vs_honest_world(audit=True)
        w.run(2_000_000)
        sender = w.nodes[2].mac  # node 1
        auditor = sender.receiver_auditor_for(0)
        assert auditor is not None
        assert auditor.violations > 20
        assert w.collector.receiver_audit_events

    def test_audit_neutralises_the_advantage(self):
        w = favoured_vs_honest_world(audit=True)
        w.run(3_000_000)
        favoured = w.collector.throughput_bps(1, 3_000_000)
        honest = w.collector.throughput_bps(2, 3_000_000)
        # The audited sender waits the honest g value, so the two
        # flows end up sharing evenly again.
        assert favoured < 1.15 * honest

    def test_invalid_divisor(self):
        w = World()
        with pytest.raises(ValueError):
            w.add_receiver(
                UnderAssigningReceiverMac, 0, (0.0, 0.0),
                assignment_divisor=0.5,
            )

    def test_favoured_set_respected(self):
        w = World(seed=12)
        w.add_receiver(
            UnderAssigningReceiverMac, 0, (0.0, 0.0),
            config=G_CONFIG, favoured={1}, assignment_divisor=16.0,
        )
        w.add_sender(CorrectMac, 1, (150.0, 0.0), dst=0, config=G_CONFIG)
        w.add_sender(CorrectMac, 2, (-150.0, 0.0), dst=0, config=G_CONFIG)
        w.run(2_000_000)
        receiver = w.nodes[0].mac
        assert receiver.under_assignments > 0
        # The favoured sender's near-zero backoffs let it monopolise
        # the receiver; the unfavoured sender is starved out.
        favoured = w.collector.throughput_bps(1, 2_000_000)
        unfavoured = w.collector.throughput_bps(2, 2_000_000)
        assert favoured > 5 * max(unfavoured, 1.0)
