"""Unit and property tests for the namespaced RNG registry and samplers."""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.rng import RngRegistry, binomial, geometric_skip

import pytest


class TestRegistry:
    def test_same_name_returns_same_stream(self):
        reg = RngRegistry(1)
        assert reg.stream("a") is reg.stream("a")

    def test_streams_are_reproducible_across_registries(self):
        a = RngRegistry(7).stream("backoff/3")
        b = RngRegistry(7).stream("backoff/3")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_names_give_different_sequences(self):
        reg = RngRegistry(7)
        xs = [reg.stream("x").random() for _ in range(5)]
        ys = [reg.stream("y").random() for _ in range(5)]
        assert xs != ys

    def test_different_seeds_give_different_sequences(self):
        a = RngRegistry(1).stream("s")
        b = RngRegistry(2).stream("s")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_adding_new_stream_does_not_perturb_existing(self):
        reg1 = RngRegistry(3)
        s1 = reg1.stream("main")
        first = [s1.random() for _ in range(3)]
        reg2 = RngRegistry(3)
        reg2.stream("other")  # extra stream created first
        s2 = reg2.stream("main")
        assert [s2.random() for _ in range(3)] == first

    def test_streams_listing(self):
        reg = RngRegistry(1)
        reg.stream("a")
        reg.stream("b")
        assert set(reg.streams()) == {"a", "b"}

    def test_derive_seed_is_64_bit(self):
        seed = RngRegistry(123).derive_seed("anything")
        assert 0 <= seed < 2 ** 64


class TestGeometricSkip:
    def test_zero_probability_returns_zero(self, rng):
        assert geometric_skip(rng, 0.0) == 0

    def test_probability_one_rejected(self, rng):
        with pytest.raises(ValueError):
            geometric_skip(rng, 1.0)

    def test_mean_matches_geometry(self):
        rng = random.Random(5)
        p = 0.7
        n = 20_000
        mean = sum(geometric_skip(rng, p) for _ in range(n)) / n
        # E[K] = p / (1 - p)
        expected = p / (1.0 - p)
        assert abs(mean - expected) < 0.1

    @given(st.floats(min_value=0.01, max_value=0.99), st.integers(0, 2**32))
    @settings(max_examples=50)
    def test_always_non_negative(self, p, seed):
        rng = random.Random(seed)
        assert geometric_skip(rng, p) >= 0


class TestBinomial:
    def test_edge_cases(self, rng):
        assert binomial(rng, 0, 0.5) == 0
        assert binomial(rng, 10, 0.0) == 0
        assert binomial(rng, 10, 1.0) == 10

    def test_invalid_arguments(self, rng):
        with pytest.raises(ValueError):
            binomial(rng, -1, 0.5)
        with pytest.raises(ValueError):
            binomial(rng, 5, 1.5)

    @given(
        st.integers(min_value=1, max_value=5000),
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(0, 2**32),
    )
    @settings(max_examples=100)
    def test_result_within_bounds(self, n, p, seed):
        rng = random.Random(seed)
        k = binomial(rng, n, p)
        assert 0 <= k <= n

    def test_small_n_mean(self):
        rng = random.Random(11)
        n, p, reps = 20, 0.3, 20_000
        mean = sum(binomial(rng, n, p) for _ in range(reps)) / reps
        assert abs(mean - n * p) < 0.15

    def test_large_n_mean_normal_path(self):
        rng = random.Random(13)
        n, p, reps = 2000, 0.4, 2000
        mean = sum(binomial(rng, n, p) for _ in range(reps)) / reps
        expected = n * p
        tolerance = 3 * math.sqrt(n * p * (1 - p) / reps)
        assert abs(mean - expected) < max(tolerance, 2.0)

    def test_moderate_n_inversion_path(self):
        # n > 32 but variance <= 25 exercises the geometric-gap loop.
        rng = random.Random(17)
        n, p, reps = 200, 0.02, 30_000
        mean = sum(binomial(rng, n, p) for _ in range(reps)) / reps
        assert abs(mean - n * p) < 0.1
