"""Tests for the batch figure exporter."""

import json

import pytest

from repro.experiments.export import export_all, export_figure
from repro.experiments.settings import EvalSettings

TINY = EvalSettings(
    duration_us=600_000,
    seeds=(1,),
    pm_values=(0.0, 100.0),
    network_sizes=(1,),
    fig8_pm_values=(80.0,),
    random_topologies=1,
    random_nodes=8,
    random_misbehaving=1,
)


class TestExport:
    def test_export_figure_writes_table_and_json(self, tmp_path):
        fig = export_figure("intro", tmp_path, TINY)
        table = (tmp_path / "intro.txt").read_text()
        assert "intro" in table
        payload = json.loads((tmp_path / "intro.json").read_text())
        assert payload["figure_id"] == "intro"
        assert fig.series

    def test_unknown_figure_rejected(self, tmp_path):
        with pytest.raises(KeyError):
            export_figure("nope", tmp_path, TINY)

    def test_export_selected_figures(self, tmp_path, capsys):
        results = export_all(
            str(tmp_path), settings=TINY, figure_ids=["intro", "fig5"]
        )
        assert set(results) == {"intro", "fig5"}
        assert (tmp_path / "fig5.txt").exists()
        assert (tmp_path / "fig5.json").exists()
        out = capsys.readouterr().out
        assert "fig5" in out

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "nested" / "dir"
        export_all(str(target), settings=TINY, figure_ids=["intro"],
                   verbose=False)
        assert (target / "intro.txt").exists()
