"""Tests for the fault model records and the CLI profile parser.

Covers the ``parse_profile`` grammar (and its error messages), record
validation, the ``is_noop`` contract, and the caching properties of
faulted configs: a ``FaultProfile`` is made of frozen primitives, so
faulted runs fingerprint stably and every fault parameter perturbs
the cache key.
"""

import dataclasses

import pytest

from repro.experiments.cache import config_fingerprint
from repro.experiments.scenarios import ScenarioConfig
from repro.faults import (
    ClockDriftFault,
    FaultProfile,
    FrameCorruptionFault,
    FrameLossFault,
    JammingFault,
    NodeCrashFault,
    parse_profile,
)
from repro.net.topology import circle_topology


def config(**kwargs):
    return ScenarioConfig(
        topology=circle_topology(2), duration_us=200_000, seed=1, **kwargs
    )


class TestParseProfile:
    def test_frame_loss_kinds(self):
        profile = parse_profile("ack-loss=0.3")
        assert profile.frame_loss == (
            FrameLossFault(rate=0.3, frame_kinds=("ack",)),
        )

    def test_loss_all_kinds_and_burst(self):
        profile = parse_profile("loss=0.1@4")
        [fault] = profile.frame_loss
        assert fault.frame_kinds == ()
        assert fault.rate == 0.1
        assert fault.burst_mean == 4.0

    def test_corruption_is_distinct_model(self):
        profile = parse_profile("cts-corrupt=0.2")
        assert profile.frame_loss == ()
        [fault] = profile.frame_corruption
        assert isinstance(fault, FrameCorruptionFault)
        assert fault.frame_kinds == ("cts",)

    def test_jam(self):
        profile = parse_profile("jam=2:5000")
        assert profile.jamming == (
            JammingFault(bursts_per_s=2.0, mean_burst_us=5000),
        )

    def test_crash_with_and_without_restart(self):
        profile = parse_profile("crash=3@1-2.5,crash=4@0.5")
        assert profile.node_crashes == (
            NodeCrashFault(node=3, crash_at_us=1_000_000,
                           restart_at_us=2_500_000),
            NodeCrashFault(node=4, crash_at_us=500_000),
        )

    def test_drift(self):
        profile = parse_profile("drift=5:50000")
        assert profile.clock_drifts == (
            ClockDriftFault(node=5, drift_ppm=50000.0),
        )

    def test_combined_spec_with_whitespace(self):
        profile = parse_profile(" ack-loss=0.3@4 , jam=2:5000 , crash=3@1 ")
        assert profile.frame_loss and profile.jamming and profile.node_crashes

    @pytest.mark.parametrize("bad, match", [
        ("bogus", "key=value"),
        ("warp=0.3", "unknown fault key"),
        ("jam=2", "BURSTS_PER_S:MEAN_US"),
        ("crash=3", "NODE@T1"),
        ("drift=5", "NODE:PPM"),
        ("ack-loss=1.5", "rate"),
        ("loss=0.1@0.5", "burst_mean"),
    ])
    def test_malformed_specs_rejected(self, bad, match):
        with pytest.raises(ValueError, match=match):
            parse_profile(bad)


class TestValidation:
    def test_rate_bounds(self):
        with pytest.raises(ValueError):
            FrameLossFault(rate=-0.1)
        with pytest.raises(ValueError):
            FrameLossFault(rate=1.1)

    def test_unknown_frame_kind(self):
        with pytest.raises(ValueError, match="unknown frame kind"):
            FrameLossFault(rate=0.5, frame_kinds=("beacon",))

    def test_jam_bounds(self):
        with pytest.raises(ValueError):
            JammingFault(bursts_per_s=-1.0, mean_burst_us=100)
        with pytest.raises(ValueError):
            JammingFault(bursts_per_s=1.0, mean_burst_us=0)

    def test_restart_must_follow_crash(self):
        with pytest.raises(ValueError):
            NodeCrashFault(node=1, crash_at_us=100, restart_at_us=100)

    def test_drift_keeps_slot_positive(self):
        with pytest.raises(ValueError):
            ClockDriftFault(node=1, drift_ppm=-1_000_000)


class TestIsNoop:
    def test_empty_profile(self):
        assert FaultProfile().is_noop()

    def test_zero_rates_are_noop(self):
        profile = FaultProfile(
            frame_loss=(FrameLossFault(rate=0.0, frame_kinds=("ack",)),),
            frame_corruption=(FrameCorruptionFault(rate=0.0),),
            jamming=(JammingFault(bursts_per_s=0.0, mean_burst_us=100),),
        )
        assert profile.is_noop()

    def test_sub_quantum_drift_is_noop(self):
        # 100 ppm on a 20 us slot rounds back to 20 us.
        profile = FaultProfile(
            clock_drifts=(ClockDriftFault(node=1, drift_ppm=100.0),)
        )
        assert profile.is_noop()

    @pytest.mark.parametrize("profile", [
        FaultProfile(frame_loss=(FrameLossFault(rate=0.1),)),
        FaultProfile(frame_corruption=(FrameCorruptionFault(rate=0.1),)),
        FaultProfile(jamming=(JammingFault(bursts_per_s=1.0,
                                           mean_burst_us=100),)),
        FaultProfile(node_crashes=(NodeCrashFault(node=1, crash_at_us=1),)),
        FaultProfile(clock_drifts=(ClockDriftFault(node=1,
                                                   drift_ppm=500_000.0),)),
    ])
    def test_live_models_are_not_noop(self, profile):
        assert not profile.is_noop()


class TestCaching:
    def test_faulted_config_fingerprints_stably(self):
        spec = "ack-loss=0.3@4,jam=2:5000,crash=3@1-2.5,drift=5:50000"
        a = config(faults=parse_profile(spec))
        b = config(faults=parse_profile(spec))
        assert config_fingerprint(a) == config_fingerprint(b)

    def test_fault_layer_perturbs_fingerprint(self):
        base = config_fingerprint(config())
        faulted = config(faults=parse_profile("ack-loss=0.3"))
        assert config_fingerprint(faulted) != base

    @pytest.mark.parametrize("spec_a, spec_b", [
        ("ack-loss=0.3", "ack-loss=0.4"),
        ("ack-loss=0.3", "cts-loss=0.3"),
        ("ack-loss=0.3", "ack-corrupt=0.3"),
        ("ack-loss=0.3@2", "ack-loss=0.3@4"),
        ("jam=2:5000", "jam=2:6000"),
        ("crash=3@1", "crash=3@1-2"),
        ("drift=5:50000", "drift=5:60000"),
    ])
    def test_every_fault_parameter_perturbs_fingerprint(self, spec_a, spec_b):
        a = config(faults=parse_profile(spec_a))
        b = config(faults=parse_profile(spec_b))
        assert config_fingerprint(a) != config_fingerprint(b)

    def test_records_are_frozen(self):
        fault = FrameLossFault(rate=0.5)
        with pytest.raises(dataclasses.FrozenInstanceError):
            fault.rate = 0.9
