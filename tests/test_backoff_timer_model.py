"""Property test: BackoffTimer against a step-by-step reference model.

The timer implements countdown with blocked-freeze, IFS deference and
slot-boundary semantics using *events* (completion scheduling,
geometric skips).  This test drives it with hypothesis-generated
block/unblock schedules and checks the expiry time against a dumb
slot-by-slot reference simulation of the same rules:

* while blocked, nothing happens;
* after every blocked->free transition (and at start), wait IFS of
  uninterrupted free time before counting;
* each subsequent free slot decrements the counter; partial slots cut
  short by a block are discarded;
* when the counter hits zero the timer expires at that slot boundary.

Only the clean-channel path is modelled (marginal probability 0); the
sampled path is statistical and covered elsewhere.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mac.backoff_timer import BackoffTimer
from repro.sim.engine import Simulator

SLOT = 20
IFS = 50


def reference_expiry(slots: int, busy_intervals, horizon: int) -> int | None:
    """Slot-by-slot reference: returns expiry time or None."""

    def blocked(t: int) -> bool:
        return any(a <= t < b for a, b in busy_intervals)

    remaining = slots
    t = 0
    while t <= horizon:
        if blocked(t):
            t += 1
            continue
        # Need IFS of free time.
        ifs_end = t + IFS
        if any(blocked(u) for u in range(t, min(ifs_end, horizon + 1))):
            # advance to the next blocked moment + 1
            t += 1
            continue
        t = ifs_end
        if remaining == 0:
            return t
        # Count down whole free slots.
        while remaining > 0:
            slot_end = t + SLOT
            interrupted = next(
                (u for u in range(t, min(slot_end, horizon + 1))
                 if blocked(u)), None,
            )
            if interrupted is not None:
                t = interrupted
                break
            t = slot_end
            remaining -= 1
            if remaining == 0:
                return t
        else:
            return t
    return None


@st.composite
def schedules(draw):
    slots = draw(st.integers(min_value=0, max_value=12))
    n_busy = draw(st.integers(min_value=0, max_value=4))
    intervals = []
    cursor = draw(st.integers(min_value=1, max_value=150))
    for _ in range(n_busy):
        start = cursor
        length = draw(st.integers(min_value=1, max_value=300))
        intervals.append((start, start + length))
        cursor = start + length + draw(st.integers(min_value=1, max_value=300))
    return slots, intervals


@given(schedules())
@settings(max_examples=120, deadline=None)
def test_timer_matches_reference(case):
    slots, busy_intervals = case
    horizon = 20_000
    sim = Simulator()
    expired = []
    timer = BackoffTimer(
        sim, SLOT, random.Random(0),
        marginal_probability=lambda: 0.0,
        ifs_provider=lambda: IFS,
        on_expire=lambda: expired.append(sim.now),
    )
    for start, end in busy_intervals:
        sim.schedule(start, lambda: timer.set_blocked(True))
        sim.schedule(end, lambda: timer.set_blocked(False))
    timer.start(slots)
    sim.run(until=horizon)
    expected = reference_expiry(slots, busy_intervals, horizon)
    actual = expired[0] if expired else None
    assert actual == expected, (
        f"slots={slots} busy={busy_intervals}: "
        f"timer={actual} reference={expected}"
    )
