"""Smoke + shape tests for the figure generators (quick scale)."""

import pytest

from repro.experiments.figures import (
    FigureResult,
    figure4,
    figure5,
    figure8,
    figure_detectors,
    intro_claim,
)
from repro.experiments.report import render_table, to_json
from repro.experiments.settings import EvalSettings

#: Tiny scale so the whole module runs in tens of seconds.
TINY = EvalSettings(
    duration_us=1_200_000,
    seeds=(1, 2),
    pm_values=(0.0, 100.0),
    network_sizes=(1, 4),
    fig8_pm_values=(80.0,),
    random_topologies=1,
    random_nodes=12,
    random_misbehaving=2,
)


@pytest.fixture(scope="module")
def fig4():
    return figure4(TINY)


@pytest.fixture(scope="module")
def fig5():
    return figure5(TINY)


class TestFigure4:
    def test_series_present(self, fig4):
        assert set(fig4.series) == {
            "ZERO-FLOW correct diagnosis",
            "ZERO-FLOW misdiagnosis",
            "TWO-FLOW correct diagnosis",
            "TWO-FLOW misdiagnosis",
        }

    def test_full_misbehavior_diagnosed(self, fig4):
        zero = dict(fig4.series["ZERO-FLOW correct diagnosis"])
        assert zero[100.0] > 90.0

    def test_no_misbehavior_no_correct_diagnosis(self, fig4):
        zero = dict(fig4.series["ZERO-FLOW correct diagnosis"])
        assert zero[0.0] == 0.0

    def test_zero_flow_misdiagnosis_low(self, fig4):
        mis = dict(fig4.series["ZERO-FLOW misdiagnosis"])
        assert mis[0.0] < 10.0


class TestFigure5:
    def test_series_present(self, fig5):
        assert set(fig5.series) == {
            "802.11 - MSB", "802.11 - AVG", "CORRECT - MSB", "CORRECT - AVG",
        }

    def test_cheater_dominates_under_80211(self, fig5):
        msb = dict(fig5.series["802.11 - MSB"])
        avg = dict(fig5.series["802.11 - AVG"])
        assert msb[100.0] > 5 * max(avg[100.0], 1e-9)

    def test_honest_baseline_has_no_msb(self, fig5):
        msb = dict(fig5.series["802.11 - MSB"])
        assert msb[0.0] == 0.0


class TestFigure8:
    def test_time_series_shape(self):
        fig = figure8(TINY)
        series = fig.series["PM=80%"]
        assert len(series) == 2  # 1.2 s horizon, 1 s bins -> 2 bins
        assert all(0.0 <= y <= 100.0 for _, y in series)


class TestIntroClaim:
    def test_cheater_beats_fair_share(self):
        fig = intro_claim(TINY)
        fair = fig.series["fair share (all honest)"][0][1]
        cheat = fig.series["cheater (MSB)"][0][1]
        assert cheat > fair
        assert "degradation_percent" in fig.meta


class TestFigureDetectors:
    @pytest.fixture(scope="class")
    def fig(self):
        return figure_detectors(TINY)

    def test_all_detectors_produce_operating_point_series(self, fig):
        for spec in TINY.detectors:
            assert f"{spec} - detection %" in fig.series
            assert f"{spec} - false alarm %" in fig.series
        assert fig.meta["detectors"] == list(TINY.detectors)

    def test_full_misbehavior_detected_by_every_detector(self, fig):
        for spec in TINY.detectors:
            detection = dict(fig.series[f"{spec} - detection %"])
            assert detection[100.0] > 50.0, spec

    def test_no_misbehavior_means_low_false_alarms(self, fig):
        for spec in TINY.detectors:
            alarms = dict(fig.series[f"{spec} - false alarm %"])
            assert alarms[0.0] < 10.0, spec

    def test_latency_series_only_for_positive_pm(self, fig):
        for spec in TINY.detectors:
            pkts = fig.series.get(f"{spec} - TTD (pkts)", [])
            ms = fig.series.get(f"{spec} - TTD (ms)", [])
            assert all(x > 0 for x, _ in pkts)
            assert all(x > 0 for x, _ in ms)
            # At PM=100 a flag must have happened for every detector.
            assert 100.0 in dict(pkts), spec
            assert all(y >= 1.0 for _, y in pkts)


class TestReport:
    def test_render_table_contains_all_series(self, fig4):
        table = render_table(fig4)
        for name in fig4.series:
            assert name in table
        assert "fig4" in table

    def test_to_json_round_trips(self, fig4):
        import json

        payload = json.loads(to_json(fig4))
        assert payload["figure_id"] == "fig4"
        assert set(payload["series"]) == set(fig4.series)

    def test_figure_result_accessors(self):
        fig = FigureResult("x", "t", "x", "y")
        fig.add_point("s", 2.0, 20.0)
        fig.add_point("s", 1.0, 10.0)
        assert fig.xs("s") == [1.0, 2.0]
        assert fig.ys("s") == [10.0, 20.0]
