"""Library-level campaign orchestration: fresh runs, exactly-once
resume, torn-tail recovery, and worker-crash chaos (PR 2's ``os._exit``
policies riding inside a journaled campaign).

Crash policies here must carry a *stable* ``__repr__``: campaign cells
are keyed by ``config_fingerprint``, and a default object repr (with
its ``0x...`` address) is rightly rejected as unjournalable.  They must
also override a sender node (ids >= 1) — node 0 is the receiver.
"""

import json
import os
import pathlib

import pytest

from repro.core.sender_policy import ConformingPolicy
from repro.experiments.campaign import (
    CampaignCell,
    CampaignError,
    EXIT_FAILED_CELLS,
    EXIT_OK,
    JOURNAL_NAME,
    SUMMARY_NAME,
    parse_campaign,
    read_journal,
    run_campaign,
    run_cells,
)
from repro.experiments.executor import ExperimentExecutor
from repro.experiments.scenarios import ScenarioConfig
from repro.net.topology import circle_topology

QUICK = "scenario=circle:3; pm=0|60; seeds=1-2; seconds=0.05"


class AddressReprPolicy(ConformingPolicy):
    """Deliberately unfingerprintable (repr carries the object address)."""

    def __repr__(self):
        return object.__repr__(self)


class CampaignCrashPolicy(ConformingPolicy):
    """Kills its worker process every time node 1 counts down."""

    def __repr__(self):
        return "CampaignCrashPolicy()"

    def effective_countdown(self, nominal_slots):
        os._exit(17)


class CampaignTransientCrashPolicy(ConformingPolicy):
    """Crashes the worker once (while the marker is absent), then runs."""

    def __init__(self, marker):
        self.marker = str(marker)

    def __repr__(self):
        return f"CampaignTransientCrashPolicy({self.marker!r})"

    def effective_countdown(self, nominal_slots):
        if not os.path.exists(self.marker):
            open(self.marker, "w").close()
            os._exit(17)
        return nominal_slots


def policy_cell(key, policy, seed=1):
    config = ScenarioConfig(
        topology=circle_topology(3), duration_us=100_000, seed=seed,
        policy_overrides={1: policy},
    )
    return CampaignCell(key=key, group="chaos", seed=seed, config=config)


def journal_runs(out_dir):
    records = read_journal(pathlib.Path(out_dir) / JOURNAL_NAME).records
    return [r for r in records if r["kind"] == "run"]


class TestFreshRun:
    def test_quick_campaign_settles_every_cell(self, tmp_path):
        report = run_campaign(parse_campaign(QUICK), tmp_path / "c")
        assert report.exit_code == EXIT_OK
        assert (report.cells, report.ok) == (4, 4)
        assert report.failed == report.quarantined == 0
        assert report.resumed == 0 and report.executed == 4
        runs = journal_runs(tmp_path / "c")
        assert len(runs) == 4
        assert len({r["fp"] for r in runs}) == 4
        summary = json.loads(report.summary_path.read_text())
        assert summary["complete"] is True
        assert summary["ok"] == 4
        groups = summary["groups"]
        assert len(groups) == 2  # pm=0 and pm=60
        for group in groups.values():
            assert group["metrics"]["avg_throughput_bps"]["n"] == 2

    def test_existing_journal_requires_resume(self, tmp_path):
        spec = parse_campaign(QUICK)
        run_campaign(spec, tmp_path / "c")
        with pytest.raises(CampaignError, match="resume"):
            run_campaign(spec, tmp_path / "c")

    def test_bad_chunk_size(self, tmp_path):
        with pytest.raises(CampaignError, match="chunk size"):
            run_campaign(parse_campaign(QUICK), tmp_path / "c",
                         chunk_size=0)

    def test_executor_must_flag_failures(self, tmp_path):
        ex = ExperimentExecutor(workers=1, on_failure="raise")
        try:
            with pytest.raises(CampaignError, match="flag"):
                run_campaign(parse_campaign(QUICK), tmp_path / "c",
                             executor=ex)
        finally:
            ex.close()

    def test_unfingerprintable_cell_rejected(self, tmp_path):
        cell = policy_cell("chaos/seed=1", AddressReprPolicy())
        with pytest.raises(CampaignError, match="not journalable"):
            run_cells([cell], "spec", tmp_path / "c")

    def test_duplicate_cells_deduplicated(self, tmp_path):
        cell = policy_cell("chaos/seed=1", ConformingPolicy())
        report = run_cells([cell, cell], "spec", tmp_path / "c",
                           workers=1)
        assert report.cells == 1 and report.ok == 1
        summary = json.loads(report.summary_path.read_text())
        assert summary["duplicate_cells"] == 1
        assert len(journal_runs(tmp_path / "c")) == 1


class TestResume:
    def reference(self, tmp_path):
        spec = parse_campaign(QUICK)
        ref_dir = tmp_path / "ref"
        run_campaign(spec, ref_dir, chunk_size=1)
        return spec, ref_dir, (ref_dir / SUMMARY_NAME).read_bytes()

    def test_resume_of_complete_campaign_is_noop(self, tmp_path):
        spec, ref_dir, ref_summary = self.reference(tmp_path)
        report = run_campaign(spec, ref_dir, resume=True, workers=1)
        assert report.exit_code == EXIT_OK
        assert report.resumed == 4 and report.executed == 0
        assert (ref_dir / SUMMARY_NAME).read_bytes() == ref_summary
        assert len(journal_runs(ref_dir)) == 4  # no duplicates appended

    def test_resume_after_kill_is_bit_identical(self, tmp_path):
        spec, ref_dir, ref_summary = self.reference(tmp_path)
        ref_journal = (ref_dir / JOURNAL_NAME).read_bytes()
        # Simulate a SIGKILL after the second run record: keep the
        # header + 2 records, drop the rest.
        lines = ref_journal.splitlines(keepends=True)
        cut_dir = tmp_path / "cut"
        cut_dir.mkdir()
        (cut_dir / JOURNAL_NAME).write_bytes(b"".join(lines[:3]))
        report = run_campaign(spec, cut_dir, resume=True, chunk_size=1)
        assert report.exit_code == EXIT_OK
        assert report.resumed == 2 and report.executed == 2
        assert (cut_dir / SUMMARY_NAME).read_bytes() == ref_summary
        assert (cut_dir / JOURNAL_NAME).read_bytes() == ref_journal
        fps = [r["fp"] for r in journal_runs(cut_dir)]
        assert len(fps) == len(set(fps)) == 4

    def test_resume_with_torn_tail_is_bit_identical(self, tmp_path):
        spec, ref_dir, ref_summary = self.reference(tmp_path)
        ref_journal = (ref_dir / JOURNAL_NAME).read_bytes()
        lines = ref_journal.splitlines(keepends=True)
        torn_dir = tmp_path / "torn"
        torn_dir.mkdir()
        # header + 1 good record + half of the next record, no newline
        (torn_dir / JOURNAL_NAME).write_bytes(
            b"".join(lines[:2]) + lines[2][:25]
        )
        report = run_campaign(spec, torn_dir, resume=True, chunk_size=1)
        assert report.truncated_tail
        assert report.resumed == 1 and report.executed == 3
        assert report.exit_code == EXIT_OK
        assert (torn_dir / SUMMARY_NAME).read_bytes() == ref_summary
        assert (torn_dir / JOURNAL_NAME).read_bytes() == ref_journal

    def test_resume_refuses_foreign_spec(self, tmp_path):
        spec, ref_dir, _ = self.reference(tmp_path)
        other = parse_campaign("scenario=circle:3; pm=30; seconds=0.05")
        with pytest.raises(CampaignError, match="different campaign"):
            run_campaign(other, ref_dir, resume=True, workers=1)

    def test_resume_refuses_foreign_shard(self, tmp_path):
        spec, ref_dir, _ = self.reference(tmp_path)
        with pytest.raises(CampaignError, match="shard"):
            run_campaign(spec, ref_dir, resume=True, shard=(0, 2),
                         workers=1)


class TestWorkerCrashChaos:
    def test_permanent_crasher_quarantined_not_fatal(self, tmp_path):
        cells = [
            policy_cell("chaos/ok-1", ConformingPolicy(), seed=1),
            policy_cell("chaos/crash", CampaignCrashPolicy(), seed=2),
            policy_cell("chaos/ok-2", ConformingPolicy(), seed=3),
        ]
        ex = ExperimentExecutor(workers=2, on_failure="flag")
        try:
            report = run_cells(cells, "chaos-spec", tmp_path / "c",
                               executor=ex)
        finally:
            ex.close()
        assert report.exit_code == EXIT_FAILED_CELLS
        assert report.ok == 2 and report.quarantined == 1
        assert report.failed == 0
        by_seed = {r["seed"]: r for r in journal_runs(tmp_path / "c")}
        assert by_seed[2]["status"] == "quarantined"
        assert "worker crashed" in by_seed[2]["error"]
        assert by_seed[1]["status"] == by_seed[3]["status"] == "ok"
        summary = json.loads(report.summary_path.read_text())
        assert summary["quarantined"] == 1 and summary["complete"]

    def test_transient_crasher_recovers_to_ok(self, tmp_path):
        policy = CampaignTransientCrashPolicy(tmp_path / "crashed-once")
        cells = [policy_cell("chaos/transient", policy, seed=2)]
        # workers >= 2 forces the pool path; a single-worker executor
        # runs inline and the crash would take pytest with it
        ex = ExperimentExecutor(workers=2, on_failure="flag")
        try:
            report = run_cells(cells, "chaos-spec", tmp_path / "c",
                               executor=ex)
            assert ex.pool_respawns >= 1
        finally:
            ex.close()
        assert report.exit_code == EXIT_OK
        assert report.ok == 1
        (record,) = journal_runs(tmp_path / "c")
        assert record["status"] == "ok"
        assert record["metrics"]["events_processed"] > 0
