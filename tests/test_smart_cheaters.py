"""Tests for the adaptive adversaries and the paper's resistance claims."""

import pytest

from repro.core.smart_cheaters import (
    PenaltyRespectingCheaterPolicy,
    ThresholdAwareCheaterPolicy,
)
from repro.mac.correct import CorrectMac

from tests.conftest import World


class TestThresholdAwarePolicyUnit:
    def test_cheats_when_window_cold(self):
        policy = ThresholdAwareCheaterPolicy(pm_percent=50.0, thresh=20.0)
        assert policy.effective_countdown(20) == 10
        assert policy.cheated_countdowns == 1

    def test_cheating_capped_by_headroom(self):
        policy = ThresholdAwareCheaterPolicy(
            pm_percent=100.0, window=5, thresh=20.0, safety_margin=0.0
        )
        waits = [policy.effective_countdown(30) for _ in range(3)]
        # First packet: cheat limited to the THRESH headroom (20 of 30
        # desired slots), then the window is full: honest waits.
        assert waits[0] == 10
        assert waits[1] == 30
        assert waits[2] == 30
        assert sum(policy._diffs) <= 20.0

    def test_window_cools_down(self):
        policy = ThresholdAwareCheaterPolicy(
            pm_percent=100.0, window=2, thresh=10.0, safety_margin=0.0
        )
        for _ in range(5):
            policy.effective_countdown(15)
        # With window 2, every other packet regains headroom.
        assert policy.cheated_countdowns >= 2

    def test_estimated_sum_never_exceeds_thresh(self):
        policy = ThresholdAwareCheaterPolicy(
            pm_percent=100.0, window=5, thresh=20.0, safety_margin=4.0
        )
        for nominal in (10, 40, 7, 100, 3, 55, 20, 20, 20):
            policy.effective_countdown(nominal)
            assert sum(policy._diffs) <= 20.0 - 4.0 + 1e-9

    def test_invalid_pm(self):
        with pytest.raises(ValueError):
            ThresholdAwareCheaterPolicy(pm_percent=150.0)


class TestPenaltyRespectingPolicyUnit:
    def test_base_shaved_penalty_served(self):
        policy = PenaltyRespectingCheaterPolicy(pm_percent=50.0, cw_min=31)
        # assignment 81 = 31 base (max) + 50 penalty:
        assert policy.effective_countdown(81) == 50 + 16
        assert policy.penalty_slots_served == 50

    def test_no_penalty_behaves_like_pm(self):
        policy = PenaltyRespectingCheaterPolicy(pm_percent=50.0, cw_min=31)
        assert policy.effective_countdown(20) == 10

    def test_invalid_pm(self):
        with pytest.raises(ValueError):
            PenaltyRespectingCheaterPolicy(pm_percent=-1.0)


def contention_world(policy, seed=33):
    w = World(seed=seed)
    w.add_receiver(CorrectMac, 0, (0.0, 0.0))
    w.add_sender(CorrectMac, 1, (150.0, 0.0), dst=0)
    w.add_sender(CorrectMac, 2, (-150.0, 0.0), dst=0)
    w.add_sender(CorrectMac, 3, (0.0, 150.0), dst=0, policy=policy)
    w.run(4_000_000)
    honest = (w.collector.throughput_bps(1, 4_000_000)
              + w.collector.throughput_bps(2, 4_000_000)) / 2
    cheat = w.collector.throughput_bps(3, 4_000_000)
    return w, honest, cheat


class TestPaperResistanceClaims:
    def test_threshold_aware_cheater_gains_little(self):
        """Adapting to W/THRESH dodges diagnosis, not penalties."""
        policy = ThresholdAwareCheaterPolicy(pm_percent=80.0)
        w, honest, cheat = contention_world(policy)
        # It escapes standing diagnosed most of the time...
        stats = w.collector.flows[3]
        assert stats.diagnosed_packets < stats.delivered_packets * 0.5
        # ...but penalties still land on every perceived deviation,
        # keeping its throughput near fair share.
        assert stats.penalty_slots > 0
        assert cheat < 1.4 * honest

    def test_penalty_respecting_cheater_gains_little(self):
        """Serving penalties caps the achievable advantage (Sec. 3.2)."""
        policy = PenaltyRespectingCheaterPolicy(pm_percent=80.0)
        w, honest, cheat = contention_world(policy)
        assert policy.penalty_slots_served > 0
        assert cheat < 1.4 * honest
