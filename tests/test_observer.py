"""Third-party observation: independent diagnosis and collusion detection."""

import pytest

from repro.core.params import ProtocolConfig
from repro.core.sender_policy import PartialCountdownPolicy
from repro.mac.correct import CorrectMac
from repro.mac.observer import ObserverMac

from tests.conftest import World

#: A receiver that colludes by never perceiving deviations: alpha so
#: permissive that equation 1 never fires, hence no penalties and no
#: diagnosis, while the wire protocol stays unchanged.
COLLUDING_CONFIG = ProtocolConfig(alpha=0.01)


def observed_world(receiver_config, cheat_pm, seed=81):
    """Sender 1 (possibly cheating) -> receiver 0, honest sender 2,
    with observer 9 placed near the pair."""
    w = World(seed=seed)
    w.add_receiver(CorrectMac, 0, (0.0, 0.0), config=receiver_config)
    policy = PartialCountdownPolicy(cheat_pm) if cheat_pm else None
    kwargs = {"policy": policy} if policy else {}
    w.add_sender(CorrectMac, 1, (150.0, 0.0), dst=0, **kwargs)
    w.add_sender(CorrectMac, 2, (-150.0, 0.0), dst=0)
    w.add_receiver(ObserverMac, 9, (30.0, 30.0), watch=((1, 0), (2, 0)))
    return w


def observer_of(w):
    return next(n.mac for n in w.nodes if isinstance(n.mac, ObserverMac))


class TestIndependentDiagnosis:
    def test_observer_sees_honest_pair_as_clean(self):
        w = observed_world(ProtocolConfig(), cheat_pm=0.0)
        w.run(2_000_000)
        obs = observer_of(w)
        assert obs.pairs[(1, 0)].packets > 100
        assert not obs.sender_misbehaving(1, 0)
        assert not obs.colluding(1, 0)

    def test_observer_diagnoses_cheater_independently(self):
        w = observed_world(ProtocolConfig(), cheat_pm=80.0)
        w.run(2_000_000)
        obs = observer_of(w)
        assert obs.sender_misbehaving(1, 0)
        assert obs.pairs[(1, 0)].deviations > 20

    def test_watch_list_filters_pairs(self):
        w = World(seed=82)
        w.add_receiver(CorrectMac, 0, (0.0, 0.0))
        w.add_sender(CorrectMac, 1, (150.0, 0.0), dst=0)
        w.add_receiver(ObserverMac, 9, (30.0, 30.0), watch=((7, 8),))
        w.run(500_000)
        obs = observer_of(w)
        assert obs.pairs == {}


class TestCollusionDetection:
    def test_honest_receiver_not_flagged_as_colluding(self):
        """An honest receiver penalises the cheater, so even though
        the sender misbehaves, the pair is not colluding."""
        w = observed_world(ProtocolConfig(), cheat_pm=80.0)
        w.run(3_000_000)
        obs = observer_of(w)
        assert obs.sender_misbehaving(1, 0)
        assert not obs.colluding(1, 0)

    def test_colluding_pair_flagged(self):
        """A receiver that never penalises its cheating sender is
        exposed: the observer sees deviations with no corrective
        assignments."""
        w = observed_world(COLLUDING_CONFIG, cheat_pm=80.0)
        w.run(3_000_000)
        obs = observer_of(w)
        pair = obs.pairs[(1, 0)]
        assert pair.deviations >= obs.min_evidence
        assert obs.colluding(1, 0)

    def test_collusion_pays_without_observer_action(self):
        """Sanity: collusion is worth detecting — the covered cheater
        out-earns the honest sender."""
        w = observed_world(COLLUDING_CONFIG, cheat_pm=80.0)
        w.run(3_000_000)
        cheat = w.collector.throughput_bps(1, 3_000_000)
        honest = w.collector.throughput_bps(2, 3_000_000)
        assert cheat > 1.5 * honest

    def test_report_structure(self):
        w = observed_world(COLLUDING_CONFIG, cheat_pm=80.0)
        w.run(1_500_000)
        report = observer_of(w).report()
        assert (1, 0) in report
        entry = report[(1, 0)]
        assert {"packets", "deviations", "unpenalised_deviations",
                "sender_misbehaving", "colluding"} <= set(entry)
