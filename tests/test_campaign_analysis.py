"""Campaign analysis: shard merging, datasets, diagnostics, figures.

The headline property (ISSUE 8's acceptance criterion): a campaign run
as N shards and merged must produce a ``summary.json`` byte-identical
to the same campaign run unsharded — including when a shard is
SIGKILLed mid-journal-write and resumed.  The journal-driven figure
bridges must likewise reproduce the in-memory ``FigureResult`` path's
numbers exactly (same per-run metrics, same seed order, same
:func:`~repro.metrics.stats.summarize` call).
"""

import pathlib
import tempfile

import pytest
from hypothesis import HealthCheck, given
from hypothesis import settings as hyp_settings
from hypothesis import strategies as st

from repro.experiments.campaign import (
    AnalysisError,
    CampaignAggregator,
    JOURNAL_NAME,
    JournalRecordError,
    ReportError,
    SUMMARY_NAME,
    encode_record,
    figure_from_dataset,
    group_diagnostics,
    load_dataset,
    merge_journals,
    parse_campaign,
    read_journal,
    run_campaign,
    seeds_for_relative_ci,
)
from repro.experiments.executor import ExperimentExecutor
from repro.experiments.figures import FigureResult, figure6, figure7
from repro.experiments.report import render_table
from repro.experiments.settings import EvalSettings
from repro.__main__ import main

SPEC_TEXT = "scenario=circle:2; protocol=802.11|correct; pm=0; seeds=1-2; seconds=0.03"


@pytest.fixture(scope="module")
def executor():
    with ExperimentExecutor(on_failure="flag", workers=2) as ex:
        yield ex


@pytest.fixture(scope="module")
def reference(tmp_path_factory, executor):
    """The unsharded run every merge must reproduce byte-for-byte."""
    out = tmp_path_factory.mktemp("reference") / "full.out"
    spec = parse_campaign(SPEC_TEXT)
    report = run_campaign(spec, out, executor=executor)
    assert report.exit_code == 0
    return {
        "out": out,
        "summary": (out / SUMMARY_NAME).read_bytes(),
        "journal_runs": [
            line for line in
            (out / JOURNAL_NAME).read_text().splitlines()
            if '"kind":"run"' in line
        ],
    }


def run_shards(base, n_shards, executor):
    spec = parse_campaign(SPEC_TEXT)
    dirs = []
    for i in range(n_shards):
        d = pathlib.Path(base) / f"s{i}.out"
        run_campaign(spec, d, shard=(i, n_shards), executor=executor)
        dirs.append(d)
    return dirs


def drop_tail_record(journal_path, torn=False):
    """Simulate a mid-write SIGKILL: lose the last settled record."""
    path = pathlib.Path(journal_path)
    lines = path.read_bytes().splitlines(keepends=True)
    run_lines = [ln for ln in lines if b'"kind":"run"' in ln]
    if not run_lines:
        return False
    lines.remove(run_lines[-1])
    data = b"".join(lines)
    if torn:
        data += b'1a2b3c4d {"kind":"run", "torn'  # cut mid-payload
    path.write_bytes(data)
    return True


class TestMergeByteIdentity:
    @given(
        n_shards=st.integers(min_value=1, max_value=3),
        kill=st.one_of(
            st.none(),
            st.tuples(st.integers(0, 2), st.booleans()),
        ),
    )
    @hyp_settings(
        max_examples=6, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_sharded_merge_matches_unsharded(
        self, reference, executor, n_shards, kill
    ):
        with tempfile.TemporaryDirectory() as base:
            dirs = run_shards(base, n_shards, executor)
            if kill is not None:
                victim, torn = kill
                victim_dir = dirs[victim % n_shards]
                if drop_tail_record(victim_dir / JOURNAL_NAME, torn=torn):
                    # resume re-settles exactly the lost cell
                    run_campaign(
                        parse_campaign(SPEC_TEXT), victim_dir,
                        resume=True,
                        shard=(victim % n_shards, n_shards),
                        executor=executor,
                    )
            merged = pathlib.Path(base) / "merged.out"
            result = merge_journals(dirs, merged)
            assert result.complete
            assert not result.skipped
            assert (merged / SUMMARY_NAME).read_bytes() == \
                reference["summary"]

    def test_merged_run_records_identical_to_unsharded(
        self, reference, executor
    ):
        with tempfile.TemporaryDirectory() as base:
            dirs = run_shards(base, 2, executor)
            merged = pathlib.Path(base) / "merged.out"
            merge_journals(dirs, merged)
            merged_runs = [
                line for line in
                (merged / JOURNAL_NAME).read_text().splitlines()
                if '"kind":"run"' in line
            ]
            assert merged_runs == reference["journal_runs"]

    def test_incomplete_merge_is_resumable(self, reference, executor):
        with tempfile.TemporaryDirectory() as base:
            spec = parse_campaign(SPEC_TEXT)
            only = pathlib.Path(base) / "s0.out"
            run_campaign(spec, only, shard=(0, 2), executor=executor)
            merged = pathlib.Path(base) / "merged.out"
            result = merge_journals([only], merged)
            assert not result.complete
            assert result.missing
            # the merged directory is a valid campaign dir: resuming it
            # unsharded runs exactly the missing cells
            report = run_campaign(
                spec, merged, resume=True, executor=executor
            )
            assert report.executed == len(result.missing)
            assert (merged / SUMMARY_NAME).read_bytes() == \
                reference["summary"]


class TestMergeRobustness:
    def test_bad_record_skipped_and_counted(self, reference, executor):
        with tempfile.TemporaryDirectory() as base:
            dirs = run_shards(base, 2, executor)
            # checksum-valid record with no 'group': an incompatible
            # schema, not corruption — merge must skip, not crash
            bad = {"kind":"run", "fp": "feedbead" * 8, "cell": "x",
                   "seed": 1, "status": "ok", "metrics": {}}
            with open(dirs[0] / JOURNAL_NAME, "a") as fh:
                fh.write(encode_record(bad) + "\n")
            merged = pathlib.Path(base) / "merged.out"
            result = merge_journals(dirs, merged)
            assert len(result.skipped) == 1
            skip = result.skipped[0]
            assert "group" in skip.reason
            assert skip.offset == len(read_journal(
                dirs[0] / JOURNAL_NAME).records)
            assert result.complete
            assert (merged / SUMMARY_NAME).read_bytes() == \
                reference["summary"]

    def test_unknown_fingerprint_skipped(self, reference, executor):
        with tempfile.TemporaryDirectory() as base:
            dirs = run_shards(base, 1, executor)
            alien = {"kind":"run", "fp": "ab" * 32, "cell": "x",
                     "group": "g", "seed": 1, "status": "ok",
                     "metrics": {}}
            with open(dirs[0] / JOURNAL_NAME, "a") as fh:
                fh.write(encode_record(alien) + "\n")
            result = merge_journals(
                dirs, pathlib.Path(base) / "merged.out"
            )
            assert len(result.skipped) == 1
            assert "not in this campaign's grid" in result.skipped[0].reason

    def test_duplicate_records_dropped(self, reference, executor):
        with tempfile.TemporaryDirectory() as base:
            dirs = run_shards(base, 2, executor)
            journal = dirs[1] / JOURNAL_NAME
            run_line = next(
                line for line in journal.read_text().splitlines()
                if '"kind":"run"' in line
            )
            with open(journal, "a") as fh:
                fh.write(run_line + "\n")
            merged = pathlib.Path(base) / "merged.out"
            result = merge_journals(dirs, merged)
            assert result.duplicate_records == 1
            assert (merged / SUMMARY_NAME).read_bytes() == \
                reference["summary"]

    def test_mismatched_specs_rejected(self, executor):
        with tempfile.TemporaryDirectory() as base:
            spec_a = parse_campaign(SPEC_TEXT)
            spec_b = parse_campaign(
                "scenario=circle:3; pm=0; seeds=1; seconds=0.03"
            )
            dir_a = pathlib.Path(base) / "a.out"
            dir_b = pathlib.Path(base) / "b.out"
            run_campaign(spec_a, dir_a, executor=executor)
            run_campaign(spec_b, dir_b, executor=executor)
            with pytest.raises(AnalysisError, match="different campaigns"):
                merge_journals(
                    [dir_a, dir_b], pathlib.Path(base) / "m.out"
                )

    def test_refuses_existing_output_without_force(
        self, reference, executor
    ):
        with tempfile.TemporaryDirectory() as base:
            dirs = run_shards(base, 1, executor)
            merged = pathlib.Path(base) / "merged.out"
            merge_journals(dirs, merged)
            with pytest.raises(AnalysisError, match="force"):
                merge_journals(dirs, merged)
            result = merge_journals(dirs, merged, force=True)
            assert result.complete

    def test_missing_journal_rejected(self):
        with pytest.raises(AnalysisError, match="no journal"):
            merge_journals(["/nonexistent/place"], "/tmp/never.out")

    def test_empty_sources_rejected(self):
        with pytest.raises(AnalysisError, match="nothing to merge"):
            merge_journals([], "/tmp/never.out")


class TestAggregatorValidation:
    def ok_record(self, **overrides):
        record = {"kind":"run", "fp": "aa" * 32, "cell": "c",
                  "group": "g", "seed": 1, "status": "ok",
                  "metrics": {}}
        record.update(overrides)
        return {k: v for k, v in record.items() if v is not None}

    def test_missing_group_names_offset(self):
        agg = CampaignAggregator()
        with pytest.raises(JournalRecordError, match="at record 7"):
            agg.add(self.ok_record(group=None), offset=7)

    def test_missing_status_names_offset(self):
        agg = CampaignAggregator()
        with pytest.raises(JournalRecordError, match=r"no 'status'"):
            agg.add(self.ok_record(status=None), offset=3)

    def test_error_names_cell_and_schema(self):
        agg = CampaignAggregator()
        with pytest.raises(JournalRecordError, match="incompatible schema"):
            agg.add(self.ok_record(group=None), offset=1)

    def test_valid_record_still_aggregates(self):
        agg = CampaignAggregator()
        agg.add(self.ok_record(), offset=1)
        assert agg.ok == 1


class TestDataset:
    def test_typed_axis_columns(self, reference):
        ds = load_dataset(reference["out"])
        assert len(ds) == 4
        assert not ds.missing and not ds.skipped
        assert ds.column("kind") == ["circle"] * 4
        assert ds.column("nodes") == [2] * 4
        # expansion order: protocol-major, seed-minor
        assert ds.column("protocol") == \
            ["802.11", "802.11", "correct", "correct"]
        assert ds.column("seed") == [1, 2, 1, 2]
        assert ds.column("pm") == [0.0] * 4
        assert all(s == "ok" for s in ds.column("status"))
        assert all(v > 0 for v in ds.column("avg_throughput_bps"))
        assert len(ds.groups()) == 2

    def test_rows_round_trip(self, reference):
        ds = load_dataset(reference["out"])
        rows = list(ds.rows())
        assert len(rows) == len(ds)
        assert rows[0]["cell"] == ds.column("cell")[0]

    def test_unknown_column_rejected(self, reference):
        ds = load_dataset(reference["out"])
        with pytest.raises(KeyError):
            ds.column("no_such_column")

    def test_shard_dataset_reports_missing(self, reference, executor):
        with tempfile.TemporaryDirectory() as base:
            dirs = run_shards(base, 2, executor)
            ds = load_dataset(dirs[0])
            assert len(ds) == 2
            assert len(ds.missing) == 2


class TestCsvExport:
    def test_export_matches_dataset(self, reference, tmp_path):
        import csv

        from repro.experiments.campaign import export_csv

        ds = load_dataset(reference["out"])
        path = tmp_path / "cells.csv"
        assert export_csv(ds, path) == len(ds)
        with path.open(newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == list(ds.columns)  # header in dataset order
        assert len(rows) == len(ds) + 1
        # Typed axes survive as their str() forms, row-aligned.
        by_name = dict(zip(rows[0], zip(*rows[1:])))
        assert list(by_name["protocol"]) == \
            ["802.11", "802.11", "correct", "correct"]
        assert list(by_name["seed"]) == ["1", "2", "1", "2"]
        # Ok rows have empty error fields (None -> "").
        assert set(by_name["error"]) == {""}
        assert all(float(v) > 0 for v in by_name["avg_throughput_bps"])

    def test_cli_flag_writes_csv(self, reference, tmp_path, capsys):
        path = tmp_path / "sub" / "cells.csv"  # parent dir is created
        code = main([
            "campaign", "report", "--dir", str(reference["out"]),
            "--csv", str(path), "--no-diagnostics",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert path.is_file()
        assert f"wrote 4 row(s)" in captured.err

    def test_none_metrics_become_empty_fields(self, tmp_path):
        import csv

        from repro.experiments.campaign import export_csv
        from repro.experiments.campaign.analysis import CampaignDataset

        ds = CampaignDataset(
            spec=None, spec_text="", source=tmp_path / "j",
            columns={
                "cell": [0, 1],
                "status": ["ok", "failed"],
                "avg_throughput_bps": [123.5, None],
                "error": [None, "worker died"],
            },
        )
        path = tmp_path / "cells.csv"
        export_csv(ds, path)
        with path.open(newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[1] == ["0", "ok", "123.5", ""]
        assert rows[2] == ["1", "failed", "", "worker died"]


class TestDiagnostics:
    def test_group_diagnostics_values(self, reference):
        ds = load_dataset(reference["out"])
        diag = group_diagnostics(ds, metrics=["avg_throughput_bps"])
        assert len(diag) == 2
        for per_metric in diag.values():
            stats = per_metric["avg_throughput_bps"]
            assert stats["n"] == 2
            assert stats["min"] <= stats["mean"] <= stats["max"]
            assert stats["var"] == pytest.approx(stats["std"] ** 2)
            if stats["std"] > 0:
                # n=2 CI uses t(1)=12.706, not z=1.96
                assert stats["ci95"] == pytest.approx(
                    12.7062 * stats["std"] / (2 ** 0.5), rel=1e-4
                )

    def test_unknown_metric_rejected(self, reference):
        ds = load_dataset(reference["out"])
        with pytest.raises(AnalysisError, match="unknown metric"):
            group_diagnostics(ds, metrics=["nope"])

    def test_seeds_needed_estimator(self):
        assert seeds_for_relative_ci(0.0, 10.0, 0.05) == 2
        assert seeds_for_relative_ci(1.0, 0.0, 0.05) is None
        assert seeds_for_relative_ci(1.0, 10.0, 0.0) is None
        # tighter targets need more seeds
        loose = seeds_for_relative_ci(1.0, 10.0, 0.10)
        tight = seeds_for_relative_ci(1.0, 10.0, 0.01)
        assert 2 <= loose < tight
        # the returned n actually meets the target...
        from repro.metrics.stats import t_critical

        n = seeds_for_relative_ci(1.0, 10.0, 0.05)
        assert t_critical(n - 1) / (n ** 0.5) <= 0.5
        # ...and n-1 does not
        assert t_critical(n - 2) / ((n - 1) ** 0.5) > 0.5

    def test_huge_spread_uses_closed_form(self):
        n = seeds_for_relative_ci(1000.0, 1.0, 0.05)
        assert n > 1000


class TestFigureBridges:
    @pytest.fixture(scope="class")
    def bridge_campaign(self, tmp_path_factory, executor):
        out = tmp_path_factory.mktemp("bridge") / "campaign.out"
        spec = parse_campaign(
            "scenario=circle:2|circle:3|circle:2+interferers"
            "|circle:3+interferers; protocol=802.11|correct; pm=0; "
            "seeds=1-2; seconds=0.05"
        )
        report = run_campaign(spec, out, executor=executor)
        assert report.exit_code == 0
        return load_dataset(out)

    @pytest.fixture(scope="class")
    def bridge_settings(self):
        return EvalSettings(
            duration_us=50_000, seeds=(1, 2), network_sizes=(2, 3)
        )

    def test_fig6_bit_identical_to_in_memory(
        self, bridge_campaign, bridge_settings, executor
    ):
        memory = figure6(bridge_settings, executor=executor)
        journal = figure_from_dataset(bridge_campaign, "fig6")
        assert journal.series == memory.series
        assert journal.errors == memory.errors
        assert journal.title == memory.title
        assert journal.meta["source"] == "campaign"

    def test_fig7_bit_identical_to_in_memory(
        self, bridge_campaign, bridge_settings, executor
    ):
        memory = figure7(bridge_settings, executor=executor)
        journal = figure_from_dataset(bridge_campaign, "fig7")
        assert journal.series == memory.series
        assert journal.errors == memory.errors

    def test_unsatisfiable_figure_raises(self, reference):
        ds = load_dataset(reference["out"])
        with pytest.raises(ReportError, match="fig4"):
            figure_from_dataset(ds, "fig4")  # needs circle:8

    def test_unknown_figure_raises(self, reference):
        ds = load_dataset(reference["out"])
        with pytest.raises(ReportError, match="fig8"):
            figure_from_dataset(ds, "fig8")


class TestCli:
    def test_merge_and_report(self, reference, executor, tmp_path, capsys):
        dirs = run_shards(tmp_path, 2, executor)
        merged = tmp_path / "merged.out"
        code = main([
            "campaign", "merge", str(dirs[0]), str(dirs[1]),
            "--out", str(merged), "--quiet",
        ])
        assert code == 0
        assert (merged / SUMMARY_NAME).read_bytes() == \
            reference["summary"]
        out = capsys.readouterr().out
        assert "complete" in out

        save = tmp_path / "report.out"
        code = main([
            "campaign", "report", "--dir", str(merged), "fig6",
            "--save", str(save),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig6" in out
        assert "cross-seed diagnostics" in out
        assert (save / "fig6.json").is_file()
        assert (save / "diagnostics.txt").is_file()

    def test_report_defaults_skip_unsatisfiable(
        self, reference, capsys
    ):
        code = main([
            "campaign", "report", "--dir", str(reference["out"]),
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "fig6" in captured.out
        assert "skipping fig4" in captured.err

    def test_report_explicit_unsatisfiable_errors(
        self, reference, capsys
    ):
        code = main([
            "campaign", "report", "--dir", str(reference["out"]), "fig4",
        ])
        assert code == 2

    def test_merge_error_exit_code(self, tmp_path, capsys):
        code = main([
            "campaign", "merge", str(tmp_path / "absent"),
            "--out", str(tmp_path / "m.out"),
        ])
        assert code == 2


class TestRenderTableLegend:
    def test_partial_failure_series_named_in_legend(self):
        # Would fail before the fix: a series whose only marks carry an
        # x value (the "*" cells) was missing from the degraded-series
        # legend, which listed only None-marked (fully failed) series.
        fig = FigureResult(
            figure_id="t", title="t", x_label="x", y_label="y"
        )
        fig.add_point("partial", 1.0, 5.0)
        fig.add_point("partial", 2.0, 6.0)
        fig.mark_failed("partial", 2.0)
        fig.add_point("clean", 1.0, 7.0)
        table = render_table(fig)
        assert "degraded series: partial" in table
        assert "clean" not in table.split("degraded series:")[1]

    def test_none_marked_series_still_listed(self):
        fig = FigureResult(
            figure_id="t", title="t", x_label="x", y_label="y"
        )
        fig.mark_failed("gone", None)
        fig.add_point("ok", 1.0, 2.0)
        assert "degraded series: gone" in render_table(fig)
