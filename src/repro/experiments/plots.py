"""ASCII line plots for figure results.

`render_plot` draws a :class:`~repro.experiments.figures.FigureResult`
as a fixed-width character chart — enough to eyeball the curve shapes
(who wins, where the crossover is) without a plotting stack.  Each
series gets a marker character; overlapping points show the later
series' marker.

Used by ``python -m repro figures --plot`` and the examples.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.experiments.figures import FigureResult

#: Marker characters assigned to series, in order.
MARKERS = "ox+*#@%&"


def _scale(value: float, lo: float, hi: float, size: int) -> int:
    if hi <= lo:
        return 0
    position = (value - lo) / (hi - lo)
    return min(int(position * (size - 1) + 0.5), size - 1)


def render_plot(
    fig: FigureResult,
    width: int = 64,
    height: int = 16,
) -> str:
    """Render the figure as an ASCII chart (returns the text)."""
    if width < 16 or height < 4:
        raise ValueError("plot area too small")
    all_points: List[Tuple[float, float]] = [
        p for pts in fig.series.values() for p in pts
    ]
    if not all_points:
        return f"== {fig.figure_id}: {fig.title} == (no data)"
    xs = [p[0] for p in all_points]
    ys = [p[1] for p in all_points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if y_lo > 0 and y_lo < 0.25 * y_hi:
        y_lo = 0.0  # anchor near-zero ranges at zero for readability
    grid = [[" "] * width for _ in range(height)]
    legend: Dict[str, str] = {}
    for index, (name, points) in enumerate(fig.series.items()):
        marker = MARKERS[index % len(MARKERS)]
        legend[name] = marker
        for x, y in sorted(points):
            col = _scale(x, x_lo, x_hi, width)
            row = height - 1 - _scale(y, y_lo, y_hi, height)
            grid[row][col] = marker
    y_label_width = max(len(f"{y_hi:.0f}"), len(f"{y_lo:.0f}"))
    lines = [f"== {fig.figure_id}: {fig.title} =="]
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{y_hi:.0f}".rjust(y_label_width)
        elif row_index == height - 1:
            label = f"{y_lo:.0f}".rjust(y_label_width)
        else:
            label = " " * y_label_width
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * y_label_width + " +" + "-" * width)
    x_axis = (f"{x_lo:g}".ljust(width // 2)
              + f"{x_hi:g}".rjust(width - width // 2))
    lines.append(" " * y_label_width + "  " + x_axis)
    lines.append(f"   x: {fig.x_label};  y: {fig.y_label}")
    for name, marker in legend.items():
        lines.append(f"   {marker} = {name}")
    return "\n".join(lines)


def print_plot(fig: FigureResult, width: int = 64, height: int = 16) -> None:
    """Render to stdout."""
    print(render_plot(fig, width, height))
