"""Multi-seed execution, mirroring the paper's methodology.

Every data point is averaged over a set of seeds, and "the set of
seeds used for different data points is the same" — :func:`run_seeds`
takes an explicit seed list so sweeps reuse it.

Runs are embarrassingly parallel; :func:`run_seeds` optionally fans
out over a process pool (each run is fully determined by its config,
so worker count never changes results).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence

from repro.experiments.scenarios import RunResult, ScenarioConfig, run_scenario

#: Seed list used by the full (paper-scale) evaluation: 30 runs.
PAPER_SEEDS = tuple(range(1, 31))


def default_workers() -> int:
    """Worker processes to use: ``REPRO_WORKERS`` env or cpu count."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        return max(int(env), 1)
    return max(os.cpu_count() or 1, 1)


def run_seeds(
    config: ScenarioConfig,
    seeds: Sequence[int],
    workers: Optional[int] = None,
) -> List[RunResult]:
    """Run the scenario once per seed (optionally in parallel).

    Results come back in seed order regardless of scheduling.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    configs = [config.with_seed(seed) for seed in seeds]
    n_workers = workers if workers is not None else default_workers()
    if n_workers <= 1 or len(configs) == 1:
        return [run_scenario(c) for c in configs]
    with ProcessPoolExecutor(max_workers=min(n_workers, len(configs))) as pool:
        return list(pool.map(run_scenario, configs))


def run_configs(
    configs: Sequence[ScenarioConfig],
    workers: Optional[int] = None,
) -> List[RunResult]:
    """Run a heterogeneous batch of configs (optionally in parallel).

    Used for sweeps where the topology itself varies (Figure 9's 30
    random placements).  Results come back in input order.
    """
    if not configs:
        raise ValueError("need at least one config")
    n_workers = workers if workers is not None else default_workers()
    if n_workers <= 1 or len(configs) == 1:
        return [run_scenario(c) for c in configs]
    with ProcessPoolExecutor(max_workers=min(n_workers, len(configs))) as pool:
        return list(pool.map(run_scenario, configs))


def average_metric(
    results: Iterable[RunResult], metric: Callable[[RunResult], float]
) -> float:
    """Mean of a per-run metric over the runs."""
    values = [metric(result) for result in results]
    if not values:
        raise ValueError("no results to average")
    return sum(values) / len(values)
