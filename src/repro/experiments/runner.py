"""Multi-seed execution, mirroring the paper's methodology.

Every data point is averaged over a set of seeds, and "the set of
seeds used for different data points is the same" — :func:`run_seeds`
takes an explicit seed list so sweeps reuse it.

Runs are embarrassingly parallel; both entry points fan out over a
process pool (each run is fully determined by its config, so worker
count never changes results).  Callers that execute many sweep points
should pass an :class:`~repro.experiments.executor.ExperimentExecutor`
so every point reuses one persistent pool (and the run cache) instead
of paying pool spawn/teardown per point — the figure harnesses go one
step further and flatten entire figures into a single
:class:`~repro.experiments.executor.TaskBatch`.

With an executor constructed under ``on_failure="flag"``, entries in
the returned lists may be :class:`~repro.experiments.executor.FailedRun`
placeholders for runs that exhausted their retries;
:func:`average_metric` skips them so partially degraded seed sets
still average (callers wanting stricter behaviour keep the default
``on_failure="raise"``).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence

from repro.experiments.executor import (
    ExperimentExecutor,
    RunOutcome,
    default_workers,
)
from repro.experiments.scenarios import RunResult, ScenarioConfig

__all__ = [
    "PAPER_SEEDS",
    "average_metric",
    "default_workers",
    "run_configs",
    "run_seeds",
]

#: Seed list used by the full (paper-scale) evaluation: 30 runs.
PAPER_SEEDS = tuple(range(1, 31))


def run_seeds(
    config: ScenarioConfig,
    seeds: Sequence[int],
    workers: Optional[int] = None,
    executor: Optional[ExperimentExecutor] = None,
) -> List[RunOutcome]:
    """Run the scenario once per seed (optionally in parallel).

    Results come back in seed order regardless of scheduling.  With
    ``executor`` given, its persistent pool/cache are reused and
    ``workers`` is ignored; otherwise an ephemeral executor is created
    for this call.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    return run_configs(
        [config.with_seed(seed) for seed in seeds], workers, executor
    )


def run_configs(
    configs: Sequence[ScenarioConfig],
    workers: Optional[int] = None,
    executor: Optional[ExperimentExecutor] = None,
) -> List[RunOutcome]:
    """Run a heterogeneous batch of configs (optionally in parallel).

    Used for sweeps where the topology itself varies (Figure 9's 30
    random placements).  Results come back in input order.
    """
    if not configs:
        raise ValueError("need at least one config")
    if executor is not None:
        return executor.run(configs)
    with ExperimentExecutor(workers=workers) as ephemeral:
        return ephemeral.run(configs)


def average_metric(
    results: Iterable[RunOutcome], metric: Callable[[RunResult], float]
) -> float:
    """Mean of a per-run metric over the *successful* runs.

    :class:`FailedRun` placeholders (flag-mode executors) are skipped;
    raises when no run succeeded.
    """
    values = [
        metric(result) for result in results
        if isinstance(result, RunResult)
    ]
    if not values:
        raise ValueError("no results to average")
    return sum(values) / len(values)
