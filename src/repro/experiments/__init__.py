"""Experiment harness: scenarios, multi-seed runner, figure generators."""

from repro.experiments.cache import (
    RunCache,
    active_cache,
    code_version,
    config_fingerprint,
)
from repro.experiments.executor import (
    ExperimentExecutor,
    FailedRun,
    RunFailedError,
    TaskBatch,
    default_workers,
)
from repro.experiments.figures import (
    ALL_FIGURES,
    FigureResult,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9a,
    figure9b,
    figure_delay,
    figure_faults,
    generate_figures,
    intro_claim,
)
from repro.experiments.plots import print_plot, render_plot
from repro.experiments.report import print_figure, render_table, to_json
from repro.experiments.runner import (
    PAPER_SEEDS,
    average_metric,
    run_configs,
    run_seeds,
)
from repro.experiments.scenarios import (
    PROTOCOL_80211,
    PROTOCOL_CORRECT,
    RunResult,
    ScenarioConfig,
    build_scenario,
    run_scenario,
)
from repro.experiments.settings import (
    DEFAULT_SETTINGS,
    PAPER_SETTINGS,
    QUICK_SETTINGS,
    EvalSettings,
    active_settings,
)

__all__ = [
    "ALL_FIGURES",
    "ExperimentExecutor",
    "FailedRun",
    "FigureResult",
    "RunCache",
    "RunFailedError",
    "TaskBatch",
    "active_cache",
    "code_version",
    "config_fingerprint",
    "default_workers",
    "generate_figures",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9a",
    "figure9b",
    "figure_delay",
    "figure_faults",
    "intro_claim",
    "print_figure",
    "render_table",
    "to_json",
    "print_plot",
    "render_plot",
    "PAPER_SEEDS",
    "average_metric",
    "run_configs",
    "run_seeds",
    "PROTOCOL_80211",
    "PROTOCOL_CORRECT",
    "RunResult",
    "ScenarioConfig",
    "build_scenario",
    "run_scenario",
    "DEFAULT_SETTINGS",
    "PAPER_SETTINGS",
    "QUICK_SETTINGS",
    "EvalSettings",
    "active_settings",
]
