"""ASCII rendering of figure results.

The paper's figures are line plots; this module prints each
:class:`~repro.experiments.figures.FigureResult` as a table with one
row per x value and one column per series, which is what the bench
harness emits and what EXPERIMENTS.md quotes.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.experiments.figures import FigureResult


def render_table(fig: FigureResult, precision: int = 1) -> str:
    """Format a figure as a fixed-width ASCII table."""
    series_names = list(fig.series)
    xs: List[float] = sorted({x for pts in fig.series.values() for x, _ in pts})
    lookup: Dict[str, Dict[float, float]] = {
        name: dict(points) for name, points in fig.series.items()
    }
    header = [fig.x_label] + series_names
    rows = []
    for x in xs:
        row = [f"{x:g}"]
        for name in series_names:
            value = lookup[name].get(x)
            row.append("-" if value is None else f"{value:.{precision}f}")
        rows.append(row)
    widths = [
        max(len(header[i]), max((len(r[i]) for r in rows), default=0))
        for i in range(len(header))
    ]
    lines = [
        f"== {fig.figure_id}: {fig.title} ==",
        f"   (y: {fig.y_label}; scale: {fig.meta})",
        " | ".join(h.ljust(w) for h, w in zip(header, widths)),
        "-+-".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def to_json(fig: FigureResult) -> str:
    """Serialise a figure result (for archiving measured numbers)."""
    return json.dumps(
        {
            "figure_id": fig.figure_id,
            "title": fig.title,
            "x_label": fig.x_label,
            "y_label": fig.y_label,
            "meta": fig.meta,
            "series": {
                name: sorted(points) for name, points in fig.series.items()
            },
            "errors": {
                name: sorted(points) for name, points in fig.errors.items()
            },
        },
        indent=2,
        sort_keys=True,
    )


def print_figure(fig: FigureResult) -> None:
    """Render to stdout (bench harness convenience)."""
    print(render_table(fig))
