"""ASCII rendering of figure results.

The paper's figures are line plots; this module prints each
:class:`~repro.experiments.figures.FigureResult` as a table with one
row per x value and one column per series, which is what the bench
harness emits and what EXPERIMENTS.md quotes.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.experiments.figures import FigureResult


def render_table(fig: FigureResult, precision: int = 1) -> str:
    """Format a figure as a fixed-width ASCII table.

    Sweep points that lost runs to execution failures (see
    ``FigureResult.failed_points``) render as ``FAILED`` when no seed
    survived, or with a ``*`` suffix when the value was computed from
    a reduced seed set; a legend line is appended whenever either
    marker appears.  Figures without failures render exactly as they
    always have.
    """
    series_names = list(fig.series)
    for name in fig.failed_points:
        if name not in fig.series:
            series_names.append(name)
    xs: List[float] = sorted(
        {x for pts in fig.series.values() for x, _ in pts}
        | {
            x for marks in fig.failed_points.values()
            for x in marks if x is not None
        }
    )
    lookup: Dict[str, Dict[float, float]] = {
        name: dict(points) for name, points in fig.series.items()
    }
    rows = []
    for x in xs:
        row = [f"{x:g}"]
        for name in series_names:
            value = lookup.get(name, {}).get(x)
            failed = x in fig.failed_points.get(name, ())
            if value is None:
                row.append("FAILED" if failed else "-")
            else:
                cell = f"{value:.{precision}f}"
                row.append(cell + "*" if failed else cell)
        rows.append(row)
    header = [fig.x_label] + series_names
    widths = [
        max(len(header[i]), max((len(r[i]) for r in rows), default=0))
        for i in range(len(header))
    ]
    lines = [
        f"== {fig.figure_id}: {fig.title} ==",
        f"   (y: {fig.y_label}; scale: {fig.meta})",
        " | ".join(h.ljust(w) for h, w in zip(header, widths)),
        "-+-".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    if fig.has_failures:
        # Any failure mark degrades its series: a None mark (every run
        # of the series failed) and an x-valued mark (a point computed
        # from a reduced seed set, the "*" cells) both belong in the
        # legend — readers scanning only the note must see every series
        # whose numbers are not the full-seed statistic.
        degraded_series = sorted(
            name for name, marks in fig.failed_points.items() if marks
        )
        note = (
            "   FAILED: all runs of the point failed; "
            "*: some runs failed, value from surviving seeds"
        )
        if degraded_series:
            note += f"; degraded series: {', '.join(degraded_series)}"
        lines.append(note)
    return "\n".join(lines)


def to_json(fig: FigureResult) -> str:
    """Serialise a figure result (for archiving measured numbers)."""
    return json.dumps(
        {
            "figure_id": fig.figure_id,
            "title": fig.title,
            "x_label": fig.x_label,
            "y_label": fig.y_label,
            "meta": fig.meta,
            "series": {
                name: sorted(points) for name, points in fig.series.items()
            },
            "errors": {
                name: sorted(points) for name, points in fig.errors.items()
            },
            "failed_points": {
                name: sorted(marks, key=lambda m: (m is None, m))
                for name, marks in fig.failed_points.items()
            },
        },
        indent=2,
        sort_keys=True,
    )


def print_figure(fig: FigureResult) -> None:
    """Render to stdout (bench harness convenience)."""
    print(render_table(fig))
