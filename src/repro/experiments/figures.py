"""One generator per table/figure of the paper's evaluation.

Each ``figureN`` function runs the corresponding experiment at the
requested :class:`~repro.experiments.settings.EvalSettings` scale and
returns a :class:`FigureResult`: named series of (x, y) points that
mirror the curves in the paper.  ``repro.experiments.report`` renders
them as ASCII tables; the benchmark suite regenerates each figure and
asserts its qualitative shape.

Execution model
---------------
Internally every figure is written as a *planner*: a generator that
first contributes all of its ``ScenarioConfig`` tasks to a shared
:class:`~repro.experiments.executor.TaskBatch`, then ``yield``\\ s once
(the execution barrier), and finally reduces the results into the
figure's series.  The public ``figureN`` functions execute their own
batch; :func:`generate_figures` flattens *several* figures into one
global batch so a single persistent worker pool sees the entire
(figure x sweep-point x seed) grid at once — no per-point pool churn
and no idle workers at sweep-point boundaries.  Because every run is
fully determined by its config, the batched schedule produces
bit-identical figures to sequential execution.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.sender_policy import ShrunkenWindowPolicy
from repro.experiments.executor import ExperimentExecutor, TaskBatch
from repro.experiments.scenarios import (
    PROTOCOL_80211,
    PROTOCOL_CORRECT,
    RunResult,
    ScenarioConfig,
)
from repro.experiments.settings import DEFAULT_SETTINGS, EvalSettings
from repro.faults import FaultProfile, FrameLossFault
from repro.metrics.stats import elementwise_mean, mean, summarize
from repro.net.topology import circle_topology, random_topology

#: Sender the paper designates as misbehaving in the circle topology.
MISBEHAVING_NODE = 3


@dataclass
class FigureResult:
    """Named series reproducing one figure.

    ``series`` maps a curve name (e.g. ``"CORRECT - MSB"``) to a list
    of (x, y) pairs; ``errors`` optionally holds the 95% CI half-width
    across seeds for the same (series, x).  ``meta`` carries free-form
    annotations such as the scale the figure was generated at.

    ``failed_points`` records sweep points whose runs (some or all)
    came back as :class:`~repro.experiments.executor.FailedRun` under
    the executor's ``on_failure="flag"`` mode: a point that still has
    surviving seeds is *degraded* (rendered with a ``*``), one with no
    survivors is absent from ``series`` and rendered as ``FAILED``.
    ``None`` as the x marks a whole series as degraded.
    """

    figure_id: str
    title: str
    x_label: str
    y_label: str
    series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    errors: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    meta: Dict[str, object] = field(default_factory=dict)
    failed_points: Dict[str, List[Optional[float]]] = field(
        default_factory=dict
    )

    def add_point(
        self, series_name: str, x: float, y: float,
        error: Optional[float] = None,
    ) -> None:
        self.series.setdefault(series_name, []).append((x, y))
        if error is not None:
            self.errors.setdefault(series_name, []).append((x, error))

    def mark_failed(self, series_name: str, x: Optional[float] = None) -> None:
        """Record that runs behind (series, x) failed (None: whole series)."""
        self.failed_points.setdefault(series_name, []).append(x)

    @property
    def has_failures(self) -> bool:
        """Whether any sweep point lost runs to execution failures."""
        return any(self.failed_points.values())

    def is_failed(self, series_name: str, x: float) -> bool:
        """Whether (series, x) lost *all* its runs (no y value exists)."""
        if x not in self.failed_points.get(series_name, ()):  # fast path
            return False
        return all(px != x for px, _ in self.series.get(series_name, ()))

    def error_at(self, series_name: str, x: float) -> Optional[float]:
        """The recorded CI half-width for one point, if any."""
        for px, err in self.errors.get(series_name, ()):  # pragma: no branch
            if px == x:
                return err
        return None

    def ys(self, series_name: str) -> List[float]:
        """The y values of one series, in x order."""
        return [y for _, y in sorted(self.series[series_name])]

    def xs(self, series_name: str) -> List[float]:
        """The x values of one series, sorted."""
        return sorted(x for x, _ in self.series[series_name])


def _scale_meta(settings: EvalSettings) -> Dict[str, object]:
    return {
        "duration_s": settings.duration_s,
        "seeds": len(settings.seeds),
    }


def _ok(results: Sequence[object]) -> List[RunResult]:
    """The actual results of a batch slice (drops FailedRun entries)."""
    return [r for r in results if isinstance(r, RunResult)]


def _avg(results: Sequence[RunResult], metric) -> float:
    return mean([metric(r) for r in _ok(results)])


def _add_stat_point(
    fig: FigureResult,
    name: str,
    x: float,
    results: Sequence[object],
    metric,
    scale: float = 1.0,
) -> None:
    """Add the across-seed mean of a metric, with its 95% CI.

    Failed runs (``on_failure="flag"`` placeholders) are dropped from
    the statistic and recorded on the figure: the point is degraded
    when some seeds survive, and omitted entirely when none do.
    """
    ok = _ok(results)
    if len(ok) < len(results):
        fig.mark_failed(name, x)
    if not ok:
        return
    stats = summarize([metric(r) for r in ok])
    fig.add_point(name, x, stats.mean * scale, error=stats.ci95 * scale)


# ----------------------------------------------------------------------
# Planner plumbing
# ----------------------------------------------------------------------
def _materialize(
    planner,
    settings: EvalSettings,
    workers: Optional[int],
    executor: Optional[ExperimentExecutor],
) -> FigureResult:
    """Drive one planner through its plan / execute / reduce phases."""
    batch = TaskBatch()
    gen = planner(settings, batch)
    next(gen)
    batch.execute(executor=executor, workers=workers)
    try:
        next(gen)
    except StopIteration as stop:
        return stop.value
    raise RuntimeError("figure planner yielded more than once")


def generate_figures(
    ids: Optional[Iterable[str]] = None,
    settings: EvalSettings = DEFAULT_SETTINGS,
    workers: Optional[int] = None,
    executor: Optional[ExperimentExecutor] = None,
) -> Dict[str, FigureResult]:
    """Generate several figures from one globally flattened task grid.

    Every requested figure contributes its complete config list to a
    single :class:`TaskBatch` before anything runs, so the worker pool
    is saturated across figure boundaries.  Results are keyed by
    figure id and are bit-identical to calling each ``figureN``
    individually.
    """
    wanted = list(ids) if ids is not None else list(PLANNERS)
    unknown = [fid for fid in wanted if fid not in PLANNERS]
    if unknown:
        raise KeyError(f"unknown figure ids {unknown}; known: {list(PLANNERS)}")
    batch = TaskBatch()
    gens = [(fid, PLANNERS[fid](settings, batch)) for fid in wanted]
    for _, gen in gens:
        next(gen)
    batch.execute(executor=executor, workers=workers)
    figures: Dict[str, FigureResult] = {}
    for fid, gen in gens:
        try:
            next(gen)
        except StopIteration as stop:
            figures[fid] = stop.value
        else:
            raise RuntimeError("figure planner yielded more than once")
    return figures


# ----------------------------------------------------------------------
# Figure 4 — diagnosis accuracy vs magnitude of misbehavior
# ----------------------------------------------------------------------
def _figure4_plan(settings: EvalSettings, batch: TaskBatch):
    fig = FigureResult(
        figure_id="fig4",
        title="Diagnosis accuracy for varying magnitude of misbehavior",
        x_label="Percentage of Misbehavior (PM)",
        y_label="percentage of packets",
        meta=_scale_meta(settings),
    )
    points = []
    for scenario, with_interferers in (("ZERO-FLOW", False), ("TWO-FLOW", True)):
        for pm in settings.pm_values:
            topo = circle_topology(
                8, misbehaving=(MISBEHAVING_NODE,), pm_percent=pm,
                with_interferers=with_interferers,
            )
            config = ScenarioConfig(
                topology=topo, protocol=PROTOCOL_CORRECT,
                duration_us=settings.duration_us,
            )
            points.append(
                (scenario, pm, batch.add_seeds(config, settings.seeds))
            )
    yield
    for scenario, pm, handle in points:
        results = handle.results
        _add_stat_point(
            fig, f"{scenario} correct diagnosis", pm, results,
            lambda r: r.correct_diagnosis_percent,
        )
        _add_stat_point(
            fig, f"{scenario} misdiagnosis", pm, results,
            lambda r: r.misdiagnosis_percent,
        )
    return fig


def figure4(
    settings: EvalSettings = DEFAULT_SETTINGS,
    workers: Optional[int] = None,
    executor: Optional[ExperimentExecutor] = None,
) -> FigureResult:
    """Correct-diagnosis and misdiagnosis percentages vs PM.

    Reproduces Figure 4: 8 senders around R, node 3 misbehaving with
    the swept PM, for both ZERO-FLOW and TWO-FLOW scenarios, under the
    CORRECT protocol.
    """
    return _materialize(_figure4_plan, settings, workers, executor)


# ----------------------------------------------------------------------
# Figure 5 — throughput comparison, 802.11 vs CORRECT, vs PM
# ----------------------------------------------------------------------
def _figure5_plan(
    settings: EvalSettings, batch: TaskBatch, with_interferers: bool = False
):
    fig = FigureResult(
        figure_id="fig5",
        title="Throughput comparison between IEEE 802.11 and proposed scheme",
        x_label="Percentage of Misbehavior (PM)",
        y_label="throughput (Kbps)",
        meta=_scale_meta(settings),
    )
    points = []
    for protocol, label in ((PROTOCOL_80211, "802.11"), (PROTOCOL_CORRECT, "CORRECT")):
        for pm in settings.pm_values:
            topo = circle_topology(
                8, misbehaving=(MISBEHAVING_NODE,), pm_percent=pm,
                with_interferers=with_interferers,
            )
            config = ScenarioConfig(
                topology=topo, protocol=protocol,
                duration_us=settings.duration_us,
            )
            points.append(
                (label, pm, batch.add_seeds(config, settings.seeds))
            )
    yield
    for label, pm, handle in points:
        results = handle.results
        _add_stat_point(
            fig, f"{label} - MSB", pm, results,
            lambda r: r.msb_throughput_bps, scale=1e-3,
        )
        _add_stat_point(
            fig, f"{label} - AVG", pm, results,
            lambda r: r.avg_throughput_bps, scale=1e-3,
        )
    return fig


def figure5(
    settings: EvalSettings = DEFAULT_SETTINGS,
    workers: Optional[int] = None,
    with_interferers: bool = False,
    executor: Optional[ExperimentExecutor] = None,
) -> FigureResult:
    """MSB and AVG throughput vs PM for both protocols (Figure 5)."""
    return _materialize(
        lambda s, b: _figure5_plan(s, b, with_interferers),
        settings, workers, executor,
    )


# ----------------------------------------------------------------------
# Figures 6 and 7 — behaviour without misbehavior, vs network size
# ----------------------------------------------------------------------
def _size_sweep_points(settings: EvalSettings, batch: TaskBatch):
    points = []
    for scenario, with_interferers in (("ZERO-FLOW", False), ("TWO-FLOW", True)):
        for protocol, label in (
            (PROTOCOL_80211, "802.11"), (PROTOCOL_CORRECT, "CORRECT")
        ):
            for n in settings.network_sizes:
                topo = circle_topology(n, with_interferers=with_interferers)
                config = ScenarioConfig(
                    topology=topo, protocol=protocol,
                    duration_us=settings.duration_us,
                )
                points.append(
                    (scenario, label, n, batch.add_seeds(config, settings.seeds))
                )
    return points


def _figure6_plan(settings: EvalSettings, batch: TaskBatch):
    fig = FigureResult(
        figure_id="fig6",
        title="Throughput comparison without misbehavior for varying network sizes",
        x_label="number of senders",
        y_label="average throughput (Kbps)",
        meta=_scale_meta(settings),
    )
    points = _size_sweep_points(settings, batch)
    yield
    for scenario, label, n, handle in points:
        _add_stat_point(
            fig, f"{scenario} {label}", n, handle.results,
            lambda r: r.avg_throughput_bps, scale=1e-3,
        )
    return fig


def figure6(
    settings: EvalSettings = DEFAULT_SETTINGS,
    workers: Optional[int] = None,
    executor: Optional[ExperimentExecutor] = None,
) -> FigureResult:
    """Average per-sender throughput vs network size (Figure 6)."""
    return _materialize(_figure6_plan, settings, workers, executor)


def _figure7_plan(settings: EvalSettings, batch: TaskBatch):
    fig = FigureResult(
        figure_id="fig7",
        title="Comparison of fairness index between IEEE 802.11 and proposed scheme",
        x_label="number of senders",
        y_label="fairness index",
        meta=_scale_meta(settings),
    )
    points = _size_sweep_points(settings, batch)
    yield
    for scenario, label, n, handle in points:
        _add_stat_point(
            fig, f"{scenario} {label}", n, handle.results,
            lambda r: r.fairness_index,
        )
    return fig


def figure7(
    settings: EvalSettings = DEFAULT_SETTINGS,
    workers: Optional[int] = None,
    executor: Optional[ExperimentExecutor] = None,
) -> FigureResult:
    """Jain's fairness index vs network size (Figure 7)."""
    return _materialize(_figure7_plan, settings, workers, executor)


# ----------------------------------------------------------------------
# Figure 8 — responsiveness of the diagnosis scheme
# ----------------------------------------------------------------------
def _figure8_plan(settings: EvalSettings, batch: TaskBatch):
    fig = FigureResult(
        figure_id="fig8",
        title="Evaluation of responsiveness of misbehavior diagnosis scheme",
        x_label="time (s)",
        y_label="correct diagnosis %",
        meta=_scale_meta(settings),
    )
    points = []
    for pm in settings.fig8_pm_values:
        topo = circle_topology(
            8, misbehaving=(MISBEHAVING_NODE,), pm_percent=pm,
            with_interferers=True,
        )
        config = ScenarioConfig(
            topology=topo, protocol=PROTOCOL_CORRECT,
            duration_us=settings.duration_us,
        )
        points.append((pm, batch.add_seeds(config, settings.seeds)))
    yield
    for pm, handle in points:
        ok = _ok(handle.results)
        name = f"PM={pm:.0f}%"
        if len(ok) < len(handle.results):
            fig.mark_failed(name)
        if not ok:
            continue
        series = elementwise_mean([
            r.collector.diagnosis_time_series(
                settings.fig8_bin_us, settings.duration_us
            )
            for r in ok
        ])
        for i, value in enumerate(series):
            fig.add_point(name, i * settings.fig8_bin_us / 1_000_000, value)
    return fig


def figure8(
    settings: EvalSettings = DEFAULT_SETTINGS,
    workers: Optional[int] = None,
    executor: Optional[ExperimentExecutor] = None,
) -> FigureResult:
    """Correct-diagnosis percentage over time, TWO-FLOW (Figure 8)."""
    return _materialize(_figure8_plan, settings, workers, executor)


# ----------------------------------------------------------------------
# Figure 9 — random topologies
# ----------------------------------------------------------------------
def _random_configs(
    settings: EvalSettings, protocol: str, pm: float
) -> List[ScenarioConfig]:
    configs = []
    for index in range(settings.random_topologies):
        topo = random_topology(
            random.Random(1000 + index),
            n_nodes=settings.random_nodes,
            n_misbehaving=settings.random_misbehaving,
            pm_percent=pm,
        )
        configs.append(
            ScenarioConfig(
                topology=topo, protocol=protocol,
                duration_us=settings.duration_us, seed=1000 + index,
            )
        )
    return configs


def _figure9a_plan(settings: EvalSettings, batch: TaskBatch):
    fig = FigureResult(
        figure_id="fig9a",
        title="Diagnosis accuracy, random topology (40 nodes, 1500m x 700m)",
        x_label="Percentage of Misbehavior (PM)",
        y_label="percentage of packets",
        meta=_scale_meta(settings),
    )
    points = [
        (pm, batch.add(_random_configs(settings, PROTOCOL_CORRECT, pm)))
        for pm in settings.pm_values
    ]
    yield
    for pm, handle in points:
        results = handle.results
        _add_stat_point(
            fig, "correct diagnosis", pm, results,
            lambda r: r.correct_diagnosis_percent,
        )
        _add_stat_point(
            fig, "misdiagnosis", pm, results,
            lambda r: r.misdiagnosis_percent,
        )
    return fig


def figure9a(
    settings: EvalSettings = DEFAULT_SETTINGS,
    workers: Optional[int] = None,
    executor: Optional[ExperimentExecutor] = None,
) -> FigureResult:
    """Diagnosis accuracy vs PM over random topologies (Figure 9a)."""
    return _materialize(_figure9a_plan, settings, workers, executor)


def _figure9b_plan(settings: EvalSettings, batch: TaskBatch):
    fig = FigureResult(
        figure_id="fig9b",
        title="Throughput, random topology (40 nodes, 1500m x 700m)",
        x_label="Percentage of Misbehavior (PM)",
        y_label="throughput (Kbps)",
        meta=_scale_meta(settings),
    )
    # Which nodes a topology designates as misbehaving is a function
    # of the placement RNG only (PM just scales their cheating), so an
    # honest run of the same placements yields their fair share.
    designated = [
        set(
            random_topology(
                random.Random(1000 + index),
                n_nodes=settings.random_nodes,
                n_misbehaving=settings.random_misbehaving,
                pm_percent=100.0,
            ).misbehaving_senders
        )
        for index in range(settings.random_topologies)
    ]
    honest = batch.add(_random_configs(settings, PROTOCOL_CORRECT, 0.0))
    points = []
    for protocol, label in ((PROTOCOL_80211, "802.11"), (PROTOCOL_CORRECT, "CORRECT")):
        for pm in settings.pm_values:
            points.append(
                (label, pm, batch.add(_random_configs(settings, protocol, pm)))
            )
    yield
    baselines = []
    for topo_index, result in enumerate(honest.results):
        if not isinstance(result, RunResult):
            fig.mark_failed("cheaters fair share")
            continue
        tps = result.throughputs()
        baselines.extend(
            tps[n] for n in designated[topo_index] if n in tps
        )
    fig.meta["cheaters_fair_share_kbps"] = mean(baselines) / 1000.0
    for label, pm, handle in points:
        results = handle.results
        _add_stat_point(
            fig, f"{label} - MSB", pm, results,
            lambda r: r.msb_throughput_bps, scale=1e-3,
        )
        _add_stat_point(
            fig, f"{label} - AVG", pm, results,
            lambda r: r.avg_throughput_bps, scale=1e-3,
        )
    return fig


def figure9b(
    settings: EvalSettings = DEFAULT_SETTINGS,
    workers: Optional[int] = None,
    executor: Optional[ExperimentExecutor] = None,
) -> FigureResult:
    """Throughput vs PM over random topologies (Figure 9b).

    Besides the paper's four curves, the result carries (in ``meta``)
    the *designated cheaters' fair share*: the mean throughput those
    same nodes obtain in a fully honest run.  In random fields the
    cheaters' local contention differs from the network average, so
    "restricted to a fair share" is judged against this baseline.
    """
    return _materialize(_figure9b_plan, settings, workers, executor)


# ----------------------------------------------------------------------
# Section 1 motivating claim
# ----------------------------------------------------------------------
def _intro_claim_plan(settings: EvalSettings, batch: TaskBatch):
    fig = FigureResult(
        figure_id="intro",
        title="Intro claim: one [0, CW/4] misbehaver under IEEE 802.11",
        x_label="case",
        y_label="throughput (Kbps)",
        meta=_scale_meta(settings),
    )
    baseline = ScenarioConfig(
        topology=circle_topology(8), protocol=PROTOCOL_80211,
        duration_us=settings.duration_us,
    )
    baseline_handle = batch.add_seeds(baseline, settings.seeds)
    topo = circle_topology(8, misbehaving=(MISBEHAVING_NODE,), pm_percent=1.0)
    cheated = ScenarioConfig(
        topology=topo, protocol=PROTOCOL_80211,
        duration_us=settings.duration_us,
        policy_overrides={MISBEHAVING_NODE: ShrunkenWindowPolicy(4.0)},
    )
    cheated_handle = batch.add_seeds(cheated, settings.seeds)
    yield
    if len(_ok(baseline_handle.results)) < len(baseline_handle.results):
        fig.mark_failed("fair share (all honest)", 0)
    if len(_ok(cheated_handle.results)) < len(cheated_handle.results):
        fig.mark_failed("honest AVG with cheater", 1)
        fig.mark_failed("cheater (MSB)", 2)
    fair = _avg(baseline_handle.results, lambda r: r.avg_throughput_bps)
    results = _ok(cheated_handle.results)
    fig.add_point("fair share (all honest)", 0, fair / 1000.0)
    fig.add_point(
        "honest AVG with cheater", 1,
        _avg(results, lambda r: r.avg_throughput_bps) / 1000.0,
    )
    fig.add_point(
        "cheater (MSB)", 2,
        _avg(results, lambda r: r.msb_throughput_bps) / 1000.0,
    )
    fig.meta["degradation_percent"] = 100.0 * (
        1.0 - _avg(results, lambda r: r.avg_throughput_bps) / fair
    ) if fair else 0.0
    return fig


def intro_claim(
    settings: EvalSettings = DEFAULT_SETTINGS,
    workers: Optional[int] = None,
    executor: Optional[ExperimentExecutor] = None,
) -> FigureResult:
    """The introduction's example: one [0, CW/4] cheater under 802.11.

    The paper: "for a network containing 8 nodes sending packets to a
    common receiver, with one of the 8 nodes misbehaving by selecting
    backoff values from range [0, CW/4], the throughput of the other 7
    nodes is degraded by as much as 50%".
    """
    return _materialize(_intro_claim_plan, settings, workers, executor)


# ----------------------------------------------------------------------
# Extension figure: MAC access delay (the paper's other selfish motive)
# ----------------------------------------------------------------------
def _figure_delay_plan(settings: EvalSettings, batch: TaskBatch):
    fig = FigureResult(
        figure_id="delay",
        title="Mean MAC access delay (extension to Figure 5)",
        x_label="Percentage of Misbehavior (PM)",
        y_label="mean access delay (ms)",
        meta=_scale_meta(settings),
    )
    points = []
    for protocol, label in ((PROTOCOL_80211, "802.11"), (PROTOCOL_CORRECT, "CORRECT")):
        for pm in settings.pm_values:
            topo = circle_topology(
                8, misbehaving=(MISBEHAVING_NODE,), pm_percent=pm,
            )
            config = ScenarioConfig(
                topology=topo, protocol=protocol,
                duration_us=settings.duration_us,
            )
            points.append(
                (label, pm, batch.add_seeds(config, settings.seeds))
            )
    yield
    for label, pm, handle in points:
        results = _ok(handle.results)
        if len(results) < len(handle.results):
            fig.mark_failed(f"{label} - AVG", pm)
            if pm > 0:
                fig.mark_failed(f"{label} - MSB", pm)
        if not results:
            continue
        msb_delays = [
            r.collector.mean_delay_us(MISBEHAVING_NODE) for r in results
        ]
        honest_delays = []
        for r in results:
            values = [
                r.collector.mean_delay_us(s)
                for s in range(1, 9)
                if s != MISBEHAVING_NODE
            ]
            honest_delays.append(mean(values))
        if pm > 0:
            fig.add_point(f"{label} - MSB", pm, mean(msb_delays) / 1000.0)
        fig.add_point(f"{label} - AVG", pm, mean(honest_delays) / 1000.0)
    return fig


def figure_delay(
    settings: EvalSettings = DEFAULT_SETTINGS,
    workers: Optional[int] = None,
    executor: Optional[ExperimentExecutor] = None,
) -> FigureResult:
    """Mean MAC access delay vs PM, both protocols (extension).

    Section 3.1 defines selfish misbehavior as seeking "higher
    throughput or lower delay".  The paper plots only throughput; this
    companion figure shows the delay side of the same story: under
    802.11 the cheater's access delay collapses while honest senders
    queue longer; under CORRECT the penalties equalise delays again.
    """
    return _materialize(_figure_delay_plan, settings, workers, executor)


# ----------------------------------------------------------------------
# Extension figure: diagnosis robustness vs channel fault rate
# ----------------------------------------------------------------------
def _figure_faults_plan(settings: EvalSettings, batch: TaskBatch):
    fig = FigureResult(
        figure_id="faults",
        title="Diagnosis robustness under CTS/ACK loss (fault injection)",
        x_label="CTS/ACK loss rate",
        y_label="percentage of packets",
        meta=_scale_meta(settings),
    )
    points = []
    for rate in settings.fault_loss_rates:
        topo = circle_topology(
            8, misbehaving=(MISBEHAVING_NODE,), pm_percent=60.0,
            with_interferers=True,
        )
        faults = (
            FaultProfile(
                frame_loss=(
                    FrameLossFault(rate=rate, frame_kinds=("cts", "ack")),
                ),
            )
            if rate > 0.0 else None
        )
        config = ScenarioConfig(
            topology=topo, protocol=PROTOCOL_CORRECT,
            duration_us=settings.duration_us, faults=faults,
        )
        points.append((rate, batch.add_seeds(config, settings.seeds)))
    yield
    for rate, handle in points:
        results = handle.results
        _add_stat_point(
            fig, "correct diagnosis", rate, results,
            lambda r: r.correct_diagnosis_percent,
        )
        _add_stat_point(
            fig, "misdiagnosis", rate, results,
            lambda r: r.misdiagnosis_percent,
        )
    return fig


def figure_faults(
    settings: EvalSettings = DEFAULT_SETTINGS,
    workers: Optional[int] = None,
    executor: Optional[ExperimentExecutor] = None,
) -> FigureResult:
    """Diagnosis accuracy vs CTS/ACK loss rate (fault-injection study).

    Section 4.2 calls the loss of a CTS/ACK — the frames that carry
    the assigned backoff — the scheme's hardest case: the sender never
    learns its assignment, so the receiver's next observation compares
    against the wrong reference.  The paper only gestures at this; here
    the :mod:`repro.faults` layer drops exactly those frames at a swept
    rate (PM fixed at 60% in the TWO-FLOW circle) to measure how fast
    correct diagnosis erodes and misdiagnosis of honest senders grows
    as the channel degrades.
    """
    return _materialize(_figure_faults_plan, settings, workers, executor)


# ----------------------------------------------------------------------
# Extension figure: detector comparison (operating point + latency)
# ----------------------------------------------------------------------
def _figure_detectors_plan(settings: EvalSettings, batch: TaskBatch):
    fig = FigureResult(
        figure_id="detectors",
        title="Detector comparison: operating point and detection latency",
        x_label="Percentage of Misbehavior (PM)",
        y_label="percentage of judged packets / detection latency",
        meta=_scale_meta(settings),
    )
    fig.meta["detectors"] = list(settings.detectors)
    points = []
    for spec in settings.detectors:
        for pm in settings.pm_values:
            topo = circle_topology(
                8, misbehaving=(MISBEHAVING_NODE,), pm_percent=pm,
                with_interferers=False,
            )
            config = ScenarioConfig(
                topology=topo, protocol=PROTOCOL_CORRECT,
                duration_us=settings.duration_us, detector=spec,
            )
            points.append((spec, pm, batch.add_seeds(config, settings.seeds)))
    yield
    for spec, pm, handle in points:
        results = handle.results
        _add_stat_point(
            fig, f"{spec} - detection %", pm, results,
            lambda r: r.detection_rate_percent,
        )
        _add_stat_point(
            fig, f"{spec} - false alarm %", pm, results,
            lambda r: r.false_alarm_percent,
        )
        if pm <= 0:
            continue
        # Time to detection: averaged over the seeds in which the
        # misbehaving sender got flagged at all; a sweep point where no
        # seed flagged simply has no latency sample (the detection-%
        # series already shows the miss).
        ok = _ok(results)
        latency_pkts = [
            v for v in (
                r.detection_latency_packets(MISBEHAVING_NODE) for r in ok
            ) if v is not None
        ]
        latency_us = [
            v for v in (
                r.detection_latency_us(MISBEHAVING_NODE) for r in ok
            ) if v is not None
        ]
        if latency_pkts:
            fig.add_point(f"{spec} - TTD (pkts)", pm, mean(latency_pkts))
        if latency_us:
            fig.add_point(f"{spec} - TTD (ms)", pm, mean(latency_us) / 1000.0)
    return fig


def figure_detectors(
    settings: EvalSettings = DEFAULT_SETTINGS,
    workers: Optional[int] = None,
    executor: Optional[ExperimentExecutor] = None,
) -> FigureResult:
    """Compare detectors' operating points and detection latency.

    For every detector spec in ``settings.detectors`` (by default the
    paper's W/THRESH window, a one-sided CUSUM, and a CWmin estimator
    — see :mod:`repro.detect`) the ZERO-FLOW circle is swept over PM.
    Four series per detector:

    * ``detection %`` / ``false alarm %`` — the per-observation
      operating point (an ROC-style table: detection on misbehaving
      senders' judged packets vs. false alarms on honest ones);
    * ``TTD (pkts)`` / ``TTD (ms)`` — mean time to detection of the
      misbehaving sender, in judged packets and in simulated time,
      over the seeds in which it was flagged at all (PM > 0 only).
    """
    return _materialize(_figure_detectors_plan, settings, workers, executor)


#: Planner registry backing :func:`generate_figures`.
PLANNERS = {
    "fig4": _figure4_plan,
    "fig5": _figure5_plan,
    "fig6": _figure6_plan,
    "fig7": _figure7_plan,
    "fig8": _figure8_plan,
    "fig9a": _figure9a_plan,
    "fig9b": _figure9b_plan,
    "intro": _intro_claim_plan,
    "delay": _figure_delay_plan,
    "faults": _figure_faults_plan,
    "detectors": _figure_detectors_plan,
}

#: Registry used by the report CLI and the benchmark suite.
ALL_FIGURES = {
    "fig4": figure4,
    "fig5": figure5,
    "fig6": figure6,
    "fig7": figure7,
    "fig8": figure8,
    "fig9a": figure9a,
    "fig9b": figure9b,
    "intro": intro_claim,
    "delay": figure_delay,
    "faults": figure_faults,
    "detectors": figure_detectors,
}
