"""Batch export of all figure data (tables + JSON) to a directory.

This is the reproducibility driver behind EXPERIMENTS.md: it runs
every figure generator at a chosen scale and archives both the
human-readable table and the raw series.

    from repro.experiments.export import export_all
    export_all("results/", settings=PAPER_SETTINGS)   # paper scale

or from the shell::

    python -c "from repro.experiments.export import export_all; export_all('results')"
"""

from __future__ import annotations

import pathlib
import time
from typing import Dict, Iterable, Optional

from repro.experiments.executor import ExperimentExecutor
from repro.experiments.figures import ALL_FIGURES, FigureResult
from repro.experiments.report import render_table, to_json
from repro.experiments.settings import DEFAULT_SETTINGS, EvalSettings


def export_figure(
    figure_id: str,
    out_dir: pathlib.Path,
    settings: EvalSettings,
    workers: Optional[int] = None,
    executor: Optional[ExperimentExecutor] = None,
) -> FigureResult:
    """Generate one figure and write ``<id>.txt`` and ``<id>.json``."""
    if figure_id not in ALL_FIGURES:
        raise KeyError(
            f"unknown figure {figure_id!r}; known: {sorted(ALL_FIGURES)}"
        )
    fig = ALL_FIGURES[figure_id](settings, workers=workers, executor=executor)
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / f"{figure_id}.txt").write_text(
        render_table(fig) + "\n", encoding="utf-8"
    )
    (out_dir / f"{figure_id}.json").write_text(
        to_json(fig), encoding="utf-8"
    )
    return fig


def export_all(
    out_dir: str,
    settings: EvalSettings = DEFAULT_SETTINGS,
    figure_ids: Optional[Iterable[str]] = None,
    workers: Optional[int] = None,
    verbose: bool = True,
) -> Dict[str, FigureResult]:
    """Generate and archive every (or the selected) figure.

    Returns the figure results keyed by id.  Figures are generated
    sequentially, cheapest first, so partial output is useful even if
    interrupted — but all of them share one persistent worker pool
    (and the run cache, when enabled) via a single
    :class:`ExperimentExecutor`.
    """
    directory = pathlib.Path(out_dir)
    wanted = list(figure_ids) if figure_ids is not None else list(ALL_FIGURES)
    results: Dict[str, FigureResult] = {}
    with ExperimentExecutor(workers=workers) as executor:
        for figure_id in wanted:
            start = time.time()
            results[figure_id] = export_figure(
                figure_id, directory, settings, executor=executor
            )
            if verbose:
                print(f"{figure_id}: {time.time() - start:.0f}s "
                      f"-> {directory / figure_id}.txt")
    return results
