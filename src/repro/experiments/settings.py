"""Evaluation scale settings: paper-scale vs. quick (CI-friendly).

The paper runs every data point for 50 simulated seconds averaged over
30 seeds.  A pure-Python substrate reproduces the same *shapes* at a
fraction of that cost, so the default harness scale is reduced; set
``REPRO_FULL=1`` in the environment to run the paper-scale version
(budget hours of CPU), or ``REPRO_QUICK=1`` to force the smallest
sanity scale regardless of other settings.

The seed list is shared across data points, mirroring "the set of
seeds used for different data points is the same".

Beyond the scale selection this module also centralises the other
``REPRO_*`` execution knobs so every layer reads them the same way:

* ``REPRO_WORKERS`` — worker-process count (see
  :func:`repro.experiments.executor.default_workers`);
* ``REPRO_CACHE``   — enable the content-addressed run cache
  (:mod:`repro.experiments.cache`);
* ``REPRO_PROFILE`` — emit per-run wall-time / events-per-second
  profiling from the executor (results are unchanged; the hooks only
  count, they never touch RNG streams);
* ``REPRO_RUN_TIMEOUT`` — per-run wall-clock timeout in seconds
  enforced by the executor's supervision loop (unset: no timeout);
* ``REPRO_RETRIES`` — retry budget per task for transient worker
  failures (default 2);
* ``REPRO_BATCH`` — route same-scenario/different-seed cells of a
  single-worker executor through the replica-batched kernel
  (:mod:`repro.sim.batch`; results stay bit-identical);
* ``REPRO_MAX_EVENTS`` / ``REPRO_MAX_WALL`` — kernel watchdog budgets
  (events per run / wall seconds per run); setting either arms a
  :class:`repro.sim.engine.Watchdog` inside every scenario build, so
  a stuck simulation raises ``SimulationStalled`` with an event trace
  instead of spinning forever;
* ``REPRO_SERVICE_SHARDS`` / ``REPRO_SERVICE_ENTRIES`` /
  ``REPRO_SERVICE_WORKERS`` — default geometry of the online
  detection service (``python -m repro serve``): shard count,
  per-shard LRU entry budget, and ingest worker processes (see
  :mod:`repro.service`).  CLI flags override all three.

A knob counts as "set" when its value is non-empty and not ``"0"``,
so ``REPRO_CACHE=0`` is an explicit off.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.sim.engine import Watchdog


@dataclass(frozen=True)
class EvalSettings:
    """Scale knobs shared by all figure harnesses.

    Attributes
    ----------
    duration_us:
        Simulated time per run.
    seeds:
        Seed list; every data point runs once per seed.
    pm_values:
        Percentage-of-misbehavior sweep (Figures 4, 5, 9).
    network_sizes:
        Sender-count sweep (Figures 6, 7).
    fig8_pm_values:
        PM levels of the responsiveness study (Figure 8).
    fig8_bin_us:
        Time-bin width of the Figure 8 series (1 s in the paper).
    random_topologies:
        Number of random placements for Figure 9 (30 in the paper).
    random_nodes / random_misbehaving:
        Random-topology population (40 nodes, 5 misbehaving).
    fault_loss_rates:
        ACK/CTS loss-rate sweep of the fault-robustness figure
        (``figure_faults``); 0.0 is the clean reference point.
    detectors:
        Detector specs compared by the ``detectors`` figure (see
        :mod:`repro.detect` for the spec syntax).
    """

    duration_us: int
    seeds: Tuple[int, ...]
    pm_values: Tuple[float, ...] = (0.0, 10.0, 20.0, 30.0, 40.0, 50.0,
                                    60.0, 70.0, 80.0, 90.0, 100.0)
    network_sizes: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64)
    fig8_pm_values: Tuple[float, ...] = (40.0, 60.0, 80.0)
    fig8_bin_us: int = 1_000_000
    random_topologies: int = 30
    random_nodes: int = 40
    random_misbehaving: int = 5
    fault_loss_rates: Tuple[float, ...] = (0.0, 0.05, 0.1, 0.2, 0.4)
    detectors: Tuple[str, ...] = ("window", "cusum", "estimator")

    @property
    def duration_s(self) -> float:
        return self.duration_us / 1_000_000


#: The paper's configuration: 50 s x 30 seeds, full sweeps.
PAPER_SETTINGS = EvalSettings(
    duration_us=50_000_000,
    seeds=tuple(range(1, 31)),
)

#: Default scaled-down configuration: same sweeps, shorter runs.
DEFAULT_SETTINGS = EvalSettings(
    duration_us=5_000_000,
    seeds=(1, 2, 3, 4, 5),
    pm_values=(0.0, 20.0, 40.0, 50.0, 60.0, 80.0, 100.0),
    network_sizes=(1, 2, 4, 8, 16, 32, 64),
    random_topologies=5,
)

#: Smallest sanity scale (used by CI smoke benches).
QUICK_SETTINGS = EvalSettings(
    duration_us=1_500_000,
    seeds=(1, 2),
    pm_values=(0.0, 50.0, 100.0),
    network_sizes=(1, 8, 32),
    fig8_pm_values=(40.0, 80.0),
    random_topologies=2,
    random_nodes=20,
    random_misbehaving=3,
    fault_loss_rates=(0.0, 0.3),
)


def active_settings() -> EvalSettings:
    """Settings selected by the environment (see module docstring)."""
    if os.environ.get("REPRO_QUICK"):
        return QUICK_SETTINGS
    if os.environ.get("REPRO_FULL"):
        return PAPER_SETTINGS
    return DEFAULT_SETTINGS


def env_flag(name: str) -> bool:
    """True when env var ``name`` is set to a non-empty value != "0"."""
    value = os.environ.get(name, "")
    return bool(value) and value != "0"


def profile_enabled() -> bool:
    """Whether ``REPRO_PROFILE`` asks for executor profiling output."""
    return env_flag("REPRO_PROFILE")


def cache_enabled() -> bool:
    """Whether ``REPRO_CACHE`` enables the on-disk run cache."""
    return env_flag("REPRO_CACHE")


def batch_runs_enabled() -> bool:
    """Whether ``REPRO_BATCH`` opts into replica-batched execution.

    When set, a single-worker executor groups same-scenario /
    different-seed cells through :func:`repro.sim.batch.run_scenario_batch`
    (bit-identical results; see ``docs/PERFORMANCE.md`` for when the
    batched kernel actually pays off).  Fault-injected or otherwise
    non-batchable configs always fall back to scalar runs.
    """
    return env_flag("REPRO_BATCH")


def _env_number(name: str, cast, minimum):
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        value = cast(raw)
    except ValueError:
        raise ValueError(f"{name} must be a number, got {raw!r}") from None
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def run_timeout_s() -> Optional[float]:
    """Per-run timeout from ``REPRO_RUN_TIMEOUT`` (None: no timeout)."""
    return _env_number("REPRO_RUN_TIMEOUT", float, 0.001)


def max_retries() -> int:
    """Retry budget per task from ``REPRO_RETRIES`` (default 2)."""
    value = _env_number("REPRO_RETRIES", int, 0)
    return 2 if value is None else value


def service_shards() -> Optional[int]:
    """Service shard count from ``REPRO_SERVICE_SHARDS`` (None: the
    service default, :data:`repro.service.store.DEFAULT_SHARDS`)."""
    return _env_number("REPRO_SERVICE_SHARDS", int, 1)


def service_shard_entries() -> Optional[int]:
    """Per-shard LRU budget from ``REPRO_SERVICE_ENTRIES`` (None: the
    service default, :data:`repro.service.store.DEFAULT_MAX_ENTRIES`)."""
    return _env_number("REPRO_SERVICE_ENTRIES", int, 1)


def service_workers() -> Optional[int]:
    """Ingest worker processes from ``REPRO_SERVICE_WORKERS`` (None:
    single-process; the ``serve --workers`` flag overrides)."""
    return _env_number("REPRO_SERVICE_WORKERS", int, 1)


def watchdog_from_env() -> Optional[Watchdog]:
    """Kernel watchdog from ``REPRO_MAX_EVENTS`` / ``REPRO_MAX_WALL``.

    Returns ``None`` (no guarded loop, zero overhead) when neither
    knob is set.
    """
    max_events = _env_number("REPRO_MAX_EVENTS", int, 1)
    max_wall = _env_number("REPRO_MAX_WALL", float, 0.001)
    if max_events is None and max_wall is None:
        return None
    return Watchdog(max_events=max_events, max_wall_s=max_wall)
