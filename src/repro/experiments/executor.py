"""Batched experiment execution on one persistent worker pool.

The paper's evaluation is a grid of (figure x sweep-point x seed)
simulations.  The original harness ran sweep points strictly
sequentially and spun up a fresh ``ProcessPoolExecutor`` per point,
which serialised the grid on pool churn.  This module replaces that
with:

* :class:`ExperimentExecutor` — a long-lived executor that owns one
  process pool for its whole lifetime, consults the run cache
  (:mod:`repro.experiments.cache`), deduplicates identical configs
  inside a batch, and load-balances the remaining simulations across
  the pool with small chunks;
* :class:`TaskBatch` — an append-only list of
  :class:`~repro.experiments.scenarios.ScenarioConfig` tasks that many
  sweep points (or many figures) contribute to before a single
  ``execute()`` call fans the whole flattened grid out at once.

Every run is fully determined by its config, so neither worker count,
chunking, dedup nor caching can change results — only wall time.

The executor also *supervises* its pool.  Tasks are submitted
individually and watched: a run that exceeds ``run_timeout_s`` gets
its worker killed and is retried (bounded, with capped exponential
backoff); a worker that dies outright (``BrokenProcessPool``) costs
nobody their results — the pool is respawned and only unfinished
tasks are requeued, with the executor dropping to one-task-at-a-time
quarantine so a deterministic crasher is blamed exactly rather than
taking innocent tasks down with it.  A task that exhausts its retry
budget becomes a :class:`FailedRun` placeholder: with
``on_failure="flag"`` it flows back to the caller (figure harnesses
render the point as FAILED and the CLI exits nonzero), with the
default ``on_failure="raise"`` the batch raises
:class:`RunFailedError` after completing everything else.

With ``REPRO_PROFILE`` set, executed batches report per-run wall time,
events processed and events/sec (plus a per-subsystem event breakdown
when the kernel collected one) on stderr.  Profiling never touches RNG
streams; simulated results are bit-identical with it on or off.
"""

from __future__ import annotations

import concurrent.futures as cf
import gc
import os
import sys
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.experiments.cache import (
    RunCache,
    UncacheableConfigError,
    active_cache,
    config_fingerprint,
)
from repro.experiments.scenarios import RunResult, ScenarioConfig, run_scenario
from repro.experiments.settings import (
    batch_runs_enabled,
    max_retries as default_max_retries,
    profile_enabled,
    run_timeout_s as default_run_timeout_s,
)


def default_workers() -> int:
    """Worker processes to use: ``REPRO_WORKERS`` env or cpu count.

    ``REPRO_WORKERS`` must parse as a positive integer; anything else
    (including ``0`` and negative values, which would mean a pool with
    no workers) raises ``ValueError`` with a clear message instead of
    surfacing an ``int()`` traceback deep inside a sweep.
    """
    env = os.environ.get("REPRO_WORKERS")
    if env is not None and env.strip():
        try:
            value = int(env)
        except ValueError:
            raise ValueError(
                f"REPRO_WORKERS must be a positive integer, got {env!r}"
            ) from None
        if value < 1:
            raise ValueError(
                f"REPRO_WORKERS must be >= 1, got {value}"
            )
        return value
    return max(os.cpu_count() or 1, 1)


def _timed_run(config: ScenarioConfig) -> Tuple[RunResult, float]:
    """Pool task: run one scenario, measuring its wall time."""
    start = time.perf_counter()
    result = run_scenario(config)
    return result, time.perf_counter() - start


@dataclass
class FailedRun:
    """Placeholder result for a task that exhausted its retry budget.

    Carries the config, the last error description and how many
    attempts were made.  Sweep reducers treat it as a missing data
    point (the figure is emitted with the point flagged ``FAILED``);
    ``on_failure="raise"`` mode never returns one.
    """

    config: ScenarioConfig
    error: str
    attempts: int


#: What a batch entry resolves to.
RunOutcome = Union[RunResult, FailedRun]


#: Failures itemised in a :class:`RunFailedError` message.  Every
#: failure is still carried on ``.failures``; only the rendered text
#: is capped, so a 10^5-cell campaign's error stays readable.
MAX_REPORTED_FAILURES = 10


class RunFailedError(RuntimeError):
    """A batch contained tasks that failed after all retries."""

    def __init__(self, failures: List[FailedRun]):
        self.failures = failures
        lines = "\n".join(
            f"  seed={f.config.seed} proto={f.config.protocol} "
            f"attempts={f.attempts}: {f.error}"
            for f in failures[:MAX_REPORTED_FAILURES]
        )
        if len(failures) > MAX_REPORTED_FAILURES:
            lines += (
                f"\n  ... and {len(failures) - MAX_REPORTED_FAILURES} more "
                f"(all {len(failures)} on this exception's .failures)"
            )
        super().__init__(
            f"{len(failures)} run(s) failed after retries:\n{lines}"
        )


class ExperimentExecutor:
    """Persistent pool + cache front-end for scenario batches.

    Parameters
    ----------
    workers:
        Pool size; defaults to :func:`default_workers`.  ``1`` runs
        everything in-process (no pool is ever created).
    cache:
        A :class:`RunCache`, or None to use the env-selected cache
        (``REPRO_CACHE`` / ``REPRO_CACHE_DIR``; off by default).
    profile:
        Emit per-run profiling to stderr; defaults to ``REPRO_PROFILE``.
    run_timeout_s:
        Wall-clock budget per task; a run still going after this long
        has its worker killed and counts as a (retryable) failure.
        Defaults to ``REPRO_RUN_TIMEOUT``; ``None`` disables the
        timeout.  Only enforced on the pool path (``workers >= 2``) —
        in-process runs cannot be preempted, use the kernel watchdog
        (``REPRO_MAX_WALL``) there instead.
    max_retries:
        Retries per task after its first failure (default:
        ``REPRO_RETRIES`` or 2).  Retries back off exponentially from
        ``retry_backoff_s``, capped at ``retry_backoff_cap_s``.
    on_failure:
        ``"raise"`` (default): a task exhausting its retries raises
        :class:`RunFailedError` once the rest of the batch finished.
        ``"flag"``: the task's slot holds a :class:`FailedRun` and the
        batch returns normally (graceful figure degradation).

    The executor is reusable across many :meth:`run` calls — that is
    the point: one pool serves a whole figure, or every figure of a
    CLI invocation.  Use it as a context manager (or call
    :meth:`close`) to shut the pool down.  A pool lost to a crash or
    timeout mid-batch is discarded and lazily recreated on the next
    submission, so one poisoned batch never bricks the executor.

    ``runs_executed`` / ``cache_hits`` / ``dedup_hits`` count actual
    simulations versus avoided ones, and double as the run-count probe
    the cache tests assert on.  ``runs_retried`` / ``runs_failed`` /
    ``pool_respawns`` count supervision interventions, and
    ``batched_runs`` how many runs the replica-batched kernel served
    (``REPRO_BATCH``, single-worker executors only).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache: Optional[RunCache] = None,
        profile: Optional[bool] = None,
        run_timeout_s: Optional[float] = None,
        max_retries: Optional[int] = None,
        retry_backoff_s: float = 0.5,
        retry_backoff_cap_s: float = 8.0,
        on_failure: str = "raise",
    ):
        self.workers = workers if workers is not None else default_workers()
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if on_failure not in ("raise", "flag"):
            raise ValueError(
                f"on_failure must be 'raise' or 'flag', got {on_failure!r}"
            )
        self.cache = cache if cache is not None else active_cache()
        self.profile = profile if profile is not None else profile_enabled()
        self.run_timeout_s = (
            run_timeout_s if run_timeout_s is not None
            else default_run_timeout_s()
        )
        self.max_retries = (
            max_retries if max_retries is not None else default_max_retries()
        )
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.retry_backoff_s = retry_backoff_s
        self.retry_backoff_cap_s = retry_backoff_cap_s
        self.on_failure = on_failure
        self._pool: Optional[ProcessPoolExecutor] = None
        self._closed = False
        self.runs_executed = 0
        self.cache_hits = 0
        self.dedup_hits = 0
        self.runs_retried = 0
        self.runs_failed = 0
        self.pool_respawns = 0
        #: Runs satisfied by the replica-batched kernel (REPRO_BATCH).
        self.batched_runs = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "ExperimentExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the worker pool (idempotent).

        Pending (not-yet-started) futures are cancelled rather than
        drained, so closing an executor mid-batch — e.g. a context
        manager unwinding through an exception raised while a
        supervised batch is in flight — waits only for the runs
        already on a worker instead of the whole queue, and the pool's
        processes are reaped rather than leaked.  Safe to call
        repeatedly and safe on a pool whose workers died: shutdown
        errors on an already-broken pool are swallowed.
        """
        self._closed = True
        if self._pool is not None:
            try:
                self._pool.shutdown(wait=True, cancel_futures=True)
            except Exception:  # pragma: no cover - broken-pool teardown
                pass
            self._pool = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._closed:
            raise RuntimeError("executor is closed")
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def _discard_pool(self) -> None:
        """Forget a dead pool; the next submission recreates one."""
        pool = self._pool
        if pool is None:
            return
        self.pool_respawns += 1
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - broken-pool teardown
            pass
        self._pool = None

    def _kill_pool(self) -> None:
        """Terminate all workers (hung-task escalation), then discard."""
        pool = self._pool
        if pool is None:
            return
        for proc in list(getattr(pool, "_processes", {}).values()):
            try:
                proc.terminate()
            except Exception:  # pragma: no cover - racing process exit
                pass
        self._discard_pool()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, configs: Sequence[ScenarioConfig]) -> List[RunOutcome]:
        """Run a batch of configs; results come back in input order.

        Each config is satisfied, in priority order, by (1) an earlier
        identical config in the same batch, (2) the run cache, or
        (3) an actual simulation on the pool.  Fresh simulations are
        written back to the cache.  Under ``on_failure="flag"`` a slot
        may hold a :class:`FailedRun` instead of a result.
        """
        if self._closed:
            raise RuntimeError("executor is closed")
        configs = list(configs)
        results: List[Optional[RunOutcome]] = [None] * len(configs)
        pending: List[int] = []           # indices that must simulate
        first_seen: Dict[str, int] = {}   # fingerprint -> first index
        aliases: List[Tuple[int, int]] = []   # (dup index, source index)
        for index, config in enumerate(configs):
            try:
                fingerprint = config_fingerprint(config)
            except UncacheableConfigError:
                pending.append(index)
                continue
            if fingerprint in first_seen:
                self.dedup_hits += 1
                aliases.append((index, first_seen[fingerprint]))
                continue
            first_seen[fingerprint] = index
            if self.cache is not None:
                hit = self.cache.get(config)
                if hit is not None:
                    self.cache_hits += 1
                    results[index] = hit
                    continue
            pending.append(index)
        if pending:
            timed = self._execute([configs[i] for i in pending])
            for index, (outcome, wall_s) in zip(pending, timed):
                results[index] = outcome
                if isinstance(outcome, RunResult):
                    self.runs_executed += 1
                    if self.cache is not None:
                        self.cache.put(configs[index], outcome)
            if self.profile:
                self._report([configs[i] for i in pending], timed)
        for dup, source in aliases:
            results[dup] = results[source]
        failures = [r for r in results if isinstance(r, FailedRun)]
        if failures and self.on_failure == "raise":
            raise RunFailedError(failures)
        return results  # type: ignore[return-value]

    def _execute(
        self, configs: List[ScenarioConfig]
    ) -> List[Tuple[RunOutcome, float]]:
        # Inline only when the executor itself is single-worker: a
        # pool-backed executor must isolate even a one-config batch,
        # otherwise a crashing run takes the parent process with it.
        if self.workers <= 1:
            return self._run_inline_sweep(configs)
        return self._run_supervised(configs)

    def _run_inline_sweep(
        self, configs: List[ScenarioConfig]
    ) -> List[Tuple[RunOutcome, float]]:
        """Single-worker execution of a pending batch.

        With ``REPRO_BATCH`` set, same-scenario/different-seed groups
        go through the replica-batched kernel first (bit-identical
        results; a group that fails for any reason falls back to
        scalar runs, which carry the retry/quarantine semantics).
        Everything left runs scalar, with generational GC suspended
        for the duration of the sweep — run_scenario's event churn is
        acyclic, and collector passes over a sweep's worth of live
        results cost a measurable slice of wall time.
        """
        results: List[Optional[Tuple[RunOutcome, float]]] = (
            [None] * len(configs)
        )
        if batch_runs_enabled() and len(configs) > 1:
            from repro.sim.batch import batchable, run_scenario_batch

            groups: Dict[str, List[int]] = {}
            for index, config in enumerate(configs):
                if not batchable(config):
                    continue
                try:
                    key = config_fingerprint(config.with_seed(0))
                except UncacheableConfigError:
                    continue
                groups.setdefault(key, []).append(index)
            for indices in groups.values():
                if len(indices) < 2:
                    continue
                start = time.perf_counter()
                try:
                    batched = run_scenario_batch(
                        [configs[i] for i in indices]
                    )
                except Exception:
                    continue  # scalar fallback below, with retries
                wall_each = (time.perf_counter() - start) / len(indices)
                for index, result in zip(indices, batched):
                    self.batched_runs += 1
                    results[index] = (result, wall_each)
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for index, config in enumerate(configs):
                if results[index] is None:
                    results[index] = self._run_inline(config)
        finally:
            if gc_was_enabled:
                gc.enable()
                gc.collect()
        return results  # type: ignore[return-value]

    def _backoff(self, attempts: int) -> None:
        """Sleep the capped exponential backoff before retry ``attempts``."""
        delay = min(
            self.retry_backoff_cap_s,
            self.retry_backoff_s * (2 ** (attempts - 1)),
        )
        if delay > 0:
            time.sleep(delay)

    def _run_inline(self, config: ScenarioConfig) -> Tuple[RunOutcome, float]:
        attempts = 0
        while True:
            attempts += 1
            try:
                return _timed_run(config)
            except Exception as exc:
                if attempts > self.max_retries:
                    self.runs_failed += 1
                    return (
                        FailedRun(
                            config=config,
                            error=f"{type(exc).__name__}: {exc}",
                            attempts=attempts,
                        ),
                        0.0,
                    )
                self.runs_retried += 1
                self._backoff(attempts)

    def _run_supervised(
        self, configs: List[ScenarioConfig]
    ) -> List[Tuple[RunOutcome, float]]:
        """Submit-per-task pool execution with timeouts and crash recovery.

        The loop keeps a queue of ``(index, retries_used)`` entries and
        a map of in-flight futures.  Three failure paths:

        * a task raising inside the worker — retried with backoff until
          the budget is spent, then a :class:`FailedRun`;
        * a task exceeding ``run_timeout_s`` — every worker is killed
          (there is no way to preempt just one), the *hung* task is
          blamed and retried/failed, all other in-flight tasks are
          requeued without blame;
        * the pool breaking (a worker died, e.g. ``os._exit`` or OOM
          kill) — ``BrokenProcessPool`` surfaces on *every* in-flight
          future, so the culprit is unknowable.  Nobody is blamed; all
          unfinished tasks are requeued and the executor enters
          *quarantine*: one task in flight at a time, so a repeat
          crash identifies its task exactly.

        Quarantine persists for the rest of the batch; pool respawns
        are additionally capped (defensive backstop) so even a host
        that kills every worker cannot loop forever.
        """
        outcomes: List[Optional[Tuple[RunOutcome, float]]] = (
            [None] * len(configs)
        )
        queue = deque((i, 0) for i in range(len(configs)))
        inflight: Dict[cf.Future, Tuple[int, int]] = {}
        started: Dict[cf.Future, float] = {}
        quarantine = False
        max_respawns = len(configs) * (self.max_retries + 1) + 2

        def settle(index: int, retries_used: int, error: str) -> None:
            """Blame a task: retry it or convert it to a FailedRun."""
            if retries_used < self.max_retries:
                self.runs_retried += 1
                self._backoff(retries_used + 1)
                queue.append((index, retries_used + 1))
            else:
                self.runs_failed += 1
                outcomes[index] = (
                    FailedRun(
                        config=configs[index],
                        error=error,
                        attempts=retries_used + 1,
                    ),
                    0.0,
                )

        while queue or inflight:
            while queue and not (quarantine and inflight):
                index, retries_used = queue.popleft()
                if self.pool_respawns >= max_respawns:
                    settle(
                        index, self.max_retries,
                        "pool respawn budget exhausted",
                    )
                    continue
                future = self._ensure_pool().submit(
                    _timed_run, configs[index]
                )
                inflight[future] = (index, retries_used)
            if not inflight:
                continue
            tick = (
                None if self.run_timeout_s is None
                else max(0.01, min(0.05, self.run_timeout_s / 4))
            )
            done, _ = cf.wait(
                list(inflight), timeout=tick,
                return_when=cf.FIRST_COMPLETED,
            )
            now = time.monotonic()
            broken = False
            for future in done:
                index, retries_used = inflight.pop(future)
                started.pop(future, None)
                try:
                    outcomes[index] = future.result()
                except BrokenProcessPool:
                    broken = True
                    if quarantine:
                        # Exactly one task was in flight: exact blame.
                        settle(index, retries_used, "worker crashed")
                    else:
                        queue.append((index, retries_used))
                except cf.CancelledError:
                    queue.append((index, retries_used))
                except Exception as exc:
                    settle(
                        index, retries_used,
                        f"{type(exc).__name__}: {exc}",
                    )
            if broken:
                # Every other in-flight future is doomed too; requeue
                # them unblamed and respawn under quarantine.
                for future, (index, retries_used) in inflight.items():
                    queue.append((index, retries_used))
                inflight.clear()
                started.clear()
                self._discard_pool()
                quarantine = True
                continue
            if self.run_timeout_s is None:
                continue
            # Hang detection: blame only futures a worker picked up
            # longer than the budget ago; queued-but-unstarted tasks
            # are merely waiting for a slot.
            for future in inflight:
                if future not in started and future.running():
                    started[future] = now
            hung = [
                future for future, t0 in started.items()
                if future in inflight and now - t0 > self.run_timeout_s
            ]
            if hung:
                self._kill_pool()
                for future in hung:
                    index, retries_used = inflight.pop(future)
                    settle(
                        index, retries_used,
                        f"timeout after {self.run_timeout_s:g}s",
                    )
                for future, (index, retries_used) in inflight.items():
                    queue.append((index, retries_used))
                inflight.clear()
                started.clear()
        # Defensive: every slot must have been settled by the loop.
        return [
            outcome if outcome is not None else (
                FailedRun(
                    config=configs[i], error="internal: task lost",
                    attempts=0,
                ), 0.0,
            )
            for i, outcome in enumerate(outcomes)
        ]

    # ------------------------------------------------------------------
    # Profiling
    # ------------------------------------------------------------------
    def _report(
        self,
        configs: List[ScenarioConfig],
        timed: List[Tuple[RunOutcome, float]],
    ) -> None:
        out = sys.stderr
        total_wall = 0.0
        total_events = 0
        subsystems: Dict[str, int] = {}
        for config, (result, wall_s) in zip(configs, timed):
            if isinstance(result, FailedRun):
                print(
                    f"[profile] seed={config.seed} proto={config.protocol} "
                    f"FAILED after {result.attempts} attempts: {result.error}",
                    file=out,
                )
                continue
            rate = result.events_processed / wall_s if wall_s > 0 else 0.0
            total_wall += wall_s
            total_events += result.events_processed
            print(
                f"[profile] seed={config.seed} proto={config.protocol} "
                f"n={len(config.topology.flows)} wall={wall_s:.3f}s "
                f"events={result.events_processed} rate={rate:,.0f} ev/s",
                file=out,
            )
            for module, count in result.event_counts.items():
                subsystems[module] = subsystems.get(module, 0) + count
        rate = total_events / total_wall if total_wall > 0 else 0.0
        print(
            f"[profile] batch: {len(timed)} runs wall={total_wall:.3f}s "
            f"(cumulative) events={total_events} rate={rate:,.0f} ev/s",
            file=out,
        )
        for module, count in sorted(
            subsystems.items(), key=lambda kv: -kv[1]
        ):
            share = 100.0 * count / total_events if total_events else 0.0
            print(
                f"[profile]   {module}: {count} events ({share:.1f}%)",
                file=out,
            )


class BatchHandle:
    """Lazy view of one contiguous slice of a :class:`TaskBatch`.

    Sweep points hold handles while the batch accumulates; after
    ``TaskBatch.execute()`` the handle's :attr:`results` are the runs
    of exactly the configs it added, in the order it added them.
    """

    __slots__ = ("_batch", "_start", "_count")

    def __init__(self, batch: "TaskBatch", start: int, count: int):
        self._batch = batch
        self._start = start
        self._count = count

    def __len__(self) -> int:
        return self._count

    @property
    def results(self) -> List[RunResult]:
        if self._batch._results is None:
            raise RuntimeError("batch has not been executed yet")
        return self._batch._results[self._start:self._start + self._count]


class TaskBatch:
    """A flattened grid of scenario tasks executed in one shot."""

    def __init__(self) -> None:
        self._configs: List[ScenarioConfig] = []
        self._results: Optional[List[RunResult]] = None

    def __len__(self) -> int:
        return len(self._configs)

    @property
    def configs(self) -> List[ScenarioConfig]:
        return list(self._configs)

    def add(self, configs: Sequence[ScenarioConfig]) -> BatchHandle:
        """Append configs; returns the handle to their future results."""
        if self._results is not None:
            raise RuntimeError("batch was already executed")
        configs = list(configs)
        if not configs:
            raise ValueError("need at least one config")
        handle = BatchHandle(self, len(self._configs), len(configs))
        self._configs.extend(configs)
        return handle

    def add_seeds(
        self, config: ScenarioConfig, seeds: Sequence[int]
    ) -> BatchHandle:
        """Append one config re-seeded over ``seeds`` (one sweep point)."""
        if not seeds:
            raise ValueError("need at least one seed")
        return self.add([config.with_seed(seed) for seed in seeds])

    def execute(
        self,
        executor: Optional[ExperimentExecutor] = None,
        workers: Optional[int] = None,
    ) -> List[RunResult]:
        """Run every task; afterwards each handle's results are live.

        With ``executor`` given, its (persistent) pool is reused;
        otherwise an ephemeral executor with ``workers`` processes is
        created for just this call.
        """
        if self._results is not None:
            raise RuntimeError("batch was already executed")
        if executor is not None:
            self._results = executor.run(self._configs)
        else:
            with ExperimentExecutor(workers=workers) as ephemeral:
                self._results = ephemeral.run(self._configs)
        return list(self._results)


__all__ = [
    "BatchHandle",
    "ExperimentExecutor",
    "FailedRun",
    "MAX_REPORTED_FAILURES",
    "RunFailedError",
    "TaskBatch",
    "default_workers",
]
