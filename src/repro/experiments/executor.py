"""Batched experiment execution on one persistent worker pool.

The paper's evaluation is a grid of (figure x sweep-point x seed)
simulations.  The original harness ran sweep points strictly
sequentially and spun up a fresh ``ProcessPoolExecutor`` per point,
which serialised the grid on pool churn.  This module replaces that
with:

* :class:`ExperimentExecutor` — a long-lived executor that owns one
  process pool for its whole lifetime, consults the run cache
  (:mod:`repro.experiments.cache`), deduplicates identical configs
  inside a batch, and load-balances the remaining simulations across
  the pool with small chunks;
* :class:`TaskBatch` — an append-only list of
  :class:`~repro.experiments.scenarios.ScenarioConfig` tasks that many
  sweep points (or many figures) contribute to before a single
  ``execute()`` call fans the whole flattened grid out at once.

Every run is fully determined by its config, so neither worker count,
chunking, dedup nor caching can change results — only wall time.

With ``REPRO_PROFILE`` set, executed batches report per-run wall time,
events processed and events/sec (plus a per-subsystem event breakdown
when the kernel collected one) on stderr.  Profiling never touches RNG
streams; simulated results are bit-identical with it on or off.
"""

from __future__ import annotations

import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.cache import (
    RunCache,
    UncacheableConfigError,
    active_cache,
    config_fingerprint,
)
from repro.experiments.scenarios import RunResult, ScenarioConfig, run_scenario
from repro.experiments.settings import profile_enabled


def default_workers() -> int:
    """Worker processes to use: ``REPRO_WORKERS`` env or cpu count.

    ``REPRO_WORKERS`` must parse as a positive integer; anything else
    (including ``0`` and negative values, which would mean a pool with
    no workers) raises ``ValueError`` with a clear message instead of
    surfacing an ``int()`` traceback deep inside a sweep.
    """
    env = os.environ.get("REPRO_WORKERS")
    if env is not None and env.strip():
        try:
            value = int(env)
        except ValueError:
            raise ValueError(
                f"REPRO_WORKERS must be a positive integer, got {env!r}"
            ) from None
        if value < 1:
            raise ValueError(
                f"REPRO_WORKERS must be >= 1, got {value}"
            )
        return value
    return max(os.cpu_count() or 1, 1)


def _timed_run(config: ScenarioConfig) -> Tuple[RunResult, float]:
    """Pool task: run one scenario, measuring its wall time."""
    start = time.perf_counter()
    result = run_scenario(config)
    return result, time.perf_counter() - start


class ExperimentExecutor:
    """Persistent pool + cache front-end for scenario batches.

    Parameters
    ----------
    workers:
        Pool size; defaults to :func:`default_workers`.  ``1`` runs
        everything in-process (no pool is ever created).
    cache:
        A :class:`RunCache`, or None to use the env-selected cache
        (``REPRO_CACHE`` / ``REPRO_CACHE_DIR``; off by default).
    profile:
        Emit per-run profiling to stderr; defaults to ``REPRO_PROFILE``.

    The executor is reusable across many :meth:`run` calls — that is
    the point: one pool serves a whole figure, or every figure of a
    CLI invocation.  Use it as a context manager (or call
    :meth:`close`) to shut the pool down.

    ``runs_executed`` / ``cache_hits`` / ``dedup_hits`` count actual
    simulations versus avoided ones, and double as the run-count probe
    the cache tests assert on.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache: Optional[RunCache] = None,
        profile: Optional[bool] = None,
    ):
        self.workers = workers if workers is not None else default_workers()
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        self.cache = cache if cache is not None else active_cache()
        self.profile = profile if profile is not None else profile_enabled()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._closed = False
        self.runs_executed = 0
        self.cache_hits = 0
        self.dedup_hits = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "ExperimentExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._closed:
            raise RuntimeError("executor is closed")
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, configs: Sequence[ScenarioConfig]) -> List[RunResult]:
        """Run a batch of configs; results come back in input order.

        Each config is satisfied, in priority order, by (1) an earlier
        identical config in the same batch, (2) the run cache, or
        (3) an actual simulation on the pool.  Fresh simulations are
        written back to the cache.
        """
        if self._closed:
            raise RuntimeError("executor is closed")
        configs = list(configs)
        results: List[Optional[RunResult]] = [None] * len(configs)
        pending: List[int] = []           # indices that must simulate
        first_seen: Dict[str, int] = {}   # fingerprint -> first index
        aliases: List[Tuple[int, int]] = []   # (dup index, source index)
        for index, config in enumerate(configs):
            try:
                fingerprint = config_fingerprint(config)
            except UncacheableConfigError:
                pending.append(index)
                continue
            if fingerprint in first_seen:
                self.dedup_hits += 1
                aliases.append((index, first_seen[fingerprint]))
                continue
            first_seen[fingerprint] = index
            if self.cache is not None:
                hit = self.cache.get(config)
                if hit is not None:
                    self.cache_hits += 1
                    results[index] = hit
                    continue
            pending.append(index)
        if pending:
            timed = self._execute([configs[i] for i in pending])
            for index, (result, wall_s) in zip(pending, timed):
                results[index] = result
                self.runs_executed += 1
                if self.cache is not None:
                    self.cache.put(configs[index], result)
            if self.profile:
                self._report([configs[i] for i in pending], timed)
        for dup, source in aliases:
            results[dup] = results[source]
        return results  # type: ignore[return-value]

    def _execute(
        self, configs: List[ScenarioConfig]
    ) -> List[Tuple[RunResult, float]]:
        if self.workers <= 1 or len(configs) == 1:
            return [_timed_run(config) for config in configs]
        pool = self._ensure_pool()
        # Small chunks load-balance heterogeneous run costs (a 64-node
        # point costs ~50x a 1-node point) at modest IPC overhead.
        chunksize = max(1, len(configs) // (self.workers * 4))
        return list(pool.map(_timed_run, configs, chunksize=chunksize))

    # ------------------------------------------------------------------
    # Profiling
    # ------------------------------------------------------------------
    def _report(
        self,
        configs: List[ScenarioConfig],
        timed: List[Tuple[RunResult, float]],
    ) -> None:
        out = sys.stderr
        total_wall = 0.0
        total_events = 0
        subsystems: Dict[str, int] = {}
        for config, (result, wall_s) in zip(configs, timed):
            rate = result.events_processed / wall_s if wall_s > 0 else 0.0
            total_wall += wall_s
            total_events += result.events_processed
            print(
                f"[profile] seed={config.seed} proto={config.protocol} "
                f"n={len(config.topology.flows)} wall={wall_s:.3f}s "
                f"events={result.events_processed} rate={rate:,.0f} ev/s",
                file=out,
            )
            for module, count in result.event_counts.items():
                subsystems[module] = subsystems.get(module, 0) + count
        rate = total_events / total_wall if total_wall > 0 else 0.0
        print(
            f"[profile] batch: {len(timed)} runs wall={total_wall:.3f}s "
            f"(cumulative) events={total_events} rate={rate:,.0f} ev/s",
            file=out,
        )
        for module, count in sorted(
            subsystems.items(), key=lambda kv: -kv[1]
        ):
            share = 100.0 * count / total_events if total_events else 0.0
            print(
                f"[profile]   {module}: {count} events ({share:.1f}%)",
                file=out,
            )


class BatchHandle:
    """Lazy view of one contiguous slice of a :class:`TaskBatch`.

    Sweep points hold handles while the batch accumulates; after
    ``TaskBatch.execute()`` the handle's :attr:`results` are the runs
    of exactly the configs it added, in the order it added them.
    """

    __slots__ = ("_batch", "_start", "_count")

    def __init__(self, batch: "TaskBatch", start: int, count: int):
        self._batch = batch
        self._start = start
        self._count = count

    def __len__(self) -> int:
        return self._count

    @property
    def results(self) -> List[RunResult]:
        if self._batch._results is None:
            raise RuntimeError("batch has not been executed yet")
        return self._batch._results[self._start:self._start + self._count]


class TaskBatch:
    """A flattened grid of scenario tasks executed in one shot."""

    def __init__(self) -> None:
        self._configs: List[ScenarioConfig] = []
        self._results: Optional[List[RunResult]] = None

    def __len__(self) -> int:
        return len(self._configs)

    @property
    def configs(self) -> List[ScenarioConfig]:
        return list(self._configs)

    def add(self, configs: Sequence[ScenarioConfig]) -> BatchHandle:
        """Append configs; returns the handle to their future results."""
        if self._results is not None:
            raise RuntimeError("batch was already executed")
        configs = list(configs)
        if not configs:
            raise ValueError("need at least one config")
        handle = BatchHandle(self, len(self._configs), len(configs))
        self._configs.extend(configs)
        return handle

    def add_seeds(
        self, config: ScenarioConfig, seeds: Sequence[int]
    ) -> BatchHandle:
        """Append one config re-seeded over ``seeds`` (one sweep point)."""
        if not seeds:
            raise ValueError("need at least one seed")
        return self.add([config.with_seed(seed) for seed in seeds])

    def execute(
        self,
        executor: Optional[ExperimentExecutor] = None,
        workers: Optional[int] = None,
    ) -> List[RunResult]:
        """Run every task; afterwards each handle's results are live.

        With ``executor`` given, its (persistent) pool is reused;
        otherwise an ephemeral executor with ``workers`` processes is
        created for just this call.
        """
        if self._results is not None:
            raise RuntimeError("batch was already executed")
        if executor is not None:
            self._results = executor.run(self._configs)
        else:
            with ExperimentExecutor(workers=workers) as ephemeral:
                self._results = ephemeral.run(self._configs)
        return list(self._results)


__all__ = [
    "BatchHandle",
    "ExperimentExecutor",
    "TaskBatch",
    "default_workers",
]
