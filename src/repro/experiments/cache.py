"""Content-addressed on-disk cache of simulation runs.

A run is fully determined by its :class:`ScenarioConfig` (the seed is
a config field) plus the protocol-relevant source code, so its
:class:`RunResult` can be memoised on disk and replayed instead of
re-simulated.  The cache key is::

    sha256(config_fingerprint(config) + ":" + code_version())

* :func:`config_fingerprint` canonicalises the config — dataclasses
  are walked field by field, dicts are sorted, floats use their
  shortest ``repr`` — into a JSON document that is stable across
  processes and Python hash randomisation.  Objects without a stable
  ``repr`` (anything printing an ``at 0x...`` address) make the config
  *uncacheable*: :class:`UncacheableConfigError` is raised and the
  executor simply runs such configs every time.
* :func:`code_version` hashes every protocol-relevant source file
  (``repro.sim / phy / mac / net / core / detect / metrics`` and
  ``experiments/scenarios.py``), so editing the simulator invalidates
  all prior entries while doc/harness edits (figures, report, CLI)
  keep the cache warm.

The cache is off unless ``REPRO_CACHE`` is set (see
:func:`repro.experiments.settings.cache_enabled`); entries live under
``REPRO_CACHE_DIR`` (default ``~/.cache/repro/runs``) as one pickle
per run.  ``python -m repro cache`` inspects or clears them.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import pickle
import sys
from functools import lru_cache
from typing import Any, Dict, List, Optional, Set

from repro.experiments.scenarios import RunResult, ScenarioConfig
from repro.experiments.settings import cache_enabled


class UncacheableConfigError(ValueError):
    """A config contains an object without a stable representation."""


#: Packages (relative to the ``repro`` package root) whose sources make
#: up the protocol-relevant code version.  Harness-only modules
#: (figures, report, plots, export, CLI) are deliberately excluded:
#: they consume results and cannot change them.
_VERSIONED_SUBPACKAGES = ("core", "detect", "mac", "metrics", "net", "phy",
                          "sim")
_VERSIONED_FILES = ("experiments/scenarios.py",)


def _canonical(obj: Any) -> Any:
    """Recursively convert ``obj`` into JSON-stable primitives."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return repr(obj)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return [
            type(obj).__name__,
            [
                [f.name, _canonical(getattr(obj, f.name))]
                for f in dataclasses.fields(obj)
            ],
        ]
    if isinstance(obj, dict):
        return [
            "dict",
            sorted(
                ([_canonical(k), _canonical(v)] for k, v in obj.items()),
                key=repr,
            ),
        ]
    if isinstance(obj, (list, tuple)):
        return ["seq", [_canonical(v) for v in obj]]
    if isinstance(obj, (set, frozenset)):
        return ["set", sorted((_canonical(v) for v in obj), key=repr)]
    text = repr(obj)
    if " at 0x" in text:
        raise UncacheableConfigError(
            f"{type(obj).__name__} has no stable repr ({text}); give it a "
            "deterministic __repr__ to make configs using it cacheable"
        )
    return [type(obj).__name__, text]


def config_fingerprint(config: ScenarioConfig) -> str:
    """Stable hex digest identifying one ``(scenario, seed)`` run.

    Raises :class:`UncacheableConfigError` when the config embeds an
    object (e.g. an ad-hoc policy) whose repr is not deterministic.
    """
    payload = json.dumps(_canonical(config), separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@lru_cache(maxsize=1)
def code_version() -> str:
    """Digest of the protocol-relevant source tree (see module doc)."""
    import repro

    root = pathlib.Path(repro.__file__).parent
    digest = hashlib.sha256()
    files: List[pathlib.Path] = []
    for sub in _VERSIONED_SUBPACKAGES:
        files.extend((root / sub).rglob("*.py"))
    files.extend(root / rel for rel in _VERSIONED_FILES)
    for path in sorted(files):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def cache_dir() -> pathlib.Path:
    """Cache directory: ``REPRO_CACHE_DIR`` or ``~/.cache/repro/runs``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro" / "runs"


#: Directories already warned about (warn once per process, not once
#: per sweep point).
_WARNED_DIRS: Set[str] = set()


def _warn_unwritable(directory: pathlib.Path, error: Exception) -> None:
    key = str(directory)
    if key in _WARNED_DIRS:
        return
    _WARNED_DIRS.add(key)
    print(
        f"[cache] warning: cache directory {directory} is unusable "
        f"({type(error).__name__}: {error}); continuing uncached",
        file=sys.stderr,
    )


class RunCache:
    """One pickle per run, addressed by config + code-version digest.

    An unusable directory (read-only filesystem, permission denied,
    quota...) never aborts a sweep: the cache warns once on stderr,
    marks itself :attr:`disabled`, and every subsequent ``get``/``put``
    is a cheap no-op — runs simply execute uncached.
    """

    def __init__(self, directory: os.PathLike | str):
        self.directory = pathlib.Path(directory)
        self.disabled = False
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            self.disabled = True
            _warn_unwritable(self.directory, exc)

    # ------------------------------------------------------------------
    # Keying
    # ------------------------------------------------------------------
    def key_for(self, config: ScenarioConfig) -> str:
        """Cache key; raises ``UncacheableConfigError`` when unstable."""
        fingerprint = config_fingerprint(config)
        stamp = f"{fingerprint}:{code_version()}"
        return hashlib.sha256(stamp.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> pathlib.Path:
        return self.directory / f"{key}.pkl"

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def get(self, config: ScenarioConfig) -> Optional[RunResult]:
        """The cached result for ``config``, or None on a miss.

        Corrupt entries (interrupted writes, incompatible pickles) are
        deleted and treated as misses.
        """
        if self.disabled:
            return None
        try:
            path = self._path(self.key_for(config))
        except UncacheableConfigError:
            return None
        try:
            with path.open("rb") as fh:
                return pickle.load(fh)
        except FileNotFoundError:
            return None
        except Exception:
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
            return None

    def put(self, config: ScenarioConfig, result: RunResult) -> bool:
        """Store ``result``; returns False for uncacheable configs.

        Writes are atomic (tmp file + rename) so concurrent readers
        never observe a partial entry.  A filesystem-level failure
        (read-only mount, permissions, quota) disables the cache for
        the rest of the process — with a single stderr warning —
        instead of failing once per sweep point.
        """
        if self.disabled:
            return False
        try:
            path = self._path(self.key_for(config))
        except UncacheableConfigError:
            return False
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            with tmp.open("wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError as exc:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            self.disabled = True
            _warn_unwritable(self.directory, exc)
            return False
        except Exception:
            tmp.unlink(missing_ok=True)
            return False
        return True

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def entries(self) -> List[pathlib.Path]:
        return sorted(self.directory.glob("*.pkl"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.entries():
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def stats(self) -> Dict[str, object]:
        entries = self.entries()
        return {
            "directory": str(self.directory),
            "entries": len(entries),
            "bytes": sum(p.stat().st_size for p in entries),
            "code_version": code_version(),
        }


def active_cache() -> Optional[RunCache]:
    """The env-selected cache: a :class:`RunCache` iff ``REPRO_CACHE``."""
    if not cache_enabled():
        return None
    return RunCache(cache_dir())


__all__ = [
    "RunCache",
    "UncacheableConfigError",
    "active_cache",
    "cache_dir",
    "code_version",
    "config_fingerprint",
]
