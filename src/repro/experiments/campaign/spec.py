"""Declarative campaign sweep specs: parse, format, expand, shard.

A campaign is the cross product of a handful of axes — scenario
family, protocol, percentage of misbehavior, detector spec, fault
profile and seed — at one simulated horizon.  Like
:func:`repro.faults.parse_profile`, the spec has a compact textual
grammar so campaigns can live on the command line, in shell history
and in CI configs; unlike the fault grammar it is also *formattable*:
:func:`format_campaign` renders any :class:`CampaignSpec` into a
canonical string and ``parse(format(spec)) == spec`` holds exactly
(the round-trip is property-tested), which is what lets a resumed
campaign verify it is continuing the same grid it started.

Grammar (axes separated by ``;`` or newlines, values inside an axis
separated by ``|``, whitespace-insensitive, ``#`` starts a comment)::

    scenario=circle:8 | circle:4+interferers | random:20/3
    protocol=correct|802.11          (default: correct)
    pm=0|50|100                      (default: 0)
    cheater=3                        (circle cheater id; default: 3)
    detector=-|cusum:h=2.0,k=0.25    (default: -, the paper's window)
    faults=-|ack-loss=0.3@4          (default: -, no fault layer)
    seeds=1-30                       (ranges and lists; default: 1)
    seconds=2.0                      (simulated horizon; default: 1)

``-`` means "absent" on the detector and fault axes.  Detector and
fault values are validated eagerly with the real parsers
(:func:`repro.detect.parse_spec`, :func:`repro.faults.parse_profile`)
so a typo fails at submit time, not 10^5 cells into the sweep.

:func:`expand_cells` walks the axes in a fixed nested order (seeds
innermost) and yields one :class:`CampaignCell` per grid point; the
combination ``protocol=802.11`` x a non-``-`` detector is skipped (the
baseline has no receiver-side monitor to host one).  The resulting
cell list is the *total order* every part of the campaign layer
shares: sharding, execution, journaling and aggregation all follow it,
which is what makes interrupted-then-resumed campaigns bit-identical
to uninterrupted ones.

:func:`shard_cells` splits a cell list round-robin across ``count``
shards; the split depends only on (spec, shard index, shard count), so
independent machines can each take one shard without coordination.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.experiments.scenarios import (
    PROTOCOL_80211,
    PROTOCOL_CORRECT,
    ScenarioConfig,
)
from repro.net.topology import circle_topology, random_topology

#: Protocols a campaign may sweep.
PROTOCOLS = (PROTOCOL_CORRECT, PROTOCOL_80211)

#: Axis keys in canonical format order.
_AXIS_KEYS = ("scenario", "protocol", "pm", "cheater", "detector",
              "faults", "seeds", "seconds")


class CampaignSpecError(ValueError):
    """A campaign spec failed to parse or validate."""


@dataclass(frozen=True)
class ScenarioAxis:
    """One scenario-family value of the ``scenario`` axis.

    ``circle:N[+interferers]`` is the paper's Figure 3 setup with N
    senders (ZERO-FLOW, or TWO-FLOW with the interferers); at
    ``pm > 0`` the spec's ``cheater`` sender misbehaves.
    ``random:N/M`` is the Figure 9 setup — N randomly placed nodes per
    seed, of which M misbehave at ``pm > 0``.
    """

    kind: str
    nodes: int
    interferers: bool = False
    misbehaving: int = 0

    def __post_init__(self):
        if self.kind not in ("circle", "random"):
            raise CampaignSpecError(
                f"unknown scenario kind {self.kind!r} (circle or random)"
            )
        if self.nodes < 1:
            raise CampaignSpecError("scenario needs at least one node")
        if self.kind == "random":
            if self.nodes < 2:
                raise CampaignSpecError("random scenario needs >= 2 nodes")
            if not 0 <= self.misbehaving < self.nodes:
                raise CampaignSpecError(
                    f"random misbehaving count must be in [0, nodes), got "
                    f"{self.misbehaving}/{self.nodes}"
                )
            if self.interferers:
                raise CampaignSpecError(
                    "random scenarios have no interferer variant"
                )
        elif self.misbehaving:
            raise CampaignSpecError(
                "circle scenarios take the cheater from the 'cheater' axis, "
                "not a /M suffix"
            )

    def label(self) -> str:
        """Canonical axis-value text (``circle:8+interferers`` ...)."""
        if self.kind == "circle":
            suffix = "+interferers" if self.interferers else ""
            return f"circle:{self.nodes}{suffix}"
        return f"random:{self.nodes}/{self.misbehaving}"


def _parse_scenario(token: str) -> ScenarioAxis:
    kind, sep, rest = token.partition(":")
    kind = kind.strip().lower()
    rest = rest.strip()
    if not sep or not rest:
        raise CampaignSpecError(
            f"malformed scenario {token!r} (expected circle:N or random:N/M)"
        )
    try:
        if kind == "circle":
            interferers = rest.endswith("+interferers")
            if interferers:
                rest = rest[: -len("+interferers")].strip()
            return ScenarioAxis(
                kind="circle", nodes=int(rest), interferers=interferers
            )
        if kind == "random":
            nodes_s, sep2, misb_s = rest.partition("/")
            if not sep2:
                raise CampaignSpecError(
                    f"malformed random scenario {token!r} (expected random:N/M)"
                )
            return ScenarioAxis(
                kind="random", nodes=int(nodes_s), misbehaving=int(misb_s)
            )
    except ValueError as exc:
        if isinstance(exc, CampaignSpecError):
            raise
        raise CampaignSpecError(
            f"malformed scenario {token!r}: {exc}"
        ) from None
    raise CampaignSpecError(
        f"unknown scenario kind {kind!r} in {token!r} (circle or random)"
    )


@dataclass(frozen=True)
class CampaignSpec:
    """The full, canonical description of one campaign grid.

    Tuples are deduplicated in first-seen order (axes) or sorted
    (seeds) by the parser, so equal grids compare equal regardless of
    how the spec text spelled them.
    """

    scenarios: Tuple[ScenarioAxis, ...]
    protocols: Tuple[str, ...] = (PROTOCOL_CORRECT,)
    pm_values: Tuple[float, ...] = (0.0,)
    cheater: int = 3
    detectors: Tuple[Optional[str], ...] = (None,)
    fault_specs: Tuple[Optional[str], ...] = (None,)
    seeds: Tuple[int, ...] = (1,)
    duration_us: int = 1_000_000

    def __post_init__(self):
        if not self.scenarios:
            raise CampaignSpecError("spec needs at least one scenario")
        if not self.seeds:
            raise CampaignSpecError("spec needs at least one seed")
        if self.duration_us < 1:
            raise CampaignSpecError("seconds must be positive")
        if self.cheater < 1:
            raise CampaignSpecError("cheater must be a sender id >= 1")
        for protocol in self.protocols:
            if protocol not in PROTOCOLS:
                raise CampaignSpecError(
                    f"unknown protocol {protocol!r} (expected one of "
                    f"{PROTOCOLS})"
                )
        for pm in self.pm_values:
            if not 0.0 <= pm <= 100.0:
                raise CampaignSpecError(
                    f"pm must be in [0, 100], got {pm!r}"
                )


@dataclass(frozen=True)
class CampaignCell:
    """One grid point: a runnable config plus its stable identity.

    ``group`` is the cell key minus the seed — the unit the campaign
    aggregates means/CIs over; ``key`` adds the seed and names exactly
    one run.  The remaining fields are the cell's grid coordinates,
    recorded so the analysis layer can key datasets by typed axis
    values instead of re-parsing group strings (they default to
    "unknown" for hand-built cells fed to ``run_cells`` directly).
    """

    key: str
    group: str
    seed: int
    config: ScenarioConfig
    axis: Optional[ScenarioAxis] = None
    protocol: str = PROTOCOL_CORRECT
    pm: float = 0.0
    detector: Optional[str] = None
    fault_spec: Optional[str] = None


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------
def _split_values(value: str, key: str) -> List[str]:
    parts = [part.strip() for part in value.split("|")]
    if any(not part for part in parts):
        raise CampaignSpecError(f"empty value in axis {key!r}")
    deduped: List[str] = []
    for part in parts:
        if part not in deduped:
            deduped.append(part)
    return deduped


def _parse_seeds(value: str) -> Tuple[int, ...]:
    seeds: List[int] = []
    for part in _split_values(value, "seeds"):
        lo_s, sep, hi_s = part.partition("-")
        try:
            if sep and hi_s.strip():
                lo, hi = int(lo_s), int(hi_s)
                if hi < lo:
                    raise CampaignSpecError(
                        f"descending seed range {part!r}"
                    )
                seeds.extend(range(lo, hi + 1))
            else:
                seeds.append(int(part))
        except ValueError as exc:
            if isinstance(exc, CampaignSpecError):
                raise
            raise CampaignSpecError(
                f"malformed seed token {part!r}"
            ) from None
    return tuple(sorted(set(seeds)))


def _parse_float(value: str, key: str) -> float:
    try:
        parsed = float(value)
    except ValueError:
        raise CampaignSpecError(
            f"axis {key!r} needs a number, got {value!r}"
        ) from None
    if parsed != parsed or parsed in (float("inf"), float("-inf")):
        raise CampaignSpecError(f"axis {key!r} must be finite, got {value!r}")
    return parsed


def parse_campaign(text: str) -> CampaignSpec:
    """Parse spec text (see the module docstring for the grammar).

    Newlines count as axis separators and ``#`` starts a line comment,
    so specs read identically from a CLI argument or a small file.
    """
    tokens: List[str] = []
    for line in text.splitlines() or [text]:
        line = line.split("#", 1)[0]
        tokens.extend(line.split(";"))
    axes = {}
    for raw in tokens:
        token = raw.strip()
        if not token:
            continue
        key, sep, value = token.partition("=")
        key = key.strip().lower()
        if not sep or not value.strip():
            raise CampaignSpecError(
                f"malformed axis {token!r} (expected key=value)"
            )
        if key not in _AXIS_KEYS:
            raise CampaignSpecError(
                f"unknown axis {key!r}; expected one of {', '.join(_AXIS_KEYS)}"
            )
        if key in axes:
            raise CampaignSpecError(f"axis {key!r} given twice")
        axes[key] = value.strip()

    if "scenario" not in axes:
        raise CampaignSpecError("spec needs a scenario axis")
    scenarios = tuple(
        _parse_scenario(part)
        for part in _split_values(axes["scenario"], "scenario")
    )
    kwargs = {"scenarios": _dedupe(scenarios)}
    if "protocol" in axes:
        kwargs["protocols"] = tuple(_split_values(axes["protocol"], "protocol"))
    if "pm" in axes:
        kwargs["pm_values"] = _dedupe(tuple(
            _parse_float(part, "pm")
            for part in _split_values(axes["pm"], "pm")
        ))
    if "cheater" in axes:
        try:
            kwargs["cheater"] = int(axes["cheater"])
        except ValueError:
            raise CampaignSpecError(
                f"cheater must be a sender id, got {axes['cheater']!r}"
            ) from None
    if "detector" in axes:
        kwargs["detectors"] = tuple(
            _validated_detector(part)
            for part in _split_values(axes["detector"], "detector")
        )
    if "faults" in axes:
        kwargs["fault_specs"] = tuple(
            _validated_faults(part)
            for part in _split_values(axes["faults"], "faults")
        )
    if "seeds" in axes:
        kwargs["seeds"] = _parse_seeds(axes["seeds"])
    if "seconds" in axes:
        seconds = _parse_float(axes["seconds"], "seconds")
        if seconds <= 0:
            raise CampaignSpecError(
                f"seconds must be positive, got {seconds!r}"
            )
        kwargs["duration_us"] = int(round(seconds * 1_000_000))
    return CampaignSpec(**kwargs)


def _dedupe(values):
    deduped = []
    for value in values:
        if value not in deduped:
            deduped.append(value)
    return tuple(deduped)


def _validated_detector(token: str) -> Optional[str]:
    if token == "-":
        return None
    from repro.detect import DetectorSpecError, parse_spec

    try:
        parse_spec(token)
    except DetectorSpecError as exc:
        raise CampaignSpecError(f"bad detector spec {token!r}: {exc}") from None
    return token


def _validated_faults(token: str) -> Optional[str]:
    if token == "-":
        return None
    from repro.faults import parse_profile

    try:
        parse_profile(token)
    except ValueError as exc:
        raise CampaignSpecError(f"bad fault spec {token!r}: {exc}") from None
    return token


# ----------------------------------------------------------------------
# Formatting
# ----------------------------------------------------------------------
def _format_seeds(seeds: Sequence[int]) -> str:
    """Compress sorted seeds into ``a-b`` runs (``1-5|9|12-13``)."""
    parts: List[str] = []
    run_start = prev = seeds[0]
    for seed in list(seeds[1:]) + [None]:  # type: ignore[list-item]
        if seed is not None and seed == prev + 1:
            prev = seed
            continue
        if run_start == prev:
            parts.append(str(run_start))
        elif prev == run_start + 1:
            parts.extend([str(run_start), str(prev)])
        else:
            parts.append(f"{run_start}-{prev}")
        if seed is not None:
            run_start = prev = seed
    return "|".join(parts)


def format_campaign(spec: CampaignSpec) -> str:
    """Canonical one-line text of ``spec``; inverse of :func:`parse_campaign`.

    Floats are rendered with ``repr`` (shortest exact form), so the
    round trip is lossless: ``parse_campaign(format_campaign(s)) == s``.
    """
    axes = [
        ("scenario", "|".join(s.label() for s in spec.scenarios)),
        ("protocol", "|".join(spec.protocols)),
        ("pm", "|".join(repr(pm) for pm in spec.pm_values)),
        ("cheater", str(spec.cheater)),
        ("detector", "|".join(d if d is not None else "-"
                              for d in spec.detectors)),
        ("faults", "|".join(f if f is not None else "-"
                            for f in spec.fault_specs)),
        ("seeds", _format_seeds(spec.seeds)),
        ("seconds", repr(spec.duration_us / 1_000_000)),
    ]
    return "; ".join(f"{key}={value}" for key, value in axes)


# ----------------------------------------------------------------------
# Expansion and sharding
# ----------------------------------------------------------------------
def _build_topology(axis: ScenarioAxis, pm: float, cheater: int, seed: int):
    if axis.kind == "circle":
        if pm > 0 and cheater > axis.nodes:
            raise CampaignSpecError(
                f"cheater {cheater} does not exist in {axis.label()} "
                f"(senders are 1..{axis.nodes})"
            )
        return circle_topology(
            axis.nodes,
            misbehaving=(cheater,) if pm > 0 else (),
            pm_percent=pm,
            with_interferers=axis.interferers,
        )
    return random_topology(
        random.Random(seed),
        n_nodes=axis.nodes,
        n_misbehaving=axis.misbehaving if pm > 0 else 0,
        pm_percent=pm,
    )


def expand_cells(spec: CampaignSpec) -> List[CampaignCell]:
    """The spec's grid as an ordered cell list (seeds innermost).

    The 802.11 baseline has no receiver-side monitor, so grid points
    pairing it with a non-``-`` detector are skipped, exactly like the
    single-run CLI refuses that combination.
    """
    cells: List[CampaignCell] = []
    for axis in spec.scenarios:
        for protocol in spec.protocols:
            for pm in spec.pm_values:
                for detector in spec.detectors:
                    if protocol == PROTOCOL_80211 and detector is not None:
                        continue
                    for fault_spec in spec.fault_specs:
                        faults = None
                        if fault_spec is not None:
                            from repro.faults import parse_profile

                            faults = parse_profile(fault_spec)
                        group = (
                            f"{axis.label()}/{protocol}/pm={pm:g}"
                            f"/det={detector or '-'}"
                            f"/faults={fault_spec or '-'}"
                        )
                        for seed in spec.seeds:
                            topology = _build_topology(
                                axis, pm, spec.cheater, seed
                            )
                            cells.append(CampaignCell(
                                key=f"{group}/seed={seed}",
                                group=group,
                                seed=seed,
                                config=ScenarioConfig(
                                    topology=topology,
                                    protocol=protocol,
                                    duration_us=spec.duration_us,
                                    seed=seed,
                                    faults=faults,
                                    detector=detector,
                                ),
                                axis=axis,
                                protocol=protocol,
                                pm=pm,
                                detector=detector,
                                fault_spec=fault_spec,
                            ))
    return cells


def shard_cells(
    cells: Sequence[CampaignCell], index: int, count: int
) -> List[CampaignCell]:
    """Round-robin shard ``index`` of ``count`` (deterministic split).

    Round-robin (rather than contiguous slabs) keeps every shard a
    representative cross-section of the grid, so partial fleets still
    yield usable aggregates for every cell group.
    """
    if count < 1:
        raise CampaignSpecError(f"shard count must be >= 1, got {count}")
    if not 0 <= index < count:
        raise CampaignSpecError(
            f"shard index must be in [0, {count}), got {index}"
        )
    return list(cells[index::count])


__all__ = [
    "CampaignCell",
    "CampaignSpec",
    "CampaignSpecError",
    "ScenarioAxis",
    "expand_cells",
    "format_campaign",
    "parse_campaign",
    "shard_cells",
]
