"""Crash-safe campaign execution: chunked runs, journal, resume.

The orchestrator turns a :class:`~repro.experiments.campaign.spec.CampaignSpec`
into settled journal records.  Its durability contract:

* **Nothing is held only in memory.**  Every settled run (completed,
  failed or quarantined) is appended to the journal — checksummed,
  flushed per record, fsync'd per chunk — before the orchestrator
  considers it done; aggregates stream into ``summary.json`` after
  every chunk.  A SIGKILL at any instant therefore loses at most the
  in-flight chunk's unwritten records, which the resume path simply
  re-runs.
* **Exactly-once settlement.**  Runs are keyed by the executor's
  ``config_fingerprint``.  On ``--resume`` the journal is replayed,
  already-settled fingerprints are skipped *before* the executor (and
  therefore before the ``RunCache``) ever sees them, and a fingerprint
  is journaled at most once — interrupted-then-resumed campaigns
  append no duplicate records.
* **Bit-identical aggregates.**  Cells execute, journal and aggregate
  in one deterministic total order (spec expansion order, filtered by
  settledness).  A truncated journal is always an order-preserving
  prefix of that order, so replay + continuation feeds the streaming
  aggregator the exact float sequence an uninterrupted campaign feeds
  it; ``summary.json`` comes out byte-identical (the chaos tests
  assert this, SIGKILLing both workers and the orchestrator itself).
* **Graceful drain.**  SIGINT/SIGTERM finish the in-flight chunk,
  flush the journal and summary, and exit with
  :data:`EXIT_INTERRUPTED`; a second signal aborts immediately.

Exit codes: 0 — every cell settled ok; 3 — campaign complete but some
cells failed/quarantined; 4 — interrupted and resumable.
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, TextIO, Tuple

from repro.experiments.cache import (
    UncacheableConfigError,
    code_version,
    config_fingerprint,
)
from repro.experiments.campaign.journal import (
    JOURNAL_SCHEMA,
    CampaignAggregator,
    JournalWriter,
    METRIC_FIELDS,
    read_journal,
    repair_journal,
)
from repro.experiments.campaign.spec import (
    CampaignCell,
    CampaignSpec,
    expand_cells,
    format_campaign,
    shard_cells,
)
from repro.experiments.executor import ExperimentExecutor, FailedRun
from repro.experiments.scenarios import RunResult

#: Campaign exit statuses (distinct from the figure CLI's 0/2/3).
EXIT_OK = 0
EXIT_FAILED_CELLS = 3
EXIT_INTERRUPTED = 4

#: Default cells per executor batch: large enough to feed a pool,
#: small enough that a drain or kill wastes little work.
DEFAULT_CHUNK_SIZE = 32

JOURNAL_NAME = "journal.jsonl"
SUMMARY_NAME = "summary.json"


class CampaignError(RuntimeError):
    """A campaign could not start or resume."""


@dataclass
class CampaignReport:
    """What one orchestrator invocation did (not persisted)."""

    exit_code: int
    cells: int
    settled: int
    ok: int
    failed: int
    quarantined: int
    resumed: int          # cells skipped because the journal had them
    executed: int         # simulations actually run this invocation
    interrupted: bool
    truncated_tail: bool  # journal had a torn record from a prior kill
    out_dir: pathlib.Path

    @property
    def summary_path(self) -> pathlib.Path:
        return self.out_dir / SUMMARY_NAME

    @property
    def journal_path(self) -> pathlib.Path:
        return self.out_dir / JOURNAL_NAME


class _SignalDrain:
    """SIGINT/SIGTERM -> drain flag; a second signal aborts hard.

    Installing handlers only works in the main thread; elsewhere (test
    harnesses driving the orchestrator from a worker thread) the drain
    silently degrades to "no signal handling", which is correct — the
    main thread owns the process's signal disposition.
    """

    def __init__(self, stream: Optional[TextIO]):
        self.stop = False
        self._stream = stream
        self._previous: Dict[int, object] = {}

    def _handle(self, signum, frame) -> None:
        if self.stop:
            raise KeyboardInterrupt
        self.stop = True
        if self._stream is not None:
            name = signal.Signals(signum).name
            print(
                f"[campaign] {name}: draining in-flight work, flushing "
                "journal (repeat to abort immediately)",
                file=self._stream,
            )

    def __enter__(self) -> "_SignalDrain":
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                self._previous[signum] = signal.signal(signum, self._handle)
            except ValueError:  # not the main thread
                pass
        return self

    def __exit__(self, *exc_info) -> None:
        for signum, previous in self._previous.items():
            signal.signal(signum, previous)


def _fingerprint_cells(
    cells: Sequence[CampaignCell],
) -> Tuple[List[Tuple[str, CampaignCell]], int]:
    """(fingerprint, cell) pairs, first occurrence per fingerprint.

    Raises :class:`CampaignError` for configs without a stable
    fingerprint — the journal cannot key such runs, so they cannot be
    part of a crash-safe campaign.
    """
    seen: Dict[str, str] = {}
    ordered: List[Tuple[str, CampaignCell]] = []
    duplicates = 0
    for cell in cells:
        try:
            fingerprint = config_fingerprint(cell.config)
        except UncacheableConfigError as exc:
            raise CampaignError(
                f"cell {cell.key} is not journalable: {exc}"
            ) from None
        if fingerprint in seen:
            duplicates += 1
            continue
        seen[fingerprint] = cell.key
        ordered.append((fingerprint, cell))
    return ordered, duplicates


def _run_record(fingerprint: str, cell: CampaignCell, outcome) -> dict:
    if isinstance(outcome, RunResult):
        return {
            "kind": "run",
            "fp": fingerprint,
            "cell": cell.key,
            "group": cell.group,
            "seed": cell.seed,
            "status": "ok",
            "metrics": {
                name: getattr(outcome, name) for name in METRIC_FIELDS
            },
        }
    assert isinstance(outcome, FailedRun)
    crashy = (
        "worker crashed" in outcome.error
        or "respawn budget" in outcome.error
    )
    return {
        "kind": "run",
        "fp": fingerprint,
        "cell": cell.key,
        "group": cell.group,
        "seed": cell.seed,
        "status": "quarantined" if crashy else "failed",
        "error": outcome.error,
        "attempts": outcome.attempts,
    }


def write_summary(
    path: pathlib.Path,
    spec_text: str,
    shard: Tuple[int, int],
    total_cells: int,
    duplicates: int,
    aggregator: CampaignAggregator,
) -> None:
    """Atomically replace ``summary.json`` with the current aggregates.

    Deliberately contains no timestamps, wall times or hostnames: the
    summary is a pure function of the settled record sequence, which
    is what makes the interrupted-vs-uninterrupted bit-identity
    checkable (and checked) byte for byte.  The merge path
    (:func:`repro.experiments.campaign.analysis.merge_journals`) writes
    its summary through this same function, which is what makes a
    merged N-shard campaign's summary byte-identical to an unsharded
    run's.
    """
    summary = {
        "schema": 1,
        "spec": spec_text,
        "shard": f"{shard[0]}/{shard[1]}",
        "cells": total_cells,
        "duplicate_cells": duplicates,
        "settled": aggregator.settled,
        "complete": aggregator.settled == total_cells,
        "ok": aggregator.ok,
        "failed": aggregator.failed,
        "quarantined": aggregator.quarantined,
        "groups": aggregator.groups(),
    }
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    tmp.write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    os.replace(tmp, path)


def _replay_journal(
    journal_path: pathlib.Path,
    spec_text: str,
    shard: Tuple[int, int],
    aggregator: CampaignAggregator,
    progress: Optional[TextIO],
) -> Tuple[Dict[str, dict], bool, bool]:
    """Load settled records; returns (settled-by-fp, has_header, truncated)."""
    settled: Dict[str, dict] = {}
    has_header = False
    result = read_journal(journal_path)
    if result.truncated and progress is not None:
        print(
            f"[campaign] journal has a torn tail record "
            f"({result.dropped_tail!r}); dropping it — that cell will "
            "re-run",
            file=progress,
        )
    # A torn tail (or a record missing only its newline) must be cut
    # away before this process appends, or the new record would fuse
    # onto the torn bytes and corrupt the journal for good.
    repair_journal(journal_path, result)
    for position, record in enumerate(result.records, start=1):
        kind = record.get("kind")
        if kind == "campaign":
            if record.get("spec") != spec_text:
                raise CampaignError(
                    "journal belongs to a different campaign:\n"
                    f"  journal spec: {record.get('spec')}\n"
                    f"  given spec:   {spec_text}"
                )
            recorded_shard = record.get("shard")
            if recorded_shard != f"{shard[0]}/{shard[1]}":
                raise CampaignError(
                    f"journal was written for shard {recorded_shard}, "
                    f"not {shard[0]}/{shard[1]}"
                )
            if (record.get("code_version") != code_version()
                    and progress is not None):
                print(
                    "[campaign] warning: code version changed since this "
                    "journal was started; resumed cells may mix simulator "
                    "versions",
                    file=progress,
                )
            has_header = True
            continue
        if kind != "run":
            continue
        fingerprint = record.get("fp")
        if fingerprint in settled:
            # Should be impossible (settlement is checked before every
            # append); tolerate a hand-edited journal by keeping the
            # first record, like the aggregator saw it first.
            continue
        settled[fingerprint] = record
        aggregator.add(record, offset=position)
    return settled, has_header, result.truncated


def run_cells(
    cells: Sequence[CampaignCell],
    spec_text: str,
    out_dir: os.PathLike | str,
    *,
    resume: bool = False,
    shard: Tuple[int, int] = (0, 1),
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    workers: Optional[int] = None,
    executor: Optional[ExperimentExecutor] = None,
    progress: Optional[TextIO] = None,
) -> CampaignReport:
    """Run (or resume) an explicit cell list; the engine under
    :func:`run_campaign`.

    ``spec_text`` labels the campaign in the journal header; resume
    refuses a journal whose label differs.  ``executor`` must use
    ``on_failure="flag"`` so failed cells settle as journal records
    instead of aborting the campaign; omitted, one is created (and
    closed) internally with ``workers`` processes.
    """
    if chunk_size < 1:
        raise CampaignError(f"chunk size must be >= 1, got {chunk_size}")
    if executor is not None and executor.on_failure != "flag":
        raise CampaignError(
            'campaign executors need on_failure="flag" (failed cells '
            "must settle as journal records, not exceptions)"
        )
    out_path = pathlib.Path(out_dir)
    journal_path = out_path / JOURNAL_NAME
    if journal_path.exists() and not resume:
        raise CampaignError(
            f"{journal_path} already exists; pass resume=True "
            "(--resume) to continue it or choose a fresh directory"
        )

    fingerprinted, duplicates = _fingerprint_cells(cells)
    total_cells = len(fingerprinted)
    aggregator = CampaignAggregator()
    settled: Dict[str, dict] = {}
    has_header = False
    truncated = False
    if resume and journal_path.exists():
        settled, has_header, truncated = _replay_journal(
            journal_path, spec_text, shard, aggregator, progress
        )
    resumed = sum(1 for fp, _ in fingerprinted if fp in settled)

    out_path.mkdir(parents=True, exist_ok=True)
    own_executor = executor is None
    if own_executor:
        executor = ExperimentExecutor(workers=workers, on_failure="flag")
    executed_before = executor.runs_executed
    interrupted = False
    try:
        with JournalWriter(journal_path) as writer, \
                _SignalDrain(progress) as drain:
            if not has_header:
                writer.append({
                    "kind": "campaign",
                    "schema": JOURNAL_SCHEMA,
                    "spec": spec_text,
                    "shard": f"{shard[0]}/{shard[1]}",
                    "cells": total_cells,
                    "code_version": code_version(),
                })
            pending = [
                (fp, cell) for fp, cell in fingerprinted
                if fp not in settled
            ]
            for start in range(0, len(pending), chunk_size):
                if drain.stop:
                    interrupted = True
                    break
                chunk = pending[start:start + chunk_size]
                outcomes = executor.run([cell.config for _, cell in chunk])
                for (fingerprint, cell), outcome in zip(chunk, outcomes):
                    record = _run_record(fingerprint, cell, outcome)
                    writer.append(record, sync=False)
                    settled[fingerprint] = record
                    aggregator.add(record)
                writer.sync()  # one fsync per chunk, not per run
                write_summary(
                    out_path / SUMMARY_NAME, spec_text, shard,
                    total_cells, duplicates, aggregator,
                )
                if progress is not None:
                    print(
                        f"[campaign] {aggregator.settled}/{total_cells} "
                        f"settled (ok={aggregator.ok} "
                        f"failed={aggregator.failed} "
                        f"quarantined={aggregator.quarantined})",
                        file=progress,
                    )
            else:
                interrupted = drain.stop and aggregator.settled < total_cells
        write_summary(
            out_path / SUMMARY_NAME, spec_text, shard,
            total_cells, duplicates, aggregator,
        )
    finally:
        if own_executor:
            executor.close()

    if interrupted:
        exit_code = EXIT_INTERRUPTED
    elif aggregator.failed or aggregator.quarantined:
        exit_code = EXIT_FAILED_CELLS
    else:
        exit_code = EXIT_OK
    return CampaignReport(
        exit_code=exit_code,
        cells=total_cells,
        settled=aggregator.settled,
        ok=aggregator.ok,
        failed=aggregator.failed,
        quarantined=aggregator.quarantined,
        resumed=resumed,
        executed=executor.runs_executed - executed_before,
        interrupted=interrupted,
        truncated_tail=truncated,
        out_dir=out_path,
    )


def run_campaign(
    spec: CampaignSpec,
    out_dir: os.PathLike | str,
    *,
    resume: bool = False,
    shard: Tuple[int, int] = (0, 1),
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    workers: Optional[int] = None,
    executor: Optional[ExperimentExecutor] = None,
    progress: Optional[TextIO] = None,
) -> CampaignReport:
    """Expand ``spec``, take this invocation's shard, and settle it.

    See the module docstring for the durability contract and exit
    codes; :func:`run_cells` for parameter semantics.
    """
    cells = shard_cells(expand_cells(spec), *shard)
    return run_cells(
        cells, format_campaign(spec), out_dir,
        resume=resume, shard=shard, chunk_size=chunk_size,
        workers=workers, executor=executor, progress=progress,
    )


__all__ = [
    "CampaignError",
    "CampaignReport",
    "DEFAULT_CHUNK_SIZE",
    "EXIT_FAILED_CELLS",
    "EXIT_INTERRUPTED",
    "EXIT_OK",
    "JOURNAL_NAME",
    "SUMMARY_NAME",
    "run_campaign",
    "run_cells",
    "write_summary",
]
