"""Crash-safe campaign orchestration (sweep grids at fleet scale).

Three layers, one durability contract:

* :mod:`repro.experiments.campaign.spec` — the declarative sweep
  grammar (scenario x protocol x PM x detector x faults x seeds),
  canonical formatting, deterministic cell expansion and sharding;
* :mod:`repro.experiments.campaign.journal` — the append-only,
  fsync'd, checksummed run journal plus the streaming aggregator;
* :mod:`repro.experiments.campaign.orchestrator` — chunked execution
  on :class:`~repro.experiments.executor.ExperimentExecutor`,
  exactly-once resume (``--resume``), graceful SIGINT/SIGTERM drain;
* :mod:`repro.experiments.campaign.analysis` — shard-journal merging
  (summary byte-identical to an unsharded run), the journal -> dataset
  loader, cross-seed diagnostics, and journal-driven figure builders.

``python -m repro campaign`` (plus ``campaign merge`` and ``campaign
report``) is the CLI face; ``docs/CAMPAIGNS.md`` documents the
grammar, journal format, resume semantics and exit codes.
"""

from repro.experiments.campaign.analysis import (
    AnalysisError,
    CampaignDataset,
    JOURNAL_FIGURES,
    MergeResult,
    ReportError,
    export_csv,
    figure_from_dataset,
    group_diagnostics,
    load_dataset,
    merge_journals,
    render_diagnostics,
    seeds_for_relative_ci,
)
from repro.experiments.campaign.journal import (
    CampaignAggregator,
    JournalCorruptError,
    JournalError,
    JournalRecordError,
    JournalWriter,
    METRIC_FIELDS,
    decode_record,
    encode_record,
    read_journal,
    repair_journal,
)
from repro.experiments.campaign.orchestrator import (
    CampaignError,
    CampaignReport,
    EXIT_FAILED_CELLS,
    EXIT_INTERRUPTED,
    EXIT_OK,
    JOURNAL_NAME,
    SUMMARY_NAME,
    run_campaign,
    run_cells,
    write_summary,
)
from repro.experiments.campaign.spec import (
    CampaignCell,
    CampaignSpec,
    CampaignSpecError,
    ScenarioAxis,
    expand_cells,
    format_campaign,
    parse_campaign,
    shard_cells,
)

__all__ = [
    "AnalysisError",
    "CampaignAggregator",
    "CampaignCell",
    "CampaignDataset",
    "CampaignError",
    "CampaignReport",
    "CampaignSpec",
    "CampaignSpecError",
    "EXIT_FAILED_CELLS",
    "EXIT_INTERRUPTED",
    "EXIT_OK",
    "JOURNAL_FIGURES",
    "JOURNAL_NAME",
    "JournalCorruptError",
    "JournalError",
    "JournalRecordError",
    "JournalWriter",
    "METRIC_FIELDS",
    "MergeResult",
    "ReportError",
    "ScenarioAxis",
    "SUMMARY_NAME",
    "decode_record",
    "encode_record",
    "expand_cells",
    "figure_from_dataset",
    "format_campaign",
    "group_diagnostics",
    "export_csv",
    "load_dataset",
    "merge_journals",
    "parse_campaign",
    "read_journal",
    "render_diagnostics",
    "repair_journal",
    "run_campaign",
    "run_cells",
    "seeds_for_relative_ci",
    "shard_cells",
    "write_summary",
]
