"""Crash-safe campaign orchestration (sweep grids at fleet scale).

Three layers, one durability contract:

* :mod:`repro.experiments.campaign.spec` — the declarative sweep
  grammar (scenario x protocol x PM x detector x faults x seeds),
  canonical formatting, deterministic cell expansion and sharding;
* :mod:`repro.experiments.campaign.journal` — the append-only,
  fsync'd, checksummed run journal plus the streaming aggregator;
* :mod:`repro.experiments.campaign.orchestrator` — chunked execution
  on :class:`~repro.experiments.executor.ExperimentExecutor`,
  exactly-once resume (``--resume``), graceful SIGINT/SIGTERM drain.

``python -m repro campaign`` is the CLI face; ``docs/CAMPAIGNS.md``
documents the grammar, journal format, resume semantics and exit
codes.
"""

from repro.experiments.campaign.journal import (
    CampaignAggregator,
    JournalCorruptError,
    JournalError,
    JournalRecordError,
    JournalWriter,
    METRIC_FIELDS,
    decode_record,
    encode_record,
    read_journal,
    repair_journal,
)
from repro.experiments.campaign.orchestrator import (
    CampaignError,
    CampaignReport,
    EXIT_FAILED_CELLS,
    EXIT_INTERRUPTED,
    EXIT_OK,
    JOURNAL_NAME,
    SUMMARY_NAME,
    run_campaign,
    run_cells,
)
from repro.experiments.campaign.spec import (
    CampaignCell,
    CampaignSpec,
    CampaignSpecError,
    ScenarioAxis,
    expand_cells,
    format_campaign,
    parse_campaign,
    shard_cells,
)

__all__ = [
    "CampaignAggregator",
    "CampaignCell",
    "CampaignError",
    "CampaignReport",
    "CampaignSpec",
    "CampaignSpecError",
    "EXIT_FAILED_CELLS",
    "EXIT_INTERRUPTED",
    "EXIT_OK",
    "JOURNAL_NAME",
    "JournalCorruptError",
    "JournalError",
    "JournalRecordError",
    "JournalWriter",
    "METRIC_FIELDS",
    "ScenarioAxis",
    "SUMMARY_NAME",
    "decode_record",
    "encode_record",
    "expand_cells",
    "format_campaign",
    "parse_campaign",
    "read_journal",
    "repair_journal",
    "run_campaign",
    "run_cells",
    "shard_cells",
]
