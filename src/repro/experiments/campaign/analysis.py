"""Campaign analysis: merge shard journals, datasets, journal-driven figures.

This is the analysis half of the campaign subsystem (the orchestrator
is the execution half).  Everything here is read-only with respect to
shard journals — a merge never mutates its inputs.

* :func:`merge_journals` combines many shard journals of one campaign
  into a single merged directory: the shards' settled ``run`` records,
  re-ordered into the spec's global expansion order and deduplicated
  by config fingerprint, with per-shard provenance in the merged
  journal header.  Because the merged journal replays records in the
  exact total order an unsharded campaign would have settled them, and
  the summary is written by the orchestrator's own
  :func:`~repro.experiments.campaign.orchestrator.write_summary`, a
  complete N-shard merge produces a ``summary.json`` byte-identical to
  the unsharded run's (property-tested, including under mid-shard
  SIGKILL + resume).  An *incomplete* merge is still a valid campaign
  directory: ``python -m repro campaign SPEC --resume <merged>`` runs
  the missing cells.
* :func:`load_dataset` turns a campaign journal (shard or merged) into
  a :class:`CampaignDataset` — a plain dict-of-columns table keyed by
  the grammar's typed axes (scenario/protocol/pm/detector/faults/seed)
  plus one column per journal metric.  No pandas, no numpy required
  (:meth:`CampaignDataset.to_numpy` converts a column when numpy is
  importable).
* :func:`figure_from_dataset` + :data:`JOURNAL_FIGURES` bridge merged
  datasets into the existing figure registry: the fig4-fig9/'detectors'
  reducers rebuilt over journal rows, producing
  :class:`~repro.experiments.figures.FigureResult` objects that — for
  grids matching the in-memory sweeps — carry bit-identical values
  (same per-run metrics, same :func:`~repro.metrics.stats.summarize`
  call over the same seed order, same scale factors).  This is the
  path that retires the in-memory ``FigureResult`` sweeps for large
  campaigns: run sharded, merge, report.
* :func:`group_diagnostics` computes cross-seed dispersion per group —
  Student-t CI, variance, min/max, coefficient of variation, and the
  estimated number of seeds needed to pin the 95% CI inside a target
  relative half-width.

Malformed run records (checksum-valid but missing ``group``/``status``
— e.g. a journal written by an older schema) are counted and reported
as skips, never silently dropped and never fatal to a merge.
"""

from __future__ import annotations

import math
import os
import pathlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, TextIO, Tuple

from repro.experiments.campaign.journal import (
    JOURNAL_SCHEMA,
    CampaignAggregator,
    JournalCorruptError,
    JournalRecordError,
    JournalWriter,
    METRIC_FIELDS,
    read_journal,
)
from repro.experiments.campaign.orchestrator import (
    JOURNAL_NAME,
    SUMMARY_NAME,
    _fingerprint_cells,
    write_summary,
)
from repro.experiments.campaign.spec import (
    CampaignCell,
    CampaignSpec,
    CampaignSpecError,
    expand_cells,
    parse_campaign,
)
from repro.experiments.cache import code_version
from repro.experiments.figures import FigureResult
from repro.experiments.scenarios import PROTOCOL_80211, PROTOCOL_CORRECT
from repro.metrics.stats import Z95, summarize, t_critical


class AnalysisError(RuntimeError):
    """A merge or dataset load could not proceed."""


class ReportError(AnalysisError):
    """A journal-driven figure's grid requirements are not met."""


@dataclass(frozen=True)
class SkippedRecord:
    """One journal record the analysis layer had to ignore."""

    source: str   # journal path the record came from
    offset: int   # 1-based record position within that journal
    reason: str


@dataclass(frozen=True)
class ShardInfo:
    """Provenance of one merged shard journal."""

    path: str
    shard: str        # the "I/N" assignment its header recorded
    records: int      # settled run records it contributed (post-dedup)
    truncated: bool   # had a torn tail record (dropped, not an error)


@dataclass
class MergeResult:
    """What :func:`merge_journals` produced."""

    out_dir: pathlib.Path
    spec_text: str
    shards: List[ShardInfo]
    cells: int                 # unique cells in the full campaign grid
    duplicate_cells: int       # grid points sharing a fingerprint
    settled: int
    ok: int
    failed: int
    quarantined: int
    duplicate_records: int     # same fingerprint settled by >1 record
    skipped: List[SkippedRecord]
    missing: List[str]         # cell keys with no settled record
    complete: bool

    @property
    def journal_path(self) -> pathlib.Path:
        return self.out_dir / JOURNAL_NAME

    @property
    def summary_path(self) -> pathlib.Path:
        return self.out_dir / SUMMARY_NAME


def _journal_path(source: os.PathLike | str) -> pathlib.Path:
    path = pathlib.Path(source)
    if path.is_dir():
        path = path / JOURNAL_NAME
    if not path.is_file():
        raise AnalysisError(f"no journal at {path}")
    return path


def _read_shard(path: pathlib.Path):
    """(header, records, truncated) of one shard journal."""
    try:
        result = read_journal(path)
    except JournalCorruptError as exc:
        raise AnalysisError(f"cannot merge {path}: {exc}") from None
    if not result.records:
        raise AnalysisError(f"{path} is empty (no campaign header)")
    header = result.records[0]
    if header.get("kind") != "campaign" or not isinstance(
        header.get("spec"), str
    ):
        raise AnalysisError(
            f"{path} does not start with a campaign header record"
        )
    return header, result.records, result.truncated


def _grid_index(
    spec_text: str,
) -> Tuple[CampaignSpec, List[Tuple[str, CampaignCell]], int, Dict[str, int]]:
    """Re-expand the campaign grid: (spec, ordered (fp, cell), dups, fp->pos)."""
    try:
        spec = parse_campaign(spec_text)
    except CampaignSpecError as exc:
        raise AnalysisError(
            f"journal header spec does not parse ({exc}); only campaigns "
            "written through the spec grammar can be merged/analysed"
        ) from None
    ordered, duplicates = _fingerprint_cells(expand_cells(spec))
    order = {fp: position for position, (fp, _) in enumerate(ordered)}
    return spec, ordered, duplicates, order


def merge_journals(
    sources: Sequence[os.PathLike | str],
    out_dir: os.PathLike | str,
    *,
    force: bool = False,
    progress: Optional[TextIO] = None,
) -> MergeResult:
    """Merge shard journals into one campaign directory.

    ``sources`` are shard directories (or journal files) of the *same*
    campaign spec; shards may be incomplete, overlapping, or produced
    by different ``--shard I/N`` partitions.  The merged directory gets
    a ``journal.jsonl`` whose records sit in the spec's global
    expansion order (header records the per-shard provenance) and a
    ``summary.json`` written by the orchestrator's summary writer —
    byte-identical to an unsharded run's when the merge is complete.

    Skippable problems — run records missing required fields, unknown
    fingerprints, fingerprints already settled by an earlier shard —
    are counted and reported in the result, not fatal.  Unreadable
    journals, missing headers and mismatched specs raise
    :class:`AnalysisError`.
    """
    if not sources:
        raise AnalysisError("nothing to merge: no shard journals given")
    shard_paths = [_journal_path(source) for source in sources]
    loaded = [_read_shard(path) for path in shard_paths]

    spec_text = loaded[0][0]["spec"]
    for path, (header, _, _) in zip(shard_paths, loaded):
        if header["spec"] != spec_text:
            raise AnalysisError(
                "shard journals belong to different campaigns:\n"
                f"  {shard_paths[0]}: {spec_text}\n"
                f"  {path}: {header['spec']}"
            )
    _, ordered, duplicate_cells, order = _grid_index(spec_text)

    probe = CampaignAggregator()  # validates records; counters unused
    settled: Dict[str, Tuple[int, dict]] = {}
    shards: List[ShardInfo] = []
    skipped: List[SkippedRecord] = []
    duplicate_records = 0
    for path, (header, records, truncated) in zip(shard_paths, loaded):
        contributed = 0
        for offset, record in enumerate(records, start=1):
            if record.get("kind") != "run":
                continue
            try:
                probe.add(record, offset=offset)
            except JournalRecordError as exc:
                skipped.append(SkippedRecord(str(path), offset, str(exc)))
                continue
            fingerprint = record.get("fp")
            if not isinstance(fingerprint, str):
                skipped.append(SkippedRecord(
                    str(path), offset, "run record has no 'fp' fingerprint"
                ))
                continue
            if fingerprint not in order:
                skipped.append(SkippedRecord(
                    str(path), offset,
                    f"fingerprint {fingerprint[:12]}... is not in this "
                    "campaign's grid",
                ))
                continue
            if fingerprint in settled:
                duplicate_records += 1
                continue
            settled[fingerprint] = (order[fingerprint], record)
            contributed += 1
        shards.append(ShardInfo(
            path=str(path), shard=str(header.get("shard", "?")),
            records=contributed, truncated=truncated,
        ))
        if truncated and progress is not None:
            print(f"[merge] {path} had a torn tail record (dropped)",
                  file=progress)

    out_path = pathlib.Path(out_dir)
    journal_path = out_path / JOURNAL_NAME
    if journal_path.exists():
        if not force:
            raise AnalysisError(
                f"{journal_path} already exists; pass force=True (--force) "
                "to overwrite it"
            )
        journal_path.unlink()
        summary_path = out_path / SUMMARY_NAME
        if summary_path.exists():
            summary_path.unlink()

    merged = sorted(settled.values(), key=lambda pair: pair[0])
    aggregator = CampaignAggregator()
    out_path.mkdir(parents=True, exist_ok=True)
    with JournalWriter(journal_path) as writer:
        writer.append({
            "kind": "campaign",
            "schema": JOURNAL_SCHEMA,
            "spec": spec_text,
            "shard": "0/1",
            "cells": len(ordered),
            "code_version": code_version(),
            "merged_from": [
                {"journal": info.path, "shard": info.shard,
                 "records": info.records}
                for info in shards
            ],
        })
        for position, (_, record) in enumerate(merged, start=2):
            writer.append(record, sync=False)
            aggregator.add(record, offset=position)
        writer.sync()
    write_summary(
        out_path / SUMMARY_NAME, spec_text, (0, 1),
        len(ordered), duplicate_cells, aggregator,
    )

    missing = [cell.key for fp, cell in ordered if fp not in settled]
    if progress is not None:
        for skip in skipped:
            print(f"[merge] skipped {skip.source}:{skip.offset}: "
                  f"{skip.reason}", file=progress)
    return MergeResult(
        out_dir=out_path,
        spec_text=spec_text,
        shards=shards,
        cells=len(ordered),
        duplicate_cells=duplicate_cells,
        settled=aggregator.settled,
        ok=aggregator.ok,
        failed=aggregator.failed,
        quarantined=aggregator.quarantined,
        duplicate_records=duplicate_records,
        skipped=skipped,
        missing=missing,
        complete=not missing,
    )


# ----------------------------------------------------------------------
# Journal -> dataset
# ----------------------------------------------------------------------
#: Axis/identity columns of a dataset, in column order (one further
#: column per entry of ``METRIC_FIELDS``, plus ``error``).
AXIS_COLUMNS = (
    "cell", "group", "fp", "scenario", "kind", "nodes", "interferers",
    "protocol", "pm", "detector", "faults", "seed", "status",
)


@dataclass
class CampaignDataset:
    """A campaign journal as a plain dict-of-columns table.

    One row per settled cell, in the spec's expansion order (so a
    group's rows are its seeds, ascending — the exact order the
    in-memory figure path feeds :func:`~repro.metrics.stats.summarize`).
    Columns: :data:`AXIS_COLUMNS` plus one column per journal metric
    (``None`` on failed/quarantined rows) and ``error`` (``None`` on ok
    rows).
    """

    spec: CampaignSpec
    spec_text: str
    source: pathlib.Path
    columns: Dict[str, List] = field(default_factory=dict)
    skipped: List[SkippedRecord] = field(default_factory=list)
    duplicate_records: int = 0
    missing: List[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.columns.get("cell", ()))

    def column(self, name: str) -> List:
        if name not in self.columns:
            raise KeyError(
                f"no column {name!r}; have {sorted(self.columns)}"
            )
        return self.columns[name]

    def rows(self) -> Iterator[Dict[str, object]]:
        """Iterate rows as dicts (column name -> value)."""
        names = list(self.columns)
        for i in range(len(self)):
            yield {name: self.columns[name][i] for name in names}

    def groups(self) -> List[str]:
        """Distinct group keys, in first-appearance (expansion) order."""
        seen: List[str] = []
        for group in self.columns.get("group", ()):
            if group not in seen:
                seen.append(group)
        return seen

    def to_numpy(self, name: str):
        """One column as a numpy array (requires numpy at call time)."""
        import numpy

        return numpy.asarray(self.column(name))


def load_dataset(source: os.PathLike | str) -> CampaignDataset:
    """Load a campaign directory (or journal file) as a dataset.

    Works on a merged directory, an unsharded campaign, or a single
    shard (the dataset then covers that shard's grid slice and lists
    the other cells as ``missing``).  Records that fail validation are
    collected in ``skipped``; duplicate fingerprints keep their first
    record, like resume replay does.
    """
    path = _journal_path(source)
    header, records, _ = _read_shard(path)
    spec, ordered, _, order = _grid_index(header["spec"])

    probe = CampaignAggregator()
    settled: Dict[str, dict] = {}
    skipped: List[SkippedRecord] = []
    duplicate_records = 0
    for offset, record in enumerate(records, start=1):
        if record.get("kind") != "run":
            continue
        try:
            probe.add(record, offset=offset)
        except JournalRecordError as exc:
            skipped.append(SkippedRecord(str(path), offset, str(exc)))
            continue
        fingerprint = record.get("fp")
        if not isinstance(fingerprint, str) or fingerprint not in order:
            skipped.append(SkippedRecord(
                str(path), offset,
                "run record's fingerprint is not in this campaign's grid",
            ))
            continue
        if fingerprint in settled:
            duplicate_records += 1
            continue
        settled[fingerprint] = record

    columns: Dict[str, List] = {name: [] for name in AXIS_COLUMNS}
    for name in METRIC_FIELDS:
        columns[name] = []
    columns["error"] = []
    missing: List[str] = []
    for fingerprint, cell in ordered:
        record = settled.get(fingerprint)
        if record is None:
            missing.append(cell.key)
            continue
        axis = cell.axis
        columns["cell"].append(cell.key)
        columns["group"].append(cell.group)
        columns["fp"].append(fingerprint)
        columns["scenario"].append(axis.label() if axis else "?")
        columns["kind"].append(axis.kind if axis else "?")
        columns["nodes"].append(axis.nodes if axis else 0)
        columns["interferers"].append(bool(axis.interferers) if axis else False)
        columns["protocol"].append(cell.protocol)
        columns["pm"].append(cell.pm)
        columns["detector"].append(cell.detector)
        columns["faults"].append(cell.fault_spec)
        columns["seed"].append(cell.seed)
        columns["status"].append(record["status"])
        metrics = record.get("metrics", {})
        for name in METRIC_FIELDS:
            value = metrics.get(name)
            columns[name].append(
                float(value) if record["status"] == "ok" and value is not None
                else None
            )
        columns["error"].append(record.get("error"))
    return CampaignDataset(
        spec=spec,
        spec_text=header["spec"],
        source=path,
        columns=columns,
        skipped=skipped,
        duplicate_records=duplicate_records,
        missing=missing,
    )


# ----------------------------------------------------------------------
# CSV export
# ----------------------------------------------------------------------
def export_csv(dataset: CampaignDataset, path: os.PathLike | str) -> int:
    """Write a dataset as CSV: one row per settled cell.

    Columns are the dataset's columns in dataset order (the typed grid
    axes of :data:`AXIS_COLUMNS`, then one column per journal metric,
    then ``error``).  ``None`` — a failed cell's metrics, an ok cell's
    error — is written as an empty field, the conventional CSV null
    that pandas/R read back as NaN/NA.  Returns the row count.
    """
    import csv

    path = pathlib.Path(path)
    names = list(dataset.columns)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        for row in dataset.rows():
            writer.writerow(
                "" if row[name] is None else row[name] for name in names
            )
    return len(dataset)


# ----------------------------------------------------------------------
# Cross-seed diagnostics
# ----------------------------------------------------------------------
def seeds_for_relative_ci(
    std: float, mean: float, target_rel: float
) -> Optional[int]:
    """Smallest n with a 95% Student-t half-width <= ``target_rel * |mean|``.

    Treats the sample std as the population estimate (the usual
    sample-size back-of-envelope).  Returns ``None`` when the target is
    unreachable (zero mean with nonzero spread, or a non-positive
    target); 2 when the sample shows no spread at all.
    """
    if target_rel <= 0:
        return None
    if std == 0:
        return 2
    if mean == 0:
        return None
    half_width = target_rel * abs(mean)
    for n in range(2, 1001):
        if t_critical(n - 1) * std / math.sqrt(n) <= half_width:
            return n
    # Beyond the loop t ~ z; solve n >= (z*s/h)^2 in closed form.
    return max(1001, math.ceil((Z95 * std / half_width) ** 2))


def group_diagnostics(
    dataset: CampaignDataset,
    metrics: Optional[Sequence[str]] = None,
    target_rel: float = 0.05,
) -> Dict[str, Dict[str, Dict[str, object]]]:
    """Per-group, per-metric cross-seed dispersion diagnostics.

    For every group (in expansion order) and metric with at least one
    ok sample: ``n``, ``mean``, ``std``, ``var``, ``min``, ``max``,
    ``ci95`` (Student-t half-width), ``rel_ci95`` (as a fraction of
    ``|mean|``; None for a zero mean), ``cv`` (coefficient of
    variation; None for a zero mean) and ``seeds_needed`` — the
    estimated seed count that would bring the 95% CI inside
    ``target_rel * |mean|``.
    """
    wanted = tuple(metrics) if metrics is not None else METRIC_FIELDS
    unknown = [name for name in wanted if name not in METRIC_FIELDS]
    if unknown:
        raise AnalysisError(
            f"unknown metric(s) {', '.join(unknown)}; "
            f"known: {', '.join(METRIC_FIELDS)}"
        )
    samples: Dict[str, Dict[str, List[float]]] = {}
    for row in dataset.rows():
        per_group = samples.setdefault(str(row["group"]), {})
        if row["status"] != "ok":
            continue
        for name in wanted:
            value = row[name]
            if value is not None:
                per_group.setdefault(name, []).append(float(value))
    out: Dict[str, Dict[str, Dict[str, object]]] = {}
    for group, per_metric in samples.items():
        out[group] = {}
        for name in wanted:
            values = per_metric.get(name)
            if not values:
                continue
            stats = summarize(values)
            nonzero = stats.mean != 0
            out[group][name] = {
                "n": stats.n,
                "mean": stats.mean,
                "std": stats.std,
                "var": stats.std ** 2,
                "min": min(values),
                "max": max(values),
                "ci95": stats.ci95,
                "rel_ci95": (
                    stats.ci95 / abs(stats.mean) if nonzero else None
                ),
                "cv": stats.std / abs(stats.mean) if nonzero else None,
                "seeds_needed": seeds_for_relative_ci(
                    stats.std, stats.mean, target_rel
                ),
            }
    return out


def render_diagnostics(
    diagnostics: Dict[str, Dict[str, Dict[str, object]]],
    target_rel: float = 0.05,
) -> str:
    """Fixed-width table of :func:`group_diagnostics` output."""
    target_pct = f"{target_rel * 100:g}%"
    header = ["group", "metric", "n", "mean", "ci95", "+/-%", "cv",
              "min", "max", f"seeds->{target_pct}"]
    rows: List[List[str]] = []
    for group, per_metric in diagnostics.items():
        for name, stats in per_metric.items():
            rel = stats["rel_ci95"]
            cv = stats["cv"]
            needed = stats["seeds_needed"]
            rows.append([
                group, name, str(stats["n"]),
                f"{stats['mean']:.4g}", f"{stats['ci95']:.3g}",
                f"{rel * 100:.1f}" if rel is not None else "-",
                f"{cv:.3f}" if cv is not None else "-",
                f"{stats['min']:.4g}", f"{stats['max']:.4g}",
                str(needed) if needed is not None else "-",
            ])
    widths = [
        max(len(header[i]), max((len(r[i]) for r in rows), default=0))
        for i in range(len(header))
    ]
    lines = [
        "== cross-seed diagnostics (95% Student-t) ==",
        " | ".join(h.ljust(w) for h, w in zip(header, widths)),
        "-+-".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append(" | ".join(
            c.ljust(w) if i < 2 else c.rjust(w)
            for i, (c, w) in enumerate(zip(row, widths))
        ))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Journal-driven figures
# ----------------------------------------------------------------------
_PROTOCOL_LABELS = ((PROTOCOL_80211, "802.11"), (PROTOCOL_CORRECT, "CORRECT"))


def _stat_point(
    fig: FigureResult,
    name: str,
    x: float,
    rows: Sequence[Dict[str, object]],
    metric: str,
    scale: float = 1.0,
) -> None:
    """The dataset twin of ``figures._add_stat_point``.

    Same semantics over journal rows: failed/quarantined rows play the
    role of ``FailedRun`` placeholders (point degraded when some seeds
    survive, omitted when none do), and the statistic is the same
    :func:`summarize` call over the same seed-ordered values — which is
    what makes journal-driven figures bit-identical to in-memory ones.
    """
    values = [
        row[metric] for row in rows
        if row["status"] == "ok" and row[metric] is not None
    ]
    if len(values) < len(rows):
        fig.mark_failed(name, x)
    if not values:
        return
    stats = summarize([float(v) for v in values])
    fig.add_point(name, x, stats.mean * scale, error=stats.ci95 * scale)


def _dataset_meta(dataset: CampaignDataset) -> Dict[str, object]:
    return {
        "source": "campaign",
        "duration_s": dataset.spec.duration_us / 1_000_000,
        "seeds": len(dataset.spec.seeds),
    }


def _select(dataset: CampaignDataset, **conditions) -> List[Dict[str, object]]:
    """Rows matching every (column == value) condition, in table order."""
    return [
        row for row in dataset.rows()
        if all(row[key] == value for key, value in conditions.items())
    ]


def _require(rows: Sequence[dict], figure_id: str, needs: str) -> None:
    if not rows:
        raise ReportError(
            f"dataset has no rows for {figure_id}: needs {needs}"
        )


def _xs(rows: Sequence[dict], key: str) -> List[float]:
    return sorted({row[key] for row in rows})


def _group_rows(
    rows: Sequence[dict], **conditions
) -> List[Dict[str, object]]:
    return [
        row for row in rows
        if all(row[key] == value for key, value in conditions.items())
    ]


def _fig4_from_dataset(dataset: CampaignDataset) -> FigureResult:
    fig = FigureResult(
        figure_id="fig4",
        title="Diagnosis accuracy for varying magnitude of misbehavior",
        x_label="Percentage of Misbehavior (PM)",
        y_label="percentage of packets",
        meta=_dataset_meta(dataset),
    )
    rows = _select(
        dataset, kind="circle", nodes=8, protocol=PROTOCOL_CORRECT,
        detector=None, faults=None,
    )
    _require(rows, "fig4", "circle:8 cells under the correct protocol "
                           "(detector '-', faults '-')")
    for scenario, interferers in (("ZERO-FLOW", False), ("TWO-FLOW", True)):
        variant = _group_rows(rows, interferers=interferers)
        for pm in _xs(variant, "pm"):
            cell = _group_rows(variant, pm=pm)
            _stat_point(fig, f"{scenario} correct diagnosis", pm, cell,
                        "correct_diagnosis_percent")
            _stat_point(fig, f"{scenario} misdiagnosis", pm, cell,
                        "misdiagnosis_percent")
    return fig


def _fig5_from_dataset(dataset: CampaignDataset) -> FigureResult:
    fig = FigureResult(
        figure_id="fig5",
        title="Throughput comparison between IEEE 802.11 and proposed scheme",
        x_label="Percentage of Misbehavior (PM)",
        y_label="throughput (Kbps)",
        meta=_dataset_meta(dataset),
    )
    rows = _select(
        dataset, kind="circle", nodes=8, interferers=False,
        detector=None, faults=None,
    )
    _require(rows, "fig5", "ZERO-FLOW circle:8 cells (detector '-', "
                           "faults '-') for 802.11 and/or correct")
    for protocol, label in _PROTOCOL_LABELS:
        variant = _group_rows(rows, protocol=protocol)
        for pm in _xs(variant, "pm"):
            cell = _group_rows(variant, pm=pm)
            _stat_point(fig, f"{label} - MSB", pm, cell,
                        "msb_throughput_bps", scale=1e-3)
            _stat_point(fig, f"{label} - AVG", pm, cell,
                        "avg_throughput_bps", scale=1e-3)
    return fig


def _size_sweep_figure(
    dataset: CampaignDataset, fig: FigureResult, metric: str, scale: float
) -> FigureResult:
    rows = _select(dataset, kind="circle", pm=0.0, detector=None, faults=None)
    _require(rows, fig.figure_id,
             "pm=0 circle cells (detector '-', faults '-') across sizes")
    for scenario, interferers in (("ZERO-FLOW", False), ("TWO-FLOW", True)):
        for protocol, label in _PROTOCOL_LABELS:
            variant = _group_rows(
                rows, interferers=interferers, protocol=protocol
            )
            for n in _xs(variant, "nodes"):
                cell = _group_rows(variant, nodes=n)
                _stat_point(fig, f"{scenario} {label}", n, cell,
                            metric, scale=scale)
    return fig


def _fig6_from_dataset(dataset: CampaignDataset) -> FigureResult:
    fig = FigureResult(
        figure_id="fig6",
        title="Throughput comparison without misbehavior for varying network sizes",
        x_label="number of senders",
        y_label="average throughput (Kbps)",
        meta=_dataset_meta(dataset),
    )
    return _size_sweep_figure(dataset, fig, "avg_throughput_bps", 1e-3)


def _fig7_from_dataset(dataset: CampaignDataset) -> FigureResult:
    fig = FigureResult(
        figure_id="fig7",
        title="Comparison of fairness index between IEEE 802.11 and proposed scheme",
        x_label="number of senders",
        y_label="fairness index",
        meta=_dataset_meta(dataset),
    )
    return _size_sweep_figure(dataset, fig, "fairness_index", 1.0)


def _fig9a_from_dataset(dataset: CampaignDataset) -> FigureResult:
    fig = FigureResult(
        figure_id="fig9a",
        title="Diagnosis accuracy, random topology (40 nodes, 1500m x 700m)",
        x_label="Percentage of Misbehavior (PM)",
        y_label="percentage of packets",
        meta=_dataset_meta(dataset),
    )
    rows = _select(
        dataset, kind="random", protocol=PROTOCOL_CORRECT,
        detector=None, faults=None,
    )
    _require(rows, "fig9a", "random:N/M cells under the correct protocol "
                            "(seeds play the paper's placements role)")
    for pm in _xs(rows, "pm"):
        cell = _group_rows(rows, pm=pm)
        _stat_point(fig, "correct diagnosis", pm, cell,
                    "correct_diagnosis_percent")
        _stat_point(fig, "misdiagnosis", pm, cell, "misdiagnosis_percent")
    return fig


def _detectors_from_dataset(dataset: CampaignDataset) -> FigureResult:
    fig = FigureResult(
        figure_id="detectors",
        title="Detector comparison: operating point and detection latency",
        x_label="Percentage of Misbehavior (PM)",
        y_label="percentage of judged packets / detection latency",
        meta=_dataset_meta(dataset),
    )
    rows = _select(
        dataset, kind="circle", nodes=8, interferers=False,
        protocol=PROTOCOL_CORRECT, faults=None,
    )
    _require(rows, "detectors", "ZERO-FLOW circle:8 cells under the "
                                "correct protocol with a detector axis")
    # Journals carry the operating-point metrics only; time-to-detection
    # is a per-cheater latency the journal schema does not record.
    fig.meta["ttd"] = "not recorded in campaign journals"
    fig.meta["detectors"] = [
        spec if spec is not None else "window"
        for spec in dataset.spec.detectors
    ]
    for spec in dataset.spec.detectors:
        label = spec if spec is not None else "window"
        variant = _group_rows(rows, detector=spec)
        for pm in _xs(variant, "pm"):
            cell = _group_rows(variant, pm=pm)
            _stat_point(fig, f"{label} - detection %", pm, cell,
                        "detection_rate_percent")
            _stat_point(fig, f"{label} - false alarm %", pm, cell,
                        "false_alarm_percent")
    return fig


#: Figure builders that run off a campaign dataset instead of live
#: simulations.  fig8 (a time series) and the intro/delay figures need
#: per-run collector state the journal does not carry, so large-sweep
#: reporting covers the statistical figures: the ones campaigns exist
#: to scale.
JOURNAL_FIGURES = {
    "fig4": _fig4_from_dataset,
    "fig5": _fig5_from_dataset,
    "fig6": _fig6_from_dataset,
    "fig7": _fig7_from_dataset,
    "fig9a": _fig9a_from_dataset,
    "detectors": _detectors_from_dataset,
}


def figure_from_dataset(
    dataset: CampaignDataset, figure_id: str
) -> FigureResult:
    """Build one registered figure from a campaign dataset.

    Raises :class:`ReportError` for ids without a journal-driven
    builder or datasets whose grid cannot satisfy the figure.
    """
    if figure_id not in JOURNAL_FIGURES:
        raise ReportError(
            f"no journal-driven builder for {figure_id!r}; "
            f"available: {', '.join(sorted(JOURNAL_FIGURES))}"
        )
    return JOURNAL_FIGURES[figure_id](dataset)


__all__ = [
    "AXIS_COLUMNS",
    "AnalysisError",
    "CampaignDataset",
    "JOURNAL_FIGURES",
    "MergeResult",
    "ReportError",
    "ShardInfo",
    "SkippedRecord",
    "export_csv",
    "figure_from_dataset",
    "group_diagnostics",
    "load_dataset",
    "merge_journals",
    "render_diagnostics",
    "seeds_for_relative_ci",
]
