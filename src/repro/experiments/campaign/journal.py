"""Append-only, fsync'd, checksummed run journal for campaigns.

The journal is the campaign's only durable state: one line per settled
run (completed, failed or quarantined), appended *after* the run
finished and fsync'd before the orchestrator moves on, so a SIGKILL,
OOM or power cut at any instant loses at most the record being
written — never a recorded one, and never the file's integrity.

Line format (everything printable, greppable, diffable)::

    <crc32 of payload, 8 hex chars> <payload JSON, sorted keys>\\n

* :func:`encode_record` / :func:`decode_record` are exact inverses
  (property-tested); the checksum makes corruption — torn writes,
  filesystem bitrot, manual editing — detectable per record.
* :func:`read_journal` replays a journal file.  A bad **tail** record
  (partial line from a mid-write kill, with or without its newline) is
  tolerated: the record is dropped, ``truncated`` is reported, and the
  campaign simply re-runs that cell.  A bad record anywhere *else*
  raises :class:`JournalCorruptError` — that is real corruption, not a
  crash artifact, and silently skipping it would double-run cells.
* :class:`JournalWriter` appends with flush per record (SIGKILL-safe:
  the OS keeps flushed bytes) and ``os.fsync`` per append by default;
  the orchestrator defers the fsync to once per chunk, bounding the
  *machine*-crash window at one chunk while keeping journal overhead
  inside the bound ``benchmarks/test_bench_campaign.py`` measures.

Record kinds (the ``kind`` field):

``campaign``
    Header, written once at journal creation: canonical spec text,
    shard assignment, journal schema and code version.  Resume
    verifies the spec and shard match before trusting the records.
``run``
    One settled run: ``fp`` (the config fingerprint — the
    exactly-once key), ``cell``/``group``/``seed`` identity, ``status``
    (``ok`` / ``failed`` / ``quarantined``), ``metrics`` for ok runs,
    ``error``/``attempts`` for the rest, and wall time.
"""

from __future__ import annotations

import json
import os
import pathlib
import zlib
from dataclasses import dataclass, field
from typing import Dict, IO, List, Optional, Tuple

from repro.metrics.stats import t_critical

#: Journal schema version (bump on incompatible record changes).
JOURNAL_SCHEMA = 1

#: Metrics recorded per ok run, in aggregation order.  All are
#: deterministic functions of the run's config, so interrupted and
#: uninterrupted campaigns record bit-identical values.
METRIC_FIELDS = (
    "avg_throughput_bps",
    "msb_throughput_bps",
    "correct_diagnosis_percent",
    "misdiagnosis_percent",
    "fairness_index",
    "detection_rate_percent",
    "false_alarm_percent",
    "events_processed",
)


class JournalError(RuntimeError):
    """Base class for journal failures."""


class JournalRecordError(JournalError):
    """One journal record is bad: failed its checksum, did not parse,
    or (though checksum-valid) is missing fields this schema requires."""


class JournalCorruptError(JournalError):
    """A non-tail record is bad — the journal cannot be trusted."""


def encode_record(record: dict) -> str:
    """One journal line (without newline) for ``record``."""
    payload = json.dumps(record, sort_keys=True, separators=(",", ":"))
    checksum = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
    return f"{checksum:08x} {payload}"


def decode_record(line: str) -> dict:
    """Inverse of :func:`encode_record`; raises :class:`JournalRecordError`."""
    checksum_s, sep, payload = line.partition(" ")
    if not sep or len(checksum_s) != 8:
        raise JournalRecordError(f"malformed journal line {line[:60]!r}")
    try:
        expected = int(checksum_s, 16)
    except ValueError:
        raise JournalRecordError(
            f"bad checksum field {checksum_s!r}"
        ) from None
    actual = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
    if actual != expected:
        raise JournalRecordError(
            f"checksum mismatch ({actual:08x} != {expected:08x}) on "
            f"{payload[:60]!r}"
        )
    try:
        record = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise JournalRecordError(f"unparseable payload: {exc}") from None
    if not isinstance(record, dict):
        raise JournalRecordError(f"journal record is not an object: {payload[:60]!r}")
    return record


@dataclass
class JournalReadResult:
    """Outcome of replaying a journal file."""

    records: List[dict]
    #: True when a bad tail record was dropped (mid-write kill).
    truncated: bool = False
    #: The dropped tail text, for diagnostics.
    dropped_tail: Optional[str] = None
    #: Byte length of the good, newline-terminated prefix.  Appending
    #: may only happen after :func:`repair_journal` truncates the file
    #: back to this length — appending after a torn tail would fuse
    #: the new record onto the torn bytes and corrupt both.
    valid_bytes: int = 0
    #: True when the last kept record was missing only its newline.
    needs_newline: bool = False


def read_journal(path: os.PathLike | str) -> JournalReadResult:
    """Replay ``path``; tolerate a truncated tail, reject deeper damage."""
    raw = pathlib.Path(path).read_bytes()
    result = JournalReadResult(records=[])
    if not raw:
        return result
    lines = raw.split(b"\n")
    body = lines[:-1]
    tail = lines[-1] if lines[-1] != b"" else None
    for position, line_bytes in enumerate(body):
        try:
            line = line_bytes.decode("utf-8")
            record = decode_record(line)
        except (UnicodeDecodeError, JournalRecordError) as exc:
            if position == len(body) - 1 and tail is None:
                # A complete-looking final line can still be a torn
                # write (payload cut before the newline of the *next*
                # buffered write).  Tolerate it like an unterminated
                # tail: drop it, flag truncation.
                result.truncated = True
                result.dropped_tail = line_bytes[:120].decode(
                    "utf-8", "replace"
                )
                return result
            raise JournalCorruptError(
                f"record {position + 1} of {path} is damaged ({exc}); "
                "refusing to resume from a corrupt journal"
            ) from None
        result.records.append(record)
        result.valid_bytes += len(line_bytes) + 1
    if tail is not None:
        # Unterminated final line: the classic mid-write kill.  If it
        # happens to decode it was only missing its newline — keep it.
        try:
            result.records.append(decode_record(tail.decode("utf-8")))
            result.valid_bytes += len(tail)
            result.needs_newline = True
        except (UnicodeDecodeError, JournalRecordError):
            result.truncated = True
            result.dropped_tail = tail[:120].decode("utf-8", "replace")
    return result


def repair_journal(
    path: os.PathLike | str, result: JournalReadResult
) -> bool:
    """Make ``path`` safely appendable again after a torn write.

    Truncates the file back to ``result.valid_bytes`` (dropping a torn
    tail record) and restores the final newline when the last kept
    record was missing one.  Returns True when the file was modified.
    The dropped record's cell was never observed as settled, so the
    campaign simply re-runs it — no data is lost.
    """
    if not (result.truncated or result.needs_newline):
        return False
    with open(path, "r+b") as fh:
        fh.truncate(result.valid_bytes)
        if result.needs_newline:
            fh.seek(0, os.SEEK_END)
            fh.write(b"\n")
        fh.flush()
        os.fsync(fh.fileno())
    return True


class JournalWriter:
    """Append-only journal handle with explicit durability points.

    Opens in binary append mode; every :meth:`append` writes one
    encoded line and flushes it to the OS (a SIGKILL of this process
    cannot lose flushed bytes — only a machine crash can).  By default
    each append also fsyncs; callers appending a burst of records can
    pass ``sync=False`` and call :meth:`sync` once at the end — the
    orchestrator does this per chunk, which keeps the journal's media-
    crash window at one chunk while paying one fsync per chunk instead
    of one per run.
    """

    def __init__(self, path: os.PathLike | str):
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: Optional[IO[bytes]] = self.path.open("ab")

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def append(self, record: dict, sync: bool = True) -> None:
        if self._fh is None:
            raise JournalError("journal writer is closed")
        line = encode_record(record) + "\n"
        self._fh.write(line.encode("utf-8"))
        self._fh.flush()
        if sync:
            os.fsync(self._fh.fileno())

    def sync(self) -> None:
        """fsync everything appended so far."""
        if self._fh is None:
            raise JournalError("journal writer is closed")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.flush()
                os.fsync(self._fh.fileno())
            finally:
                self._fh.close()
                self._fh = None


# ----------------------------------------------------------------------
# Incremental aggregation
# ----------------------------------------------------------------------
@dataclass
class _MetricAccumulator:
    """Streaming mean/CI via Welford's algorithm (order-deterministic)."""

    n: int = 0
    mean: float = 0.0
    m2: float = 0.0

    def add(self, value: float) -> None:
        self.n += 1
        delta = value - self.mean
        self.mean += delta / self.n
        self.m2 += delta * (value - self.mean)

    def summary(self) -> Dict[str, float]:
        if self.n < 2:
            return {"mean": self.mean, "ci95": 0.0, "n": self.n}
        variance = self.m2 / (self.n - 1)
        ci95 = t_critical(self.n - 1) * (variance ** 0.5) / (self.n ** 0.5)
        return {"mean": self.mean, "ci95": ci95, "n": self.n}


@dataclass
class _GroupAggregate:
    ok: int = 0
    failed: int = 0
    quarantined: int = 0
    metrics: Dict[str, _MetricAccumulator] = field(default_factory=dict)


class CampaignAggregator:
    """Streaming per-group aggregates over journal ``run`` records.

    Feeding the same records in the same order always produces the
    same floats (Welford updates are order-deterministic), and the
    campaign layer guarantees journal order *is* deterministic cell
    order — so a resumed campaign's final summary is bit-identical to
    an uninterrupted one's.
    """

    def __init__(self) -> None:
        self._groups: Dict[str, _GroupAggregate] = {}
        self.ok = 0
        self.failed = 0
        self.quarantined = 0

    def add(self, record: dict, offset: Optional[int] = None) -> None:
        """Fold one journal record into the aggregates.

        ``offset`` (the record's 1-based position in its journal, when
        the caller knows it) is woven into the error message of a
        schema-invalid record.  A checksum-valid ``run`` record missing
        its ``group`` or ``status`` — typically a journal written by a
        different schema version — raises :class:`JournalRecordError`
        rather than a bare ``KeyError``, so callers can skip-and-count
        (the merge path) or abort with a message naming the record.
        """
        if record.get("kind") != "run":
            return
        where = f" at record {offset}" if offset is not None else ""
        for field_name in ("group", "status"):
            if not isinstance(record.get(field_name), str):
                raise JournalRecordError(
                    f"run record{where} has no {field_name!r} field "
                    f"(cell {record.get('cell', '?')!r}); the journal was "
                    f"likely written by an incompatible schema (this code "
                    f"writes schema {JOURNAL_SCHEMA})"
                )
        group = self._groups.setdefault(record["group"], _GroupAggregate())
        status = record["status"]
        if status == "ok":
            self.ok += 1
            group.ok += 1
            metrics = record.get("metrics", {})
            for name in METRIC_FIELDS:
                if name in metrics:
                    group.metrics.setdefault(
                        name, _MetricAccumulator()
                    ).add(float(metrics[name]))
        elif status == "quarantined":
            self.quarantined += 1
            group.quarantined += 1
        else:
            self.failed += 1
            group.failed += 1

    @property
    def settled(self) -> int:
        return self.ok + self.failed + self.quarantined

    def groups(self) -> Dict[str, dict]:
        """Per-group summary dict, keys sorted for stable serialization."""
        out: Dict[str, dict] = {}
        for group_key in sorted(self._groups):
            group = self._groups[group_key]
            out[group_key] = {
                "ok": group.ok,
                "failed": group.failed,
                "quarantined": group.quarantined,
                "metrics": {
                    name: group.metrics[name].summary()
                    for name in METRIC_FIELDS
                    if name in group.metrics
                },
            }
        return out


__all__ = [
    "CampaignAggregator",
    "JOURNAL_SCHEMA",
    "JournalCorruptError",
    "JournalError",
    "JournalReadResult",
    "JournalRecordError",
    "JournalWriter",
    "METRIC_FIELDS",
    "decode_record",
    "encode_record",
    "read_journal",
    "repair_journal",
]
