"""Scenario assembly: topology + protocol -> a runnable simulation.

:func:`run_scenario` is the single entry point every figure harness
uses: it builds the kernel, medium, MACs, traffic sources and metrics
collector for a :class:`ScenarioConfig`, runs to the horizon, and
returns a :class:`RunResult` exposing the paper's metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set

from repro.core.params import PAPER_CONFIG, ProtocolConfig
from repro.detect import detector_factory
from repro.experiments.settings import profile_enabled, watchdog_from_env
from repro.core.sender_policy import ConformingPolicy, policy_for_pm
from repro.faults import FaultInjector, FaultProfile
from repro.mac.correct import CorrectMac
from repro.mac.dcf import DcfMac
from repro.mac.timing import with_clock_drift
from repro.metrics.collector import MetricsCollector
from repro.metrics.fairness import jain_index
from repro.net.node import Node, build_node
from repro.net.topology import Topology
from repro.net.traffic import BackloggedSource, CbrSource
from repro.phy.constants import PhyTimings
from repro.phy.medium import Medium
from repro.phy.propagation import ShadowingModel
from repro.sim.engine import Simulator, Watchdog
from repro.sim.rng import RngRegistry

#: Known protocol names.
PROTOCOL_80211 = "802.11"
PROTOCOL_CORRECT = "correct"


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything needed to reproduce one simulation run.

    Attributes
    ----------
    topology:
        Node placement and flows (see :mod:`repro.net.topology`).
    protocol:
        ``"802.11"`` (baseline) or ``"correct"`` (the paper's scheme).
    duration_us:
        Simulated horizon (the paper runs 50 s).
    seed:
        Master seed; all randomness derives from it.
    payload_bytes:
        DATA payload (512 in the paper).
    protocol_config:
        CORRECT parameters (ignored by the baseline).
    policy_overrides:
        Optional per-sender policy objects replacing the PM-derived
        default (used to inject exotic misbehaviors).
    enable_attempt_audit / audit_sender_assignments / refuse_diagnosed:
        CORRECT extension switches (off by default, as in the paper's
        main evaluation).
    faults:
        Optional :class:`~repro.faults.FaultProfile`.  ``None`` or a
        no-op profile means the fault layer is entirely absent: no
        injector object, no fault RNG streams, results bit-identical
        to pre-fault builds.  Participates in cache fingerprints like
        every other field.
    detector:
        Optional detector spec string (see :mod:`repro.detect`), e.g.
        ``"cusum:h=2.0,k=0.25"``.  ``None`` keeps the paper's W/THRESH
        window detector — the exact pre-registry receiver pipeline,
        bit-identical results.  Only valid with the CORRECT protocol
        (the 802.11 baseline has no receiver-side monitor to host a
        detector).
    """

    topology: Topology
    protocol: str = PROTOCOL_CORRECT
    duration_us: int = 50_000_000
    seed: int = 1
    payload_bytes: int = 512
    protocol_config: ProtocolConfig = PAPER_CONFIG
    policy_overrides: Dict[int, ConformingPolicy] = field(default_factory=dict)
    enable_attempt_audit: bool = False
    audit_sender_assignments: bool = False
    refuse_diagnosed: bool = False
    adaptive_thresh: bool = False
    use_rts_cts: bool = True
    faults: Optional[FaultProfile] = None
    detector: Optional[str] = None

    def with_seed(self, seed: int) -> "ScenarioConfig":
        """Copy of this config under a different seed."""
        return replace(self, seed=seed)


@dataclass
class RunResult:
    """Outcome of one simulation run.

    ``event_counts`` holds the kernel's per-subsystem dispatch tallies
    when the run was profiled (``REPRO_PROFILE``); empty otherwise.
    """

    config: ScenarioConfig
    collector: MetricsCollector
    events_processed: int
    event_counts: Dict[str, int] = field(default_factory=dict)
    #: Nonzero fault-injector counters (frames dropped/corrupted, jam
    #: bursts, crashes...); empty when the run had no fault profile.
    faults_injected: Dict[str, int] = field(default_factory=dict)

    @property
    def duration_us(self) -> int:
        return self.config.duration_us

    # ------------------------------------------------------------------
    # Paper metrics
    # ------------------------------------------------------------------
    @property
    def correct_diagnosis_percent(self) -> float:
        return self.collector.correct_diagnosis_percent()

    @property
    def misdiagnosis_percent(self) -> float:
        return self.collector.misdiagnosis_percent()

    @property
    def avg_throughput_bps(self) -> float:
        """Average throughput per well-behaved measured sender ("AVG")."""
        return self.collector.average_wellbehaved_throughput(self.duration_us)

    @property
    def msb_throughput_bps(self) -> float:
        """Average throughput per misbehaving sender ("MSB")."""
        return self.collector.average_misbehaving_throughput(self.duration_us)

    @property
    def fairness_index(self) -> float:
        """Jain's index over the measured senders' throughputs."""
        return jain_index(self.collector.throughputs(self.duration_us).values())

    def throughputs(self) -> Dict[int, float]:
        """Per-sender throughput (bps) of the measured senders."""
        return self.collector.throughputs(self.duration_us)

    # ------------------------------------------------------------------
    # Detector evaluation metrics (see repro.detect)
    # ------------------------------------------------------------------
    @property
    def detection_rate_percent(self) -> float:
        """% of misbehaving senders' judged packets found diagnosed."""
        return self.collector.detection_rate_percent()

    @property
    def false_alarm_percent(self) -> float:
        """% of honest senders' judged packets (wrongly) diagnosed."""
        return self.collector.false_alarm_percent()

    def detection_latency_packets(self, src: int) -> Optional[int]:
        """Judged packets until ``src`` first stood diagnosed (or None)."""
        return self.collector.detection_latency_packets(src)

    def detection_latency_us(self, src: int) -> Optional[int]:
        """Sim time (us) when ``src`` first stood diagnosed (or None)."""
        return self.collector.detection_latency_us(src)


def _make_mac(config: ScenarioConfig, sim, medium, registry, collector,
              node_id: int, policy: ConformingPolicy,
              timings: Optional[PhyTimings] = None):
    if config.protocol == PROTOCOL_80211:
        if config.detector is not None:
            raise ValueError(
                "detector specs require the 'correct' protocol: the "
                "802.11 baseline has no receiver-side monitor"
            )
        return DcfMac(
            sim, medium, node_id, registry, collector,
            payload_bytes=config.payload_bytes, policy=policy,
            timings=timings,
            use_rts_cts=config.use_rts_cts,
        )
    if config.protocol == PROTOCOL_CORRECT:
        factory = (
            detector_factory(config.detector, config.protocol_config)
            if config.detector is not None else None
        )
        return CorrectMac(
            sim, medium, node_id, registry, collector,
            payload_bytes=config.payload_bytes, policy=policy,
            timings=timings,
            use_rts_cts=config.use_rts_cts,
            config=config.protocol_config,
            enable_attempt_audit=config.enable_attempt_audit,
            audit_sender_assignments=config.audit_sender_assignments,
            refuse_diagnosed=config.refuse_diagnosed,
            adaptive_thresh=config.adaptive_thresh,
            detector_factory=factory,
        )
    raise ValueError(f"unknown protocol {config.protocol!r}")


def build_scenario(config: ScenarioConfig, profile: Optional[bool] = None,
                   watchdog: Optional[Watchdog] = None, trace=None,
                   vector_pool=None):
    """Construct (but do not run) a scenario; returns (sim, nodes, collector).

    Exposed separately from :func:`run_scenario` for tests that want
    to poke at intermediate state.  ``profile`` turns on the kernel's
    per-subsystem event counters (default: the ``REPRO_PROFILE`` env
    flag); counting never perturbs RNG streams or results.
    ``watchdog`` arms the kernel's guarded loop (default: whatever
    ``REPRO_MAX_EVENTS``/``REPRO_MAX_WALL`` ask for); the guards only
    raise, they never perturb results either.

    ``trace`` optionally attaches a :class:`~repro.sim.trace.TraceLog`
    to the medium before any node is built, so MAC decisions are
    captured from t=0.  It is deliberately *not* a config field:
    tracing never changes behaviour (no RNG draws, no scheduling), so
    it must not participate in run-cache fingerprints.

    When ``config.faults`` is set (and not a no-op) a
    :class:`~repro.faults.FaultInjector` is built, wired into the
    medium and MACs, and left on ``sim.fault_injector`` for callers
    that want its counters.

    ``vector_pool`` optionally supplies a
    :class:`~repro.sim.vecrng.VectorStreamPool`: the ``idle/*``
    streams are then pooled (bit-identical) ``VectorRandom`` instances
    and the medium's vectorized marginal-edge path is enabled.  Used
    by the replica-batched runner in :mod:`repro.sim.batch`; results
    are bit-identical either way.
    """
    if profile is None:
        profile = profile_enabled()
    if watchdog is None:
        watchdog = watchdog_from_env()
    faults = config.faults
    if faults is not None and faults.is_noop():
        faults = None
    drifts = (
        {d.node: d.drift_ppm for d in faults.clock_drifts} if faults else {}
    )
    topo = config.topology
    sim = Simulator(profile=profile, watchdog=watchdog)
    sim.fault_injector = None
    registry = RngRegistry(config.seed, vector_pool=vector_pool)
    medium = Medium(
        sim, ShadowingModel(), rng=registry.stream("shadowing"),
        timings=PhyTimings(),
    )
    if vector_pool is not None:
        medium.marginal_batch_pool = vector_pool
    if trace is not None:
        medium.trace = trace
    measured: Set[int] = {f.src for f in topo.flows if f.measured}
    collector = MetricsCollector(
        misbehaving=set(topo.misbehaving_senders), measured_senders=measured
    )
    flows_by_src = {f.src: f for f in topo.flows}
    nodes: List[Node] = []
    for node_id in topo.node_ids:
        flow = flows_by_src.get(node_id)
        if flow is not None:
            policy = config.policy_overrides.get(
                node_id, policy_for_pm(flow.pm_percent)
            )
            if flow.rate_bps is None:
                source = BackloggedSource(flow.dst, config.payload_bytes)
            else:
                source = CbrSource(
                    sim, flow.dst, flow.rate_bps, config.payload_bytes
                )
            # Pre-register the flow so zero-delivery senders still
            # appear (with zero throughput) in fairness computations.
            collector._flow(node_id)
        else:
            policy = ConformingPolicy()
            source = None
        node_timings = (
            with_clock_drift(medium.timings, drifts[node_id])
            if node_id in drifts else None
        )
        mac = _make_mac(config, sim, medium, registry, collector, node_id,
                        policy, timings=node_timings)
        nodes.append(build_node(medium, mac, topo.positions[node_id], source))
    if faults is not None:
        injector = FaultInjector(sim, registry, faults)
        injector.install(medium, {node.mac.node_id: node.mac for node in nodes})
        sim.fault_injector = injector
    return sim, nodes, collector


def run_scenario(config: ScenarioConfig) -> RunResult:
    """Build and run one scenario to its horizon."""
    sim, nodes, collector = build_scenario(config)
    for node in nodes:
        node.start()
    sim.run(until=config.duration_us)
    injector = sim.fault_injector
    return RunResult(
        config=config, collector=collector,
        events_processed=sim.events_processed,
        event_counts=dict(sim.event_counts),
        faults_injected=injector.summary() if injector is not None else {},
    )
