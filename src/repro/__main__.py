"""Command-line interface: ``python -m repro``.

Subcommands
-----------
``figures [ids...]``
    Regenerate paper figures at the environment-selected scale
    (``REPRO_QUICK`` / default / ``REPRO_FULL``) and print ASCII
    tables.  All requested figures are flattened into one task grid
    and executed on a single persistent worker pool (``REPRO_WORKERS``
    processes); with ``REPRO_CACHE`` set, unchanged points replay from
    the run cache instead of re-simulating.

``cache``
    Inspect (default) or ``--clear`` the content-addressed run cache::

        python -m repro cache
        python -m repro cache --clear

``run``
    Run a single scenario and print its metrics.  Useful for poking at
    parameter choices without writing a script::

        python -m repro run --pm 60 --protocol correct --seconds 5
        python -m repro run --pm 80 --protocol 802.11 --interferers
        python -m repro run --pm 60 --faults "ack-loss=0.3@4,jam=20:2000"
        python -m repro run --pm 90 --detector "cusum:h=2.0,k=0.25"

    ``--detector`` swaps the receiver-side diagnosis algorithm (see
    :mod:`repro.detect` for the registry and spec syntax); the run
    then also reports the detector's operating point (detection /
    false-alarm rates over judged packets) and the time to detection
    of the cheater.

    ``--faults`` takes a comma-separated fault profile (see
    :func:`repro.faults.parse_profile`): frame-loss/corruption rates
    per frame kind, jamming bursts, node crash/restart schedules and
    slot-clock drift, all drawn from dedicated seeded RNG streams so
    faulted runs are exactly reproducible.

Failure semantics: ``figures`` runs every sweep point under the
supervised executor; points whose runs ultimately fail (after retries)
are flagged in the tables rather than aborting the sweep, and the
command exits with status 3 so scripts notice the degradation.

``campaign``
    Crash-safe sweep campaigns (see :mod:`repro.experiments.campaign`
    and ``docs/CAMPAIGNS.md``): a declarative grid spec is expanded,
    optionally sharded, executed on the supervised pool, and every
    settled run is appended to an fsync'd, checksummed journal so the
    campaign can be SIGKILLed at any instant and resumed without
    recomputing or double-counting::

        python -m repro campaign "scenario=circle:8; pm=0|50|100; seeds=1-30; seconds=5" --dir sweep.out
        python -m repro campaign "$(cat sweep.spec)" --resume sweep.out
        python -m repro campaign @sweep.spec --dir shard0 --shard 0/4

    Exit codes: 0 — all cells ok; 2 — bad spec/usage; 3 — complete
    but some cells failed or were quarantined; 4 — interrupted by
    SIGINT/SIGTERM after draining in-flight work (resumable).

``campaign merge``
    Combine shard journals of one campaign into a single directory
    whose ``summary.json`` is byte-identical to an unsharded run's
    (see :mod:`repro.experiments.campaign.analysis`)::

        python -m repro campaign merge shard0 shard1 shard2 --out merged.out

    Malformed records are skipped and counted, never fatal; an
    incomplete merge stays resumable with ``campaign --resume``.
    Exit codes: 0 — complete, all ok; 2 — unmergeable input; 3 —
    merged but incomplete, degraded, or with skipped records.

``campaign report``
    Journal-driven figures and cross-seed diagnostics from a merged
    (or unsharded) campaign directory — no re-simulation::

        python -m repro campaign report --dir merged.out
        python -m repro campaign report --dir merged.out fig6 fig7 --plot
        python -m repro campaign report --dir merged.out fig6 --save report.out

    Exit codes mirror ``figures``: 0 — clean; 2 — bad usage or an
    explicitly requested figure the dataset cannot satisfy; 3 —
    report produced but degraded (missing cells, failed runs or
    skipped records).

``serve``
    Online detection service (see :mod:`repro.service` and
    ``docs/SERVICE.md``): host any registered detector family as a
    long-running process with JSONL observation ingest (stdin/TCP),
    sharded LRU-bounded per-sender state, and an HTTP query API
    (``/verdicts``, ``/senders/<id>``, ``/stats``, long-poll
    ``/watch``)::

        python -m repro serve --emit-trace --pm 60 --seconds 2 > trace.jsonl
        python -m repro serve --stdin --port 8765 < trace.jsonl
        python -m repro serve --tcp 9000 --port 8765 --detector cusum:h=2.0
        python -m repro serve --bench

    ``--emit-trace`` records a simulation's judged-observation stream
    as wire JSONL (the service replays it to verdicts bit-identical
    to the in-sim monitor's).  ``--bench`` runs the Zipf load
    generator against the ingest hot path and appends sustained
    observations/sec and p99 first-sight-to-flag latency to
    ``benchmarks/BENCH_service.json``.

``theory``
    Print the Bianchi saturation predictions next to simulated values
    for a sweep of network sizes (substrate validation).

``check``
    Conformance replay (see :mod:`repro.validation.replay`): run
    registered scenarios with structured tracing attached and replay
    the traces through the protocol checker's full rule set::

        python -m repro check                      # all scenarios, no faults
        python -m repro check correct-circle       # one scenario
        python -m repro check --matrix             # cross with fault profiles
        python -m repro check --faults jam,crash   # chosen fault profiles
        python -m repro check --list               # what is registered

    Prints one row per (scenario, fault profile) cell plus a per-rule
    violation table, and exits non-zero when any cell has violations
    (or a run failed outright) — CI runs the full matrix on every
    push.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.bianchi import saturation_throughput
from repro.experiments import (
    ALL_FIGURES,
    ScenarioConfig,
    active_settings,
    run_scenario,
)
from repro.experiments.report import print_figure
from repro.net import circle_topology


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.experiments.executor import ExperimentExecutor
    from repro.experiments.figures import generate_figures

    wanted = args.ids or list(ALL_FIGURES)
    unknown = [w for w in wanted if w not in ALL_FIGURES]
    if unknown:
        print(
            f"unknown figure id(s): {', '.join(unknown)}\n"
            f"available: {', '.join(sorted(ALL_FIGURES))}",
            file=sys.stderr,
        )
        return 2
    settings = active_settings()
    with ExperimentExecutor(on_failure="flag") as executor:
        figures = generate_figures(wanted, settings, executor=executor)
    for figure_id in wanted:
        print_figure(figures[figure_id])
        if args.plot:
            from repro.experiments.plots import print_plot

            print()
            print_plot(figures[figure_id])
        print()
    degraded = [fid for fid in wanted if figures[fid].has_failures]
    if degraded:
        print(
            f"warning: {len(degraded)} figure(s) degraded by failed runs: "
            f"{', '.join(degraded)} (points flagged FAILED/* above)",
            file=sys.stderr,
        )
        return 3
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.experiments.cache import RunCache, cache_dir
    from repro.experiments.settings import cache_enabled

    cache = RunCache(args.dir or cache_dir())
    if args.clear:
        removed = cache.clear()
        print(f"removed {removed} cached run(s) from {cache.directory}")
        return 0
    stats = cache.stats()
    state = "enabled (REPRO_CACHE set)" if cache_enabled() else \
        "disabled (set REPRO_CACHE=1 to use it)"
    print(f"run cache at {stats['directory']} — {state}")
    print(f"  entries:      {stats['entries']}")
    print(f"  size:         {stats['bytes'] / 1e6:.2f} MB")
    print(f"  code version: {stats['code_version']}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.detect import DetectorSpecError, parse_spec
    from repro.faults import parse_profile

    misbehaving = (args.cheater,) if args.pm > 0 else ()
    topo = circle_topology(
        args.senders, misbehaving=misbehaving, pm_percent=args.pm,
        with_interferers=args.interferers,
    )
    try:
        faults = parse_profile(args.faults) if args.faults else None
    except ValueError as exc:
        print(f"bad --faults spec: {exc}", file=sys.stderr)
        return 2
    if args.detector is not None:
        if args.protocol != "correct":
            print("--detector requires --protocol correct (the 802.11 "
                  "baseline has no receiver-side monitor)", file=sys.stderr)
            return 2
        try:
            parse_spec(args.detector)
        except DetectorSpecError as exc:
            print(f"bad --detector spec: {exc}", file=sys.stderr)
            return 2
    config = ScenarioConfig(
        topology=topo, protocol=args.protocol,
        duration_us=int(args.seconds * 1_000_000), seed=args.seed,
        faults=faults, detector=args.detector,
    )
    result = run_scenario(config)
    print(f"protocol={args.protocol} senders={args.senders} PM={args.pm:g}% "
          f"seed={args.seed} t={args.seconds:g}s")
    if args.faults:
        injected = ", ".join(
            f"{k}={v}" for k, v in sorted(result.faults_injected.items())
        ) or "none"
        print(f"  faults injected:    {injected}")
    if args.detector is not None:
        print(f"  detector:           {args.detector}")
    print(f"  AVG (honest mean):  {result.avg_throughput_bps / 1000:9.1f} Kbps")
    if misbehaving:
        print(f"  MSB (cheater):      {result.msb_throughput_bps / 1000:9.1f} Kbps")
        print(f"  correct diagnosis:  {result.correct_diagnosis_percent:8.1f} %")
    print(f"  misdiagnosis:       {result.misdiagnosis_percent:8.1f} %")
    print(f"  fairness (Jain):    {result.fairness_index:9.3f}")
    if args.protocol == "correct":
        print(f"  detection rate:     {result.detection_rate_percent:8.1f} %")
        print(f"  false alarms:       {result.false_alarm_percent:8.1f} %")
        if misbehaving:
            ttd_pkts = result.detection_latency_packets(args.cheater)
            ttd_us = result.detection_latency_us(args.cheater)
            if ttd_pkts is not None:
                print(f"  time to detection:  {ttd_pkts:8d} pkts "
                      f"({ttd_us / 1000:.1f} ms)")
            else:
                print("  time to detection:  never flagged")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.validation import FAULT_PROFILES, SCENARIOS, run_matrix
    from repro.validation.checker import RULE_NAMES

    if args.list:
        print("registered scenarios:")
        for sc in SCENARIOS.values():
            honesty = "" if sc.honest else "  [cheater]"
            print(f"  {sc.name:<22}{sc.description}{honesty}")
        print("fault profiles:")
        for name, spec in FAULT_PROFILES.items():
            print(f"  {name:<22}{spec or '(fault layer absent)'}")
        return 0

    scenario_names = args.scenarios or list(SCENARIOS)
    unknown = [s for s in scenario_names if s not in SCENARIOS]
    if unknown:
        print(f"unknown scenario(s): {', '.join(unknown)}\n"
              f"available: {', '.join(SCENARIOS)}", file=sys.stderr)
        return 2
    if args.matrix:
        profile_names = list(FAULT_PROFILES)
    elif args.faults:
        profile_names = [p.strip() for p in args.faults.split(",") if p.strip()]
        bad = [p for p in profile_names if p not in FAULT_PROFILES]
        if bad:
            print(f"unknown fault profile(s): {', '.join(bad)}\n"
                  f"available: {', '.join(FAULT_PROFILES)}", file=sys.stderr)
            return 2
    else:
        profile_names = ["none"]

    workers = args.workers
    if workers is None:
        from repro.experiments.executor import default_workers

        workers = default_workers()
    duration_us = int(args.seconds * 1_000_000)
    outcomes = run_matrix(
        scenario_names, profile_names, duration_us,
        seed=args.seed, workers=workers,
    )
    print(f"conformance replay: {len(scenario_names)} scenario(s) x "
          f"{len(profile_names)} fault profile(s), t={args.seconds:g}s "
          f"seed={args.seed}")
    header = (f"{'scenario':<22}{'faults':<10}{'result':<8}"
              f"{'tx':>7}{'resp':>7}{'events':>9}  violations")
    print(header)
    print("-" * len(header))
    failed = []
    for out in outcomes:
        if out.error is not None:
            result, summary = "ERROR", out.error
        elif out.ok:
            result, summary = "ok", "-"
        else:
            result = "FAIL"
            summary = ", ".join(
                f"{rule}={count}" for rule, count in sorted(out.by_rule.items())
            )
        if result != "ok":
            failed.append(out)
        print(f"{out.scenario:<22}{out.profile:<10}{result:<8}"
              f"{out.transmissions:>7}{out.responses_checked:>7}"
              f"{out.trace_events:>9}  {summary}")
    if failed:
        totals = {}
        for out in failed:
            for rule, count in out.by_rule.items():
                totals[rule] = totals.get(rule, 0) + count
        print("\nviolations by rule:")
        for rule in RULE_NAMES:
            if rule in totals:
                print(f"  {rule:<24}{totals[rule]:>6}")
        print("\nfirst violations:")
        for out in failed:
            for rule, time, node, detail in out.violations[:args.show]:
                print(f"  {out.scenario}/{out.profile} t={time} node={node} "
                      f"[{rule}] {detail}")
        print(f"\n{len(failed)} of {len(outcomes)} cell(s) non-conformant")
        return 1
    print(f"\nall {len(outcomes)} cell(s) conformant")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    import pathlib

    from repro.experiments.campaign import (
        CampaignError,
        CampaignSpecError,
        JournalError,
        expand_cells,
        format_campaign,
        parse_campaign,
        run_campaign,
        shard_cells,
    )

    text = args.spec
    if text.startswith("@"):
        spec_path = pathlib.Path(text[1:])
        if not spec_path.is_file():
            print(f"spec file not found: {spec_path}", file=sys.stderr)
            return 2
        text = spec_path.read_text(encoding="utf-8")
    try:
        spec = parse_campaign(text)
    except CampaignSpecError as exc:
        print(f"bad campaign spec: {exc}", file=sys.stderr)
        return 2
    try:
        shard_index_s, _, shard_count_s = args.shard.partition("/")
        shard = (int(shard_index_s), int(shard_count_s))
    except ValueError:
        print(f"bad --shard {args.shard!r} (expected I/N, e.g. 0/4)",
              file=sys.stderr)
        return 2

    resume = args.resume is not None
    out_dir = args.resume if isinstance(args.resume, str) else args.dir

    if args.dry_run:
        try:
            cells = shard_cells(expand_cells(spec), *shard)
        except CampaignSpecError as exc:
            print(f"bad campaign spec: {exc}", file=sys.stderr)
            return 2
        print(f"spec:  {format_campaign(spec)}")
        print(f"shard: {shard[0]}/{shard[1]} -> {len(cells)} cell(s)")
        for cell in cells[:10]:
            print(f"  {cell.key}")
        if len(cells) > 10:
            print(f"  ... and {len(cells) - 10} more")
        return 0

    try:
        report = run_campaign(
            spec, out_dir, resume=resume, shard=shard,
            chunk_size=args.chunk, workers=args.workers,
            progress=None if args.quiet else sys.stderr,
        )
    except (CampaignError, CampaignSpecError, JournalError) as exc:
        print(f"campaign error: {exc}", file=sys.stderr)
        return 2
    status = ("interrupted (resumable)" if report.interrupted
              else "complete")
    print(
        f"campaign {status}: {report.settled}/{report.cells} cell(s) "
        f"settled (ok={report.ok} failed={report.failed} "
        f"quarantined={report.quarantined}); "
        f"{report.resumed} resumed from journal, "
        f"{report.executed} simulated now"
    )
    print(f"  journal: {report.journal_path}")
    print(f"  summary: {report.summary_path}")
    if report.interrupted:
        print(f"  resume with: python -m repro campaign '...' "
              f"--resume {report.out_dir}")
    return report.exit_code


def _cmd_campaign_merge(args: argparse.Namespace) -> int:
    from repro.experiments.campaign import AnalysisError, merge_journals

    try:
        result = merge_journals(
            args.shards, args.out, force=args.force,
            progress=None if args.quiet else sys.stderr,
        )
    except AnalysisError as exc:
        print(f"merge error: {exc}", file=sys.stderr)
        return 2
    shard_list = ", ".join(
        f"{info.shard} ({info.records})" for info in result.shards
    )
    status = "complete" if result.complete else \
        f"incomplete ({len(result.missing)} cell(s) missing)"
    print(
        f"merged {len(result.shards)} shard(s) [{shard_list}] -> "
        f"{result.out_dir}: {status}; {result.settled}/{result.cells} "
        f"cell(s) settled (ok={result.ok} failed={result.failed} "
        f"quarantined={result.quarantined})"
    )
    if result.duplicate_records:
        print(f"  {result.duplicate_records} duplicate record(s) dropped "
              "(first occurrence kept)")
    if result.skipped:
        print(f"  {len(result.skipped)} malformed record(s) skipped "
              "(details on stderr)" if not args.quiet else
              f"  {len(result.skipped)} malformed record(s) skipped")
    print(f"  journal: {result.journal_path}")
    print(f"  summary: {result.summary_path}")
    if not result.complete:
        print(f"  finish with: python -m repro campaign '...' "
              f"--resume {result.out_dir}")
    clean = (result.complete and not result.skipped
             and result.failed == 0 and result.quarantined == 0)
    return 0 if clean else 3


def _cmd_campaign_report(args: argparse.Namespace) -> int:
    import pathlib

    from repro.experiments.campaign import (
        AnalysisError,
        JOURNAL_FIGURES,
        ReportError,
        figure_from_dataset,
        group_diagnostics,
        load_dataset,
        render_diagnostics,
    )
    from repro.experiments.report import render_table, to_json

    try:
        dataset = load_dataset(args.dir)
    except AnalysisError as exc:
        print(f"report error: {exc}", file=sys.stderr)
        return 2

    if args.csv:
        from repro.experiments.campaign import export_csv

        rows = export_csv(dataset, args.csv)
        print(f"wrote {rows} row(s) x {len(dataset.columns)} column(s) "
              f"to {args.csv}", file=sys.stderr)

    explicit = bool(args.ids)
    wanted = args.ids or sorted(JOURNAL_FIGURES)
    unknown = [fid for fid in wanted if fid not in JOURNAL_FIGURES]
    if unknown:
        print(
            f"no journal-driven builder for: {', '.join(unknown)}\n"
            f"available: {', '.join(sorted(JOURNAL_FIGURES))}",
            file=sys.stderr,
        )
        return 2

    save_dir = pathlib.Path(args.save) if args.save else None
    if save_dir is not None:
        save_dir.mkdir(parents=True, exist_ok=True)
    figures = {}
    for fid in wanted:
        try:
            figures[fid] = figure_from_dataset(dataset, fid)
        except ReportError as exc:
            if explicit:
                print(f"report error: {exc}", file=sys.stderr)
                return 2
            print(f"skipping {fid}: {exc}", file=sys.stderr)
    if not figures:
        print("no requested figure is satisfiable from this dataset",
              file=sys.stderr)
        return 2

    for fid, fig in figures.items():
        print(render_table(fig))
        if args.plot:
            from repro.experiments.plots import print_plot

            print()
            print_plot(fig)
        print()
        if save_dir is not None:
            (save_dir / f"{fid}.txt").write_text(
                render_table(fig) + "\n", encoding="utf-8"
            )
            (save_dir / f"{fid}.json").write_text(
                to_json(fig) + "\n", encoding="utf-8"
            )

    diagnostics_text = None
    if not args.no_diagnostics:
        metrics = (
            [m.strip() for m in args.metrics.split(",") if m.strip()]
            if args.metrics else None
        )
        try:
            diagnostics = group_diagnostics(
                dataset, metrics=metrics, target_rel=args.target_ci / 100.0
            )
        except AnalysisError as exc:
            print(f"report error: {exc}", file=sys.stderr)
            return 2
        diagnostics_text = render_diagnostics(
            diagnostics, target_rel=args.target_ci / 100.0
        )
        print(diagnostics_text)
        if save_dir is not None:
            (save_dir / "diagnostics.txt").write_text(
                diagnostics_text + "\n", encoding="utf-8"
            )

    problems = []
    if dataset.missing:
        problems.append(f"{len(dataset.missing)} cell(s) missing from the "
                        "journal (merge more shards or --resume)")
    if dataset.skipped:
        problems.append(f"{len(dataset.skipped)} malformed record(s) skipped")
    degraded = [fid for fid, fig in figures.items() if fig.has_failures]
    if degraded:
        problems.append(
            f"figure(s) degraded by failed runs: {', '.join(degraded)}"
        )
    if problems:
        for problem in problems:
            print(f"warning: {problem}", file=sys.stderr)
        return 3
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.detect import DetectorSpecError, parse_spec

    try:
        parse_spec(args.detector)
    except DetectorSpecError as exc:
        print(f"bad --detector spec: {exc}", file=sys.stderr)
        return 2

    if args.emit_trace:
        return _serve_emit_trace(args)
    if args.bench:
        return _serve_bench(args)
    return _serve_forever(args)


def _service_geometry(args) -> tuple[int, int, int]:
    """(shards, per-shard entries, workers) from flags, env knobs,
    defaults."""
    from repro.experiments.settings import (
        service_shard_entries,
        service_shards,
        service_workers,
    )
    from repro.service.store import DEFAULT_MAX_ENTRIES, DEFAULT_SHARDS

    shards = args.shards
    if shards is None:
        shards = service_shards() or DEFAULT_SHARDS
    entries = args.max_entries
    if entries is None:
        entries = service_shard_entries() or DEFAULT_MAX_ENTRIES
    workers = args.workers
    if workers is None:
        workers = service_workers() or 1
    return shards, entries, workers


def _serve_emit_trace(args: argparse.Namespace) -> int:
    from repro.service import encode_record, record_scenario_stream

    misbehaving = (args.cheater,) if args.pm > 0 else ()
    topo = circle_topology(
        args.senders, misbehaving=misbehaving, pm_percent=args.pm
    )
    config = ScenarioConfig(
        topology=topo, protocol="correct",
        duration_us=int(args.seconds * 1_000_000), seed=args.seed,
    )
    records, _ = record_scenario_stream(config)
    out = sys.stdout
    for record in records:
        out.write(encode_record(record.sender, record.observation))
        out.write("\n")
    print(f"emitted {len(records)} observation(s) from "
          f"{len({r.sender for r in records})} sender(s)", file=sys.stderr)
    return 0


def _serve_bench(args: argparse.Namespace) -> int:
    import dataclasses
    import json as _json
    import pathlib
    from datetime import datetime, timezone

    from repro.service import BENCH_SCALES, run_bench
    from repro.service.loadgen import append_trajectory

    scale = args.bench_scale
    if scale is None:
        import os

        scale = "quick" if os.environ.get("REPRO_QUICK") else "bench"
    base = BENCH_SCALES[scale]
    overrides = {}
    if args.shards is not None:
        overrides["shards"] = args.shards
    if args.max_entries is not None:
        overrides["max_entries"] = args.max_entries
    if args.detector != "window":
        overrides["detector"] = args.detector
    if args.workers is not None:
        overrides["workers"] = args.workers
    config = dataclasses.replace(base, **overrides)
    # Multi-worker runs land under their own per-scale baseline key:
    # a 4-worker obs/sec is not comparable to the in-process number.
    scale_key = scale if config.workers == 1 else f"{scale}-w{config.workers}"

    result = run_bench(config)
    record = result.to_record()
    record["utc"] = datetime.now(timezone.utc).isoformat(timespec="seconds")
    record["scale"] = scale_key
    if args.bench_out != "-":
        append_trajectory(pathlib.Path(args.bench_out), scale_key, record)

    if args.json:
        print(_json.dumps(record, indent=2))
        return 0
    p99 = record["p99_flag_latency_ms"]
    print(f"service bench [{scale_key}]: detector={config.detector} "
          f"shards={config.shards} x {config.max_entries} entries, "
          f"workers={config.workers} ({record['cores']} core(s))")
    print(f"  observations:      {result.observations:>12,}")
    print(f"  distinct senders:  {result.distinct_senders:>12,}")
    print(f"  sustained rate:    {result.obs_per_sec:>12,.0f} obs/sec")
    print(f"  p99 flag latency:  "
          f"{'-' if p99 is None else f'{p99:,.1f} ms':>12}")
    print(f"  flagged/cheaters:  {result.flagged:>6,}/{result.cheaters:,} "
          f"(honest false flags: 0, asserted)")
    print(f"  evictions:         {result.evictions:>12,}")
    if args.bench_out != "-":
        print(f"  trajectory:        {args.bench_out}")
    return 0


def _serve_forever(args: argparse.Namespace) -> int:
    import threading
    import time as _time

    from repro.service import (
        DetectionService,
        FlagSpool,
        IngestWorkerPool,
        ServiceHTTPServer,
        SpoolError,
        TcpIngestServer,
        ingest_stream,
        spool_path,
    )

    shards, entries, workers = _service_geometry(args)
    try:
        if workers > 1:
            service = IngestWorkerPool(
                workers=workers,
                detector=args.detector,
                shards=shards,
                max_entries=entries,
                spool_dir=args.spool_dir,
            )
        else:
            spool = None
            if args.spool_dir is not None:
                spool = FlagSpool(
                    spool_path(args.spool_dir, 0, 1), detector=args.detector
                )
            service = DetectionService(
                detector=args.detector, shards=shards,
                max_entries=entries, spool=spool,
            )
    except SpoolError as exc:
        print(f"spool error: {exc}", file=sys.stderr)
        return 2
    if args.spool_dir is not None:
        print(f"flag spool in {args.spool_dir}: "
              f"{service.replayed_flags} event(s) replayed",
              file=sys.stderr, flush=True)
    http_server = ServiceHTTPServer(service, host=args.host, port=args.port)
    http_thread = threading.Thread(
        target=http_server.serve_forever, daemon=True, name="serve-http"
    )
    http_thread.start()
    host, port = http_server.server_address[:2]
    print(f"serving detector {args.detector!r} "
          f"({workers} worker(s), {shards} shard(s) x {entries} entries) "
          f"on http://{host}:{port}", file=sys.stderr, flush=True)

    tcp_server = None
    if args.tcp is not None:
        tcp_server = TcpIngestServer(service, host=args.host, port=args.tcp)
        threading.Thread(
            target=tcp_server.serve_forever, daemon=True, name="serve-tcp"
        ).start()
        print(f"TCP ingest on {args.host}:{tcp_server.server_address[1]}",
              file=sys.stderr, flush=True)

    try:
        if args.stdin:
            ingested, rejected = ingest_stream(
                service, sys.stdin, errors=sys.stderr
            )
            print(f"stdin drained: {ingested} ingested, {rejected} "
                  f"rejected", file=sys.stderr, flush=True)
            if args.linger > 0:
                print(f"lingering {args.linger:g}s for API queries",
                      file=sys.stderr, flush=True)
                _time.sleep(args.linger)
        else:
            while True:
                _time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        if tcp_server is not None:
            tcp_server.shutdown()
        http_server.shutdown()
        service.close()
    return 0


def _cmd_theory(args: argparse.Namespace) -> int:
    from repro.experiments import PROTOCOL_80211

    print(f"{'n':>3} | {'Bianchi (Kbps)':>14} | {'simulated (Kbps)':>16} | err")
    for n in args.sizes:
        predicted = saturation_throughput(n).throughput_bps
        topo = circle_topology(n)
        result = run_scenario(ScenarioConfig(
            topology=topo, protocol=PROTOCOL_80211,
            duration_us=int(args.seconds * 1_000_000), seed=1,
        ))
        simulated = sum(result.throughputs().values())
        err = 100.0 * (simulated - predicted) / predicted
        print(f"{n:3d} | {predicted / 1000:14.1f} | {simulated / 1000:16.1f} "
              f"| {err:+5.1f}%")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="MAC-layer misbehavior reproduction (DSN 2003)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig = sub.add_parser("figures", help="regenerate paper figures")
    p_fig.add_argument("ids", nargs="*", help="figure ids (default: all)")
    p_fig.add_argument("--plot", action="store_true",
                       help="also draw ASCII charts")
    p_fig.set_defaults(func=_cmd_figures)

    p_run = sub.add_parser("run", help="run one scenario")
    p_run.add_argument("--protocol", choices=("802.11", "correct"),
                       default="correct")
    p_run.add_argument("--senders", type=int, default=8)
    p_run.add_argument("--pm", type=float, default=0.0,
                       help="percentage of misbehavior of the cheater")
    p_run.add_argument("--cheater", type=int, default=3)
    p_run.add_argument("--interferers", action="store_true",
                       help="enable the TWO-FLOW interferer flows")
    p_run.add_argument("--seconds", type=float, default=5.0)
    p_run.add_argument("--seed", type=int, default=1)
    p_run.add_argument("--faults", default=None, metavar="SPEC",
                       help="fault profile, e.g. "
                            "'ack-loss=0.3@4,jam=20:2000,crash=2@1-3'")
    p_run.add_argument("--detector", default=None, metavar="SPEC",
                       help="detector spec (correct protocol only), e.g. "
                            "'window:W=5,thresh=20', 'cusum:h=2.0,k=0.25' "
                            "or 'estimator:fraction=0.5'")
    p_run.set_defaults(func=_cmd_run)

    p_cache = sub.add_parser("cache", help="inspect or clear the run cache")
    p_cache.add_argument("--clear", action="store_true",
                         help="delete every cached run")
    p_cache.add_argument("--dir", default=None,
                         help="cache directory (default: REPRO_CACHE_DIR "
                              "or ~/.cache/repro/runs)")
    p_cache.set_defaults(func=_cmd_cache)

    p_check = sub.add_parser(
        "check", help="conformance-replay registered scenarios"
    )
    p_check.add_argument("scenarios", nargs="*",
                         help="scenario names (default: all registered)")
    p_check.add_argument("--matrix", action="store_true",
                         help="cross scenarios with every fault profile")
    p_check.add_argument("--faults", default=None, metavar="NAMES",
                         help="comma-separated fault-profile names "
                              "(default: none)")
    p_check.add_argument("--seconds", type=float, default=0.4,
                         help="simulated horizon per cell")
    p_check.add_argument("--seed", type=int, default=1)
    p_check.add_argument("--workers", type=int, default=None,
                         help="process-pool width (default: cpu count)")
    p_check.add_argument("--show", type=int, default=5,
                         help="violations printed per failing cell")
    p_check.add_argument("--list", action="store_true",
                         help="list registered scenarios and profiles")
    p_check.set_defaults(func=_cmd_check)

    p_camp = sub.add_parser(
        "campaign", help="run a crash-safe, resumable sweep campaign"
    )
    p_camp.add_argument("spec",
                        help="campaign spec text, or @FILE to read one "
                             "(see docs/CAMPAIGNS.md for the grammar)")
    p_camp.add_argument("--dir", default="campaign.out",
                        help="campaign directory for the journal and "
                             "summary (default: campaign.out)")
    p_camp.add_argument("--resume", nargs="?", const=True, default=None,
                        metavar="DIR",
                        help="resume an interrupted campaign (optionally "
                             "naming its directory; default: --dir)")
    p_camp.add_argument("--shard", default="0/1", metavar="I/N",
                        help="run shard I of N (deterministic round-robin "
                             "split; default 0/1 = everything)")
    p_camp.add_argument("--chunk", type=int, default=32,
                        help="cells per executor batch between journal "
                             "flushes (default: 32)")
    p_camp.add_argument("--workers", type=int, default=None,
                        help="process-pool width (default: cpu count)")
    p_camp.add_argument("--dry-run", action="store_true",
                        help="print the expanded cell list and exit")
    p_camp.add_argument("--quiet", action="store_true",
                        help="suppress per-chunk progress on stderr")
    p_camp.set_defaults(func=_cmd_campaign)

    # "campaign merge"/"campaign report" are routed here by main()'s
    # argv rewrite; the hyphenated names keep the plain "campaign SPEC"
    # positional grammar intact.
    p_merge = sub.add_parser(
        "campaign-merge",
        help="merge shard journals into one campaign directory",
    )
    p_merge.add_argument("shards", nargs="+", metavar="SHARD",
                         help="shard campaign directories (or journal "
                              "files) of one campaign")
    p_merge.add_argument("--out", default="merged.out",
                         help="merged campaign directory "
                              "(default: merged.out)")
    p_merge.add_argument("--force", action="store_true",
                         help="overwrite an existing merged journal")
    p_merge.add_argument("--quiet", action="store_true",
                         help="suppress per-record skip notes on stderr")
    p_merge.set_defaults(func=_cmd_campaign_merge)

    p_report = sub.add_parser(
        "campaign-report",
        help="journal-driven figures + cross-seed diagnostics",
    )
    p_report.add_argument("ids", nargs="*",
                          help="figure ids (default: every satisfiable "
                               "journal-driven figure)")
    p_report.add_argument("--dir", default="campaign.out",
                          help="campaign directory to report on "
                               "(default: campaign.out)")
    p_report.add_argument("--plot", action="store_true",
                          help="also draw ASCII charts")
    p_report.add_argument("--save", default=None, metavar="DIR",
                          help="also write FIG.txt/FIG.json and "
                               "diagnostics.txt into DIR")
    p_report.add_argument("--no-diagnostics", action="store_true",
                          help="skip the cross-seed diagnostics table")
    p_report.add_argument("--metrics", default=None,
                          help="comma-separated metric names to diagnose "
                               "(default: all journal metrics)")
    p_report.add_argument("--target-ci", type=float, default=5.0,
                          metavar="PCT",
                          help="seeds-needed target: 95%% CI half-width "
                               "as %% of the mean (default: 5)")
    p_report.add_argument("--csv", default=None, metavar="PATH",
                          help="also export the dataset as CSV: one row "
                               "per settled cell, grid axes + metrics as "
                               "columns, None as empty field")
    p_report.set_defaults(func=_cmd_campaign_report)

    p_theory = sub.add_parser("theory", help="Bianchi model vs simulator")
    p_theory.add_argument("--sizes", type=int, nargs="+",
                          default=[1, 2, 4, 8, 16])
    p_theory.add_argument("--seconds", type=float, default=2.0)
    p_theory.set_defaults(func=_cmd_theory)

    p_serve = sub.add_parser(
        "serve", help="online detection service (docs/SERVICE.md)",
    )
    p_serve.add_argument("--detector", default="window",
                         help="detector spec to serve (default: window)")
    p_serve.add_argument("--shards", type=int, default=None, metavar="N",
                         help="state-store shard count (default: "
                              "REPRO_SERVICE_SHARDS or 8)")
    p_serve.add_argument("--max-entries", type=int, default=None,
                         metavar="N",
                         help="per-shard LRU entry budget (default: "
                              "REPRO_SERVICE_ENTRIES or 10000)")
    p_serve.add_argument("--workers", type=int, default=None, metavar="N",
                         help="ingest worker processes, each owning a "
                              "disjoint crc32 sender range (default: "
                              "REPRO_SERVICE_WORKERS or 1 = in-process); "
                              "with --bench, benches the worker pool")
    p_serve.add_argument("--spool-dir", default=None, metavar="DIR",
                         help="persist first-flag events to crc32-"
                              "checksummed spools in DIR; a restarted "
                              "service replays them before accepting "
                              "traffic (crash-safe flag history)")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=0,
                         help="HTTP API port (default: 0 = ephemeral)")
    p_serve.add_argument("--tcp", type=int, default=None, metavar="PORT",
                         help="also accept wire lines over TCP on PORT "
                              "(0 = ephemeral)")
    p_serve.add_argument("--stdin", action="store_true",
                         help="ingest wire JSONL from stdin until EOF")
    p_serve.add_argument("--linger", type=float, default=0.0, metavar="S",
                         help="with --stdin: keep serving the API S "
                              "seconds after EOF")
    p_serve.add_argument("--emit-trace", action="store_true",
                         help="record a simulation's judged-observation "
                              "stream as wire JSONL on stdout (no server)")
    p_serve.add_argument("--pm", type=float, default=60.0,
                         help="emit-trace: cheater misbehavior %% "
                              "(default: 60; 0 = all honest)")
    p_serve.add_argument("--senders", type=int, default=8,
                         help="emit-trace: circle-topology sender count "
                              "(default: 8)")
    p_serve.add_argument("--cheater", type=int, default=3,
                         help="emit-trace: misbehaving node id "
                              "(default: 3)")
    p_serve.add_argument("--seconds", type=float, default=0.5,
                         help="emit-trace: simulated seconds "
                              "(default: 0.5)")
    p_serve.add_argument("--seed", type=int, default=1,
                         help="emit-trace: simulation seed (default: 1)")
    p_serve.add_argument("--bench", action="store_true",
                         help="run the Zipf sustained-throughput bench "
                              "(no server)")
    p_serve.add_argument("--bench-scale",
                         choices=["quick", "bench", "full"], default=None,
                         help="bench geometry (default: bench, or quick "
                              "under REPRO_QUICK)")
    p_serve.add_argument("--bench-out",
                         default="benchmarks/BENCH_service.json",
                         help="bench trajectory file ('-' = don't write)")
    p_serve.add_argument("--json", action="store_true",
                         help="bench: print the record as JSON")
    p_serve.set_defaults(func=_cmd_serve)

    if argv is None:
        argv = sys.argv[1:]
    if len(argv) >= 2 and argv[0] == "campaign" and argv[1] in (
        "merge", "report",
    ):
        argv = [f"campaign-{argv[1]}", *argv[2:]]
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
