"""Analytical saturation model of IEEE 802.11 DCF (Bianchi, 2000).

An independent check on the simulator substrate: Bianchi's Markov
model predicts the saturation throughput of ``n`` contending stations
from first principles.  The simulator and the model rest on different
approximations (the model assumes infinite retries and slot-level
independence; the simulator implements retries, EIFS, NAV and real
frame timings), so agreement within ~15-20% over a range of ``n``
is strong evidence that the contention core behaves like DCF.

Model summary — each station transmits in a randomly chosen slot with
probability ``tau``, colliding with probability
``p = 1 - (1 - tau)^(n-1)``; ``tau`` follows from the backoff Markov
chain::

    tau = 2(1-2p) / ((1-2p)(W+1) + p W (1 - (2p)^m))

with ``W = CWmin + 1`` and ``m`` doubling stages.  The fixed point is
solved by bisection.  Saturation throughput is::

    S = Ps Ptr E[payload] / ((1-Ptr) sigma + Ptr Ps Ts + Ptr (1-Ps) Tc)

where ``Ts``/``Tc`` are the success/collision slot durations of the
RTS/CTS access method.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mac.frames import ack_size, cts_size, data_size, rts_size
from repro.phy.constants import PhyTimings


def _tau_given_p(p: float, w: int, m: int) -> float:
    """Transmission probability for a given conditional collision rate."""
    if p >= 1.0:
        return 2.0 / (w + 1) * 0.0 + 1e-9  # degenerate, never reached
    if abs(2.0 * p - 1.0) < 1e-12:
        # Removable singularity at p = 1/2.
        denominator = (w + 1) / 2.0 + m * w * p / 2.0
        return 1.0 / denominator
    two_p = 2.0 * p
    numerator = 2.0 * (1.0 - two_p)
    denominator = (1.0 - two_p) * (w + 1) + p * w * (1.0 - two_p ** m)
    return numerator / denominator


def solve_tau(n_stations: int, cw_min: int = 31, cw_max: int = 1023) -> float:
    """Fixed point of the Bianchi system for ``n`` stations.

    Solves ``tau = f(1 - (1-tau)^(n-1))`` by bisection on ``tau``; the
    map is monotone so the root is unique.
    """
    if n_stations < 1:
        raise ValueError("need at least one station")
    if n_stations == 1:
        # No collisions: p = 0, tau = 2/(W+2).
        return 2.0 / (cw_min + 2)
    w = cw_min + 1
    m = 0
    cw = cw_min
    while cw < cw_max:
        cw = min((cw + 1) * 2 - 1, cw_max)
        m += 1
    lo, hi = 1e-9, 1.0 - 1e-9
    for _ in range(200):
        tau = 0.5 * (lo + hi)
        p = 1.0 - (1.0 - tau) ** (n_stations - 1)
        implied = _tau_given_p(p, w, m)
        # g(tau) = implied - tau is decreasing in tau.
        if implied > tau:
            lo = tau
        else:
            hi = tau
    return 0.5 * (lo + hi)


@dataclass(frozen=True)
class SaturationPrediction:
    """Throughput prediction plus the model internals."""

    n_stations: int
    tau: float
    collision_probability: float
    throughput_bps: float
    per_station_bps: float


def saturation_throughput(
    n_stations: int,
    payload_bytes: int = 512,
    timings: PhyTimings | None = None,
    modified_protocol: bool = False,
) -> SaturationPrediction:
    """Predicted aggregate saturation throughput (RTS/CTS access).

    ``modified_protocol`` accounts for the CORRECT header extensions.
    """
    t = timings if timings is not None else PhyTimings()
    tau = solve_tau(n_stations, t.cw_min, t.cw_max)
    p_tr = 1.0 - (1.0 - tau) ** n_stations
    if p_tr <= 0.0:
        return SaturationPrediction(n_stations, tau, 0.0, 0.0, 0.0)
    p_s = (
        n_stations * tau * (1.0 - tau) ** (n_stations - 1) / p_tr
    )
    sifs = t.sifs_us
    difs = t.difs_us
    rts = t.frame_airtime_us(rts_size(modified_protocol))
    cts = t.frame_airtime_us(cts_size(modified_protocol))
    ack = t.frame_airtime_us(ack_size(modified_protocol))
    data = t.frame_airtime_us(data_size(payload_bytes))
    # Success: full four-way exchange plus DIFS.
    t_success = rts + sifs + cts + sifs + data + sifs + ack + difs
    # Collision: the RTS airtime plus a CTS-timeout worth of waiting.
    t_collision = rts + sifs + cts + difs
    slot = t.slot_us
    p_collision = 1.0 - (1.0 - tau) ** (n_stations - 1)
    expected_slot = (
        (1.0 - p_tr) * slot
        + p_tr * p_s * t_success
        + p_tr * (1.0 - p_s) * t_collision
    )
    payload_bits = payload_bytes * 8
    throughput = p_tr * p_s * payload_bits / expected_slot * 1_000_000
    return SaturationPrediction(
        n_stations=n_stations,
        tau=tau,
        collision_probability=p_collision,
        throughput_bps=throughput,
        per_station_bps=throughput / n_stations,
    )
