"""Analytical models used to validate the simulator substrate."""

from repro.analysis.bianchi import (
    SaturationPrediction,
    saturation_throughput,
    solve_tau,
)

__all__ = ["SaturationPrediction", "saturation_throughput", "solve_tau"]
