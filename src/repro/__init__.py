"""repro: reproduction of "Detection and Handling of MAC Layer
Misbehavior in Wireless Networks" (Kyasanur & Vaidya, DSN 2003).

The package provides:

* :mod:`repro.core` — the paper's contribution as pure protocol logic
  (receiver-assigned backoff, equation-1 deviation checks, correction
  penalties, W/THRESH diagnosis, deterministic functions f and g, and
  misbehavior policies);
* :mod:`repro.sim` / :mod:`repro.phy` / :mod:`repro.mac` /
  :mod:`repro.net` — the substrate: an event kernel, the shadowing
  channel with per-slot probabilistic carrier sense, a full IEEE
  802.11 DCF MAC plus the modified (CORRECT) MAC, traffic and
  topologies;
* :mod:`repro.metrics` and :mod:`repro.experiments` — the evaluation
  harness that regenerates every figure in the paper.

Quickstart::

    from repro.experiments import ScenarioConfig, run_scenario
    from repro.net import circle_topology

    topo = circle_topology(8, misbehaving=(3,), pm_percent=60.0)
    result = run_scenario(ScenarioConfig(topology=topo, duration_us=5_000_000))
    print(result.correct_diagnosis_percent, result.msb_throughput_bps)
"""

from repro.core import PAPER_CONFIG, ProtocolConfig, SenderMonitor
from repro.experiments import ScenarioConfig, run_scenario
from repro.net import circle_topology, random_topology

__version__ = "1.0.0"

__all__ = [
    "PAPER_CONFIG",
    "ProtocolConfig",
    "SenderMonitor",
    "ScenarioConfig",
    "run_scenario",
    "circle_topology",
    "random_topology",
    "__version__",
]
