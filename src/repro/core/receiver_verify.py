"""Sender-side audit of receiver honesty (Section 4.4).

In ad hoc deployments the receiver itself may misbehave when assigning
backoffs — handing a favoured sender *small* values to pull data from
it faster.  The paper's remedy: require honest receivers to derive the
random component of every assignment from a well-known deterministic
function ``g``, so the sender can recompute what an honest assignment
would have been.  An assignment *below* the ``g`` value cannot be
explained by a penalty (penalties only add), so the sender flags the
receiver and voluntarily waits the honest amount instead.

Assignments *above* ``g + expected penalty`` are indistinguishable
from legitimate penalties; the paper explicitly declines to treat
large assignments as misbehavior (they are equivalent to the receiver
refusing service, a higher-layer problem).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.backoff_function import g_assignment


@dataclass(frozen=True)
class ReceiverAuditVerdict:
    """Outcome of checking one assignment against ``g``.

    ``corrected_backoff`` is what the sender should actually wait:
    the honest ``g`` value when the receiver under-assigned, otherwise
    the assignment as given.
    """

    assigned: int
    honest_minimum: int
    receiver_misbehaving: bool
    corrected_backoff: int


class ReceiverAuditor:
    """Sender-side verification of receiver-assigned backoffs.

    Parameters
    ----------
    receiver_id / sender_id:
        Flow endpoints; both ends evaluate ``g`` over the same triple.
    cw_min:
        Contention window bound, defining ``g``'s range.
    """

    def __init__(self, receiver_id: int, sender_id: int, cw_min: int = 31):
        self.receiver_id = receiver_id
        self.sender_id = sender_id
        self.cw_min = cw_min
        self._packet_counter = 0
        #: Number of under-assignments detected so far.
        self.violations = 0

    def check_assignment(
        self, assigned: int, counter: int | None = None
    ) -> ReceiverAuditVerdict:
        """Audit one assignment; advances the shared packet counter.

        Call exactly once per assignment received (CTS/ACK pairs carry
        the same value and count once).  When both ends key ``g`` by a
        packet sequence number, pass it as ``counter`` so loss of
        individual frames cannot desynchronise the audit.
        """
        if assigned < 0:
            raise ValueError("assigned backoff must be >= 0")
        if counter is None:
            counter = self._packet_counter
        honest = g_assignment(self.receiver_id, self.sender_id, counter, self.cw_min)
        self._packet_counter += 1
        misbehaving = assigned < honest
        if misbehaving:
            self.violations += 1
        return ReceiverAuditVerdict(
            assigned=assigned,
            honest_minimum=honest,
            receiver_misbehaving=misbehaving,
            corrected_backoff=honest if misbehaving else assigned,
        )

    @property
    def packets_audited(self) -> int:
        """How many assignments have been checked."""
        return self._packet_counter
