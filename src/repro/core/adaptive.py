"""Adaptive THRESH selection (the paper's deferred future work).

Section 4.3: "The parameter THRESH used in the protocol may be
adaptively selected, based on the channel conditions, to maximize the
probability of correct diagnosis of misbehavior, while minimizing the
probability of false diagnosis (we defer adaptive selection to future
work)."  We implement the natural design and evaluate it in the
ablation bench.

Idea: under the null hypothesis (honest sender), each per-packet
difference ``B_exp - B_act`` is a noisy, roughly symmetric variable
whose spread reflects current channel asymmetry (e.g. the TWO-FLOW
interferers).  The windowed sum of ``W`` such differences is then
approximately normal with mean ``W*mu`` and variance ``W*var``.
Choosing::

    THRESH = W*mu + z_(1-target_false_rate) * sqrt(W*var)

keeps the per-packet misdiagnosis probability near the target
regardless of channel conditions, while letting THRESH drop close to
zero on clean channels (catching milder misbehavior than the fixed
paper value of 20 slots).

Estimates of ``mu``/``var`` come from exponentially weighted moments
over *all* monitored senders.  A persistent cheater does inflate the
estimate slightly; the ``clamp`` bounds limit how far it can drag the
threshold.
"""

from __future__ import annotations

import math

from repro.phy.propagation import normal_quantile


class AdaptiveThreshold:
    """EWMA-based adaptive THRESH estimator.

    Parameters
    ----------
    window:
        ``W`` of the diagnosis scheme (the sum length THRESH bounds).
    target_false_rate:
        Desired probability that an honest sender's windowed sum
        exceeds the threshold (per packet).
    ewma_alpha:
        Smoothing factor for the moment estimates (0 < alpha <= 1).
    min_thresh / max_thresh:
        Clamp bounds in slots; the defaults span "very clean channel"
        to "several times the paper's fixed setting".
    """

    def __init__(
        self,
        window: int = 5,
        target_false_rate: float = 0.01,
        ewma_alpha: float = 0.05,
        min_thresh: float = 4.0,
        max_thresh: float = 80.0,
    ):
        if window < 1:
            raise ValueError("window must be >= 1")
        if not 0.0 < target_false_rate < 0.5:
            raise ValueError("target_false_rate must be in (0, 0.5)")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if min_thresh > max_thresh:
            raise ValueError("min_thresh must be <= max_thresh")
        self.window = window
        self.target_false_rate = target_false_rate
        self.ewma_alpha = ewma_alpha
        self.min_thresh = min_thresh
        self.max_thresh = max_thresh
        self._z = normal_quantile(1.0 - target_false_rate)
        self._mean = 0.0
        self._var = 1.0
        self._initialised = False
        self.samples = 0

    def update(self, difference: float) -> None:
        """Feed one per-packet ``B_exp - B_act`` observation."""
        self.samples += 1
        if not self._initialised:
            self._mean = difference
            self._var = 1.0
            self._initialised = True
            return
        a = self.ewma_alpha
        delta = difference - self._mean
        self._mean += a * delta
        # EW variance of the innovation (standard EWMA second moment).
        self._var = (1.0 - a) * (self._var + a * delta * delta)

    @property
    def mean(self) -> float:
        """Current estimate of the per-packet difference mean."""
        return self._mean

    @property
    def std(self) -> float:
        """Current estimate of the per-packet difference std deviation."""
        return math.sqrt(max(self._var, 0.0))

    def current_thresh(self) -> float:
        """THRESH to use right now, given the tracked channel noise."""
        if not self._initialised:
            # No evidence yet: fall back to the paper's fixed setting.
            return 20.0
        raw = self.window * self._mean + self._z * math.sqrt(self.window * max(self._var, 0.0))
        return min(max(raw, self.min_thresh), self.max_thresh)
