"""Diagnosis scheme: windowed misbehavior decision (Section 4.3).

The receiver keeps, per sender, the differences ``B_exp - B_act`` of
the last ``W`` received packets.  The sender is diagnosed as
misbehaving while the *sum* of the stored differences exceeds
``THRESH``.  Positive and negative differences are both kept: an
honest sender that looked deviant on one packet usually over-waits on
another, so its windowed sum hovers near zero, while a persistent
cheater accumulates positive mass.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable


class DiagnosisWindow:
    """Moving window of backoff differences for one sender.

    Parameters
    ----------
    window:
        ``W`` — number of most recent packets considered.
    thresh:
        ``THRESH`` — slot threshold on the windowed sum.
    """

    def __init__(self, window: int, thresh: float):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.thresh = float(thresh)
        self._differences: Deque[float] = deque(maxlen=window)
        self._sum = 0.0
        #: Number of packets observed (lifetime, not window-limited).
        self.observations = 0
        #: Number of observations on which the sender stood diagnosed.
        self.flagged_observations = 0

    def update(self, difference: float) -> bool:
        """Record one packet's ``B_exp - B_act`` and return the verdict.

        Returns True when, after including this packet, the windowed
        sum exceeds ``THRESH`` (the packet "is classified to be from a
        misbehaving sender", the unit of the paper's accuracy metric).
        """
        if len(self._differences) == self.window:
            # Recompute instead of subtracting the evicted sample: with
            # mixed magnitudes the incremental subtract leaves float
            # residue (adding 1e12 then removing it does not restore
            # the small-value sum), which would let a huge one-off
            # spike poison every later verdict.  W is tiny, so the
            # from-scratch sum costs nothing.
            self._differences.append(difference)
            total = 0.0
            for kept in self._differences:
                total += kept
            self._sum = total
        else:
            self._differences.append(difference)
            self._sum += difference
        self.observations += 1
        flagged = self.is_misbehaving
        if flagged:
            self.flagged_observations += 1
        return flagged

    @property
    def windowed_sum(self) -> float:
        """Current sum of differences over the window."""
        return self._sum

    @property
    def is_misbehaving(self) -> bool:
        """Whether the sender currently stands diagnosed."""
        return self._sum > self.thresh

    @property
    def contents(self) -> Iterable[float]:
        """Snapshot of the stored differences, oldest first."""
        return tuple(self._differences)

    def reset(self) -> None:
        """Forget all history (e.g. after an administrative pardon)."""
        self._differences.clear()
        self._sum = 0.0
        self.observations = 0
        self.flagged_observations = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DiagnosisWindow(sum={self._sum:.1f}, thresh={self.thresh}, "
            f"n={len(self._differences)}/{self.window})"
        )
