"""Sender backoff policies: conforming behaviour and misbehavior models.

The paper studies senders that deviate from the backoff rules to grab
bandwidth.  We model a sender's (mis)behaviour as a policy object with
four hooks, each defaulting to the conforming IEEE 802.11 behaviour:

* ``select_backoff`` — how a *802.11* sender draws its backoff from
  ``[0, CW]`` (the CORRECT protocol removes this freedom: the value is
  assigned by the receiver).
* ``effective_countdown`` — how many of the nominal backoff slots the
  sender actually counts down before transmitting.  This implements
  the paper's *Percentage of Misbehavior* knob: a node with ``PM = x``
  "transmits a packet after counting down to (100-x)% of the assigned
  backoff value".
* ``next_contention_window`` — how CW evolves after success/failure
  (a cheater may skip the doubling).
* ``reported_attempt`` — the attempt number advertised in the RTS (a
  cheater may under-report to shrink the receiver's ``B_exp``).

Policies are pure and per-sender; the MAC layer consults them at the
appropriate points.
"""

from __future__ import annotations

import random

from repro.core.backoff_function import contention_window
from repro.phy.constants import CW_MAX, CW_MIN


class ConformingPolicy:
    """Fully compliant IEEE 802.11 / CORRECT sender behaviour."""

    #: Whether metrics should count this sender as misbehaving.
    misbehaving = False

    def select_backoff(self, rng: random.Random, cw: int) -> int:
        """Uniform draw from ``[0, CW]`` (802.11 senders only)."""
        return rng.randint(0, cw)

    def effective_countdown(self, nominal_slots: int) -> int:
        """Slots actually counted down; conforming senders count all."""
        return nominal_slots

    def next_contention_window(
        self, attempt: int, cw_min: int = CW_MIN, cw_max: int = CW_MAX
    ) -> int:
        """Standard binary exponential backoff window for ``attempt``."""
        return contention_window(attempt, cw_min, cw_max)

    def reported_attempt(self, true_attempt: int) -> int:
        """Attempt number placed in the RTS header (honest)."""
        return true_attempt

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class PartialCountdownPolicy(ConformingPolicy):
    """The paper's PM model: count only ``(100 - PM)%`` of the backoff.

    ``PM = 0`` is fully conforming; ``PM = 100`` transmits without any
    countdown at all.  Applies to initial and retransmission backoffs
    alike, for both 802.11 and CORRECT senders.
    """

    misbehaving = True

    def __init__(self, pm_percent: float):
        if not 0.0 <= pm_percent <= 100.0:
            raise ValueError("pm_percent must be within [0, 100]")
        self.pm_percent = pm_percent

    def effective_countdown(self, nominal_slots: int) -> int:
        if nominal_slots < 0:
            raise ValueError("nominal_slots must be >= 0")
        fraction = (100.0 - self.pm_percent) / 100.0
        return int(round(nominal_slots * fraction))

    def __repr__(self) -> str:
        return f"PartialCountdownPolicy(pm={self.pm_percent:g}%)"


class ShrunkenWindowPolicy(ConformingPolicy):
    """Draw the 802.11 backoff from ``[0, CW/divisor]`` instead of ``[0, CW]``.

    The introduction's motivating example uses ``divisor = 4``
    (backoffs from ``[0, CW/4]``), which halves the throughput of the
    seven honest competitors.  Under CORRECT this policy has no lever,
    since the receiver chooses the value.
    """

    misbehaving = True

    def __init__(self, divisor: float = 4.0):
        if divisor < 1.0:
            raise ValueError("divisor must be >= 1")
        self.divisor = divisor

    def select_backoff(self, rng: random.Random, cw: int) -> int:
        return rng.randint(0, max(int(cw / self.divisor), 0))

    def __repr__(self) -> str:
        return f"ShrunkenWindowPolicy(divisor={self.divisor:g})"


class NoDoublingPolicy(ConformingPolicy):
    """Keep ``CW = CWmin`` after collisions (skip exponential backoff)."""

    misbehaving = True

    def next_contention_window(
        self, attempt: int, cw_min: int = CW_MIN, cw_max: int = CW_MAX
    ) -> int:
        return cw_min

    def __repr__(self) -> str:
        return "NoDoublingPolicy()"


class AttemptLyingPolicy(PartialCountdownPolicy):
    """Under-report the attempt number while shortening retry backoffs.

    After a collision a conforming sender backs off from a doubled
    window and advertises the incremented attempt.  This cheater skips
    the retry backoff growth (``PM`` applied to every stage) and always
    claims ``attempt = 1`` so the receiver's reconstructed ``B_exp``
    stays small.  It is the adversary the attempt-number audit of
    Section 4.1 (intentional RTS drops) is designed to expose.
    """

    def __init__(self, pm_percent: float = 50.0):
        super().__init__(pm_percent)

    def reported_attempt(self, true_attempt: int) -> int:
        return 1

    def __repr__(self) -> str:
        return f"AttemptLyingPolicy(pm={self.pm_percent:g}%)"


def policy_for_pm(pm_percent: float) -> ConformingPolicy:
    """Factory used by the experiment sweeps.

    ``PM = 0`` yields a conforming sender (so sweeps naturally include
    the honest baseline); anything larger yields the paper's partial
    countdown misbehavior.
    """
    if pm_percent <= 0.0:
        return ConformingPolicy()
    return PartialCountdownPolicy(pm_percent)


def expected_pm_throughput_bias(pm_percent: float, mean_backoff_slots: float) -> float:
    """Rough analytic advantage of a PM cheater (documentation helper).

    Returns the fraction of contention time the cheater skips: with a
    mean backoff of ``B`` slots, a cheater counts only ``(1-pm)B`` of
    them, so its contention delay shrinks by ``pm`` of the backoff
    component.  Used by examples to annotate results, not by the
    simulator itself.
    """
    if not 0.0 <= pm_percent <= 100.0:
        raise ValueError("pm_percent must be within [0, 100]")
    if mean_backoff_slots < 0:
        raise ValueError("mean_backoff_slots must be >= 0")
    return (pm_percent / 100.0) * mean_backoff_slots / max(mean_backoff_slots, 1e-9)


__all__ = [
    "ConformingPolicy",
    "PartialCountdownPolicy",
    "ShrunkenWindowPolicy",
    "NoDoublingPolicy",
    "AttemptLyingPolicy",
    "policy_for_pm",
    "expected_pm_throughput_bias",
]
