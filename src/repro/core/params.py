"""Protocol configuration for the CORRECT scheme.

Default values are those used throughout the paper's evaluation
(Section 5.1): ``W = 5`` packets, ``THRESH = 20`` slots (4 slots per
packet), ``alpha = 0.9``, and IEEE 802.11 DSSS contention windows.

The "additional penalty" of Section 4.2 is only characterised in the
paper as necessary ("From analysis and simulations, we identified the
need for additional penalty"); its exact form lives in an unpublished
technical report.  We expose it as ``extra_penalty_factor`` — the total
penalty is ``P = D * (1 + extra_penalty_factor)`` — and ablate the
choice in ``benchmarks/test_bench_ablation.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.phy.constants import CW_MAX, CW_MIN


@dataclass(frozen=True)
class ProtocolConfig:
    """Tunable parameters of the detection/correction/diagnosis scheme.

    Attributes
    ----------
    alpha:
        Deviation tolerance of equation (1): a transmission is a
        deviation when ``B_act < alpha * B_exp``.  Must be in (0, 1].
    window:
        ``W`` — number of most recent packets whose backoff differences
        are summed by the diagnosis scheme.
    thresh:
        ``THRESH`` — slot threshold on the windowed sum of
        ``B_exp - B_act`` above which a sender is diagnosed as
        misbehaving.
    cw_min / cw_max:
        IEEE 802.11 contention window bounds; assigned backoffs are
        drawn from ``[0, cw_min]``.
    extra_penalty_factor / extra_penalty_slots:
        The "additional penalty" of Section 4.2: the total penalty is
        ``P = D * (1 + extra_penalty_factor) + extra_penalty_slots``.
        The paper states the additional term is necessary but not its
        form; a flat additional term (default 8 slots, about a quarter
        of CWmin) yields a stable equilibrium that pins a partially
        compliant cheater near its fair share, whereas a purely
        proportional term compounds geometrically and locks out
        moderate cheaters entirely (see the ablation bench).
    penalty_cap_slots:
        Upper bound on a single assigned penalty, to keep an extreme
        (or misdiagnosed) sender from being locked out forever and the
        assignment arithmetic bounded when a PM=100 cheater ignores
        every penalty.  ``0`` disables the cap.
    use_deterministic_g:
        When True, honest receivers draw the random component of the
        assignment from the well-known deterministic function ``g`` of
        Section 4.4 so that senders can audit receiver behaviour.
    """

    alpha: float = 0.9
    window: int = 5
    thresh: int = 20
    cw_min: int = CW_MIN
    cw_max: int = CW_MAX
    extra_penalty_factor: float = 0.25
    extra_penalty_slots: int = 20
    penalty_cap_slots: int = 2000
    use_deterministic_g: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {self.alpha}")
        if self.window < 1:
            raise ValueError("window (W) must be >= 1")
        if self.thresh < 0:
            raise ValueError("thresh must be >= 0")
        if self.cw_min < 1 or self.cw_max < self.cw_min:
            raise ValueError("require 1 <= cw_min <= cw_max")
        if self.extra_penalty_factor < 0.0:
            raise ValueError("extra_penalty_factor must be >= 0")
        if self.extra_penalty_slots < 0:
            raise ValueError("extra_penalty_slots must be >= 0")
        if self.penalty_cap_slots < 0:
            raise ValueError("penalty_cap_slots must be >= 0")


#: Configuration used by the paper's evaluation.
PAPER_CONFIG = ProtocolConfig()
