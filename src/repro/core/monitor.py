"""Per-sender receiver-side monitor: the paper's scheme as a library.

:class:`SenderMonitor` contains no simulator dependencies: a driver (a
simulated MAC here, conceivably a real one) feeds it two kinds of
events and reads back assignments and verdicts:

* :meth:`on_rts` — an RTS arrived from the sender carrying an attempt
  number, together with the receiver's current cumulative idle-slot
  count.  The monitor reconstructs ``B_exp`` (including deterministic
  retransmission stages), applies equation 1, computes the penalty,
  draws the next assignment, and updates the diagnosis window.
* :meth:`on_response_sent` — the receiver finished transmitting a CTS
  or ACK to the sender.  This pins the *reference point* from which
  the next ``B_act`` is measured and records which backoff stage the
  sender will perform next (stage 1 after an ACK, stage ``attempt+1``
  after a CTS, since a lost DATA forces the sender to retry with the
  next attempt number).

The first packet from a sender is never judged: the sender was allowed
an arbitrary backoff before its first assignment (Section 4.1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.core.backoff_function import expected_backoff_sum, g_assignment
from repro.core.correction import compute_penalty, next_assignment
from repro.core.deviation import DeviationVerdict, check_deviation
from repro.core.params import ProtocolConfig
from repro.detect.base import Detector, Observation
from repro.detect.window import WindowDetector


@dataclass(frozen=True)
class RtsVerdict:
    """Everything the monitor decided upon one RTS reception.

    Attributes
    ----------
    assignment:
        Backoff (slots) to place in the CTS/ACK for the sender's next
        packet; includes any penalty.
    checked:
        False for the sender's first observed packet (no expectation
        existed, so no judgement was possible).
    deviation:
        The equation-1 verdict, or None when ``checked`` is False.
    diagnosed:
        Whether this packet is classified as coming from a misbehaving
        sender (the unit of the paper's diagnosis-accuracy metrics).
    penalty:
        Penalty folded into ``assignment``.
    """

    assignment: int
    checked: bool
    deviation: Optional[DeviationVerdict]
    diagnosed: bool
    penalty: int


class SenderMonitor:
    """Receiver-side state for one sender (Sections 4.1-4.3).

    Parameters
    ----------
    sender_id:
        Numeric identifier the deterministic function ``f`` uses.
    config:
        Protocol parameters.
    rng:
        Random stream for assignment draws (receiver-owned).
    receiver_id:
        Identifier of the monitoring receiver; only used when the
        deterministic receiver function ``g`` is enabled.
    detector:
        Online detector fed one observation per judged packet (see
        :mod:`repro.detect`).  ``None`` builds the paper's W/THRESH
        window detector from ``config`` — the exact pre-registry code
        path, bit-identical verdict for verdict.
    """

    def __init__(
        self,
        sender_id: int,
        config: ProtocolConfig,
        rng: random.Random,
        receiver_id: int = 0,
        detector: Optional[Detector] = None,
    ):
        self.sender_id = sender_id
        self.config = config
        self.rng = rng
        self.receiver_id = receiver_id
        self.detector: Detector = (
            detector if detector is not None
            else WindowDetector(config.window, config.thresh)
        )
        #: Backoff currently assigned to the sender (stage-1 value).
        self.current_assignment: Optional[int] = None
        #: Idle-slot counter snapshot at the last CTS/ACK we sent.
        self._reference_idle: Optional[int] = None
        #: First backoff stage the sender performs after the reference.
        self._next_first_stage = 1
        #: Sequence number for the deterministic ``g`` assignment.
        self._packet_counter = 0
        #: Lifetime tallies for metrics and tests.
        self.deviations_observed = 0
        self.packets_observed = 0

    # ------------------------------------------------------------------
    # Driver events
    # ------------------------------------------------------------------
    @property
    def diagnosis(self):
        """The underlying diagnosis state (compatibility accessor).

        For the default window detector this is the wrapped
        :class:`~repro.core.diagnosis.DiagnosisWindow`, preserving the
        pre-registry attribute surface (``observations``,
        ``flagged_observations``, ``windowed_sum``, ``thresh``); for
        any other detector it is the detector itself.
        """
        detector = self.detector
        if isinstance(detector, WindowDetector):
            return detector.window
        return detector

    def on_rts(
        self,
        attempt: int,
        idle_slots_now: int,
        seq: Optional[int] = None,
        now_us: int = 0,
    ) -> RtsVerdict:
        """Judge an arriving RTS and produce the next assignment.

        Parameters
        ----------
        attempt:
            Attempt number carried in the RTS (1-based).
        idle_slots_now:
            The receiver's cumulative count of idle slots observed on
            the channel, evaluated at RTS reception.
        seq:
            Packet sequence number carried in the RTS.  When the
            deterministic receiver function ``g`` is enabled, keying it
            by ``seq`` keeps sender and receiver synchronised even when
            frames are lost (both ends know the sequence number,
            neither can count the other's receptions).
        now_us:
            Simulation time of the reception, forwarded to the
            detector for latency accounting (never used in verdict
            arithmetic).
        """
        if attempt < 1:
            raise ValueError("attempt must be >= 1")
        self.packets_observed += 1
        verdict: Optional[DeviationVerdict] = None
        penalty = 0
        if self.current_assignment is not None and self._reference_idle is not None:
            b_act = max(idle_slots_now - self._reference_idle, 0)
            b_exp = self._expected_backoff(attempt)
            verdict = check_deviation(b_exp, b_act, self.config.alpha)
            if verdict.deviated:
                self.deviations_observed += 1
                penalty = compute_penalty(verdict.deviation, self.config)
            diagnosed = self.detector.observe(Observation(
                b_exp=b_exp, b_act=b_act, retries=attempt, time_us=now_us,
            ))
        else:
            # First packet: the sender legitimately chose its own
            # backoff, so there is nothing to compare against.
            diagnosed = self.detector.is_misbehaving
        base = None
        if self.config.use_deterministic_g:
            counter = seq if seq is not None else self._packet_counter
            base = g_assignment(
                self.receiver_id, self.sender_id, counter, self.config.cw_min
            )
        self._packet_counter += 1
        assignment = next_assignment(self.rng, self.config, penalty, base)
        self.current_assignment = assignment
        return RtsVerdict(
            assignment=assignment,
            checked=verdict is not None,
            deviation=verdict,
            diagnosed=diagnosed,
            penalty=penalty,
        )

    def on_response_sent(self, kind: str, attempt: int, idle_slots_now: int) -> None:
        """Record that a CTS or ACK to this sender finished transmitting.

        Parameters
        ----------
        kind:
            ``"cts"`` or ``"ack"``.
        attempt:
            The attempt number of the RTS being answered.
        idle_slots_now:
            Receiver's cumulative idle-slot count at the end of the
            response transmission.
        """
        if kind not in ("cts", "ack"):
            raise ValueError(f"kind must be 'cts' or 'ack', got {kind!r}")
        self._reference_idle = idle_slots_now
        # After an ACK the sender moves to its next packet (stage 1);
        # after a CTS, a lost DATA would make it retry with attempt+1.
        self._next_first_stage = 1 if kind == "ack" else attempt + 1

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _expected_backoff(self, attempt: int) -> int:
        """Reconstruct ``B_exp`` for an RTS with the given attempt number."""
        assert self.current_assignment is not None
        first = self._next_first_stage
        if attempt < first:
            # The sender abandoned the previous packet (retry limit) and
            # started a new one; only its fresh stages are observable.
            first = 1
        return expected_backoff_sum(
            self.current_assignment,
            self.sender_id,
            first,
            attempt,
            self.config.cw_min,
            self.config.cw_max,
        )

    @property
    def is_misbehaving(self) -> bool:
        """Current diagnosis verdict for this sender."""
        return self.detector.is_misbehaving

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SenderMonitor(sender={self.sender_id}, "
            f"assigned={self.current_assignment}, {self.detector!r})"
        )
