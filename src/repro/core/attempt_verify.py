"""Attempt-number audit via intentional RTS drops (Section 4.1).

A sender could advertise incorrect attempt numbers to distort the
receiver's reconstruction of ``B_exp``.  The paper's countermeasure:
during high-collision intervals the receiver occasionally *drops* an
RTS from a suspect sender (does not answer with a CTS) and verifies
that the retransmitted RTS carries the incremented attempt number.
Because the sender cannot distinguish an intentional drop from a
collision, "even a single failure to increment the attempt number in
the retransmission is an immediate proof of misbehavior".

:class:`AttemptAuditor` implements the receiver side.  The hosting MAC
asks :meth:`should_drop` before answering an RTS; if told to drop, it
stays silent and reports the next RTS from that sender through
:meth:`on_next_rts`, which returns the audit verdict.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional


@dataclass
class _PendingAudit:
    """An intentional drop awaiting the sender's retransmission."""

    dropped_attempt: int


@dataclass(frozen=True)
class AuditOutcome:
    """Result of one completed audit probe.

    ``proof_of_misbehavior`` is True when the retransmitted RTS failed
    to increment the attempt number — conclusive evidence per the
    paper.  ``consistent`` probes exonerate the sender for this round.
    """

    sender_id: int
    expected_attempt: int
    observed_attempt: int
    proof_of_misbehavior: bool


class AttemptAuditor:
    """Receiver-side attempt-number verification.

    Parameters
    ----------
    rng:
        Random stream deciding which RTSs to probe.
    drop_probability:
        Chance of auditing any given eligible RTS.  Kept small so the
        probe cost ("dropping RTS packets occasionally will not
        significantly affect throughput") stays negligible.
    suspicion_threshold:
        Minimum number of packets from a sender before it becomes
        eligible — mirrors the paper's "analyze the traffic to
        identify senders with smaller average attempt values" in a
        simple form: auditing only establishes itself once there is a
        history to be suspicious about.
    """

    def __init__(
        self,
        rng: random.Random,
        drop_probability: float = 0.01,
        suspicion_threshold: int = 10,
    ):
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError("drop_probability must be in [0, 1]")
        if suspicion_threshold < 0:
            raise ValueError("suspicion_threshold must be >= 0")
        self.rng = rng
        self.drop_probability = drop_probability
        self.suspicion_threshold = suspicion_threshold
        self._pending: Dict[int, _PendingAudit] = {}
        self._packets_seen: Dict[int, int] = {}
        #: Senders proven to misbehave (permanent, per the paper).
        self.proven_misbehaving: set[int] = set()
        #: Completed audits, for metrics and tests.
        self.audits_completed = 0
        self.drops_issued = 0

    def should_drop(self, sender_id: int, attempt: int) -> bool:
        """Decide whether to intentionally ignore this RTS.

        Must be called for every RTS *before* responding.  Returns True
        when the receiver should stay silent and await the retry.
        """
        self._packets_seen[sender_id] = self._packets_seen.get(sender_id, 0) + 1
        if sender_id in self._pending:
            # An audit is in flight; never stack a second drop on it.
            return False
        if self._packets_seen[sender_id] < self.suspicion_threshold:
            return False
        if self.rng.random() >= self.drop_probability:
            return False
        self._pending[sender_id] = _PendingAudit(dropped_attempt=attempt)
        self.drops_issued += 1
        return True

    def on_next_rts(self, sender_id: int, attempt: int) -> Optional[AuditOutcome]:
        """Check the first RTS following an intentional drop.

        Returns None when no audit was pending for this sender.
        """
        pending = self._pending.pop(sender_id, None)
        if pending is None:
            return None
        expected = pending.dropped_attempt + 1
        # A retry limit reset (attempt back to 1 after a drop cycle)
        # is legitimate only if the sender exhausted retries; with the
        # usual limit of 7 a single drop cannot cause that from
        # attempt 1, but be conservative for attempts near the limit.
        proof = attempt < expected and not (
            pending.dropped_attempt >= 7 and attempt == 1
        )
        self.audits_completed += 1
        if proof:
            self.proven_misbehaving.add(sender_id)
        return AuditOutcome(
            sender_id=sender_id,
            expected_attempt=expected,
            observed_attempt=attempt,
            proof_of_misbehavior=proof,
        )

    def is_proven(self, sender_id: int) -> bool:
        """Whether the sender has conclusively proven itself misbehaving."""
        return sender_id in self.proven_misbehaving
