"""Deviation identification (equation 1 of the paper).

A receiver that assigned backoff ``B_exp`` flags a transmission as a
*deviation* when the number of idle slots it observed before the
sender's RTS is less than a fraction ``alpha`` of the expectation::

    B_act < alpha * B_exp,   0 < alpha <= 1          (eq. 1)

A deviation is *per-transmission* evidence only; channel asymmetry can
make honest senders appear to deviate, which is why diagnosis
(:mod:`repro.core.diagnosis`) aggregates over a window instead of
acting on single observations.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DeviationVerdict:
    """Outcome of checking one transmission against equation 1.

    Attributes
    ----------
    b_exp:
        Slots the sender was expected to back off (including any
        reconstructed retransmission stages).
    b_act:
        Idle slots the receiver actually observed.
    deviated:
        Whether equation 1 fired.
    deviation:
        ``D = max(alpha*B_exp - B_act, 0)`` — the magnitude handed to
        the correction scheme.  Zero when not deviating.
    difference:
        ``B_exp - B_act`` — the signed value pushed into the diagnosis
        window (negative when the sender waited longer than required).
    """

    b_exp: int
    b_act: int
    deviated: bool
    deviation: float
    difference: float


def check_deviation(b_exp: int, b_act: int, alpha: float) -> DeviationVerdict:
    """Apply equation 1 to one observation.

    Parameters
    ----------
    b_exp:
        Expected backoff in slots (>= 0).
    b_act:
        Observed idle slots (>= 0).
    alpha:
        Tolerance fraction in (0, 1].
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    if b_exp < 0 or b_act < 0:
        raise ValueError("backoff observations must be non-negative")
    scaled = alpha * b_exp
    deviated = b_act < scaled
    deviation = max(scaled - b_act, 0.0)
    if not deviated:
        deviation = 0.0
    return DeviationVerdict(
        b_exp=b_exp,
        b_act=b_act,
        deviated=deviated,
        deviation=deviation,
        difference=float(b_exp - b_act),
    )
