"""The paper's contribution as a simulator-independent library.

Everything here is pure protocol logic: equation 1 deviation checks,
the correction penalty, the W/THRESH diagnosis window, the
deterministic backoff functions ``f`` and ``g``, sender (mis)behaviour
policies, and the receiver-side :class:`SenderMonitor` that composes
them.  The MAC layer (:mod:`repro.mac`) adapts these onto simulated
frames and timers.
"""

from repro.core.adaptive import AdaptiveThreshold
from repro.core.attempt_verify import AttemptAuditor, AuditOutcome
from repro.core.backoff_function import (
    contention_window,
    expected_backoff_sum,
    f_fraction,
    f_raw,
    g_assignment,
    retry_backoff,
)
from repro.core.correction import compute_penalty, next_assignment
from repro.core.deviation import DeviationVerdict, check_deviation
from repro.core.diagnosis import DiagnosisWindow
from repro.core.monitor import RtsVerdict, SenderMonitor
from repro.core.params import PAPER_CONFIG, ProtocolConfig
from repro.core.receiver_verify import ReceiverAuditor, ReceiverAuditVerdict
from repro.core.sender_policy import (
    AttemptLyingPolicy,
    ConformingPolicy,
    NoDoublingPolicy,
    PartialCountdownPolicy,
    ShrunkenWindowPolicy,
    policy_for_pm,
)
from repro.core.smart_cheaters import (
    PenaltyRespectingCheaterPolicy,
    ThresholdAwareCheaterPolicy,
)

__all__ = [
    "AdaptiveThreshold",
    "AttemptAuditor",
    "AuditOutcome",
    "contention_window",
    "expected_backoff_sum",
    "f_fraction",
    "f_raw",
    "g_assignment",
    "retry_backoff",
    "compute_penalty",
    "next_assignment",
    "DeviationVerdict",
    "check_deviation",
    "DiagnosisWindow",
    "RtsVerdict",
    "SenderMonitor",
    "PAPER_CONFIG",
    "ProtocolConfig",
    "ReceiverAuditor",
    "ReceiverAuditVerdict",
    "AttemptLyingPolicy",
    "ConformingPolicy",
    "NoDoublingPolicy",
    "PartialCountdownPolicy",
    "ShrunkenWindowPolicy",
    "policy_for_pm",
    "PenaltyRespectingCheaterPolicy",
    "ThresholdAwareCheaterPolicy",
]
