"""Correction scheme: penalise deviating senders (Section 4.2).

When a deviation of magnitude ``D = max(alpha*B_exp - B_act, 0)`` is
perceived, the receiver adds a penalty ``P`` to the next backoff it
assigns.  The paper sets ``P = D + additional penalty`` and notes (from
its companion technical report) that the additional term is required
for the scheme to be effective; we model the additional penalty as a
flat slot count plus an optional multiple of ``D`` and study the
choice in the ablation bench.  The flat form matters: a cheater that
counts a fraction ``q`` of its assignment sees its next assignment
obey ``A' = base + (alpha - q)*A + extra``, which converges to a finite
fair-share-pinning equilibrium for ``alpha - q < 1``, whereas scaling
the whole penalty by a factor ``k`` with ``k*(alpha - q) > 1``
compounds geometrically and locks moderate cheaters out entirely.

The next assigned backoff is then ``uniform[0, CWmin] + P`` — larger
deviations earn proportionally larger penalties, which is what keeps
false positives cheap for honest senders (their deviations, caused by
channel asymmetry, are small).
"""

from __future__ import annotations

import random

from repro.core.params import ProtocolConfig


def compute_penalty(deviation: float, config: ProtocolConfig) -> int:
    """Total penalty ``P`` (slots) for a measured deviation ``D``.

    ``P = D * (1 + extra_penalty_factor) + extra_penalty_slots``,
    rounded to whole slots and optionally capped by
    ``penalty_cap_slots``.  A zero deviation earns no penalty at all
    (the flat additional term only applies to perceived deviations).
    """
    if deviation < 0:
        raise ValueError("deviation must be >= 0")
    if deviation == 0:
        return 0
    penalty = round(
        deviation * (1.0 + config.extra_penalty_factor) + config.extra_penalty_slots
    )
    if config.penalty_cap_slots:
        penalty = min(penalty, config.penalty_cap_slots)
    return penalty


def next_assignment(
    rng: random.Random,
    config: ProtocolConfig,
    penalty: int = 0,
    base: int | None = None,
) -> int:
    """Backoff the receiver assigns for the sender's next packet.

    Parameters
    ----------
    rng:
        Receiver's random stream for this sender.
    config:
        Protocol parameters (supplies ``cw_min``).
    penalty:
        Penalty ``P`` from :func:`compute_penalty` (0 when the last
        transmission conformed).
    base:
        Optional pre-drawn random component in ``[0, cw_min]``; used
        when the deterministic receiver function ``g`` supplies the
        base so senders can audit the receiver (Section 4.4).  When
        None the component is drawn uniformly from ``[0, cw_min]`` as
        in IEEE 802.11.
    """
    if penalty < 0:
        raise ValueError("penalty must be >= 0")
    if base is None:
        base = rng.randint(0, config.cw_min)
    elif not 0 <= base <= config.cw_min:
        raise ValueError("base must be within [0, cw_min]")
    return base + penalty
