"""Adaptive adversaries the paper argues the scheme resists.

Section 4.3: "The choice of W and THRESH does not affect the
correction scheme.  Hence, a sender adapting to these values will
still have a penalty added for every perceived deviation, even if the
node is not diagnosed to be misbehaving."
:class:`ThresholdAwareCheaterPolicy` implements exactly that adversary:
it knows W and THRESH, tracks (its own estimate of) the receiver's
diagnosis window, and cheats only while the estimated windowed sum
stays safely under THRESH.

Section 3.2: "a misbehaving sender which backs off for the duration
specified by the penalty (or a large fraction of it) does not obtain
significant throughput advantage over other well-behaved nodes."
:class:`PenaltyRespectingCheaterPolicy` is that adversary: it serves
penalties in full (so penalties never escalate) but shaves the base
random component of every assignment.

Both are pure sender policies (no protocol access beyond what a real
cheater would have: the assignments it is told and its own waits), so
they plug into the MAC like any other misbehavior model.  The
``benchmarks/test_bench_adversaries.py`` bench quantifies that neither
earns a meaningful advantage — the paper's claims.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.core.sender_policy import ConformingPolicy
from repro.phy.constants import CW_MIN


class ThresholdAwareCheaterPolicy(ConformingPolicy):
    """Cheat only while the estimated diagnosis window stays quiet.

    Parameters
    ----------
    pm_percent:
        How aggressively to cheat when cheating (PM semantics).
    window / thresh:
        The receiver's (known, public) diagnosis parameters.
    safety_margin:
        Keep the estimated windowed sum at least this many slots below
        THRESH.  A real adversary needs slack because its estimate of
        the receiver's ``B_act`` is noisy.
    """

    misbehaving = True

    def __init__(
        self,
        pm_percent: float = 80.0,
        window: int = 5,
        thresh: float = 20.0,
        safety_margin: float = 4.0,
    ):
        if not 0.0 <= pm_percent <= 100.0:
            raise ValueError("pm_percent must be within [0, 100]")
        self.pm_percent = pm_percent
        self.window = window
        self.thresh = thresh
        self.safety_margin = safety_margin
        self._diffs: Deque[float] = deque(maxlen=window)
        self.cheated_countdowns = 0
        self.honest_countdowns = 0

    def effective_countdown(self, nominal_slots: int) -> int:
        # Cheat exactly as much as the remaining THRESH headroom
        # allows, bounded by the configured aggressiveness.
        current_sum = sum(self._diffs)
        desired_diff = nominal_slots - int(
            round(nominal_slots * (100.0 - self.pm_percent) / 100.0)
        )
        headroom = self.thresh - self.safety_margin - current_sum
        diff = max(0, min(desired_diff, int(headroom)))
        self._diffs.append(float(diff))
        if diff > 0:
            self.cheated_countdowns += 1
        else:
            self.honest_countdowns += 1
        return nominal_slots - diff

    def __repr__(self) -> str:
        return (
            f"ThresholdAwareCheaterPolicy(pm={self.pm_percent:g}%, "
            f"W={self.window}, THRESH={self.thresh:g})"
        )


class PenaltyRespectingCheaterPolicy(ConformingPolicy):
    """Serve penalties in full; shave only the base random component.

    The sender cannot see the penalty split directly, but honest base
    assignments never exceed ``CWmin``, so anything above that is
    surely penalty.  The cheater waits ``penalty + (1-PM) * base``.
    """

    misbehaving = True

    def __init__(self, pm_percent: float = 80.0, cw_min: int = CW_MIN):
        if not 0.0 <= pm_percent <= 100.0:
            raise ValueError("pm_percent must be within [0, 100]")
        self.pm_percent = pm_percent
        self.cw_min = cw_min
        self.penalty_slots_served = 0

    def effective_countdown(self, nominal_slots: int) -> int:
        base = min(nominal_slots, self.cw_min)
        penalty = nominal_slots - base
        self.penalty_slots_served += penalty
        shaved = int(round(base * (100.0 - self.pm_percent) / 100.0))
        return penalty + shaved

    def __repr__(self) -> str:
        return f"PenaltyRespectingCheaterPolicy(pm={self.pm_percent:g}%)"
