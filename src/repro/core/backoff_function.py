"""Deterministic backoff functions shared by sender and receiver.

Section 4.1 of the paper replaces the random retransmission backoff of
IEEE 802.11 with a *deterministic* function ``f`` so the receiver can
reconstruct exactly how long a retrying sender should have waited::

    f(backoff, nodeId, attempt) = (a*X + c) mod (CWmin + 1)
    a = 5,  c = 2*attempt + 1,  X = (backoff + nodeId) mod (CWmin + 1)

``f`` produces an integer in ``[0, CWmin]``; dividing by ``CWmin``
yields a fraction in ``[0, 1]`` which is scaled by the attempt's
contention window::

    retry_backoff(i) = round(f/CWmin * CW_i)
    CW_i = min((CWmin + 1) * 2**(i-1) - 1, CWmax)

The linear-congruential form (a=5, odd c) is a full-period generator
mod ``CWmin + 1 = 32``, which is why colliding senders that share a
contention window still separate with high probability: distinct
``(backoff + nodeId)`` residues map to distinct outputs.

Section 4.4 sketches a symmetric function ``g`` with which an *honest
receiver* derives the random part of each assignment, so the sender
can audit the receiver; we implement ``g`` as a keyed hash over the
(receiver, sender, packet counter) triple.
"""

from __future__ import annotations

import hashlib

from repro.phy.constants import CW_MAX, CW_MIN

#: Multiplier of the linear congruential step of ``f``.
F_MULTIPLIER = 5


def contention_window(attempt: int, cw_min: int = CW_MIN, cw_max: int = CW_MAX) -> int:
    """IEEE 802.11 contention window for the given transmission attempt.

    ``CW_i = min((CWmin + 1) * 2**(i-1) - 1, CWmax)`` — i.e. 31, 63,
    127, ... capped at ``CWmax``.  ``attempt`` is 1-based.
    """
    if attempt < 1:
        raise ValueError("attempt is 1-based and must be >= 1")
    # Cap the exponent before shifting so huge attempt values cannot
    # produce giant intermediates.
    doubled = (cw_min + 1) << min(attempt - 1, 16)
    return min(doubled - 1, cw_max)


def f_raw(backoff: int, node_id: int, attempt: int, cw_min: int = CW_MIN) -> int:
    """The paper's deterministic function ``f`` (integer in [0, cw_min])."""
    if backoff < 0:
        raise ValueError("backoff must be >= 0")
    if attempt < 1:
        raise ValueError("attempt must be >= 1")
    modulus = cw_min + 1
    x = (backoff + node_id) % modulus
    c = 2 * attempt + 1
    return (F_MULTIPLIER * x + c) % modulus


def f_fraction(backoff: int, node_id: int, attempt: int, cw_min: int = CW_MIN) -> float:
    """``f`` normalised to [0, 1] by dividing by ``cw_min``."""
    return f_raw(backoff, node_id, attempt, cw_min) / cw_min


def retry_backoff(
    backoff: int,
    node_id: int,
    attempt: int,
    cw_min: int = CW_MIN,
    cw_max: int = CW_MAX,
) -> int:
    """Backoff (in slots) the sender must use for retransmission ``attempt``.

    Both sender and receiver evaluate this identically, which is what
    lets the receiver reconstruct ``B_exp`` across collisions.
    """
    fraction = f_fraction(backoff, node_id, attempt, cw_min)
    cw = contention_window(attempt, cw_min, cw_max)
    return round(fraction * cw)


def expected_backoff_sum(
    assigned: int,
    node_id: int,
    first_stage: int,
    last_stage: int,
    cw_min: int = CW_MIN,
    cw_max: int = CW_MAX,
) -> int:
    """Total backoff ``B_exp`` a conforming sender performs over stages.

    Stage 1 is the receiver-assigned backoff; stage ``i >= 2`` is the
    deterministic retry backoff for attempt ``i``.  The receiver calls
    this with ``first_stage`` the first backoff stage since its last
    transmission to the sender (1 after an ACK, ``k+1`` after a CTS for
    attempt ``k``) and ``last_stage`` the attempt number in the RTS it
    just received.  This generalises the paper's

        B_exp = backoff + sum_{i=2}^{attempt} f(backoff, nodeId, i)*CW_i

    which is the ``first_stage == 1`` case.
    """
    if first_stage < 1:
        raise ValueError("first_stage must be >= 1")
    if last_stage < first_stage:
        raise ValueError("last_stage must be >= first_stage")
    total = 0
    for stage in range(first_stage, last_stage + 1):
        if stage == 1:
            total += assigned
        else:
            total += retry_backoff(assigned, node_id, stage, cw_min, cw_max)
    return total


def g_assignment(
    receiver_id: int,
    sender_id: int,
    packet_counter: int,
    cw_min: int = CW_MIN,
) -> int:
    """Well-known deterministic receiver assignment function ``g``.

    Returns the random component (in ``[0, cw_min]``) an honest
    receiver assigns for the ``packet_counter``-th packet of the
    (receiver, sender) flow.  Both ends can evaluate it, so a sender
    can detect a receiver that hands out smaller-than-honest backoffs
    (receiver misbehavior, Section 4.4).  Keyed hashing keeps the
    sequence uniform and uncorrelated across flows.
    """
    digest = hashlib.blake2b(
        f"g:{receiver_id}:{sender_id}:{packet_counter}".encode("utf-8"),
        digest_size=8,
    ).digest()
    return int.from_bytes(digest, "big") % (cw_min + 1)
