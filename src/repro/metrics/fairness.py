"""Jain's fairness index (used by Figure 7).

The paper cites Jain et al.'s definition::

    fairness = (sum_f T_f)^2 / (N * sum_f T_f^2)

over the throughputs ``T_f`` of the ``N`` flows between senders and
the common receiver.  The index is 1 when all flows are equal and
``1/N`` when one flow monopolises the channel.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def jain_index(throughputs: Iterable[float]) -> float:
    """Jain's fairness index of the given flow throughputs.

    Raises ``ValueError`` on an empty input.  A set of all-zero
    throughputs is defined here as perfectly fair (index 1.0): nobody
    got anything, equally.
    """
    values: Sequence[float] = list(throughputs)
    if not values:
        raise ValueError("need at least one throughput value")
    if any(v < 0 for v in values):
        raise ValueError("throughputs must be non-negative")
    total = sum(values)
    if total == 0.0:
        return 1.0
    squared = sum(v * v for v in values)
    return (total * total) / (len(values) * squared)
