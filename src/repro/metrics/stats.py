"""Aggregation across seeded runs: means and confidence intervals.

The paper averages every data point over 30 seeded runs.  These
helpers compute the mean and a normal-approximation confidence
interval without requiring scipy at runtime.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence


@dataclass(frozen=True)
class Summary:
    """Mean, standard deviation and half-width CI of a sample."""

    mean: float
    std: float
    ci95: float
    n: int

    def __str__(self) -> str:
        return f"{self.mean:.2f} +/- {self.ci95:.2f} (n={self.n})"


def summarize(values: Iterable[float]) -> Summary:
    """Summary statistics of a sample (95% normal CI).

    A single observation yields a zero-width interval rather than an
    error, since scaled-down bench runs may use one seed.
    """
    data: Sequence[float] = list(values)
    if not data:
        raise ValueError("cannot summarise an empty sample")
    n = len(data)
    mean = sum(data) / n
    if n == 1:
        return Summary(mean=mean, std=0.0, ci95=0.0, n=1)
    variance = sum((x - mean) ** 2 for x in data) / (n - 1)
    std = math.sqrt(variance)
    ci95 = 1.96 * std / math.sqrt(n)
    return Summary(mean=mean, std=std, ci95=ci95, n=n)


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean (0.0 for an empty sample, for plot convenience)."""
    data: List[float] = list(values)
    return sum(data) / len(data) if data else 0.0


def elementwise_mean(series_list: Sequence[Sequence[float]]) -> List[float]:
    """Mean across runs of equal-length time series (Figure 8)."""
    if not series_list:
        return []
    length = len(series_list[0])
    if any(len(s) != length for s in series_list):
        raise ValueError("series must share a length")
    return [
        sum(series[i] for series in series_list) / len(series_list)
        for i in range(length)
    ]
