"""Aggregation across seeded runs: means and confidence intervals.

The paper averages every data point over 30 seeded runs.  These
helpers compute the mean and a Student-t confidence interval without
requiring scipy at runtime: :func:`t_critical` carries a small lookup
table of two-sided 95% critical values for the degrees of freedom that
actually occur (interpolated in 1/df between table rows, falling back
to the normal z beyond df=120).

Small samples matter here.  The default evaluation scale uses 5 seeds,
where the normal approximation z=1.96 understates the 95% half-width
by ~42% (t(4, 0.975) = 2.776); every consumer — figure generation,
campaign aggregation, the analysis pipeline — goes through
:func:`t_critical` so all of them quote the same corrected interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence

#: Two-sided 95% Student-t critical values (the 0.975 quantile) by
#: degrees of freedom.  df 1-30 are tabulated exactly; a few anchors
#: cover the long tail before the normal limit takes over.
_T95_TABLE = {
    1: 12.7062, 2: 4.3027, 3: 3.1824, 4: 2.7764, 5: 2.5706,
    6: 2.4469, 7: 2.3646, 8: 2.3060, 9: 2.2622, 10: 2.2281,
    11: 2.2010, 12: 2.1788, 13: 2.1604, 14: 2.1448, 15: 2.1314,
    16: 2.1199, 17: 2.1098, 18: 2.1009, 19: 2.0930, 20: 2.0860,
    21: 2.0796, 22: 2.0739, 23: 2.0687, 24: 2.0639, 25: 2.0595,
    26: 2.0555, 27: 2.0518, 28: 2.0484, 29: 2.0452, 30: 2.0423,
    40: 2.0211, 60: 2.0003, 120: 1.9799,
}

#: Normal two-sided 95% critical value (the df -> infinity limit).
Z95 = 1.9600

#: Sorted anchor dfs above the exactly-tabulated range.
_T95_ANCHORS = (30, 40, 60, 120)


def t_critical(df: int) -> float:
    """Two-sided 95% Student-t critical value for ``df`` degrees of freedom.

    Exact table lookup for df <= 30, linear interpolation in 1/df
    between the tabulated anchors up to df = 120 (the standard printed-
    table rule, accurate to ~1e-3 here), and the normal z beyond.
    Raises :class:`ValueError` for df < 1 — a one-point sample has no
    interval.
    """
    if df < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {df}")
    if df in _T95_TABLE:
        return _T95_TABLE[df]
    if df > _T95_ANCHORS[-1]:
        return Z95
    for lo, hi in zip(_T95_ANCHORS, _T95_ANCHORS[1:]):  # pragma: no branch
        if lo < df < hi:
            t_lo, t_hi = _T95_TABLE[lo], _T95_TABLE[hi]
            frac = (1.0 / lo - 1.0 / df) / (1.0 / lo - 1.0 / hi)
            return t_lo + frac * (t_hi - t_lo)
    raise AssertionError(f"unreachable df {df}")  # pragma: no cover


@dataclass(frozen=True)
class Summary:
    """Mean, standard deviation and half-width CI of a sample."""

    mean: float
    std: float
    ci95: float
    n: int

    def __str__(self) -> str:
        return f"{self.mean:.2f} +/- {self.ci95:.2f} (n={self.n})"


def summarize(values: Iterable[float]) -> Summary:
    """Summary statistics of a sample (95% Student-t CI).

    A single observation yields a zero-width interval rather than an
    error, since scaled-down bench runs may use one seed.
    """
    data: Sequence[float] = list(values)
    if not data:
        raise ValueError("cannot summarise an empty sample")
    n = len(data)
    mean = sum(data) / n
    if n == 1:
        return Summary(mean=mean, std=0.0, ci95=0.0, n=1)
    variance = sum((x - mean) ** 2 for x in data) / (n - 1)
    std = math.sqrt(variance)
    ci95 = t_critical(n - 1) * std / math.sqrt(n)
    return Summary(mean=mean, std=std, ci95=ci95, n=n)


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean (0.0 for an empty sample, for plot convenience)."""
    data: List[float] = list(values)
    return sum(data) / len(data) if data else 0.0


def elementwise_mean(series_list: Sequence[Sequence[float]]) -> List[float]:
    """Mean across runs of equal-length time series (Figure 8)."""
    if not series_list:
        return []
    length = len(series_list[0])
    if any(len(s) != length for s in series_list):
        raise ValueError("series must share a length")
    return [
        sum(series[i] for series in series_list) / len(series_list)
        for i in range(length)
    ]
