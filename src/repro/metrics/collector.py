"""Run-level metrics collection.

One :class:`MetricsCollector` instance accompanies a simulation run.
MACs report events into it; at the end of the run it produces the
paper's four metrics (Section 5):

1. *Correct diagnosis* — % of packets from misbehaving senders whose
   reception found the sender diagnosed as misbehaving;
2. *Misdiagnosis* — % of packets from well-behaved senders whose
   reception found the sender (wrongly) diagnosed;
3. *AVG* — average throughput per well-behaved sender;
4. *MSB* — average throughput per misbehaving sender.

plus Jain's fairness index and the Figure 8 time series (per-interval
correct-diagnosis percentage).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple


@dataclass(frozen=True)
class DeliveryRecord:
    """One successfully delivered DATA packet."""

    src: int
    dst: int
    payload_bytes: int
    time_us: int
    diagnosed: bool


@dataclass
class FlowStats:
    """Accumulated per-sender statistics."""

    delivered_packets: int = 0
    delivered_bytes: int = 0
    diagnosed_packets: int = 0
    dropped_packets: int = 0
    deviations: int = 0
    penalties_assigned: int = 0
    penalty_slots: int = 0
    #: MAC access delays (sender-side, packet start -> ACK) in us.
    total_delay_us: int = 0
    acked_packets: int = 0
    total_attempts: int = 0
    #: Receiver-side monitor verdicts (CORRECT protocol only): how
    #: many packets were judged, how many found the sender diagnosed,
    #: and when the first flag happened (detection latency).
    verdicts: int = 0
    flagged_verdicts: int = 0
    first_flag_time_us: Optional[int] = None
    first_flag_packets: Optional[int] = None

    @property
    def mean_delay_us(self) -> float:
        """Mean head-of-line-to-ACK delay of acknowledged packets."""
        if self.acked_packets == 0:
            return 0.0
        return self.total_delay_us / self.acked_packets

    @property
    def mean_attempts(self) -> float:
        """Mean transmission attempts per acknowledged packet."""
        if self.acked_packets == 0:
            return 0.0
        return self.total_attempts / self.acked_packets


class MetricsCollector:
    """Event sink and metric computer for one simulation run.

    Parameters
    ----------
    misbehaving:
        Ground-truth set of misbehaving sender ids.
    measured_senders:
        When given, diagnosis/throughput summaries consider only these
        senders (the circle scenarios exclude the interferer flows
        from the per-sender metrics; they are load, not subjects).
    """

    def __init__(
        self,
        misbehaving: Optional[Set[int]] = None,
        measured_senders: Optional[Set[int]] = None,
    ):
        self.misbehaving: Set[int] = set(misbehaving or ())
        self.measured_senders = measured_senders
        self.deliveries: List[DeliveryRecord] = []
        self.flows: Dict[int, FlowStats] = {}
        self.audit_outcomes: List[Tuple[int, object, int]] = []
        self.receiver_audit_events: List[Tuple[int, int, object, int]] = []

    # ------------------------------------------------------------------
    # MAC-facing event API
    # ------------------------------------------------------------------
    def _flow(self, src: int) -> FlowStats:
        stats = self.flows.get(src)
        if stats is None:
            stats = FlowStats()
            self.flows[src] = stats
        return stats

    def on_delivery(
        self, src: int, dst: int, payload_bytes: int, time: int, diagnosed: bool
    ) -> None:
        """A DATA packet was successfully received at its destination."""
        self.deliveries.append(
            DeliveryRecord(src, dst, payload_bytes, time, diagnosed)
        )
        stats = self._flow(src)
        stats.delivered_packets += 1
        stats.delivered_bytes += payload_bytes
        if diagnosed:
            stats.diagnosed_packets += 1

    def on_sender_success(
        self, src: int, dst: int, attempts: int, time: int,
        delay_us: int = 0,
    ) -> None:
        """Sender-side view of a completed exchange (ACK received)."""
        stats = self._flow(src)
        stats.acked_packets += 1
        stats.total_attempts += attempts
        stats.total_delay_us += delay_us

    def mean_delay_us(self, src: int) -> float:
        """Mean MAC access delay of one sender's delivered packets."""
        stats = self.flows.get(src)
        return stats.mean_delay_us if stats is not None else 0.0

    def on_sender_drop(self, src: int, dst: int, time: int) -> None:
        """A packet exceeded the retry limit and was dropped."""
        self._flow(src).dropped_packets += 1

    def on_rts_verdict(self, receiver: int, sender: int, verdict, time: int) -> None:
        """Receiver-side monitor verdict for one RTS (CORRECT only)."""
        stats = self._flow(sender)
        if verdict.checked and verdict.deviation is not None and verdict.deviation.deviated:
            stats.deviations += 1
        if verdict.penalty > 0:
            stats.penalties_assigned += 1
            stats.penalty_slots += verdict.penalty
        stats.verdicts += 1
        if verdict.diagnosed:
            stats.flagged_verdicts += 1
            if stats.first_flag_time_us is None:
                stats.first_flag_time_us = time
                stats.first_flag_packets = stats.verdicts

    def on_attempt_audit(self, receiver: int, outcome, time: int) -> None:
        """A completed intentional-drop attempt audit."""
        self.audit_outcomes.append((receiver, outcome, time))

    def on_receiver_audit(self, sender: int, receiver: int, verdict, time: int) -> None:
        """A sender flagged a receiver's under-assignment (g audit)."""
        self.receiver_audit_events.append((sender, receiver, verdict, time))

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def _subject(self, src: int) -> bool:
        return self.measured_senders is None or src in self.measured_senders

    def throughput_bps(self, src: int, duration_us: int) -> float:
        """Delivered application throughput of one sender."""
        if duration_us <= 0:
            raise ValueError("duration must be positive")
        stats = self.flows.get(src)
        if stats is None:
            return 0.0
        return stats.delivered_bytes * 8 * 1_000_000 / duration_us

    def throughputs(self, duration_us: int) -> Dict[int, float]:
        """Throughput of every *measured* sender that delivered data."""
        return {
            src: self.throughput_bps(src, duration_us)
            for src in self.flows
            if self._subject(src)
        }

    def average_wellbehaved_throughput(
        self, duration_us: int, senders: Optional[Set[int]] = None
    ) -> float:
        """Mean throughput per well-behaved measured sender ("AVG")."""
        pool = senders if senders is not None else {
            s for s in self.flows if self._subject(s)
        }
        values = [
            self.throughput_bps(s, duration_us)
            for s in pool
            if s not in self.misbehaving
        ]
        return sum(values) / len(values) if values else 0.0

    def average_misbehaving_throughput(
        self, duration_us: int, senders: Optional[Set[int]] = None
    ) -> float:
        """Mean throughput per misbehaving sender ("MSB")."""
        pool = senders if senders is not None else set(self.misbehaving)
        values = [
            self.throughput_bps(s, duration_us) for s in pool
            if s in self.misbehaving
        ]
        return sum(values) / len(values) if values else 0.0

    def _diagnosis_rate(self, want_misbehaving: bool) -> float:
        packets = 0
        flagged = 0
        for record in self.deliveries:
            if not self._subject(record.src):
                continue
            if (record.src in self.misbehaving) != want_misbehaving:
                continue
            packets += 1
            if record.diagnosed:
                flagged += 1
        return 100.0 * flagged / packets if packets else 0.0

    def correct_diagnosis_percent(self) -> float:
        """Paper metric 1: % of misbehaving senders' packets diagnosed."""
        return self._diagnosis_rate(want_misbehaving=True)

    def misdiagnosis_percent(self) -> float:
        """Paper metric 2: % of honest senders' packets (mis)diagnosed."""
        return self._diagnosis_rate(want_misbehaving=False)

    # ------------------------------------------------------------------
    # Detector evaluation (detection latency / operating point)
    # ------------------------------------------------------------------
    def detection_latency_packets(self, src: int) -> Optional[int]:
        """Packets judged before ``src`` first stood diagnosed.

        1 means the very first judged packet was flagged; ``None``
        means the sender was never flagged (or never judged).
        """
        stats = self.flows.get(src)
        return stats.first_flag_packets if stats is not None else None

    def detection_latency_us(self, src: int) -> Optional[int]:
        """Sim time at which ``src`` first stood diagnosed (or None)."""
        stats = self.flows.get(src)
        return stats.first_flag_time_us if stats is not None else None

    def _flag_rate(self, want_misbehaving: bool) -> float:
        """% of judged packets of one sender class found diagnosed.

        Unlike :meth:`correct_diagnosis_percent` (which follows the
        paper in counting *delivered* packets), this counts every
        receiver-side verdict, so it also sees packets the exchange
        later lost — the per-observation operating point a detector's
        ROC is defined over.
        """
        verdicts = 0
        flagged = 0
        for src, stats in self.flows.items():
            if not self._subject(src):
                continue
            if (src in self.misbehaving) != want_misbehaving:
                continue
            verdicts += stats.verdicts
            flagged += stats.flagged_verdicts
        return 100.0 * flagged / verdicts if verdicts else 0.0

    def detection_rate_percent(self) -> float:
        """% of misbehaving senders' judged packets found diagnosed."""
        return self._flag_rate(want_misbehaving=True)

    def false_alarm_percent(self) -> float:
        """% of honest senders' judged packets (wrongly) diagnosed."""
        return self._flag_rate(want_misbehaving=False)

    def diagnosis_time_series(
        self, bin_us: int, duration_us: int, misbehaving_only: bool = True
    ) -> List[float]:
        """Figure 8 series: per-bin correct-diagnosis percentage.

        Bins with no packets report 0.0 (matching the paper's
        averaging over runs, where empty intervals contribute nothing).
        """
        if bin_us <= 0:
            raise ValueError("bin size must be positive")
        n_bins = max((duration_us + bin_us - 1) // bin_us, 1)
        totals = [0] * n_bins
        flagged = [0] * n_bins
        for record in self.deliveries:
            if not self._subject(record.src):
                continue
            if (record.src in self.misbehaving) != misbehaving_only:
                continue
            index = min(record.time_us // bin_us, n_bins - 1)
            totals[index] += 1
            if record.diagnosed:
                flagged[index] += 1
        return [
            100.0 * f / t if t else 0.0 for f, t in zip(flagged, totals)
        ]
