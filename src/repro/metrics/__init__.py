"""Metrics: per-run collection, fairness, cross-run aggregation."""

from repro.metrics.collector import DeliveryRecord, FlowStats, MetricsCollector
from repro.metrics.fairness import jain_index
from repro.metrics.stats import Summary, elementwise_mean, mean, summarize

__all__ = [
    "DeliveryRecord",
    "FlowStats",
    "MetricsCollector",
    "jain_index",
    "Summary",
    "elementwise_mean",
    "mean",
    "summarize",
]
