"""Namespaced, reproducible random-number streams.

The paper's evaluation averages 30 seeded runs and uses "the same set
of seeds for different data points".  To reproduce that discipline we
derive one independent ``random.Random`` stream per (run seed, purpose)
pair.  Purposes are strings such as ``"backoff/node3"`` or
``"shadowing/medium"``; deriving streams by name means that adding a
new consumer of randomness does not shift the samples seen by existing
consumers, so results stay comparable across code revisions.

Streams are derived with BLAKE2b over ``(master_seed, name)`` which
gives well-separated 64-bit seeds without any cross-stream correlation
in practice.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Dict, Iterable, List


class RngRegistry:
    """Factory of named, independently seeded random streams.

    Parameters
    ----------
    master_seed:
        The run's seed.  Two registries with the same master seed hand
        out identical streams for identical names.
    """

    def __init__(self, master_seed: int, vector_pool=None,
                 vector_prefixes: Iterable[str] = ("idle/",)):
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}
        #: Optional :class:`repro.sim.vecrng.VectorStreamPool`.  When
        #: set, streams whose names match ``vector_prefixes`` are
        #: handed out as pooled (bit-identical) ``VectorRandom``
        #: instances so bulk draws can be vectorized across streams.
        self._vector_pool = vector_pool
        self._vector_prefixes = (
            tuple(vector_prefixes) if vector_pool is not None else ()
        )

    def derive_seed(self, name: str) -> int:
        """Return the 64-bit seed assigned to stream ``name``."""
        digest = hashlib.blake2b(
            f"{self.master_seed}:{name}".encode("utf-8"), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big")

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream called ``name``."""
        stream = self._streams.get(name)
        if stream is None:
            seed = self.derive_seed(name)
            if self._vector_prefixes and name.startswith(self._vector_prefixes):
                from repro.sim.vecrng import VectorRandom
                stream = VectorRandom(seed, pool=self._vector_pool)
            else:
                stream = random.Random(seed)
            self._streams[name] = stream
        return stream

    def streams(self) -> Iterable[str]:
        """Names of all streams created so far (for diagnostics)."""
        return list(self._streams)

    def has_stream(self, name: str) -> bool:
        """Whether ``name`` was ever requested — without creating it.

        The determinism tests use this to assert that disabled
        subsystems (e.g. fault injection with a no-op profile) never
        instantiate their streams.
        """
        return name in self._streams


def geometric_skip(rng: random.Random, p_busy: float) -> int:
    """Sample how many slots pass before the next *idle* slot.

    During a marginally-sensed transmission each slot is independently
    busy with probability ``p_busy``.  Instead of flipping a coin per
    slot, the number of consecutive busy slots before the next idle one
    is geometric; this collapses long busy streaks into one RNG draw.

    Returns the count of busy slots preceding the idle slot, i.e. the
    idle slot is the ``(returned + 1)``-th slot from now.
    """
    if p_busy <= 0.0:
        return 0
    if p_busy >= 1.0:
        raise ValueError("p_busy must be < 1 for an idle slot to exist")
    u = rng.random()
    # P(K = k) = p_busy^k * (1 - p_busy);  K = floor(log(u)/log(p_busy))
    return int(math.log(u) / math.log(p_busy)) if u > 0.0 else 0


def binomial(rng: random.Random, n: int, p: float) -> int:
    """Binomial(n, p) sample using only the supplied stream.

    Used for lazily counting how many slots of a marginal transmission
    a node sensed busy.  A normal approximation is used for large ``n``
    (n*p*(1-p) > 25) which is plenty accurate for slot counting, and an
    exact inversion loop otherwise.  Results are clamped to [0, n].
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    if n == 0 or p == 0.0:
        return 0
    if p == 1.0:
        return n
    variance = n * p * (1.0 - p)
    if variance > 25.0:
        sample = rng.gauss(n * p, math.sqrt(variance))
        return max(0, min(n, round(sample)))
    if n <= 32:
        # Bernoulli sum; a plain loop beats the equivalent genexpr by
        # ~2x and draws the exact same stream.  Pooled streams provide
        # an inlined loop over their buffered words (same draws, no
        # Python-level ``random()`` call per slot).
        fast = getattr(rng, "_bernoulli_count", None)
        if fast is not None:
            return fast(n, p)
        draw = rng.random
        count = 0
        for _ in range(n):
            if draw() < p:
                count += 1
        return count
    # Inversion by counting geometric gaps between successes.
    count = 0
    position = 0
    log_q = math.log(1.0 - p)
    if log_q == 0.0:  # p below float resolution of (1 - p)
        return 0
    fast = getattr(rng, "_binomial_inversion", None)
    if fast is not None:
        return fast(n, log_q)
    while True:
        u = rng.random()
        gap = int(math.log(u) / log_q) if u > 0.0 else n
        position += gap + 1
        if position > n:
            return count
        count += 1


def sample_mean(values: List[float]) -> float:
    """Arithmetic mean; 0.0 for an empty list (metrics convenience)."""
    return sum(values) / len(values) if values else 0.0
