"""Bit-identical, numpy-backed Mersenne Twister streams.

The batch fast path (:mod:`repro.sim.batch`) advances many replicas in
one process and wants the per-listener lazy-binomial draws of
:mod:`repro.phy.sensing` performed as one vectorized operation per
transmission edge instead of one Python call chain per listener.  That
is only admissible if every stream still produces *exactly* the draw
sequence ``random.Random`` would, because the repository's figures are
pinned bit-for-bit to the scalar kernel's RNG consumption.

:class:`VectorRandom` is therefore a ``random.Random`` subclass whose
state lives as a row of a shared :class:`VectorStreamPool`:

* the MT19937 state vector of *all* pooled streams is one ``(K, 624)``
  uint32 matrix, twisted with vectorized numpy ops (three-segment
  update, identical to the reference algorithm);
* each row keeps a two-block (1248-word) buffer of *tempered* output
  words — as a numpy row for bulk gathers and as a plain Python list
  for cheap scalar draws; ``random()`` consumes word pairs exactly
  like CPython's ``_randommodule.c`` (``(a>>5)*2**26 + (b>>6)`` scaled
  by ``2**-53`` — a power-of-two multiply, so numpy, Python ints and
  the C implementation agree to the bit);
* bulk helpers (:meth:`VectorStreamPool.bernoulli_deficits`) consume
  many rows' words in one gather, which is where the batch kernel's
  speedup comes from.

Scalar calls on a :class:`VectorRandom` are slower than the C
``random.Random`` (each word is fetched by Python code), so the scalar
simulation path keeps plain ``random.Random`` streams; only batch-mode
replicas use pooled streams.  Equivalence of the two is enforced by
``tests/test_vecrng.py`` draw-for-draw and end-to-end by the
scalar-vs-batch property test.
"""

from __future__ import annotations

import random
from math import log
from typing import List, Optional, Tuple

try:  # gate: keep importable (with reduced function) without numpy
    import numpy as np
except ImportError:  # pragma: no cover - numpy ships with the image
    np = None

HAVE_NUMPY = np is not None

_N = 624
_TWO_BLOCKS = 2 * _N
#: Largest per-row word window a bulk gather may need.  Binomial
#: deficits are only vectorized for n <= 32 slots (two words per
#: uniform), so 64 words always suffice.
_MAX_BULK_WORDS = 64
#: Below this many entries the numpy fixed overhead of a bulk gather
#: exceeds the cost of drawing from the buffered word lists directly.
_BULK_THRESHOLD = 8
#: Rows at least this far into their buffer are refilled alongside any
#: row that actually ran dry (see ``_normalize_row``): one vectorized
#: twist over many rows amortizes numpy's small-array overhead, and a
#: row past this cursor has consumed enough of its first block that
#: shifting it out is worth the refresh.
_SWEEP_CURSOR = _N + _N // 2
_INV_2_53 = 1.0 / 9007199254740992.0

if HAVE_NUMPY:
    _ARANGE = np.arange(_MAX_BULK_WORDS)


def _twist(mt: "np.ndarray") -> None:
    """One MT19937 state transition, in place, on ``(K, 624)`` rows.

    Three-segment formulation of the reference loop: entries
    ``[0, 227)`` read old state only, ``[227, 454)`` and ``[454, 623)``
    read entries already rewritten this round, and entry 623 wraps to
    the fresh ``mt[0]``.  Matches ``random.Random`` word-for-word.
    """
    u = np.uint32(0x80000000)
    lo = np.uint32(0x7FFFFFFF)
    a = np.uint32(0x9908B0DF)
    one = np.uint32(1)
    y = (mt[:, 0:227] & u) | (mt[:, 1:228] & lo)
    mt[:, 0:227] = mt[:, 397:624] ^ (y >> one) ^ ((y & one) * a)
    y = (mt[:, 227:454] & u) | (mt[:, 228:455] & lo)
    mt[:, 227:454] = mt[:, 0:227] ^ (y >> one) ^ ((y & one) * a)
    y = (mt[:, 454:623] & u) | (mt[:, 455:624] & lo)
    mt[:, 454:623] = mt[:, 227:396] ^ (y >> one) ^ ((y & one) * a)
    y = (mt[:, 623:624] & u) | (mt[:, 0:1] & lo)
    mt[:, 623:624] = mt[:, 396:397] ^ (y >> one) ^ ((y & one) * a)


def _temper(mt: "np.ndarray") -> "np.ndarray":
    """MT19937 output tempering of a ``(K, 624)`` block (returns copy)."""
    y = mt.copy()
    y ^= y >> np.uint32(11)
    y ^= (y << np.uint32(7)) & np.uint32(0x9D2C5680)
    y ^= (y << np.uint32(15)) & np.uint32(0xEFC60000)
    y ^= y >> np.uint32(18)
    return y


class VectorStreamPool:
    """Shared storage and bulk operations for pooled MT streams.

    Rows are added through :meth:`stream`; the pool grows its matrices
    geometrically.  All cross-stream vectorization lives here so that
    :class:`VectorRandom` stays a thin per-stream view.
    """

    def __init__(self, capacity: int = 64):
        if not HAVE_NUMPY:
            raise RuntimeError("VectorStreamPool requires numpy")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._mt = np.zeros((capacity, _N), dtype=np.uint32)
        #: Previous-block raw state, kept so ``getstate`` can report a
        #: CPython-compatible (state, index) pair while the cursor is
        #: still inside the first buffered block.
        self._mt_prev = np.zeros((capacity, _N), dtype=np.uint32)
        #: Two consecutive tempered output blocks per row.
        self._buf = np.zeros((capacity, _TWO_BLOCKS), dtype=np.uint32)
        self._streams: List["VectorRandom"] = []

    def __len__(self) -> int:
        return len(self._streams)

    # ------------------------------------------------------------------
    # Row management
    # ------------------------------------------------------------------
    def stream(self, seed: Optional[int] = None) -> "VectorRandom":
        """Create a new pooled stream seeded like ``random.Random(seed)``."""
        return VectorRandom(seed, pool=self)

    def _add_row(self, stream: "VectorRandom") -> int:
        if len(self._streams) == self._mt.shape[0]:
            cap = self._mt.shape[0] * 2
            for name in ("_mt", "_mt_prev", "_buf"):
                old = getattr(self, name)
                new = np.zeros((cap, old.shape[1]), dtype=np.uint32)
                new[: old.shape[0]] = old
                setattr(self, name, new)
        row = len(self._streams)
        self._streams.append(stream)
        return row

    def _load_row(self, stream: "VectorRandom", words, index: int) -> None:
        """Install a CPython ``(624 words, index)`` state into a row."""
        row = stream._row
        mt = np.asarray(words, dtype=np.uint32).reshape(1, _N)
        self._mt_prev[row] = mt[0]
        self._buf[row, :_N] = _temper(mt)[0]
        _twist(mt)
        self._mt[row] = mt[0]
        self._buf[row, _N:] = _temper(mt)[0]
        stream._words = None
        stream._ufloats = None
        stream._cur = index

    def _normalize_row(self, stream: "VectorRandom") -> None:
        """Refill ``stream`` plus every other row that is nearly dry.

        Shifting the second buffered block down and twisting a fresh
        one is only legal once a row's first block is fully consumed
        (cursor >= 624); any such row can be refreshed *early* at no
        correctness cost, because refilling never changes which words
        the stream will produce, only how many are buffered.  Sweeping
        all sufficiently-consumed rows whenever one actually runs dry
        turns many tiny per-row twists into one vectorized twist over
        the group — this cross-replica refill batching is the main
        reason pooled streams beat per-stream refills.
        """
        group = [s for s in self._streams
                 if s._cur >= _SWEEP_CURSOR and s is not stream]
        group.append(stream)
        rows = np.fromiter(
            (s._row for s in group), dtype=np.intp, count=len(group)
        )
        buf = self._buf
        buf[rows, :_N] = buf[rows, _N:]
        self._mt_prev[rows] = self._mt[rows]
        mt = self._mt[rows]
        _twist(mt)
        self._mt[rows] = mt
        buf[rows, _N:] = _temper(mt)
        # The word-list and uniform mirrors are materialized lazily on
        # the next scalar draw; rows consumed only through bulk gathers
        # (or not at all before the next sweep) never pay the tolist.
        for s in group:
            s._words = None
            s._ufloats = None
            s._cur -= _N

    # ------------------------------------------------------------------
    # Bulk operations
    # ------------------------------------------------------------------
    def bernoulli_deficits(self, entries: List[Tuple["VectorRandom", int, float]]):
        """Vectorized ``n - Binomial(n, p)`` across many pooled streams.

        ``entries`` holds ``(stream, n, p)`` with ``1 <= n <= 32`` and
        ``0 < p < 1``; returns a sequence of idle-slot deficits (``n``
        minus the busy count), one per entry, consuming exactly the
        ``2n`` tempered words per stream that the scalar small-``n``
        loop in :func:`repro.sim.rng.binomial` would.  Entries must
        reference distinct streams (one marginal edge per listener per
        burst), so cursor updates never collide.  Small batches skip
        numpy: the draws come straight off the buffered word lists,
        which is cheaper than a gather's fixed overhead.
        """
        count = len(entries)
        if count < _BULK_THRESHOLD:
            return [n - stream._bernoulli_count(n, p)
                    for stream, n, p in entries]
        rows = np.empty(count, dtype=np.intp)
        ns = np.empty(count, dtype=np.int64)
        ps = np.empty(count, dtype=np.float64)
        cur = np.empty(count, dtype=np.int64)
        # Refill first, record second: ``_normalize_row`` sweeps *every*
        # stream past ``_SWEEP_CURSOR``, shifting their buffers and
        # cursors, so recording a stream's position before a later
        # entry triggers a sweep would gather stale words for it.
        for stream, _, _ in entries:
            if stream._cur > _TWO_BLOCKS - _MAX_BULK_WORDS:
                self._normalize_row(stream)
        for i, (stream, n, p) in enumerate(entries):
            rows[i] = stream._row
            ns[i] = n
            ps[i] = p
            cur[i] = stream._cur
        width = int(2 * ns.max())
        words = self._buf[rows[:, None], cur[:, None] + _ARANGE[:width]]
        hi = (words[:, 0::2] >> np.uint32(5)).astype(np.float64)
        lo = (words[:, 1::2] >> np.uint32(6)).astype(np.float64)
        uniforms = (hi * 67108864.0 + lo) * _INV_2_53
        mask = _ARANGE[: width // 2] < ns[:, None]
        deficits = ns - ((uniforms < ps[:, None]) & mask).sum(axis=1)
        for entry, n in zip(entries, ns):
            entry[0]._cur += 2 * int(n)
        return deficits


class VectorRandom(random.Random):
    """Pool-backed ``random.Random`` with bit-identical output.

    Overrides both :meth:`random` and :meth:`getrandbits`, so the
    inherited derived methods (``randrange``, ``gauss`` with its
    ``gauss_next`` caching, ...) run unchanged on top of the pooled
    word source and stay draw-for-draw equal to the C implementation.
    """

    def __init__(self, seed: Optional[int] = None,
                 pool: Optional[VectorStreamPool] = None):
        self._pool = pool if pool is not None else VectorStreamPool(1)
        self._row = self._pool._add_row(self)
        #: Python-list mirror of the pool row's tempered words, built
        #: lazily on the first scalar draw after a refill (``None``
        #: until then), plus the next unconsumed position in
        #: ``[0, 1248)``.
        self._words: Optional[List[int]] = None
        #: Lazy per-refill cache of the buffer's 624 word *pairs* as
        #: ready-made uniforms (pair ``i`` covers words ``2i, 2i+1``),
        #: converted in one vectorized pass.  Lets the binomial loops
        #: consume uniforms at Python-list speed instead of assembling
        #: each float from two words.
        self._ufloats: Optional[List[float]] = None
        self._cur = 0
        super().__init__(seed)

    def _wordlist(self) -> List[int]:
        words = self._words = self._pool._buf[self._row].tolist()
        return words

    def _uniform_list(self) -> List[float]:
        buf = self._pool._buf[self._row]
        hi = (buf[0::2] >> np.uint32(5)).astype(np.float64)
        lo = (buf[1::2] >> np.uint32(6)).astype(np.float64)
        uf = self._ufloats = ((hi * 67108864.0 + lo) * _INV_2_53).tolist()
        return uf

    # -- state ---------------------------------------------------------
    def seed(self, a=None, version=2) -> None:  # noqa: D102 (base doc)
        # Delegate seed derivation (int/str/None handling) to a scratch
        # C stream, then import its exact state vector.
        _, internal, _ = random.Random(a).getstate()
        self._pool._load_row(self, internal[:_N], internal[_N])
        self.gauss_next = None

    def getstate(self):
        pool = self._pool
        cur = self._cur
        if cur < _N:
            words = pool._mt_prev[self._row]
            index = cur
        else:
            words = pool._mt[self._row]
            index = cur - _N
        return (3, tuple(int(w) for w in words) + (index,), self.gauss_next)

    def setstate(self, state) -> None:
        version, internal, gauss_next = state
        if version != 3:
            raise ValueError(f"state version {version} not supported")
        self._pool._load_row(self, internal[:_N], internal[_N])
        self.gauss_next = gauss_next

    # -- core draws ----------------------------------------------------
    def _next_word(self) -> int:
        cur = self._cur
        if cur >= _TWO_BLOCKS:
            self._pool._normalize_row(self)
            cur = self._cur
        words = self._words
        if words is None:
            words = self._wordlist()
        self._cur = cur + 1
        return words[cur]

    def random(self) -> float:
        cur = self._cur
        if cur + 2 > _TWO_BLOCKS:
            self._pool._normalize_row(self)
            cur = self._cur
        words = self._words
        if words is None:
            words = self._wordlist()
        self._cur = cur + 2
        return ((words[cur] >> 5) * 67108864.0
                + (words[cur + 1] >> 6)) * _INV_2_53

    # -- inlined draw loops (dispatched by repro.sim.rng.binomial) -----
    #
    # Both loops read the per-refill uniform cache: pair ``i`` of the
    # buffer is exactly the float ``random()`` would assemble from
    # words ``2i, 2i+1``, so consuming it at an even cursor is the
    # same draw.  An odd cursor (a stray ``getrandbits`` left half a
    # pair) falls back to the generic per-draw path to realign.

    def _bernoulli_count(self, n: int, p: float) -> int:
        """Sum of ``n`` Bernoulli(p) draws, word-for-word equal to the
        scalar ``random() < p`` loop but without a method call per draw.
        """
        cur = self._cur
        if cur & 1:
            draw = self.random
            return sum(draw() < p for _ in range(n))
        if cur + 2 * n > _TWO_BLOCKS:
            self._pool._normalize_row(self)
            cur = self._cur
        uf = self._ufloats
        if uf is None:
            uf = self._uniform_list()
        count = 0
        for u in uf[cur >> 1 : (cur >> 1) + n]:
            if u < p:
                count += 1
        self._cur = cur + 2 * n
        return count

    def _binomial_inversion(self, n: int, log_q: float) -> int:
        """Geometric-gap binomial inversion over cached uniforms.

        Mirrors the tail loop of :func:`repro.sim.rng.binomial`
        draw-for-draw.  The gap computation keeps ``math.log`` — numpy's
        log may round differently, which would break bit-identity.
        """
        count = 0
        position = 0
        pool = self._pool
        while True:
            cur = self._cur
            if cur & 1:
                u = self.random()
                position += (int(log(u) / log_q) if u > 0.0 else n) + 1
                if position > n:
                    return count
                count += 1
                continue
            if cur + 2 > _TWO_BLOCKS:
                pool._normalize_row(self)
                cur = self._cur
            uf = self._ufloats
            if uf is None:
                uf = self._uniform_list()
            i = cur >> 1
            for u in uf[i:]:
                i += 1
                position += (int(log(u) / log_q) if u > 0.0 else n) + 1
                if position > n:
                    self._cur = i << 1
                    return count
                count += 1
            self._cur = _TWO_BLOCKS

    def getrandbits(self, k: int) -> int:
        if k < 0:
            raise ValueError("number of bits must be non-negative")
        if k == 0:
            return 0
        if k <= 32:
            return self._next_word() >> (32 - k)
        result = 0
        shift = 0
        while k > 0:
            word = self._next_word()
            if k < 32:
                word >>= 32 - k
            result |= word << shift
            shift += 32
            k -= 32
        return result
