"""Structured event tracing.

A :class:`TraceLog` is an append-only record of timestamped events.
The medium records every transmission, decode and corruption into an
attached log (see :attr:`repro.phy.medium.Medium.trace`), and the MACs
record their internal decisions into the same log; the conformance
checker (:mod:`repro.validation`) replays the log against IEEE 802.11
sequencing rules, and tests use it to assert exact protocol behaviour
without poking at internals.

Recorded event kinds
--------------------
Medium events (the channel's ground truth):

``tx_start``
    A frame went on the air (frame kind, dst, end time, NAV duration,
    seq/attempt/assigned-backoff header fields).
``decode`` / ``corrupt``
    A listener decoded a frame / sensed one it could not decode.
    Decodes carry both the true transmitter (``src``) and the address
    the frame claims (``frame_src``), which differ under spoofing;
    header provenance (seq, attempt, assigned backoff) is on the
    matching ``tx_start`` to keep this hot event small.
``fault_drop`` / ``jam_start`` / ``jam_end``
    Fault-injection activity (see :mod:`repro.faults`).

MAC events (one node's protocol decisions):

``backoff_start`` / ``backoff_commit``
    A countdown began (nominal vs. policy-effective slots, backoff
    stage, destination, the node's slot length, whether the node runs
    the modified protocol) / reached zero and committed to transmit.
``defer`` / ``ifs``
    The interframe space chosen at a busy->idle edge / consumed by the
    backoff timer — EIFS after a reception error, DIFS otherwise.
    ``ifs`` records unconditionally; ``defer`` records only when
    informative (EIFS debt pending, or a non-DIFS choice), because
    idle edges are the most frequent MAC event and an uneventful DIFS
    deference carries no checkable signal.
``assignment``
    A CORRECT sender stored a receiver-assigned backoff (which CTS or
    ACK carried it, the value carried, the value stored after any
    audit correction).
``mac_state``
    Sender state-machine transition (``frm`` -> ``to``).
``mac_crash`` / ``mac_restart``
    Fault-injected crash/restart of the MAC.

Tracing is off by default and adds no overhead when disabled: every
producer guards on ``trace is not None`` and records nothing else.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, NamedTuple, Optional


class TraceEvent(NamedTuple):
    """One recorded event.

    A NamedTuple rather than a dataclass: ``record`` sits on the hot
    path of every traced transmission/decode, and tuple construction
    is severalfold cheaper than a frozen dataclass's
    ``object.__setattr__`` per field.

    Attributes
    ----------
    time:
        Simulation time (microseconds).
    kind:
        Event type, e.g. ``"tx_start"``, ``"tx_end"``, ``"decode"``,
        ``"corrupt"``.
    node:
        The node the event concerns (transmitter for tx events,
        listener for reception events).
    data:
        Free-form event payload (frame kind, peer, duration, ...).
    """

    time: int
    kind: str
    node: int
    data: Dict[str, object]


class TraceLog:
    """Append-only, queryable event log."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def record(self, time: int, kind: str, node: int, **data: object) -> None:
        """Append one event (``data`` is captured, not copied)."""
        self.events.append(TraceEvent(time, kind, node, data))

    def filter(
        self,
        kind: Optional[str] = None,
        node: Optional[int] = None,
    ) -> Iterator[TraceEvent]:
        """Iterate events matching the given criteria, in time order."""
        for event in self.events:
            if kind is not None and event.kind != kind:
                continue
            if node is not None and event.node != node:
                continue
            yield event

    def counts(self) -> Dict[str, int]:
        """Events per kind (observability / report tables)."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceLog({len(self.events)} events)"
