"""Structured event tracing.

A :class:`TraceLog` is an append-only record of timestamped events.
The medium records every transmission, decode and corruption into an
attached log (see :attr:`repro.phy.medium.Medium.trace`); the
conformance checker (:mod:`repro.validation`) replays the log against
IEEE 802.11 sequencing rules, and tests use it to assert exact
protocol behaviour without poking at internals.

Tracing is off by default and adds no overhead when disabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event.

    Attributes
    ----------
    time:
        Simulation time (microseconds).
    kind:
        Event type, e.g. ``"tx_start"``, ``"tx_end"``, ``"decode"``,
        ``"corrupt"``.
    node:
        The node the event concerns (transmitter for tx events,
        listener for reception events).
    data:
        Free-form event payload (frame kind, peer, duration, ...).
    """

    time: int
    kind: str
    node: int
    data: Dict[str, object] = field(default_factory=dict)


class TraceLog:
    """Append-only, queryable event log."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def record(self, time: int, kind: str, node: int, **data: object) -> None:
        """Append one event."""
        self.events.append(TraceEvent(time=time, kind=kind, node=node,
                                      data=dict(data)))

    def filter(
        self,
        kind: Optional[str] = None,
        node: Optional[int] = None,
    ) -> Iterator[TraceEvent]:
        """Iterate events matching the given criteria, in time order."""
        for event in self.events:
            if kind is not None and event.kind != kind:
                continue
            if node is not None and event.node != node:
                continue
            yield event

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceLog({len(self.events)} events)"
