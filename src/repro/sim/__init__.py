"""Discrete-event simulation kernel (scheduler + seeded RNG streams)."""

from repro.sim.engine import EventHandle, SimulationError, Simulator
from repro.sim.rng import RngRegistry, binomial, geometric_skip
from repro.sim.trace import TraceEvent, TraceLog

__all__ = [
    "EventHandle",
    "SimulationError",
    "Simulator",
    "RngRegistry",
    "binomial",
    "geometric_skip",
    "TraceEvent",
    "TraceLog",
]
