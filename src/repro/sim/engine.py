"""Discrete-event simulation kernel.

The kernel is intentionally small: a priority queue of timestamped
events, a monotonically advancing clock, and cancellable event handles.
It plays the role ns-2's scheduler plays for the paper's evaluation.

Time is kept as an integer number of *microseconds*.  All IEEE 802.11
timing constants in this reproduction are integer microseconds (slot
time 20 us, SIFS 10 us, DIFS 50 us), so integer time avoids the float
drift that would otherwise desynchronise slot boundaries over a
50-second run.

Example
-------
>>> sim = Simulator()
>>> fired = []
>>> handle = sim.schedule(100, lambda: fired.append(sim.now))
>>> sim.run()
>>> fired
[100]
"""

from __future__ import annotations

import heapq
import itertools
import time as _time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

# Heap entries are plain ``(time, seq, handle)`` tuples: ordering is
# (time, sequence) so that events scheduled for the same timestamp fire
# in FIFO order -- a property several MAC races rely on (e.g. two
# stations whose backoff counters expire on the same slot boundary must
# both observe an idle medium before either transmission begins).  The
# monotonically increasing ``seq`` also guarantees tuple comparison
# never reaches the (incomparable) handle element.  Tuples beat a
# dataclass here: the scheduler allocates and compares one entry per
# event, and this is the hottest allocation in the kernel.


class SimulationError(RuntimeError):
    """Raised when the kernel is used inconsistently.

    Examples include scheduling an event in the past or running a
    simulator that was already stopped.
    """


class SimulationStalled(SimulationError):
    """A watchdog guard tripped: the run exceeded its event, simulated
    time or wall-clock budget.

    Carries the recent dispatch history (:attr:`trace`) so a stall —
    typically two MACs re-scheduling each other in a tight loop — can
    be diagnosed from the exception alone.
    """

    def __init__(self, reason: str, trace: List[Tuple[int, str]]):
        lines = "\n".join(f"  t={t} us  {desc}" for t, desc in trace)
        super().__init__(
            f"simulation stalled: {reason}\nmost recent events:\n{lines}"
            if trace else f"simulation stalled: {reason}"
        )
        self.reason = reason
        self.trace = trace


@dataclass(frozen=True)
class Watchdog:
    """Budget guards for :meth:`Simulator.run`.

    Any guard left ``None`` is disabled.  ``max_wall_s`` is checked
    every ``check_interval`` events (a ``time.monotonic`` call per
    event would dominate the kernel's hot loop); the others are exact.
    The watched loop also keeps the last ``trace_len`` dispatches for
    the :class:`SimulationStalled` report.
    """

    max_events: Optional[int] = None
    max_wall_s: Optional[float] = None
    max_sim_us: Optional[int] = None
    trace_len: int = 32
    check_interval: int = 256

    def __post_init__(self):
        if self.trace_len < 1:
            raise ValueError("trace_len must be >= 1")
        if self.check_interval < 1:
            raise ValueError("check_interval must be >= 1")


def _describe_callback(callback: Callable[[], None]) -> str:
    """Human-readable event label for watchdog traces."""
    name = getattr(callback, "__qualname__", None) or repr(callback)
    owner = getattr(callback, "__self__", None)
    node = getattr(owner, "node_id", None)
    return f"{name} [node {node}]" if node is not None else name


class EventHandle:
    """A cancellable handle for a scheduled callback.

    Cancellation is lazy: the heap entry stays queued but is skipped
    when popped.  This is O(1) and is the standard approach for
    simulators with frequent timer cancellation (MAC timeouts are
    cancelled on nearly every successful frame exchange).
    """

    __slots__ = ("time", "callback", "cancelled", "fired")

    def __init__(self, time: int, callback: Callable[[], None]):
        self.time = time
        self.callback = callback
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent the callback from firing.  Safe to call repeatedly."""
        self.cancelled = True

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and may still fire."""
        return not self.cancelled and not self.fired


class Simulator:
    """Event-driven simulator with integer-microsecond time.

    Parameters
    ----------
    until:
        Optional default horizon (microseconds) used by :meth:`run`
        when no explicit horizon is passed.
    profile:
        When true, tally dispatched events per subsystem (the module of
        each callback) into :attr:`event_counts`.  Costs one dict
        update per event, never touches any RNG, and is off by default
        so the hot path stays lean.
    watchdog:
        Optional :class:`Watchdog`.  When set, :meth:`run` uses a
        guarded dispatch loop that raises :class:`SimulationStalled`
        (with a recent-event trace) once any budget is exceeded; when
        ``None`` (the default) the original unguarded fast loop runs
        and per-event cost is unchanged.
    """

    def __init__(self, until: Optional[int] = None, profile: bool = False,
                 watchdog: Optional["Watchdog"] = None):
        self.now: int = 0
        self._queue: list[tuple[int, int, EventHandle]] = []
        self._seq = itertools.count()
        self._default_until = until
        self._running = False
        self._stopped = False
        self.events_processed = 0
        #: Per-module dispatch counts; populated only under ``profile``.
        self.event_counts: Dict[str, int] = {}
        self._profile = profile
        self.watchdog = watchdog

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` microseconds from now.

        Returns an :class:`EventHandle` that can be cancelled.  A zero
        delay is allowed and fires after all events already queued for
        the current timestamp.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback)

    def schedule_at(self, time: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute simulation ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time}, current time is {self.now}"
            )
        handle = EventHandle(time, callback)
        heapq.heappush(self._queue, (time, next(self._seq), handle))
        return handle

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None) -> None:
        """Process events until the queue drains or ``until`` is reached.

        When the horizon is hit, ``now`` is advanced exactly to the
        horizon so that rate computations (bits / elapsed time) use the
        intended duration.
        """
        horizon = until if until is not None else self._default_until
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        try:
            if self.watchdog is None:
                self._run_fast(horizon)
            else:
                self._run_watched(horizon, self.watchdog)
            if horizon is not None and self.now < horizon and not self._stopped:
                self.now = horizon
        finally:
            self._running = False

    def _run_fast(self, horizon: Optional[int]) -> None:
        queue = self._queue
        heappop = heapq.heappop
        while queue and not self._stopped:
            event_time = queue[0][0]
            if horizon is not None and event_time > horizon:
                break
            _, _, event = heappop(queue)
            if event.cancelled:
                continue
            if event_time < self.now:  # pragma: no cover - defensive
                raise SimulationError("event queue went backwards in time")
            self.now = event_time
            event.fired = True
            self.events_processed += 1
            if self._profile:
                module = getattr(
                    event.callback, "__module__", None
                ) or "unknown"
                self.event_counts[module] = (
                    self.event_counts.get(module, 0) + 1
                )
            event.callback()

    def _run_watched(self, horizon: Optional[int], dog: "Watchdog") -> None:
        """The fast loop plus budget guards and a rolling event trace.

        Duplicated rather than folded into :meth:`_run_fast` so the
        unguarded path keeps zero per-event overhead.
        """
        queue = self._queue
        heappop = heapq.heappop
        trace: deque = deque(maxlen=dog.trace_len)
        dispatched = 0
        deadline = (
            _time.monotonic() + dog.max_wall_s
            if dog.max_wall_s is not None else None
        )
        while queue and not self._stopped:
            event_time = queue[0][0]
            if horizon is not None and event_time > horizon:
                break
            _, _, event = heappop(queue)
            if event.cancelled:
                continue
            if event_time < self.now:  # pragma: no cover - defensive
                raise SimulationError("event queue went backwards in time")
            if dog.max_sim_us is not None and event_time > dog.max_sim_us:
                raise SimulationStalled(
                    f"simulated time {event_time} us exceeds the "
                    f"{dog.max_sim_us} us budget", list(trace),
                )
            dispatched += 1
            if dog.max_events is not None and dispatched > dog.max_events:
                raise SimulationStalled(
                    f"dispatched more than {dog.max_events} events in one "
                    "run() call", list(trace),
                )
            if deadline is not None and dispatched % dog.check_interval == 0:
                if _time.monotonic() > deadline:
                    raise SimulationStalled(
                        f"wall clock exceeded the {dog.max_wall_s} s budget",
                        list(trace),
                    )
            self.now = event_time
            event.fired = True
            self.events_processed += 1
            trace.append((event_time, _describe_callback(event.callback)))
            if self._profile:
                module = getattr(
                    event.callback, "__module__", None
                ) or "unknown"
                self.event_counts[module] = (
                    self.event_counts.get(module, 0) + 1
                )
            event.callback()

    def stop(self) -> None:
        """Stop processing after the current event completes."""
        self._stopped = True

    def peek(self) -> Optional[int]:
        """Timestamp of the next pending event, or ``None`` if drained."""
        while self._queue and self._queue[0][2].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0][0] if self._queue else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self.now}, pending={len(self._queue)}, "
            f"processed={self.events_processed})"
        )
