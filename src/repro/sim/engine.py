"""Discrete-event simulation kernel.

The kernel is intentionally small: a priority queue of timestamped
events, a monotonically advancing clock, and cancellable event handles.
It plays the role ns-2's scheduler plays for the paper's evaluation.

Time is kept as an integer number of *microseconds*.  All IEEE 802.11
timing constants in this reproduction are integer microseconds (slot
time 20 us, SIFS 10 us, DIFS 50 us), so integer time avoids the float
drift that would otherwise desynchronise slot boundaries over a
50-second run.

Example
-------
>>> sim = Simulator()
>>> fired = []
>>> handle = sim.schedule(100, lambda: fired.append(sim.now))
>>> sim.run()
>>> fired
[100]
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, Optional

# Heap entries are plain ``(time, seq, handle)`` tuples: ordering is
# (time, sequence) so that events scheduled for the same timestamp fire
# in FIFO order -- a property several MAC races rely on (e.g. two
# stations whose backoff counters expire on the same slot boundary must
# both observe an idle medium before either transmission begins).  The
# monotonically increasing ``seq`` also guarantees tuple comparison
# never reaches the (incomparable) handle element.  Tuples beat a
# dataclass here: the scheduler allocates and compares one entry per
# event, and this is the hottest allocation in the kernel.


class SimulationError(RuntimeError):
    """Raised when the kernel is used inconsistently.

    Examples include scheduling an event in the past or running a
    simulator that was already stopped.
    """


class EventHandle:
    """A cancellable handle for a scheduled callback.

    Cancellation is lazy: the heap entry stays queued but is skipped
    when popped.  This is O(1) and is the standard approach for
    simulators with frequent timer cancellation (MAC timeouts are
    cancelled on nearly every successful frame exchange).
    """

    __slots__ = ("time", "callback", "cancelled", "fired")

    def __init__(self, time: int, callback: Callable[[], None]):
        self.time = time
        self.callback = callback
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent the callback from firing.  Safe to call repeatedly."""
        self.cancelled = True

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and may still fire."""
        return not self.cancelled and not self.fired


class Simulator:
    """Event-driven simulator with integer-microsecond time.

    Parameters
    ----------
    until:
        Optional default horizon (microseconds) used by :meth:`run`
        when no explicit horizon is passed.
    profile:
        When true, tally dispatched events per subsystem (the module of
        each callback) into :attr:`event_counts`.  Costs one dict
        update per event, never touches any RNG, and is off by default
        so the hot path stays lean.
    """

    def __init__(self, until: Optional[int] = None, profile: bool = False):
        self.now: int = 0
        self._queue: list[tuple[int, int, EventHandle]] = []
        self._seq = itertools.count()
        self._default_until = until
        self._running = False
        self._stopped = False
        self.events_processed = 0
        #: Per-module dispatch counts; populated only under ``profile``.
        self.event_counts: Dict[str, int] = {}
        self._profile = profile

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` microseconds from now.

        Returns an :class:`EventHandle` that can be cancelled.  A zero
        delay is allowed and fires after all events already queued for
        the current timestamp.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback)

    def schedule_at(self, time: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute simulation ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time}, current time is {self.now}"
            )
        handle = EventHandle(time, callback)
        heapq.heappush(self._queue, (time, next(self._seq), handle))
        return handle

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None) -> None:
        """Process events until the queue drains or ``until`` is reached.

        When the horizon is hit, ``now`` is advanced exactly to the
        horizon so that rate computations (bits / elapsed time) use the
        intended duration.
        """
        horizon = until if until is not None else self._default_until
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        queue = self._queue
        heappop = heapq.heappop
        try:
            while queue and not self._stopped:
                event_time = queue[0][0]
                if horizon is not None and event_time > horizon:
                    break
                _, _, event = heappop(queue)
                if event.cancelled:
                    continue
                if event_time < self.now:  # pragma: no cover - defensive
                    raise SimulationError("event queue went backwards in time")
                self.now = event_time
                event.fired = True
                self.events_processed += 1
                if self._profile:
                    module = getattr(
                        event.callback, "__module__", None
                    ) or "unknown"
                    self.event_counts[module] = (
                        self.event_counts.get(module, 0) + 1
                    )
                event.callback()
            if horizon is not None and self.now < horizon and not self._stopped:
                self.now = horizon
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop processing after the current event completes."""
        self._stopped = True

    def peek(self) -> Optional[int]:
        """Timestamp of the next pending event, or ``None`` if drained."""
        while self._queue and self._queue[0][2].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0][0] if self._queue else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self.now}, pending={len(self._queue)}, "
            f"processed={self.events_processed})"
        )
