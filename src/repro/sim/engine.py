"""Discrete-event simulation kernel.

The kernel is intentionally small: a priority queue of timestamped
events, a monotonically advancing clock, and cancellable event handles.
It plays the role ns-2's scheduler plays for the paper's evaluation.

Time is kept as an integer number of *microseconds*.  All IEEE 802.11
timing constants in this reproduction are integer microseconds (slot
time 20 us, SIFS 10 us, DIFS 50 us), so integer time avoids the float
drift that would otherwise desynchronise slot boundaries over a
50-second run.

Example
-------
>>> sim = Simulator()
>>> fired = []
>>> handle = sim.schedule(100, lambda: fired.append(sim.now))
>>> sim.run()
>>> fired
[100]
"""

from __future__ import annotations

import heapq
import itertools
import time as _time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

# Heap entries are plain ``(time, seq, obj)`` tuples: ordering is
# (time, sequence) so that events scheduled for the same timestamp fire
# in FIFO order -- a property several MAC races rely on (e.g. two
# stations whose backoff counters expire on the same slot boundary must
# both observe an idle medium before either transmission begins).  The
# monotonically increasing ``seq`` also guarantees tuple comparison
# never reaches the (incomparable) third element.  Tuples beat a
# dataclass here: the scheduler allocates and compares one entry per
# event, and this is the hottest allocation in the kernel.
#
# ``obj`` is either an :class:`EventHandle` (cancellable timers) or a
# bare callable scheduled through :meth:`Simulator.call_later` /
# :meth:`Simulator.call_at`.  The bare form exists for the dominant
# fire-and-forget patterns profiled by ``REPRO_PROFILE`` — transmission
# completions, SIFS-spaced response chains, IFS waits that are never
# cancelled — where allocating a handle per event is pure overhead.


#: Effectively-infinite horizon sentinel: comparing against one int is
#: cheaper in the dispatch loop than re-testing ``horizon is None``.
INFINITE_TIME = 1 << 62


class SimulationError(RuntimeError):
    """Raised when the kernel is used inconsistently.

    Examples include scheduling an event in the past or running a
    simulator that was already stopped.
    """


class SimulationStalled(SimulationError):
    """A watchdog guard tripped: the run exceeded its event, simulated
    time or wall-clock budget.

    Carries the recent dispatch history (:attr:`trace`) so a stall —
    typically two MACs re-scheduling each other in a tight loop — can
    be diagnosed from the exception alone.
    """

    def __init__(self, reason: str, trace: List[Tuple[int, str]]):
        lines = "\n".join(f"  t={t} us  {desc}" for t, desc in trace)
        super().__init__(
            f"simulation stalled: {reason}\nmost recent events:\n{lines}"
            if trace else f"simulation stalled: {reason}"
        )
        self.reason = reason
        self.trace = trace


@dataclass(frozen=True)
class Watchdog:
    """Budget guards for :meth:`Simulator.run`.

    Any guard left ``None`` is disabled.  ``max_wall_s`` is checked
    every ``check_interval`` events (a ``time.monotonic`` call per
    event would dominate the kernel's hot loop); the others are exact.
    The watched loop also keeps the last ``trace_len`` dispatches for
    the :class:`SimulationStalled` report.
    """

    max_events: Optional[int] = None
    max_wall_s: Optional[float] = None
    max_sim_us: Optional[int] = None
    trace_len: int = 32
    check_interval: int = 256

    def __post_init__(self):
        if self.trace_len < 1:
            raise ValueError("trace_len must be >= 1")
        if self.check_interval < 1:
            raise ValueError("check_interval must be >= 1")


def _describe_callback(callback: Callable[[], None]) -> str:
    """Human-readable event label for watchdog traces."""
    name = getattr(callback, "__qualname__", None) or repr(callback)
    owner = getattr(callback, "__self__", None)
    node = getattr(owner, "node_id", None)
    return f"{name} [node {node}]" if node is not None else name


class EventHandle:
    """A cancellable handle for a scheduled callback.

    Cancellation is lazy: the heap entry stays queued but is skipped
    when popped.  This is O(1) and is the standard approach for
    simulators with frequent timer cancellation (MAC timeouts are
    cancelled on nearly every successful frame exchange).
    """

    __slots__ = ("time", "callback", "cancelled", "fired")

    def __init__(self, time: int, callback: Callable[[], None]):
        self.time = time
        self.callback = callback
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent the callback from firing.  Safe to call repeatedly."""
        self.cancelled = True

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and may still fire."""
        return not self.cancelled and not self.fired


class Simulator:
    """Event-driven simulator with integer-microsecond time.

    Parameters
    ----------
    until:
        Optional default horizon (microseconds) used by :meth:`run`
        when no explicit horizon is passed.
    profile:
        When true, tally dispatched events per subsystem (the module of
        each callback) into :attr:`event_counts`.  Costs one dict
        update per event, never touches any RNG, and is off by default
        so the hot path stays lean.
    watchdog:
        Optional :class:`Watchdog`.  When set, :meth:`run` uses a
        guarded dispatch loop that raises :class:`SimulationStalled`
        (with a recent-event trace) once any budget is exceeded; when
        ``None`` (the default) the original unguarded fast loop runs
        and per-event cost is unchanged.
    """

    def __init__(self, until: Optional[int] = None, profile: bool = False,
                 watchdog: Optional["Watchdog"] = None):
        self.now: int = 0
        self._queue: list[tuple[int, int, EventHandle]] = []
        self._seq = itertools.count()
        self._default_until = until
        self._running = False
        self._stopped = False
        self.events_processed = 0
        #: Per-module dispatch counts; populated only under ``profile``.
        self.event_counts: Dict[str, int] = {}
        self._profile = profile
        self.watchdog = watchdog

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` microseconds from now.

        Returns an :class:`EventHandle` that can be cancelled.  A zero
        delay is allowed and fires after all events already queued for
        the current timestamp.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        time = self.now + delay
        handle = EventHandle(time, callback)
        heapq.heappush(self._queue, (time, next(self._seq), handle))
        return handle

    def schedule_at(self, time: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute simulation ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time}, current time is {self.now}"
            )
        handle = EventHandle(time, callback)
        heapq.heappush(self._queue, (time, next(self._seq), handle))
        return handle

    def call_later(self, delay: int, callback: Callable[[], None]) -> None:
        """Fire-and-forget :meth:`schedule`: no handle, not cancellable.

        The hot-path variant for callbacks that are never cancelled
        (transmission completions, SIFS response chains): the heap
        entry carries the bare callable, so no :class:`EventHandle` is
        allocated and dispatch skips the cancellation check.  Fires in
        the same FIFO-per-timestamp order as handle events.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        heapq.heappush(
            self._queue, (self.now + delay, next(self._seq), callback)
        )

    def call_at(self, time: int, callback: Callable[[], None]) -> None:
        """Absolute-time :meth:`call_later` (fire-and-forget)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time}, current time is {self.now}"
            )
        heapq.heappush(self._queue, (time, next(self._seq), callback))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None) -> None:
        """Process events until the queue drains or ``until`` is reached.

        When the horizon is hit, ``now`` is advanced exactly to the
        horizon so that rate computations (bits / elapsed time) use the
        intended duration.
        """
        horizon = until if until is not None else self._default_until
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        try:
            if self.watchdog is None:
                self._run_fast(horizon)
            else:
                self._run_watched(horizon, self.watchdog)
            if horizon is not None and self.now < horizon and not self._stopped:
                self.now = horizon
        finally:
            self._running = False

    def _run_fast(self, horizon: Optional[int]) -> None:
        # Everything the loop touches per event is bound to a local:
        # at ~100 ns of useful work per dispatch, attribute lookups on
        # ``self`` are a measurable fraction of the kernel's cost.
        queue = self._queue
        heappop = heapq.heappop
        profile = self._profile
        handle_cls = EventHandle
        limit = INFINITE_TIME if horizon is None else horizon
        events = self.events_processed
        try:
            while queue and not self._stopped:
                entry = queue[0]
                event_time = entry[0]
                if event_time > limit:
                    break
                heappop(queue)
                obj = entry[2]
                if obj.__class__ is handle_cls:
                    if obj.cancelled:
                        continue
                    obj.fired = True
                    callback = obj.callback
                else:
                    callback = obj
                if event_time < self.now:  # pragma: no cover - defensive
                    raise SimulationError("event queue went backwards in time")
                self.now = event_time
                events += 1
                if profile:
                    module = getattr(
                        callback, "__module__", None
                    ) or "unknown"
                    self.event_counts[module] = (
                        self.event_counts.get(module, 0) + 1
                    )
                callback()
        finally:
            self.events_processed = events

    def _run_watched(self, horizon: Optional[int], dog: "Watchdog") -> None:
        """The fast loop plus budget guards and a rolling event trace.

        Duplicated rather than folded into :meth:`_run_fast` so the
        unguarded path keeps zero per-event overhead.
        """
        queue = self._queue
        heappop = heapq.heappop
        trace: deque = deque(maxlen=dog.trace_len)
        dispatched = 0
        deadline = (
            _time.monotonic() + dog.max_wall_s
            if dog.max_wall_s is not None else None
        )
        handle_cls = EventHandle
        while queue and not self._stopped:
            entry = queue[0]
            event_time = entry[0]
            if horizon is not None and event_time > horizon:
                break
            heappop(queue)
            obj = entry[2]
            if obj.__class__ is handle_cls:
                if obj.cancelled:
                    continue
                obj.fired = True
                callback = obj.callback
            else:
                callback = obj
            if event_time < self.now:  # pragma: no cover - defensive
                raise SimulationError("event queue went backwards in time")
            if dog.max_sim_us is not None and event_time > dog.max_sim_us:
                raise SimulationStalled(
                    f"simulated time {event_time} us exceeds the "
                    f"{dog.max_sim_us} us budget", list(trace),
                )
            dispatched += 1
            if dog.max_events is not None and dispatched > dog.max_events:
                raise SimulationStalled(
                    f"dispatched more than {dog.max_events} events in one "
                    "run() call", list(trace),
                )
            if deadline is not None and dispatched % dog.check_interval == 0:
                if _time.monotonic() > deadline:
                    raise SimulationStalled(
                        f"wall clock exceeded the {dog.max_wall_s} s budget",
                        list(trace),
                    )
            self.now = event_time
            self.events_processed += 1
            trace.append((event_time, _describe_callback(callback)))
            if self._profile:
                module = getattr(
                    callback, "__module__", None
                ) or "unknown"
                self.event_counts[module] = (
                    self.event_counts.get(module, 0) + 1
                )
            callback()

    def stop(self) -> None:
        """Stop processing after the current event completes."""
        self._stopped = True

    def peek(self) -> Optional[int]:
        """Timestamp of the next pending event, or ``None`` if drained."""
        while self._queue:
            obj = self._queue[0][2]
            if obj.__class__ is EventHandle and obj.cancelled:
                heapq.heappop(self._queue)
            else:
                break
        return self._queue[0][0] if self._queue else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self.now}, pending={len(self._queue)}, "
            f"processed={self.events_processed})"
        )
