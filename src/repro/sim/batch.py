"""Replica-batched scenario execution.

A figure sweep runs the *same* scenario under many seeds (the paper
averages 30 seeded runs per data point).  :func:`run_scenario_batch`
advances all those replicas inside one process with a shared
:class:`~repro.sim.vecrng.VectorStreamPool`, so the per-listener lazy
binomial draws of every replica's marginal transmission edges resolve
as single vectorized pool operations instead of per-listener Python
call chains (see ``Medium._apply_marginal_deficits``).  Replicas are
advanced in lockstep time windows, which keeps the pool's buffers for
all replicas warm and leaves room for cross-replica refill batching.

Bit-identity: pooled streams reproduce ``random.Random`` draw-for-draw
(:mod:`repro.sim.vecrng`), the deferred deficit application only moves
*when* a cumulative counter is incremented within one event (nothing
reads it in between), and replica interleaving is irrelevant because
replicas share no mutable state.  ``run_scenario_batch`` therefore
returns exactly the :class:`RunResult` values the scalar
:func:`~repro.experiments.scenarios.run_scenario` would produce — a
property enforced by the hypothesis test in
``tests/test_batch_equivalence.py``.

Applicability (see ``docs/PERFORMANCE.md`` for the full matrix): any
config the scalar path accepts *except* fault-injected runs, which
:func:`batchable` rejects so callers (the experiment executor) fall
back to the scalar path run-by-run.  Tracing is a build-time argument
rather than a config field and is likewise scalar-only.
"""

from __future__ import annotations

import gc
from typing import List, Optional, Sequence

from repro.experiments.scenarios import RunResult, ScenarioConfig, build_scenario
from repro.sim.vecrng import HAVE_NUMPY

#: Number of lockstep windows a batch horizon is divided into.
DEFAULT_WINDOWS = 32


def batchable(config: ScenarioConfig) -> bool:
    """Whether the batch fast path applies to ``config``.

    Fault-injected runs stay scalar: injectors re-enter MACs through
    crash/restart and jamming paths that the batched marginal-edge
    sweep does not model, and campaign semantics (quarantine, retry)
    are owned by the executor's scalar supervision anyway.
    """
    if not HAVE_NUMPY:
        return False
    faults = config.faults
    return faults is None or faults.is_noop()


def run_scenario_batch(
    configs: Sequence[ScenarioConfig],
    windows: int = DEFAULT_WINDOWS,
    profile: Optional[bool] = None,
) -> List[RunResult]:
    """Run same-scenario, different-seed replicas through one pool.

    ``configs`` must agree on every field except ``seed`` and every
    config must satisfy :func:`batchable`; violations raise
    ``ValueError``.  Results are returned in input order and are
    bit-identical to scalar ``run_scenario`` output.
    """
    if not configs:
        return []
    base = configs[0]
    for config in configs:
        if not batchable(config):
            raise ValueError(
                "config is not batchable (fault-injected runs must use "
                "the scalar path)"
            )
        if config.with_seed(base.seed) != base:
            raise ValueError(
                "batch replicas must differ only in seed; got divergent "
                f"configs (seed {config.seed} vs {base.seed})"
            )
    from repro.sim.vecrng import VectorStreamPool

    pool = VectorStreamPool(max(64, len(configs) * 8))
    replicas = []
    for config in configs:
        sim, nodes, collector = build_scenario(
            config, profile=profile, vector_pool=pool
        )
        for node in nodes:
            node.start()
        replicas.append((config, sim, collector))
    horizon = base.duration_us
    step = max(horizon // max(windows, 1), 1)
    at = 0
    # With many replicas alive at once, generational GC passes scan a
    # working set proportional to the batch size on every collection
    # threshold — a measured ~25% of batch wall time.  The kernel's
    # event churn is acyclic (refcounting reclaims it), so collection
    # is suspended for the run and any accumulated cycles are swept
    # once at the end.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        while at < horizon:
            at = min(at + step, horizon)
            for _, sim, _ in replicas:
                sim.run(until=at)
    finally:
        if gc_was_enabled:
            gc.enable()
            gc.collect()
    return [
        RunResult(
            config=config,
            collector=collector,
            events_processed=sim.events_processed,
            event_counts=dict(sim.event_counts),
            faults_injected={},
        )
        for config, sim, collector in replicas
    ]
