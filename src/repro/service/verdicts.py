"""First-flag verdict log: the service's durable-ish verdict memory.

The sharded store bounds per-sender *detector* state by evicting cold
senders; a flagged sender must not be forgotten with it.  The
:class:`VerdictLog` keeps one small record per first flag — the
sender, when it flagged, how long it took from first sight — in a
capped append-only list with monotonically increasing event ids, so:

* ``/verdicts`` can answer "who has ever been flagged" even after the
  flagged sender's detector state aged out of its shard;
* ``/watch`` long-polls can resume from the last event id they saw
  without missing a flag (ids are dense, so a gap is detectable);
* the bench can compute p99 first-sight-to-flag latency from the
  recorded wall-clock pairs without instrumenting the hot path.

When the cap is reached the *oldest* events are dropped and counted;
every read therefore reports ``oldest`` (the oldest retained id, or
``None`` on an empty log) and ``dropped`` alongside the events, so a
watcher resuming from an id older than the retained window can see
that flags fell out of its view instead of silently missing them:
``after + 1 < oldest`` means ids in ``(after, oldest)`` are gone.
"""

from __future__ import annotations

from threading import Condition
from typing import Dict, List, Optional, Tuple

from repro.service.store import FlagEvent

#: Default first-flag events retained (one per ever-flagged sender).
DEFAULT_VERDICT_CAP = 1_000_000


def event_payload(event_id: int, event: FlagEvent) -> Dict[str, object]:
    """The wire-facing dict for one logged flag event."""
    return {
        "id": event_id,
        "sender": event.sender,
        "time_us": event.time_us,
        "observations": event.observations,
        "latency_s": round(event.wall - event.first_obs_wall, 6),
    }


class VerdictLog:
    """Append-only, capped log of :class:`FlagEvent` with watch support."""

    def __init__(self, cap: int = DEFAULT_VERDICT_CAP):
        if cap < 1:
            raise ValueError(f"cap must be >= 1, got {cap}")
        self.cap = cap
        self._condition = Condition()
        self._events: List[Tuple[int, FlagEvent]] = []
        self._next_id = 1
        self._dropped = 0

    # ------------------------------------------------------------------
    def publish(self, event: FlagEvent) -> int:
        """Append a first-flag event; wakes every ``/watch`` waiter."""
        with self._condition:
            event_id = self._next_id
            self._next_id += 1
            self._events.append((event_id, event))
            if len(self._events) > self.cap:
                del self._events[0]
                self._dropped += 1
            self._condition.notify_all()
            return event_id

    # ------------------------------------------------------------------
    def events_after(
        self, after: int = 0, limit: Optional[int] = None,
    ) -> Tuple[List[Dict[str, object]], int, Dict[str, object]]:
        """Events with id > ``after`` as dicts, the newest id, and the
        retention info dict (``oldest`` retained id + ``dropped``
        count).

        The returned id is what a poller passes back as ``after`` on
        its next call, whether or not anything new arrived.
        """
        with self._condition:
            return self._snapshot(after, limit)

    def wait_for(
        self,
        after: int = 0,
        timeout: float = 30.0,
        limit: Optional[int] = None,
    ) -> Tuple[List[Dict[str, object]], int, Dict[str, object]]:
        """Long-poll: block until an event with id > ``after`` exists
        (or ``timeout`` seconds pass), then return like
        :meth:`events_after`."""
        with self._condition:
            self._condition.wait_for(
                lambda: self._next_id > after + 1, timeout=timeout
            )
            return self._snapshot(after, limit)

    def raw_events_after(
        self, after: int = 0, limit: Optional[int] = None,
    ) -> Tuple[List[Tuple[int, FlagEvent]], int, Dict[str, object]]:
        """Like :meth:`events_after` but with raw ``(id, FlagEvent)``
        pairs — the scatter-gather path needs the original wall clocks
        to merge worker streams into one chronological order."""
        with self._condition:
            fresh = [
                (event_id, event)
                for event_id, event in self._events
                if event_id > after
            ]
            newest = self._next_id - 1
            if limit is not None and len(fresh) > limit:
                fresh = fresh[:limit]
                newest = fresh[-1][0]
            return fresh, newest, self._retention()

    def _snapshot(
        self, after: int, limit: Optional[int],
    ) -> Tuple[List[Dict[str, object]], int, Dict[str, object]]:
        newest = self._next_id - 1
        fresh = [
            event_payload(event_id, event)
            for event_id, event in self._events
            if event_id > after
        ]
        if limit is not None and len(fresh) > limit:
            fresh = fresh[:limit]
            newest = fresh[-1]["id"]
        return fresh, newest, self._retention()

    def _retention(self) -> Dict[str, object]:
        return {
            "oldest": self._events[0][0] if self._events else None,
            "dropped": self._dropped,
        }

    # ------------------------------------------------------------------
    def latencies(self) -> List[float]:
        """First-sight-to-flag wall latencies (seconds) of every
        retained event, in publish order (the bench's p99 input)."""
        with self._condition:
            return [
                event.wall - event.first_obs_wall
                for _, event in self._events
            ]

    def stats(self) -> Dict[str, object]:
        with self._condition:
            return {
                "flags": self._next_id - 1,
                "retained": len(self._events),
                "dropped": self._dropped,
                "oldest": self._events[0][0] if self._events else None,
                "cap": self.cap,
            }

    def __len__(self) -> int:
        with self._condition:
            return len(self._events)
