"""Multi-process ingest: N workers, disjoint crc32 key ranges.

A single ``DetectionService`` tops out near the one-interpreter
ceiling — every JSON decode and detector update serializes on one
GIL.  This module scales past it with the only partition the data
admits: *senders*.  Detector state is strictly per-sender, so ``N``
worker processes each owning the senders in one crc32 residue class
(:func:`~repro.service.store.worker_of`) share nothing at all; the
front-end process routes wire lines by scanning out the sender key
(:func:`~repro.service.codec.sender_of_line` — no JSON parse on the
routing path), batches them per worker, and ships each batch down
that worker's pipe.  All the expensive work — strict decode, store
lookup, detector update, flag bookkeeping — happens inside the
workers, in parallel.

Each worker hosts a full private :class:`~repro.service.ingest.
DetectionService` (its own :class:`~repro.service.store.
ShardedDetectorStore`, :class:`~repro.service.verdicts.VerdictLog`
and optional :class:`~repro.service.spool.FlagSpool`), and the
worker's single-threaded loop gives a useful ordering guarantee for
free: because a worker's pipe is FIFO and queries travel down the
same pipe as data, a query reply reflects every observation routed
to that worker before the query was issued.

Queries scatter-gather.  ``/stats`` merges worker counters;
``/senders/<id>`` routes to the one owning worker; ``/verdicts``
merges the per-worker verdict logs — a verdict's identity becomes a
``(worker, seq)`` pair, and the poll cursor becomes one dot-joined
token of per-worker sequence numbers (``"12.7.9.4"``), so a resuming
watcher still walks the merged history with no loss and no
duplicates (property-tested in ``tests/test_service_workers.py``).
``/watch`` is a bounded polling loop over the scatter (worker loops
must never block on a long-poll, or ingest would stall behind it).

Worker processes are started with the ``fork`` method where the
platform offers it (cheap, and the pool is constructed before any
server threads exist) and ``spawn`` elsewhere; both route through
picklable plain-data configs.
"""

from __future__ import annotations

import multiprocessing
import pathlib
import pickle
import signal
import time
from dataclasses import dataclass
from threading import Lock
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.params import PAPER_CONFIG, ProtocolConfig
from repro.detect import DEFAULT_DETECTOR
from repro.service.codec import WireError, decode_record, sender_of_line
from repro.service.store import (
    DEFAULT_MAX_ENTRIES,
    DEFAULT_SHARDS,
    DEFAULT_TRANSITION_CAP,
    worker_of,
)
from repro.service.verdicts import DEFAULT_VERDICT_CAP, event_payload

#: Routed lines buffered per worker before a batch is shipped.
BATCH_LINES = 512
#: Buffered bytes per worker that force a batch flush.
BATCH_BYTES = 64 * 1024
#: Seconds the pool waits for a worker to come up / shut down.
_STARTUP_TIMEOUT = 60.0
_SHUTDOWN_TIMEOUT = 10.0
#: Poll interval of the /watch scatter loop (seconds).
_WATCH_POLL_S = 0.05

_TAG_DATA = b"D"
_TAG_QUERY = b"Q"
_TAG_STOP = b"S"


class WorkerPoolError(RuntimeError):
    """A worker failed to start, died, or answered a query with an
    error."""


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker process needs to build its service
    (plain picklable data — it crosses the process boundary)."""

    index: int
    workers: int
    detector: str
    config: ProtocolConfig
    shards: int
    max_entries: int
    transition_cap: int
    verdict_cap: int
    spool_dir: Optional[str]


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _worker_main(conn, cfg: WorkerConfig) -> None:
    """One ingest worker: build the service (replaying its spool
    slice first), then serve the pipe until told to stop."""
    from repro.service.ingest import DetectionService
    from repro.service.spool import FlagSpool, SpoolError, spool_path

    signal.signal(signal.SIGINT, signal.SIG_IGN)  # front-end owns ^C
    try:
        spool = None
        if cfg.spool_dir is not None:
            spool = FlagSpool(
                spool_path(cfg.spool_dir, cfg.index, cfg.workers),
                detector=cfg.detector,
                worker=cfg.index,
                workers=cfg.workers,
            )
        service = DetectionService(
            detector=cfg.detector,
            config=cfg.config,
            shards=cfg.shards,
            max_entries=cfg.max_entries,
            transition_cap=cfg.transition_cap,
            verdict_cap=cfg.verdict_cap,
            spool=spool,
        )
    except (SpoolError, Exception) as exc:  # noqa: B014 - report, then die
        conn.send_bytes(pickle.dumps(("__error__", f"{type(exc).__name__}: {exc}")))
        return
    conn.send_bytes(pickle.dumps(("ready", cfg.index, service.replayed_flags)))

    misroutes = 0
    try:
        while True:
            try:
                message = conn.recv_bytes()
            except EOFError:
                break  # front-end died; flush durable state and exit
            tag, body = message[:1], message[1:]
            if tag == _TAG_DATA:
                for line in body.decode("utf-8").split("\n"):
                    if not line:
                        continue
                    try:
                        sender, observation = decode_record(line)
                    except WireError:
                        service.record_decode_error()
                        continue
                    if worker_of(sender, cfg.workers) != cfg.index:
                        # Defensive: honestly-encoded lines always route
                        # correctly (the router falls back to a full
                        # decode when in doubt); ingesting a misrouted
                        # sender would split its state across workers.
                        misroutes += 1
                        continue
                    service.ingest_observation(sender, observation)
            elif tag == _TAG_QUERY:
                request = pickle.loads(body)
                try:
                    reply = _handle_query(service, cfg, misroutes, request)
                except Exception as exc:  # pragma: no cover - defensive
                    reply = ("__error__", f"{type(exc).__name__}: {exc}")
                conn.send_bytes(pickle.dumps(reply, pickle.HIGHEST_PROTOCOL))
            elif tag == _TAG_STOP:
                conn.send_bytes(pickle.dumps(("bye", cfg.index)))
                break
    finally:
        service.close()


def _handle_query(service, cfg: WorkerConfig, misroutes: int, request):
    kind = request[0]
    if kind == "ping":
        return ("pong", cfg.index)
    if kind == "stats":
        stats = service.stats()
        stats["worker"] = cfg.index
        stats["misroutes"] = misroutes
        return stats
    if kind == "verdicts":
        _, after, limit = request
        pairs, newest, info = service.verdicts.raw_events_after(after, limit)
        return (pairs, newest, info, service.store.flagged_senders())
    if kind == "sender":
        return service.store.get(request[1])
    raise ValueError(f"unknown worker query {kind!r}")


def _check_spool_geometry(spool_dir, workers: int) -> None:
    """Refuse to start over another geometry's flag history.

    Spool filenames encode ``(worker, workers)``, so a pool restarted
    with a different worker count would open brand-new empty files and
    silently serve an empty flag history while the real one sits in
    the same directory.  Per-file header validation cannot catch that
    (the old files are never opened) — this directory-level check can.
    """
    for path in sorted(pathlib.Path(spool_dir).glob("flags-*-of-*.jsonl")):
        try:
            found = int(path.stem.rsplit("-of-", 1)[1])
        except (IndexError, ValueError):  # not ours; header check governs
            continue
        if found != workers:
            raise WorkerPoolError(
                f"spool directory {spool_dir} holds flag history for a "
                f"{found}-worker service ({path.name}) but this pool has "
                f"{workers} workers; replaying would mis-assign senders "
                f"— restart with --workers {found} or move the spools "
                f"aside"
            )


# ----------------------------------------------------------------------
# Front-end side
# ----------------------------------------------------------------------
class _WorkerHandle:
    __slots__ = ("index", "process", "conn", "lock", "pending",
                 "pending_bytes")

    def __init__(self, index, process, conn):
        self.index = index
        self.process = process
        self.conn = conn
        self.lock = Lock()
        self.pending: List[str] = []
        self.pending_bytes = 0


class IngestWorkerPool:
    """Front-end facade over ``N`` ingest worker processes.

    Exposes the same ingest surface as :class:`~repro.service.ingest.
    DetectionService` (``ingest_line`` raising :class:`WireError` on
    malformed lines, ``record_decode_error``, ``record_disconnect``)
    and the same query surface (``api_stats`` / ``api_verdicts`` /
    ``api_watch`` / ``api_sender``), so the TCP ingest server, the
    stdin pump and the HTTP API drive either interchangeably.

    Ingested lines are *asynchronous*: they buffer per worker and ship
    in batches.  Queries flush the relevant buffers first, so a query
    issued after ``ingest_line`` returned always observes that line.
    :meth:`barrier` flushes everything and round-trips every worker —
    after it returns, all previously ingested lines are folded in.
    """

    def __init__(
        self,
        workers: int,
        detector: str = DEFAULT_DETECTOR,
        config: ProtocolConfig = PAPER_CONFIG,
        shards: int = DEFAULT_SHARDS,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        transition_cap: int = DEFAULT_TRANSITION_CAP,
        verdict_cap: int = DEFAULT_VERDICT_CAP,
        spool_dir: Optional[str] = None,
        start_method: Optional[str] = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if spool_dir is not None:
            _check_spool_geometry(spool_dir, workers)
        self.workers = workers
        self.detector_spec = detector
        self.spool_dir = spool_dir
        self.started = time.monotonic()
        self.replayed_flags = 0
        self._closed = False
        self._counter_lock = Lock()
        self._decode_errors = 0
        self._disconnects = 0
        self._routed = 0

        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        context = multiprocessing.get_context(start_method)
        self._handles: List[_WorkerHandle] = []
        try:
            for index in range(workers):
                parent_conn, child_conn = context.Pipe(duplex=True)
                cfg = WorkerConfig(
                    index=index,
                    workers=workers,
                    detector=detector,
                    config=config,
                    shards=shards,
                    max_entries=max_entries,
                    transition_cap=transition_cap,
                    verdict_cap=verdict_cap,
                    spool_dir=spool_dir,
                )
                process = context.Process(
                    target=_worker_main,
                    args=(child_conn, cfg),
                    name=f"repro-ingest-{index}",
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self._handles.append(_WorkerHandle(index, process, parent_conn))
            for handle in self._handles:
                if not handle.conn.poll(_STARTUP_TIMEOUT):
                    raise WorkerPoolError(
                        f"worker {handle.index} did not come up within "
                        f"{_STARTUP_TIMEOUT:g}s"
                    )
                reply = pickle.loads(handle.conn.recv_bytes())
                if reply[0] == "__error__":
                    raise WorkerPoolError(
                        f"worker {handle.index} failed to start: {reply[1]}"
                    )
                self.replayed_flags += reply[2]
        except BaseException:
            self._terminate()
            raise

    # ------------------------------------------------------------------
    # Ingest surface
    # ------------------------------------------------------------------
    def ingest_line(self, line: str) -> None:
        """Route one wire line to its owning worker (batched).

        Raises :class:`WireError` for lines that are provably
        malformed — the router scans the sender out without a JSON
        parse and only falls back to a strict decode when the scan is
        undecided, so well-formed traffic never pays for a front-end
        parse.
        """
        sender = sender_of_line(line)
        if sender is None:
            # Undecided: either malformed (raise so the TCP handler
            # can reject with a reason) or exotically escaped (route
            # by the decoded sender; the worker re-decodes).
            sender, _ = decode_record(line)
        handle = self._handles[worker_of(sender, self.workers)]
        with handle.lock:
            handle.pending.append(line)
            handle.pending_bytes += len(line) + 1
            if (len(handle.pending) >= BATCH_LINES
                    or handle.pending_bytes >= BATCH_BYTES):
                self._ship_locked(handle)
        with self._counter_lock:
            self._routed += 1

    def ingest_lines(self, lines: Sequence[str]) -> int:
        """Bulk :meth:`ingest_line`; returns lines routed.  Raises on
        the first malformed line (the bench path pre-validates)."""
        for line in lines:
            self.ingest_line(line)
        return len(lines)

    def record_decode_error(self) -> None:
        with self._counter_lock:
            self._decode_errors += 1

    def record_disconnect(self) -> None:
        with self._counter_lock:
            self._disconnects += 1

    def flush(self) -> None:
        """Ship every buffered batch now (without waiting)."""
        for handle in self._handles:
            with handle.lock:
                if handle.pending:
                    self._ship_locked(handle)

    def barrier(self) -> None:
        """Flush, then round-trip every worker: when this returns,
        every line previously accepted by :meth:`ingest_line` has been
        folded into its worker's detector state."""
        for handle in self._handles:
            self._query(handle, ("ping",))

    def _ship_locked(self, handle: _WorkerHandle) -> None:
        payload = "\n".join(handle.pending).encode("utf-8")
        handle.pending.clear()
        handle.pending_bytes = 0
        try:
            handle.conn.send_bytes(_TAG_DATA + payload)
        except (BrokenPipeError, OSError) as exc:
            raise WorkerPoolError(
                f"worker {handle.index} pipe is gone "
                f"({type(exc).__name__}); did the worker die?"
            ) from exc

    # ------------------------------------------------------------------
    # Scatter-gather queries
    # ------------------------------------------------------------------
    def _query(self, handle: _WorkerHandle, request: tuple):
        with handle.lock:
            if handle.pending:
                self._ship_locked(handle)
            try:
                handle.conn.send_bytes(
                    _TAG_QUERY + pickle.dumps(request, pickle.HIGHEST_PROTOCOL)
                )
                reply = pickle.loads(handle.conn.recv_bytes())
            except (EOFError, BrokenPipeError, OSError) as exc:
                raise WorkerPoolError(
                    f"worker {handle.index} died mid-query "
                    f"({type(exc).__name__})"
                ) from exc
        if isinstance(reply, tuple) and reply and reply[0] == "__error__":
            raise WorkerPoolError(
                f"worker {handle.index} query {request[0]!r} failed: "
                f"{reply[1]}"
            )
        return reply

    # ------------------------------------------------------------------
    # Cursor codec: one dot-joined token of per-worker sequence ids
    # ------------------------------------------------------------------
    def parse_cursor(self, after: Optional[str]) -> List[int]:
        """``"12.7.9.4"`` → per-worker newest-seen sequence numbers."""
        if after is None or after in ("", "0"):
            return [0] * self.workers
        parts = str(after).split(".")
        if len(parts) != self.workers:
            raise ValueError(
                f"cursor 'after' must have {self.workers} dot-joined "
                f"component(s) for a {self.workers}-worker service "
                f"(or be 0), got {after!r}"
            )
        try:
            cursors = [int(part) for part in parts]
        except ValueError:
            raise ValueError(
                f"cursor 'after' components must be integers, "
                f"got {after!r}"
            ) from None
        if any(cursor < 0 for cursor in cursors):
            raise ValueError("cursor 'after' components must be >= 0")
        return cursors

    @staticmethod
    def format_cursor(cursors: Sequence[int]) -> str:
        return ".".join(str(cursor) for cursor in cursors)

    # ------------------------------------------------------------------
    # Query surface shared with DetectionService
    # ------------------------------------------------------------------
    def api_stats(self) -> Dict[str, object]:
        per_worker = [self._query(h, ("stats",)) for h in self._handles]
        now = time.monotonic()
        uptime = max(now - self.started, 1e-9)
        observations = sum(w["observations"] for w in per_worker)
        with self._counter_lock:
            decode_errors = self._decode_errors
            disconnects = self._disconnects
        return {
            "detector": self.detector_spec,
            "workers": self.workers,
            "uptime_s": round(uptime, 3),
            "observations": observations,
            "decode_errors": decode_errors
            + sum(w["decode_errors"] for w in per_worker),
            "disconnects": disconnects,
            "misroutes": sum(w["misroutes"] for w in per_worker),
            "replayed_flags": sum(w["replayed_flags"] for w in per_worker),
            "obs_per_sec": round(observations / uptime, 1),
            "recent_obs_per_sec": round(
                sum(w["recent_obs_per_sec"] for w in per_worker), 1
            ),
            "store": {
                "shards": sum(w["store"]["shards"] for w in per_worker),
                "max_entries_per_shard":
                    per_worker[0]["store"]["max_entries_per_shard"],
                "entries": sum(w["store"]["entries"] for w in per_worker),
                "observations":
                    sum(w["store"]["observations"] for w in per_worker),
                "evictions":
                    sum(w["store"]["evictions"] for w in per_worker),
                "flagged_evictions":
                    sum(w["store"]["flagged_evictions"] for w in per_worker),
                "currently_flagged":
                    sum(w["store"]["currently_flagged"] for w in per_worker),
            },
            "verdicts": {
                "flags": sum(w["verdicts"]["flags"] for w in per_worker),
                "retained":
                    sum(w["verdicts"]["retained"] for w in per_worker),
                "dropped": sum(w["verdicts"]["dropped"] for w in per_worker),
            },
            "per_worker": per_worker,
        }

    def api_verdicts(
        self, after: Optional[str] = None, limit: Optional[int] = None,
    ) -> Dict[str, object]:
        """Merged ``/verdicts``: scatter, tag with ``(worker, seq)``,
        sort by flag wall clock, honor ``limit`` across the merge.

        The per-worker cursor advance is prefix-safe: a worker's
        events arrive in sequence order with non-decreasing wall
        clocks (its ingest loop is single-threaded), so consuming a
        prefix of the merged order consumes a prefix of each worker's
        list — resuming from the returned token loses nothing and
        duplicates nothing.
        """
        cursors = self.parse_cursor(after)
        results = [
            self._query(handle, ("verdicts", cursors[handle.index], limit))
            for handle in self._handles
        ]
        tagged = [
            (event.wall, index, seq, event)
            for index, (pairs, _, _, _) in enumerate(results)
            for seq, event in pairs
        ]
        tagged.sort(key=lambda item: (item[0], item[1], item[2]))
        if limit is not None:
            tagged = tagged[:limit]

        consumed: Dict[int, int] = {}
        events = []
        for _, index, seq, event in tagged:
            consumed[index] = seq
            payload = event_payload(seq, event)
            del payload["id"]
            payload["worker"] = index
            payload["seq"] = seq
            events.append(payload)

        next_ids = list(cursors)
        gap = False
        dropped = 0
        per_worker = []
        for index, (pairs, newest, info, _) in enumerate(results):
            if index in consumed:
                if consumed[index] == pairs[-1][0]:
                    next_ids[index] = newest  # consumed all returned
                else:
                    next_ids[index] = consumed[index]
            elif not pairs:
                # Nothing retained after the cursor: advance past the
                # newest id (anything in between was dropped by the
                # cap and can never be observed — the gap flag says so).
                next_ids[index] = newest
            # else: worker returned events but the merge cut them all
            # (limit): leave the cursor put, they come back next poll.
            worker_gap = (
                info["oldest"] is not None
                and cursors[index] + 1 < info["oldest"]
            )
            gap = gap or worker_gap
            dropped += info["dropped"]
            per_worker.append({
                "worker": index,
                "newest": newest,
                "oldest": info["oldest"],
                "dropped": info["dropped"],
                "gap": worker_gap,
            })

        flagged = sorted(
            sender for _, _, _, flagged_list in results
            for sender in flagged_list
        )
        return {
            "events": events,
            "next": self.format_cursor(next_ids),
            "dropped": dropped,
            "gap": gap,
            "flagged": flagged,
            "workers": self.workers,
            "per_worker": per_worker,
        }

    def api_watch(
        self,
        after: Optional[str] = None,
        timeout: float = 30.0,
        limit: Optional[int] = None,
    ) -> Dict[str, object]:
        """Poll the merged verdict scatter until events appear or the
        timeout passes.  Bounded polling, not a blocking worker-side
        wait: a worker blocked in a long-poll could not ingest."""
        deadline = time.monotonic() + max(timeout, 0.0)
        while True:
            payload = self.api_verdicts(after, limit)
            remaining = deadline - time.monotonic()
            if payload["events"] or remaining <= 0:
                payload.pop("flagged", None)
                return payload
            time.sleep(min(_WATCH_POLL_S, max(remaining, 0.0)))

    def api_sender(self, sender: str) -> Optional[Dict[str, object]]:
        index = worker_of(sender, self.workers)
        snapshot = self._query(self._handles[index], ("sender", sender))
        if snapshot is not None:
            snapshot["worker"] = index
        return snapshot

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush buffers, stop every worker, reap the processes."""
        if self._closed:
            return
        self._closed = True
        for handle in self._handles:
            with handle.lock:
                try:
                    if handle.pending:
                        self._ship_locked(handle)
                    handle.conn.send_bytes(_TAG_STOP)
                    if handle.conn.poll(_SHUTDOWN_TIMEOUT):
                        handle.conn.recv_bytes()  # ("bye", index)
                except (WorkerPoolError, EOFError, BrokenPipeError, OSError):
                    pass  # already dead; reap below
                finally:
                    handle.conn.close()
        self._terminate()

    def _terminate(self) -> None:
        for handle in self._handles:
            handle.process.join(_SHUTDOWN_TIMEOUT)
            if handle.process.is_alive():  # pragma: no cover - stuck worker
                handle.process.terminate()
                handle.process.join(_SHUTDOWN_TIMEOUT)

    def __enter__(self) -> "IngestWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = [
    "BATCH_BYTES",
    "BATCH_LINES",
    "IngestWorkerPool",
    "WorkerConfig",
    "WorkerPoolError",
]
