"""Sharded per-sender detector state with measured, bounded memory.

The serving-shaped heart of :mod:`repro.service`: ``N`` shards keyed
by ``crc32(sender) % N``, each an ordered dict of per-sender detector
instances in least-recently-observed order.  A configurable per-shard
entry budget is enforced by LRU eviction, and evictions are *counted
and surfaced* through :meth:`ShardedDetectorStore.stats` — bounded
memory is a measured property of the service, not a hope.

Detector instances are recycled through a small per-shard free pool:
an evicted sender's detector is :meth:`~repro.detect.Detector.reset`
and handed to the next admitted sender, so sustained churn does not
churn the allocator.  This is why the detector contract demands that
``reset()`` be bit-identical to fresh construction (property-tested in
``tests/test_detect.py``): an evicted-then-readmitted sender must be
judged exactly as a never-seen one.

Verdict bookkeeping happens at the same layer, under the same shard
lock: each entry tracks its current flag state, a bounded list of
flag/clear transitions, and its first flag; the store hands a
:class:`FlagEvent` back to the caller exactly once per tenure so the
service can publish first-flag notifications.
"""

from __future__ import annotations

import time
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from threading import Lock
from typing import Callable, Dict, List, Optional, Tuple

from repro.detect.base import Detector, Observation

#: Default shard count (overridable; see ``REPRO_SERVICE_SHARDS``).
DEFAULT_SHARDS = 8
#: Default per-shard entry budget (``REPRO_SERVICE_ENTRIES``).
DEFAULT_MAX_ENTRIES = 10_000
#: Flag/clear transitions kept per sender entry (oldest dropped).
DEFAULT_TRANSITION_CAP = 64
#: Evicted detectors kept around per shard for recycling.
_FREE_POOL_CAP = 32


#: Routing-domain suffix of :func:`worker_of` (see its docstring for
#: why a *suffix*, not a seed or prefix).
_WORKER_SUFFIX = b"\x00wrkr"


def shard_of(sender: str, shards: int) -> int:
    """Deterministic shard index for a sender key.

    Uses crc32, not :func:`hash`: Python string hashing is salted per
    process, and two service replicas (or a service and its tests)
    must agree on placement.
    """
    return zlib.crc32(sender.encode("utf-8")) % shards


def worker_of(sender: str, workers: int) -> int:
    """Deterministic ingest-worker index for a sender key.

    Same determinism argument as :func:`shard_of` — the front-end
    router, every worker, the spool replayer and the tests must agree
    on which worker owns a sender.  Hashed differently from
    :func:`shard_of` on purpose: with the same hash, the senders
    routed to worker ``k`` of ``N`` would all satisfy ``crc32 % N ==
    k``, so a worker-local store with ``shards`` a multiple of ``N``
    would fill only ``shards / N`` of its shards (e.g. 2 of 8 with 4
    workers) — one residue class per worker.

    The decorrelation has to be a fixed *suffix*: crc32 is
    GF(2)-linear, so a different seed (or a fixed prefix, which is
    just a different initial state) only XORs the checksum of a
    same-length key by a constant and leaves the two placements
    correlated.  Appending a suffix multiplies the state by a
    bit-mixing polynomial matrix instead, making the worker index
    depend on all bits of the key's checksum (asserted in
    ``tests/test_service_workers.py``).
    """
    return zlib.crc32(sender.encode("utf-8") + _WORKER_SUFFIX) % workers


@dataclass(frozen=True)
class FlagEvent:
    """A sender's first flag of its current tenure.

    Attributes
    ----------
    sender:
        The flagged sender's wire key.
    time_us:
        Stream time of the flagging observation.
    wall:
        Monotonic wall clock at the flag (:func:`time.monotonic`).
    first_obs_wall:
        Monotonic wall clock of the sender's first observation this
        tenure — ``wall - first_obs_wall`` is the service-level
        latency from first sight to flag.
    observations:
        Observations folded into the sender this tenure, inclusive of
        the flagging one.
    """

    sender: str
    time_us: int
    wall: float
    first_obs_wall: float
    observations: int


@dataclass
class SenderEntry:
    """Per-sender state held inside one shard (one tenure)."""

    detector: Detector
    first_obs_wall: float
    first_obs_time_us: int
    observations: int = 0
    flagged: bool = False
    first_flag: Optional[FlagEvent] = None
    #: Bounded ``(observation_index, "flag"|"clear", time_us)`` log.
    transitions: List[Tuple[int, str, int]] = field(default_factory=list)


class _Shard:
    """One lock + ordered entry dict + its counters."""

    __slots__ = ("lock", "entries", "evictions", "flagged_evictions",
                 "observations", "free_pool")

    def __init__(self) -> None:
        self.lock = Lock()
        self.entries: "OrderedDict[str, SenderEntry]" = OrderedDict()
        self.evictions = 0
        self.flagged_evictions = 0
        self.observations = 0
        self.free_pool: List[Detector] = []


class ShardedDetectorStore:
    """N-sharded, LRU-bounded map of sender key -> detector state.

    Parameters
    ----------
    factory:
        Zero-argument callable producing a fresh detector (see
        :func:`repro.detect.detector_factory`).
    shards:
        Shard count; each shard has its own lock, so ingest threads
        touching different shards never contend.
    max_entries:
        Per-shard entry budget.  The store holds at most
        ``shards * max_entries`` sender entries, ever.
    transition_cap:
        Flag/clear transitions retained per entry.
    """

    def __init__(
        self,
        factory: Callable[[], Detector],
        shards: int = DEFAULT_SHARDS,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        transition_cap: int = DEFAULT_TRANSITION_CAP,
    ):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if transition_cap < 2:
            raise ValueError(
                f"transition_cap must be >= 2, got {transition_cap}"
            )
        self.factory = factory
        self.shards = shards
        self.max_entries = max_entries
        self.transition_cap = transition_cap
        self._shards = [_Shard() for _ in range(shards)]

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def observe(
        self, sender: str, observation: Observation,
    ) -> Tuple[bool, Optional[FlagEvent]]:
        """Fold one observation into ``sender``'s detector.

        Returns ``(verdict, first_flag_event)``: the post-update
        verdict, plus a :class:`FlagEvent` exactly when this
        observation flagged the sender for the first time in its
        current tenure (``None`` otherwise).
        """
        shard = self._shards[shard_of(sender, self.shards)]
        with shard.lock:
            entries = shard.entries
            entry = entries.get(sender)
            if entry is None:
                if shard.free_pool:
                    detector = shard.free_pool.pop()
                    detector.reset()
                else:
                    detector = self.factory()
                entry = SenderEntry(
                    detector=detector,
                    first_obs_wall=time.monotonic(),
                    first_obs_time_us=observation.time_us,
                )
                entries[sender] = entry
                if len(entries) > self.max_entries:
                    _, evicted = entries.popitem(last=False)
                    shard.evictions += 1
                    if evicted.flagged:
                        shard.flagged_evictions += 1
                    if len(shard.free_pool) < _FREE_POOL_CAP:
                        shard.free_pool.append(evicted.detector)
            else:
                entries.move_to_end(sender)
            shard.observations += 1
            entry.observations += 1
            verdict = entry.detector.observe(observation)
            event = None
            if verdict != entry.flagged:
                entry.flagged = verdict
                transitions = entry.transitions
                transitions.append((
                    entry.observations,
                    "flag" if verdict else "clear",
                    observation.time_us,
                ))
                if len(transitions) > self.transition_cap:
                    del transitions[0]
                if verdict and entry.first_flag is None:
                    event = FlagEvent(
                        sender=sender,
                        time_us=observation.time_us,
                        wall=time.monotonic(),
                        first_obs_wall=entry.first_obs_wall,
                        observations=entry.observations,
                    )
                    entry.first_flag = event
            return verdict, event

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def get(self, sender: str) -> Optional[Dict[str, object]]:
        """Snapshot of one sender's state, or ``None`` if not resident
        (never observed, or evicted under the entry budget)."""
        index = shard_of(sender, self.shards)
        shard = self._shards[index]
        with shard.lock:
            entry = shard.entries.get(sender)
            if entry is None:
                return None
            detector = entry.detector
            return {
                "sender": sender,
                "shard": index,
                "flagged": entry.flagged,
                "observations": entry.observations,
                "flagged_observations": detector.flagged_observations,
                "first_obs_time_us": entry.first_obs_time_us,
                "first_flag": None if entry.first_flag is None else {
                    "time_us": entry.first_flag.time_us,
                    "observations": entry.first_flag.observations,
                    "latency_s": round(
                        entry.first_flag.wall - entry.first_flag.first_obs_wall,
                        6,
                    ),
                },
                "transitions": [
                    {"observation": n, "verdict": kind, "time_us": t}
                    for n, kind, t in entry.transitions
                ],
            }

    def flagged_senders(self) -> List[str]:
        """Senders currently resident *and* flagged, sorted."""
        flagged: List[str] = []
        for shard in self._shards:
            with shard.lock:
                flagged.extend(
                    sender for sender, entry in shard.entries.items()
                    if entry.flagged
                )
        return sorted(flagged)

    def stats(self) -> Dict[str, object]:
        """Occupancy, eviction and observation counters, per shard."""
        occupancy: List[int] = []
        observations = evictions = flagged_evictions = flagged = 0
        for shard in self._shards:
            with shard.lock:
                occupancy.append(len(shard.entries))
                observations += shard.observations
                evictions += shard.evictions
                flagged_evictions += shard.flagged_evictions
                flagged += sum(
                    1 for entry in shard.entries.values() if entry.flagged
                )
        return {
            "shards": self.shards,
            "max_entries_per_shard": self.max_entries,
            "occupancy": occupancy,
            "entries": sum(occupancy),
            "observations": observations,
            "evictions": evictions,
            "flagged_evictions": flagged_evictions,
            "currently_flagged": flagged,
        }

    def __len__(self) -> int:
        return sum(len(shard.entries) for shard in self._shards)
