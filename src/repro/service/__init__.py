"""Online detection as a long-running service.

The paper evaluates its diagnosis scheme post-hoc over completed
simulation runs, but the Section 4.3 window test is an inherently
*online* per-sender decision procedure — Cao et al. (PAPERS.md) argue
detection must happen in real time on the live observation stream.
This package hosts any registered :mod:`repro.detect` family that way:

* :mod:`~repro.service.codec` — versioned JSONL wire format (one
  observation per line, strict decoding), plus the parse-free
  ``sender_of_line`` scan the multi-worker router runs per line;
* :mod:`~repro.service.store` — N-sharded per-sender detector state
  with LRU eviction under a per-shard entry budget; evictions are
  counted and surfaced, so bounded memory is measured, not hoped for;
* :mod:`~repro.service.verdicts` — capped first-flag log feeding the
  long-poll ``/watch`` endpoint and the latency benchmark, reporting
  its retention window (``oldest``/``dropped``) so pollers detect
  gaps;
* :mod:`~repro.service.spool` — append-only crc32-checksummed
  first-flag spool; a restarted service replays it before accepting
  traffic, so the served flag history survives a SIGKILL;
* :mod:`~repro.service.ingest` — the :class:`DetectionService`
  facade, plus stdin and TCP ingest sources;
* :mod:`~repro.service.workers` — :class:`IngestWorkerPool`: N ingest
  worker processes over disjoint crc32 sender ranges, with
  scatter-gather queries and a merged ``/verdicts`` cursor;
* :mod:`~repro.service.server` — stdlib HTTP query API
  (``/verdicts``, ``/senders/<id>``, ``/stats``, ``/watch``) over
  either geometry;
* :mod:`~repro.service.adapter` — records a simulation's
  judged-observation stream and replays it through the service;
  served verdicts are bit-identical to in-sim ones;
* :mod:`~repro.service.loadgen` — Zipf load generator and the
  sustained-throughput benchmark behind ``python -m repro serve
  --bench`` and ``benchmarks/BENCH_service.json`` (single- and
  multi-worker modes).

See ``docs/SERVICE.md`` for the architecture, the API reference, and
the bounded-memory and bench semantics.
"""

from repro.service.adapter import (
    RecordingDetector,
    StreamRecord,
    record_scenario_stream,
    recorded_verdicts,
    replay_stream,
)
from repro.service.codec import (
    WIRE_VERSION,
    WireError,
    decode_lines,
    decode_record,
    encode_record,
    encode_stream,
    sender_of_line,
)
from repro.service.ingest import DetectionService, TcpIngestServer, ingest_stream
from repro.service.loadgen import (
    BENCH_SCALES,
    BenchConfig,
    BenchResult,
    generate_stream,
    p99_latency,
    run_bench,
)
from repro.service.server import ServiceHTTPServer
from repro.service.spool import FlagSpool, SpoolError, read_spool_events, spool_path
from repro.service.store import (
    FlagEvent,
    ShardedDetectorStore,
    shard_of,
    worker_of,
)
from repro.service.verdicts import VerdictLog
from repro.service.workers import IngestWorkerPool, WorkerPoolError

__all__ = [
    "BENCH_SCALES",
    "WIRE_VERSION",
    "BenchConfig",
    "BenchResult",
    "DetectionService",
    "FlagEvent",
    "FlagSpool",
    "IngestWorkerPool",
    "RecordingDetector",
    "ServiceHTTPServer",
    "ShardedDetectorStore",
    "SpoolError",
    "StreamRecord",
    "TcpIngestServer",
    "VerdictLog",
    "WireError",
    "WorkerPoolError",
    "decode_lines",
    "decode_record",
    "encode_record",
    "encode_stream",
    "generate_stream",
    "ingest_stream",
    "p99_latency",
    "read_spool_events",
    "record_scenario_stream",
    "recorded_verdicts",
    "replay_stream",
    "run_bench",
    "sender_of_line",
    "shard_of",
    "spool_path",
    "worker_of",
]
