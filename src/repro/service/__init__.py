"""Online detection as a long-running service.

The paper evaluates its diagnosis scheme post-hoc over completed
simulation runs, but the Section 4.3 window test is an inherently
*online* per-sender decision procedure — Cao et al. (PAPERS.md) argue
detection must happen in real time on the live observation stream.
This package hosts any registered :mod:`repro.detect` family that way:

* :mod:`~repro.service.codec` — versioned JSONL wire format (one
  observation per line, strict decoding);
* :mod:`~repro.service.store` — N-sharded per-sender detector state
  with LRU eviction under a per-shard entry budget; evictions are
  counted and surfaced, so bounded memory is measured, not hoped for;
* :mod:`~repro.service.verdicts` — capped first-flag log feeding the
  long-poll ``/watch`` endpoint and the latency benchmark;
* :mod:`~repro.service.ingest` — the :class:`DetectionService`
  facade, plus stdin and TCP ingest sources;
* :mod:`~repro.service.server` — stdlib HTTP query API
  (``/verdicts``, ``/senders/<id>``, ``/stats``, ``/watch``);
* :mod:`~repro.service.adapter` — records a simulation's
  judged-observation stream and replays it through the service;
  served verdicts are bit-identical to in-sim ones;
* :mod:`~repro.service.loadgen` — Zipf load generator and the
  sustained-throughput benchmark behind ``python -m repro serve
  --bench`` and ``benchmarks/BENCH_service.json``.

See ``docs/SERVICE.md`` for the architecture, the API reference, and
the bounded-memory and bench semantics.
"""

from repro.service.adapter import (
    RecordingDetector,
    StreamRecord,
    record_scenario_stream,
    recorded_verdicts,
    replay_stream,
)
from repro.service.codec import (
    WIRE_VERSION,
    WireError,
    decode_lines,
    decode_record,
    encode_record,
    encode_stream,
)
from repro.service.ingest import DetectionService, TcpIngestServer, ingest_stream
from repro.service.loadgen import (
    BENCH_SCALES,
    BenchConfig,
    BenchResult,
    generate_stream,
    run_bench,
)
from repro.service.server import ServiceHTTPServer
from repro.service.store import FlagEvent, ShardedDetectorStore, shard_of
from repro.service.verdicts import VerdictLog

__all__ = [
    "BENCH_SCALES",
    "WIRE_VERSION",
    "BenchConfig",
    "BenchResult",
    "DetectionService",
    "FlagEvent",
    "RecordingDetector",
    "ServiceHTTPServer",
    "ShardedDetectorStore",
    "StreamRecord",
    "TcpIngestServer",
    "VerdictLog",
    "WireError",
    "decode_lines",
    "decode_record",
    "encode_record",
    "encode_stream",
    "generate_stream",
    "ingest_stream",
    "record_scenario_stream",
    "recorded_verdicts",
    "replay_stream",
    "run_bench",
    "shard_of",
]
