"""Bridge between the in-sim receiver pipeline and the service.

The service's contract is that hosting a detector *changes nothing*
about its verdicts: the ``window`` detector served online must produce
the identical flag/clear sequence per sender as the same detector
inside the in-sim :class:`~repro.core.monitor.SenderMonitor` on the
same observation stream (asserted bit-identically in
``tests/test_service.py``).  This module supplies both halves of that
proof, and the production path for replaying recorded traces:

* :class:`RecordingDetector` — a transparent wrapper capturing every
  ``(observation, verdict)`` a monitor's detector sees, with a global
  sequence number so streams from many monitors merge back into exact
  arrival order.  It draws no randomness and schedules nothing, so a
  recorded run stays bit-identical to an unrecorded one.
* :func:`record_scenario_stream` — run a scenario with recording
  wrappers installed on every CORRECT receiver and return the merged
  judged-observation stream (the sender's first packet is never
  judged, per Section 4.1, so it never reaches the detector *or* the
  wire — the streams agree by construction).
* :func:`replay_stream` — feed a recorded stream through a
  :class:`~repro.service.ingest.DetectionService`, returning the
  service's verdicts in the same per-sender order.

Sender keys are the decimal node id: a node sends at most one flow
(one monitor judges it), so the id alone addresses the stream.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.detect.base import Detector, Observation
from repro.experiments.scenarios import RunResult, ScenarioConfig, build_scenario
from repro.mac.correct import CorrectMac
from repro.service.ingest import DetectionService


@dataclass(frozen=True)
class StreamRecord:
    """One judged observation as it crossed a monitor's detector."""

    seq: int
    sender: str
    observation: Observation
    verdict: bool


class RecordingDetector:
    """Transparent detector wrapper logging observations + verdicts.

    Everything except :meth:`observe` is delegated to the wrapped
    detector, including attribute access (``thresh``,
    ``windowed_sum``, counters), so monitors and metrics treat the
    wrapper exactly like the inner detector.
    """

    def __init__(self, inner: Detector, counter: "itertools.count"):
        self._inner = inner
        self._counter = counter
        self.records: List[Tuple[int, Observation, bool]] = []

    def observe(self, observation: Observation) -> bool:
        verdict = self._inner.observe(observation)
        self.records.append((next(self._counter), observation, verdict))
        return verdict

    @property
    def is_misbehaving(self) -> bool:
        return self._inner.is_misbehaving

    @property
    def thresh(self) -> float:
        # Delegated explicitly (not via __getattr__) so the adaptive-
        # THRESH hook's *assignment* reaches the inner detector too.
        return self._inner.thresh

    @thresh.setter
    def thresh(self, value: float) -> None:
        self._inner.thresh = value

    def reset(self) -> None:
        # The pardon wipes detector state but the wire already carried
        # the earlier observations; keep the recorded prefix.
        self._inner.reset()

    def __getattr__(self, name: str):
        return getattr(self._inner, name)


def record_scenario_stream(
    config: ScenarioConfig,
) -> Tuple[List[StreamRecord], RunResult]:
    """Run ``config`` and capture its judged-observation stream.

    Returns the merged stream (exact in-sim arrival order across all
    monitors) and the normal :class:`RunResult` — recording perturbs
    nothing, so the result matches an unrecorded run bit for bit.
    """
    from repro.detect.window import WindowDetector

    sim, nodes, collector = build_scenario(config)
    counter = itertools.count()
    correct_macs: List[CorrectMac] = []
    for node in nodes:
        mac = node.mac
        if not isinstance(mac, CorrectMac):
            continue
        correct_macs.append(mac)
        base_factory = mac.detector_factory
        protocol_config = mac.config

        def recording_factory(
            base=base_factory, cfg=protocol_config,
        ) -> RecordingDetector:
            inner = (
                base() if base is not None
                else WindowDetector(cfg.window, cfg.thresh)
            )
            return RecordingDetector(inner, counter)

        mac.detector_factory = recording_factory
    if not correct_macs:
        raise ValueError(
            "record_scenario_stream needs the 'correct' protocol: the "
            "802.11 baseline has no receiver-side monitor to record"
        )
    for node in nodes:
        node.start()
    sim.run(until=config.duration_us)

    records: List[StreamRecord] = []
    for mac in correct_macs:
        for sender, monitor in mac._monitors.items():
            detector = monitor.detector
            if not isinstance(detector, RecordingDetector):
                continue  # pragma: no cover - factory installed above
            key = str(sender)
            records.extend(
                StreamRecord(seq=seq, sender=key, observation=observation,
                             verdict=verdict)
                for seq, observation, verdict in detector.records
            )
    records.sort(key=lambda record: record.seq)

    injector = sim.fault_injector
    result = RunResult(
        config=config, collector=collector,
        events_processed=sim.events_processed,
        event_counts=dict(sim.event_counts),
        faults_injected=injector.summary() if injector is not None else {},
    )
    return records, result


def replay_stream(
    service: DetectionService, records: List[StreamRecord],
) -> Dict[str, List[bool]]:
    """Feed a recorded stream through the service, in stream order.

    Returns the service's per-sender verdict sequences — comparable
    one-to-one against the recorded in-sim verdicts.
    """
    verdicts: Dict[str, List[bool]] = {}
    for record in records:
        verdict = service.ingest_observation(record.sender, record.observation)
        verdicts.setdefault(record.sender, []).append(verdict)
    return verdicts


def recorded_verdicts(records: List[StreamRecord]) -> Dict[str, List[bool]]:
    """The in-sim per-sender verdict sequences of a recorded stream."""
    verdicts: Dict[str, List[bool]] = {}
    for record in records:
        verdicts.setdefault(record.sender, []).append(record.verdict)
    return verdicts
