"""Zipf load generator and sustained-throughput benchmark.

Real sender populations are heavy-tailed: a few chatty stations
dominate while a long tail of senders appears a handful of times —
exactly the regime that stresses an LRU-bounded state store.  The
generator draws senders from a Zipf(s) distribution over a large
population, marks a configurable fraction of the population as
cheaters (every observation of a cheater carries a ``PM``-scaled
backoff deficit; honest observations carry none), and additionally
touches *every* sender in the population at least once, so a bench
configured with ``senders >= 100_000`` is guaranteed that many
distinct keys — forcing evictions under the per-shard budget.

:func:`run_bench` pre-builds the whole stream (generation cost must
not pollute the measurement), then times nothing but the service's
ingest hot path, and reports:

* sustained observations/sec over the whole stream;
* p99 first-sight-to-flag wall latency across flagged senders (from
  the verdict log's recorded clock pairs);
* eviction/occupancy/flag counters, plus the correctness invariants
  the bench asserts (no honest sender ever flagged; cheaters flag).

The trajectory file ``benchmarks/BENCH_service.json`` follows the
``BENCH_engine.json`` format; ``benchmarks/test_bench_service.py``
gates the obs/sec floor in CI.
"""

from __future__ import annotations

import math
import os
import random
import time
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.detect.base import Observation
from repro.service.codec import encode_record
from repro.service.ingest import DetectionService
from repro.service.workers import IngestWorkerPool

#: Distinct ``b_exp`` values cycled through the stream (pre-built
#: observations keep the generated stream's memory footprint flat).
_EXPECTED_BACKOFFS = (8.0, 12.0, 16.0, 20.0, 24.0, 31.0)


@dataclass(frozen=True)
class BenchConfig:
    """Knobs of one load-generator run.

    Attributes
    ----------
    senders:
        Population size; every sender appears at least once, so this
        is also the guaranteed distinct-sender floor.
    observations:
        Total observations in the stream (must be >= ``senders``); the
        surplus beyond one-per-sender is Zipf-distributed traffic.
    cheater_fraction:
        Fraction of the population misbehaving (spread uniformly over
        the Zipf rank order, so cheaters exist among both hot and
        cold senders).
    pm:
        Cheater misbehavior: each cheating observation's ``b_act`` is
        ``(1 - pm) * b_exp`` (the paper's PM percentage, as a
        fraction).
    zipf_s:
        Zipf exponent of the traffic distribution.
    shards / max_entries:
        Service store geometry under test.
    detector:
        Detector spec served.
    seed:
        Generator seed; the stream is deterministic given the config.
    workers:
        Ingest worker processes.  1 (the default) benches the
        in-process :class:`DetectionService` hot path; > 1 benches an
        :class:`~repro.service.workers.IngestWorkerPool` end to end —
        pre-encoded wire lines routed by the front-end, decoded and
        folded in by the workers — with each worker's per-shard entry
        budget scaled to ``max_entries // workers`` so the aggregate
        LRU budget matches the single-process geometry.
    """

    senders: int = 120_000
    observations: int = 360_000
    cheater_fraction: float = 0.02
    pm: float = 0.6
    zipf_s: float = 1.1
    shards: int = 8
    max_entries: int = 10_000
    detector: str = "window"
    seed: int = 1
    workers: int = 1

    def __post_init__(self) -> None:
        if self.senders < 1:
            raise ValueError(f"senders must be >= 1, got {self.senders}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.observations < self.senders:
            raise ValueError(
                f"observations ({self.observations}) must be >= senders "
                f"({self.senders}): every sender appears at least once"
            )
        if not 0.0 <= self.cheater_fraction <= 1.0:
            raise ValueError(
                f"cheater_fraction must be in [0, 1], "
                f"got {self.cheater_fraction}"
            )
        if not 0.0 < self.pm <= 1.0:
            raise ValueError(f"pm must be in (0, 1], got {self.pm}")


@dataclass
class BenchResult:
    """What one bench run measured."""

    config: BenchConfig
    wall_s: float
    observations: int
    distinct_senders: int
    obs_per_sec: float
    p99_flag_latency_s: Optional[float]
    flagged: int
    cheaters: int
    evictions: int
    stats: Dict[str, object] = field(default_factory=dict)

    def to_record(self) -> Dict[str, object]:
        """Trajectory-file payload (see ``benchmarks/README.md``)."""
        return {
            "runs": 1,
            "workers": self.config.workers,
            "cores": available_cores(),
            "senders": self.config.senders,
            "observations": self.observations,
            "distinct_senders": self.distinct_senders,
            "shards": self.config.shards,
            "max_entries_per_shard": self.config.max_entries,
            "detector": self.config.detector,
            "cheaters": self.cheaters,
            "flagged": self.flagged,
            "evictions": self.evictions,
            "wall_s": round(self.wall_s, 3),
            "obs_per_sec": round(self.obs_per_sec),
            "p99_flag_latency_ms": (
                None if self.p99_flag_latency_s is None
                else round(self.p99_flag_latency_s * 1e3, 3)
            ),
        }


def available_cores() -> int:
    """CPU cores this process may actually run on.

    Recorded in every bench record: a multi-worker obs/sec number is
    meaningless without knowing whether the host could run the
    workers in parallel at all (a 4-worker pool on a 1-core container
    measures routing overhead, not speedup).
    """
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # non-Linux fallback
        return os.cpu_count() or 1


def p99_latency(sorted_latencies: Sequence[float]) -> Optional[float]:
    """Nearest-rank p99 of an already-sorted latency sample.

    Nearest-rank: the smallest value with at least 99 % of the sample
    at or below it — ``ceil(0.99 * n)`` in 1-based rank.  The naive
    ``int(0.99 * n) - 1`` index is wrong for small samples (it picks
    the *minimum* of a 2-element sample); with nearest-rank, any
    sample of fewer than 100 values answers its maximum, which is the
    honest p99 of a tiny sample.
    """
    if not sorted_latencies:
        return None
    rank = math.ceil(0.99 * len(sorted_latencies))
    return sorted_latencies[rank - 1]


def zipf_cumulative(n: int, s: float) -> List[float]:
    """Cumulative (unnormalised) Zipf(s) weights for ranks 1..n."""
    total = 0.0
    out = []
    for rank in range(1, n + 1):
        total += rank ** -s
        out.append(total)
    return out


def generate_stream(
    config: BenchConfig,
) -> Tuple[List[Tuple[str, Observation]], frozenset]:
    """Build the whole observation stream up front.

    Returns ``(stream, cheater_keys)``.  The stream is Zipf traffic
    plus one guaranteed observation per population member, shuffled
    deterministically.  Observation objects are drawn from a small
    pre-built pool (honest and cheating variants per ``b_exp``), so a
    million-entry stream costs list/tuple overhead, not a million
    dataclass instances.
    """
    rng = random.Random(config.seed)
    senders = [str(i) for i in range(config.senders)]
    cheater_every = (
        int(round(1.0 / config.cheater_fraction))
        if config.cheater_fraction > 0 else 0
    )
    is_cheater = [
        cheater_every > 0 and i % cheater_every == 0
        for i in range(config.senders)
    ]
    honest_pool = [
        Observation(b_exp=b, b_act=b) for b in _EXPECTED_BACKOFFS
    ]
    cheat_pool = [
        Observation(b_exp=b, b_act=round((1.0 - config.pm) * b, 3))
        for b in _EXPECTED_BACKOFFS
    ]
    pool_len = len(_EXPECTED_BACKOFFS)

    cumulative = zipf_cumulative(config.senders, config.zipf_s)
    total_weight = cumulative[-1]
    stream: List[Tuple[str, Observation]] = []
    zipf_draws = config.observations - config.senders
    for i in range(zipf_draws):
        rank = bisect_left(cumulative, rng.random() * total_weight)
        pool = cheat_pool if is_cheater[rank] else honest_pool
        stream.append((senders[rank], pool[i % pool_len]))
    for rank in range(config.senders):
        pool = cheat_pool if is_cheater[rank] else honest_pool
        stream.append((senders[rank], pool[rank % pool_len]))
    rng.shuffle(stream)
    cheaters = frozenset(
        senders[i] for i in range(config.senders) if is_cheater[i]
    )
    return stream, cheaters


def run_bench(config: BenchConfig) -> BenchResult:
    """Generate a stream, time the ingest hot path, check invariants.

    ``workers == 1`` times the in-process hot path; ``workers > 1``
    times an :class:`~repro.service.workers.IngestWorkerPool` fed
    pre-encoded wire lines (encoding happens before the clock starts;
    the measured span is route + ship + worker decode + fold, closed
    by a :meth:`~repro.service.workers.IngestWorkerPool.barrier`).

    Raises ``AssertionError`` if the service misjudges: a flagged
    sender that is not a cheater (honest observations carry zero
    deficit, so the window detector must never flag one), or zero
    flagged senders despite cheaters in the stream.
    """
    stream, cheaters = generate_stream(config)
    distinct = len({sender for sender, _ in stream})
    if config.workers > 1:
        return _run_bench_pool(config, stream, cheaters, distinct)

    service = DetectionService(
        detector=config.detector,
        shards=config.shards,
        max_entries=config.max_entries,
    )

    start = time.perf_counter()
    ingest = service.ingest_observation
    for sender, observation in stream:
        ingest(sender, observation)
    wall = time.perf_counter() - start

    events, _, _ = service.verdicts.events_after(0)
    flagged_senders = {event["sender"] for event in events}
    _assert_judgement(flagged_senders, cheaters)

    latencies = sorted(service.verdicts.latencies())
    p99 = p99_latency(latencies)
    stats = service.stats()
    return BenchResult(
        config=config,
        wall_s=wall,
        observations=len(stream),
        distinct_senders=distinct,
        obs_per_sec=len(stream) / wall,
        p99_flag_latency_s=p99,
        flagged=len(flagged_senders),
        cheaters=len(cheaters),
        evictions=stats["store"]["evictions"],
        stats=stats,
    )


def _run_bench_pool(
    config: BenchConfig,
    stream: List[Tuple[str, Observation]],
    cheaters: frozenset,
    distinct: int,
) -> BenchResult:
    lines = [encode_record(sender, obs) for sender, obs in stream]
    pool = IngestWorkerPool(
        workers=config.workers,
        detector=config.detector,
        shards=config.shards,
        # Aggregate LRU budget equals the single-process geometry.
        max_entries=max(1, config.max_entries // config.workers),
    )
    try:
        start = time.perf_counter()
        pool.ingest_lines(lines)
        pool.barrier()
        wall = time.perf_counter() - start

        payload = pool.api_verdicts(None, None)
        flagged_senders = {event["sender"] for event in payload["events"]}
        _assert_judgement(flagged_senders, cheaters)

        latencies = sorted(
            event["latency_s"] for event in payload["events"]
        )
        p99 = p99_latency(latencies)
        stats = pool.api_stats()
    finally:
        pool.close()
    return BenchResult(
        config=config,
        wall_s=wall,
        observations=len(stream),
        distinct_senders=distinct,
        obs_per_sec=len(stream) / wall,
        p99_flag_latency_s=p99,
        flagged=len(flagged_senders),
        cheaters=len(cheaters),
        evictions=stats["store"]["evictions"],
        stats=stats,
    )


def _assert_judgement(flagged_senders: set, cheaters: frozenset) -> None:
    rogue = flagged_senders - cheaters
    assert not rogue, (
        f"{len(rogue)} honest sender(s) flagged (e.g. "
        f"{sorted(rogue)[:5]}): the served detector misjudged a "
        f"zero-deficit stream"
    )
    if cheaters:
        assert flagged_senders, (
            "no sender flagged despite "
            f"{len(cheaters)} cheaters in the stream"
        )


#: Bench geometries by scale name (the CLI's and the bench test's
#: shared vocabulary).  Both scales keep the acceptance geometry —
#: >= 100k distinct senders against a 10k-entry per-shard budget.
BENCH_SCALES: Dict[str, BenchConfig] = {
    "quick": BenchConfig(senders=100_000, observations=250_000),
    "bench": BenchConfig(senders=120_000, observations=360_000),
    "full": BenchConfig(senders=250_000, observations=1_000_000),
}

# ----------------------------------------------------------------------
# Trajectory file (BENCH_service.json, BENCH_engine.json format)
# ----------------------------------------------------------------------
#: Hard obs/sec floor the CI gate enforces at every scale.
ABSOLUTE_FLOOR_OBS_PER_SEC = 50_000
#: Tolerated obs/sec drop vs the committed per-scale baseline.
REGRESSION_TOLERANCE = 0.30
#: Keep the trajectory bounded; old entries age out.
TRAJECTORY_CAP = 200

_TRAJECTORY_WORKLOAD = (
    "service ingest: Zipf sender churn (>=100k distinct) through the "
    "sharded LRU detector store, window detector"
)


def append_trajectory(
    path, scale: str, record: Dict[str, object], rebase: bool = False,
) -> Dict[str, object]:
    """Append one bench record to the trajectory file at ``path``.

    Returns the per-scale baseline record (installing ``record`` as
    baseline when none exists for ``scale``, or when ``rebase``).
    ``record`` should carry a ``utc`` timestamp; callers add it so
    this helper stays clock-free.
    """
    import json
    import pathlib

    path = pathlib.Path(path)
    if path.exists():
        data = json.loads(path.read_text())
    else:
        data = {"schema": 1, "workload": _TRAJECTORY_WORKLOAD,
                "baselines": {}, "trajectory": []}
    baseline = data["baselines"].get(scale)
    if baseline is None or rebase:
        data["baselines"][scale] = record
        baseline = record
    data["trajectory"] = (data["trajectory"] + [record])[-TRAJECTORY_CAP:]
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(data, indent=2) + "\n")
    return baseline
