"""HTTP query API over the detection service (single- or multi-process).

Pure stdlib (``http.server.ThreadingHTTPServer``) — the service must
run anywhere the simulator runs.  All responses are JSON.  The server
drives the query surface shared by
:class:`~repro.service.ingest.DetectionService` and
:class:`~repro.service.workers.IngestWorkerPool` (``api_stats`` /
``api_verdicts`` / ``api_watch`` / ``api_sender``), so one binary
serves both the single-process and the multi-worker geometry.

Endpoints
---------
``GET /stats``
    Ingest rates, per-shard occupancy, eviction and flag counters
    (multi-worker: merged totals plus a ``per_worker`` breakdown).
``GET /verdicts[?after=CURSOR&limit=N]``
    First-flag events after ``CURSOR``, plus ``next`` — the cursor to
    pass back as ``after`` on the next poll — the currently-flagged
    resident senders, and the retention fields a resuming watcher
    needs: ``dropped`` (flag events aged out of the capped log) and
    ``gap`` (true when events between ``CURSOR`` and the retained
    window were dropped — the poller can never see them).  The
    single-process cursor is the newest event id (an integer);
    multi-worker cursors are opaque dot-joined per-worker tokens —
    always echo ``next`` back verbatim.
``GET /senders/<id>``
    One sender's resident detector state: verdict, counters, bounded
    flag/clear transition log.  404 when the sender was never seen
    *or* was evicted under the entry budget (the body says which
    cannot be distinguished, by design: bounded memory).
``GET /watch[?after=CURSOR&timeout=S]``
    Long-poll ``/verdicts``: blocks until a first-flag event after
    ``CURSOR`` exists or the timeout (default 30 s, capped at
    ``MAX_WATCH_TIMEOUT``) passes, then answers like ``/verdicts``
    (possibly with an empty event list on timeout), including the
    same ``dropped``/``gap`` retention fields.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, unquote, urlsplit

#: Upper bound on a single ``/watch`` long-poll (seconds).
MAX_WATCH_TIMEOUT = 120.0


class _ApiHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1"

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server convention)
        service = self.server.service  # type: ignore[attr-defined]
        url = urlsplit(self.path)
        query = parse_qs(url.query)
        path = url.path.rstrip("/") or "/"
        try:
            if path == "/stats":
                self._json(200, service.api_stats())
            elif path == "/verdicts":
                self._verdicts(service, query)
            elif path == "/watch":
                self._watch(service, query)
            elif path.startswith("/senders/"):
                self._sender(service, unquote(path[len("/senders/"):]))
            else:
                self._json(404, {
                    "error": f"no such endpoint: {path}",
                    "endpoints": ["/stats", "/verdicts", "/senders/<id>",
                                  "/watch"],
                })
        except _BadRequest as exc:
            self._json(400, {"error": str(exc)})

    # ------------------------------------------------------------------
    def _verdicts(self, service, query) -> None:
        after = _str_param(query, "after")
        limit = _int_param(query, "limit", None, minimum=1)
        try:
            payload = service.api_verdicts(after, limit)
        except ValueError as exc:
            raise _BadRequest(str(exc)) from None
        self._json(200, payload)

    def _watch(self, service, query) -> None:
        after = _str_param(query, "after")
        limit = _int_param(query, "limit", None, minimum=1)
        timeout = _float_param(query, "timeout", 30.0, minimum=0.0)
        try:
            payload = service.api_watch(
                after, timeout=min(timeout, MAX_WATCH_TIMEOUT), limit=limit
            )
        except ValueError as exc:
            raise _BadRequest(str(exc)) from None
        self._json(200, payload)

    def _sender(self, service, sender: str) -> None:
        if not sender:
            raise _BadRequest("empty sender id (use /senders/<id>)")
        snapshot = service.api_sender(sender)
        if snapshot is None:
            self._json(404, {
                "error": f"sender {sender!r} is not resident: never "
                         "observed, or evicted under the per-shard entry "
                         "budget (see /stats evictions)",
            })
            return
        self._json(200, snapshot)

    # ------------------------------------------------------------------
    def _json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # the service's stdout/stderr belong to the operator


class _BadRequest(ValueError):
    pass


def _str_param(query, name):
    values = query.get(name)
    return values[-1] if values else None


def _int_param(query, name, default, minimum):
    values = query.get(name)
    if not values:
        return default
    try:
        value = int(values[-1])
    except ValueError:
        raise _BadRequest(
            f"query parameter {name!r} must be an integer, "
            f"got {values[-1]!r}"
        ) from None
    if value < minimum:
        raise _BadRequest(f"query parameter {name!r} must be >= {minimum}")
    return value


def _float_param(query, name, default, minimum):
    values = query.get(name)
    if not values:
        return default
    try:
        value = float(values[-1])
    except ValueError:
        raise _BadRequest(
            f"query parameter {name!r} must be a number, got {values[-1]!r}"
        ) from None
    if value < minimum:
        raise _BadRequest(f"query parameter {name!r} must be >= {minimum}")
    return value


class ServiceHTTPServer(ThreadingHTTPServer):
    """The query API bound to ``host:port`` (port 0 = ephemeral).

    ``serve_forever()`` on a thread; ``shutdown()`` to stop.  The
    bound port is ``server.server_address[1]``.  ``service`` may be a
    :class:`~repro.service.ingest.DetectionService` or an
    :class:`~repro.service.workers.IngestWorkerPool` — the handler
    only drives the shared ``api_*`` query surface.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        service,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        super().__init__((host, port), _ApiHandler)
        self.service = service
