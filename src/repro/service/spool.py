"""Crash-safe first-flag spool: the service's restart memory.

The :class:`~repro.service.verdicts.VerdictLog` answers "who has ever
been flagged" — but only until the process dies.  Kuptsov et al.
(PAPERS.md) make the point that penalty decisions are only as
trustworthy as the flag history they are derived from; a monitor that
forgets every flag on restart cannot be audited.  The spool closes
that gap: every published first-flag event is appended to an
append-only, crc32-checksummed JSONL file (the campaign journal's
wire idiom, reused via :mod:`repro.experiments.campaign.journal`),
and a restarted service replays the file into its verdict log
*before* accepting traffic — the ``/verdicts`` history it then serves
is byte-identical to the pre-crash one, with zero duplicates (replay
publishes to the log but never re-appends to the spool).

Durability model (same as the campaign journal):

* every append is flushed to the OS immediately — a SIGKILL of the
  service cannot lose a flushed event, only a machine crash can;
* an ``os.fsync`` runs every :data:`FSYNC_EVERY` appends and on
  close, bounding the machine-crash window;
* a torn tail record (mid-append kill) is detected by its checksum,
  truncated away on reopen (:func:`~repro.experiments.campaign.
  journal.repair_journal`), and only that unflushed event is lost —
  it was never observable via ``/verdicts``, so the served history
  never goes backwards;
* damage anywhere else raises
  :class:`~repro.experiments.campaign.journal.JournalCorruptError` —
  that is bitrot or manual editing, not a crash artifact, and
  silently skipping records would serve a gapped flag history as if
  it were complete.

One spool file belongs to one ``(worker, workers)`` slot of one
detector spec; the header record pins all three, and reopening with a
different geometry or spec is refused — replaying another worker's
flags (or another detector's) would fabricate history.
"""

from __future__ import annotations

import os
import pathlib
from threading import Lock
from typing import List, Optional

from repro.experiments.campaign.journal import (
    encode_record,
    read_journal,
    repair_journal,
)
from repro.service.store import FlagEvent

#: Spool schema version (bump on incompatible record changes).
SPOOL_SCHEMA = 1

#: Appends between fsyncs (every append is flushed regardless, so
#: only a *machine* crash — not a SIGKILL — can lose events between
#: fsyncs).
FSYNC_EVERY = 64


class SpoolError(RuntimeError):
    """A spool file cannot be opened, validated or appended."""


def spool_path(
    directory: os.PathLike | str, worker: int, workers: int
) -> pathlib.Path:
    """The spool file for worker ``worker`` of ``workers`` in
    ``directory`` (worker 0 of 1 is the single-process service)."""
    return pathlib.Path(directory) / f"flags-{worker:03d}-of-{workers:03d}.jsonl"


def _header(detector: str, worker: int, workers: int) -> dict:
    return {
        "kind": "flag-spool",
        "schema": SPOOL_SCHEMA,
        "detector": detector,
        "worker": worker,
        "workers": workers,
    }


def _event_record(event: FlagEvent) -> dict:
    # Wall clocks are persisted exactly (JSON floats round-trip via
    # repr), so replayed latency_s values match pre-crash ones bit
    # for bit.
    return {
        "kind": "flag",
        "sender": event.sender,
        "time_us": event.time_us,
        "wall": event.wall,
        "first_obs_wall": event.first_obs_wall,
        "observations": event.observations,
    }


def _decode_event(record: dict, position: int, path: pathlib.Path) -> FlagEvent:
    try:
        return FlagEvent(
            sender=record["sender"],
            time_us=record["time_us"],
            wall=record["wall"],
            first_obs_wall=record["first_obs_wall"],
            observations=record["observations"],
        )
    except KeyError as exc:
        raise SpoolError(
            f"flag record {position} of {path} has no {exc.args[0]!r} "
            f"field; the spool was likely written by an incompatible "
            f"schema (this code writes schema {SPOOL_SCHEMA})"
        ) from None


class FlagSpool:
    """One worker's append-only flag spool, opened for replay + append.

    Opening reads the whole file (repairing a torn tail in place),
    validates the header against this service's identity, and leaves
    the replayed events in :attr:`replayed` for the service to publish
    into its verdict log before it accepts traffic.  :meth:`append`
    then persists each *new* first-flag event.  Thread-safe: TCP
    ingest threads may flag concurrently.
    """

    def __init__(
        self,
        path: os.PathLike | str,
        detector: str,
        worker: int = 0,
        workers: int = 1,
    ):
        if not 0 <= worker < workers:
            raise ValueError(
                f"worker must be in [0, {workers}), got {worker}"
            )
        self.path = pathlib.Path(path)
        self.detector = detector
        self.worker = worker
        self.workers = workers
        self.replayed: List[FlagEvent] = []
        #: True when a torn tail record was repaired away on open.
        self.repaired = False
        self._lock = Lock()
        self._since_sync = 0
        self._fh = None

        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self.path.exists() and self.path.stat().st_size > 0:
            self._replay_existing()
        else:
            self._fh = self.path.open("ab")
            self._append_record(_header(detector, worker, workers))
            self.sync()

    # ------------------------------------------------------------------
    def _replay_existing(self) -> None:
        result = read_journal(self.path)
        if result.truncated or result.needs_newline:
            repair_journal(self.path, result)
            self.repaired = True
        if not result.records:
            # Every record (the header included) was torn away: start
            # the file over rather than appending after garbage.
            self._fh = self.path.open("ab")
            self._append_record(
                _header(self.detector, self.worker, self.workers)
            )
            self.sync()
            return
        header = result.records[0]
        if header.get("kind") != "flag-spool":
            raise SpoolError(
                f"{self.path} is not a flag spool (first record kind "
                f"{header.get('kind')!r})"
            )
        for field_name, mine in (
            ("schema", SPOOL_SCHEMA),
            ("detector", self.detector),
            ("worker", self.worker),
            ("workers", self.workers),
        ):
            theirs = header.get(field_name)
            if theirs != mine:
                raise SpoolError(
                    f"{self.path} was written as {field_name}={theirs!r} "
                    f"but this service is {field_name}={mine!r}; replaying "
                    f"it would fabricate flag history (move the spool "
                    f"aside or restart with the original geometry)"
                )
        for position, record in enumerate(result.records[1:], start=2):
            if record.get("kind") != "flag":
                raise SpoolError(
                    f"record {position} of {self.path} has unexpected "
                    f"kind {record.get('kind')!r}"
                )
            self.replayed.append(_decode_event(record, position, self.path))
        self._fh = self.path.open("ab")

    # ------------------------------------------------------------------
    def append(self, event: FlagEvent) -> None:
        """Persist one new first-flag event (flush now, fsync every
        :data:`FSYNC_EVERY` appends)."""
        with self._lock:
            self._append_record(_event_record(event))
            self._since_sync += 1
            if self._since_sync >= FSYNC_EVERY:
                os.fsync(self._fh.fileno())
                self._since_sync = 0

    def _append_record(self, record: dict) -> None:
        if self._fh is None:
            raise SpoolError(f"spool {self.path} is closed")
        self._fh.write((encode_record(record) + "\n").encode("utf-8"))
        self._fh.flush()

    def sync(self) -> None:
        """fsync everything appended so far."""
        with self._lock:
            if self._fh is not None:
                self._fh.flush()
                os.fsync(self._fh.fileno())
                self._since_sync = 0

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                try:
                    self._fh.flush()
                    os.fsync(self._fh.fileno())
                finally:
                    self._fh.close()
                    self._fh = None

    def __enter__(self) -> "FlagSpool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_spool_events(path: os.PathLike | str) -> List[FlagEvent]:
    """All flag events of a spool file, tolerating a torn tail (read
    only — the file is not repaired).  For tooling and tests."""
    path = pathlib.Path(path)
    result = read_journal(path)
    events: List[FlagEvent] = []
    for position, record in enumerate(result.records, start=1):
        if record.get("kind") == "flag":
            events.append(_decode_event(record, position, path))
    return events


__all__ = [
    "FSYNC_EVERY",
    "FlagSpool",
    "SPOOL_SCHEMA",
    "SpoolError",
    "read_spool_events",
    "spool_path",
]
