"""Observation ingest: the facade tying codec, store and verdicts.

:class:`DetectionService` is the long-running object the CLI, the
HTTP API, the load generator and the tests all share.  It accepts
observations three ways:

* **in-process** — :meth:`DetectionService.ingest_observation`
  (already-decoded ``(sender, Observation)``; the hot path the bench
  measures and the trace-replay adapter drives);
* **stdin** — :func:`ingest_stream` pumps JSONL wire lines from any
  text stream (``python -m repro serve --stdin < trace.jsonl``);
* **TCP** — :class:`TcpIngestServer`, a threaded line-oriented
  socket server; each connection streams wire lines and receives one
  JSON error line back per rejected record (accepted records are
  silent, so a well-formed stream never blocks on responses).

Malformed lines never kill an ingest source: they are counted
(``decode_errors`` in :meth:`DetectionService.stats`), reported to the
offender where a back-channel exists (TCP), and skipped.  A peer that
dies mid-line is not an error either: the reset is counted
(``disconnects``) and the handler closes quietly.

Ingest runs on many TCP handler threads at once, so every counter the
service owns (``_ingested``, ``decode_errors``, ``disconnects``, the
rate-sample deque) is guarded by one mutex — unlocked ``+=`` from
concurrent threads loses updates, which silently skews
``decode_errors`` and ``recent_obs_per_sec`` (regression-tested by a
many-threads hammer in ``tests/test_service.py``).

With a :class:`~repro.service.spool.FlagSpool` attached, every
published first-flag event is also persisted, and the spool's replayed
history is published into the verdict log *at construction* — before
any ingest source is wired up — so a restarted service serves its
pre-crash ``/verdicts`` history byte-identically.
"""

from __future__ import annotations

import json
import socketserver
import time
from collections import deque
from threading import Lock
from typing import Deque, Dict, IO, Iterable, Optional, Tuple

from repro.core.params import PAPER_CONFIG, ProtocolConfig
from repro.detect import DEFAULT_DETECTOR, detector_factory
from repro.detect.base import Observation
from repro.service.codec import WireError, decode_record
from repro.service.spool import FlagSpool
from repro.service.store import (
    DEFAULT_MAX_ENTRIES,
    DEFAULT_SHARDS,
    DEFAULT_TRANSITION_CAP,
    ShardedDetectorStore,
)
from repro.service.verdicts import DEFAULT_VERDICT_CAP, VerdictLog

#: Observations between throughput snapshots (one clock read each).
_RATE_SAMPLE_EVERY = 4096


class DetectionService:
    """One hosted detector family serving many senders.

    Parameters
    ----------
    detector:
        Detector spec string (see :mod:`repro.detect`); any registered
        family works — the service never looks inside the detector.
    config:
        Protocol parameters supplying spec defaults (W/THRESH for
        ``window``, CWmin scaling for the others) — the same defaults
        the in-sim receiver pipeline uses, so served verdicts match
        simulated ones.
    shards / max_entries / transition_cap / verdict_cap:
        See :class:`~repro.service.store.ShardedDetectorStore` and
        :class:`~repro.service.verdicts.VerdictLog`.
    spool:
        Optional :class:`~repro.service.spool.FlagSpool`.  Its
        replayed events are published into the verdict log here, in
        spool order, before the constructor returns; every new first
        flag is appended to it.
    """

    def __init__(
        self,
        detector: str = DEFAULT_DETECTOR,
        config: ProtocolConfig = PAPER_CONFIG,
        shards: int = DEFAULT_SHARDS,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        transition_cap: int = DEFAULT_TRANSITION_CAP,
        verdict_cap: int = DEFAULT_VERDICT_CAP,
        spool: Optional[FlagSpool] = None,
    ):
        self.detector_spec = detector
        self.store = ShardedDetectorStore(
            detector_factory(detector, config),
            shards=shards,
            max_entries=max_entries,
            transition_cap=transition_cap,
        )
        self.verdicts = VerdictLog(cap=verdict_cap)
        self.spool = spool
        self.replayed_flags = 0
        if spool is not None:
            for event in spool.replayed:
                self.verdicts.publish(event)
            self.replayed_flags = len(spool.replayed)
        self.started = time.monotonic()
        self.decode_errors = 0
        self.disconnects = 0
        self._ingested = 0
        #: Guards every counter above plus the rate-sample deque.
        self._counter_lock = Lock()
        #: ``(wall, total)`` snapshots for the recent-rate estimate.
        self._rate_samples: Deque[Tuple[float, int]] = deque(maxlen=64)
        self._rate_samples.append((self.started, 0))

    # ------------------------------------------------------------------
    # Ingest paths
    # ------------------------------------------------------------------
    def ingest_observation(self, sender: str, observation: Observation) -> bool:
        """Fold one decoded observation in; returns the verdict."""
        verdict, event = self.store.observe(sender, observation)
        if event is not None:
            self.verdicts.publish(event)
            if self.spool is not None:
                self.spool.append(event)
        with self._counter_lock:
            self._ingested += 1
            if self._ingested % _RATE_SAMPLE_EVERY == 0:
                self._rate_samples.append((time.monotonic(), self._ingested))
        return verdict

    def ingest_line(self, line: str) -> bool:
        """Decode and ingest one wire line (raises :class:`WireError`)."""
        sender, observation = decode_record(line)
        return self.ingest_observation(sender, observation)

    def record_decode_error(self) -> None:
        with self._counter_lock:
            self.decode_errors += 1

    def record_disconnect(self) -> None:
        """Count a peer that vanished mid-stream (TCP reset)."""
        with self._counter_lock:
            self.disconnects += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """The ``/stats`` payload: rates, occupancy, counters."""
        now = time.monotonic()
        store = self.store.stats()
        total = store["observations"]
        uptime = max(now - self.started, 1e-9)
        with self._counter_lock:
            decode_errors = self.decode_errors
            disconnects = self.disconnects
            ingested = self._ingested
            oldest_wall, oldest_total = self._rate_samples[0]
        window = max(now - oldest_wall, 1e-9)
        return {
            "detector": self.detector_spec,
            "uptime_s": round(uptime, 3),
            "observations": total,
            "decode_errors": decode_errors,
            "disconnects": disconnects,
            "replayed_flags": self.replayed_flags,
            "obs_per_sec": round(total / uptime, 1),
            "recent_obs_per_sec": round(
                (ingested - oldest_total) / window, 1
            ),
            "store": store,
            "verdicts": self.verdicts.stats(),
        }

    # ------------------------------------------------------------------
    # Query surface shared with IngestWorkerPool (what the HTTP layer
    # calls; see repro.service.server).
    # ------------------------------------------------------------------
    @staticmethod
    def parse_cursor(after: Optional[str]) -> int:
        """A single-process cursor is the newest-seen event id."""
        if after is None or after == "":
            return 0
        try:
            value = int(after)
        except ValueError:
            raise ValueError(
                f"cursor 'after' must be an integer event id, "
                f"got {after!r}"
            ) from None
        if value < 0:
            raise ValueError("cursor 'after' must be >= 0")
        return value

    def api_stats(self) -> Dict[str, object]:
        return self.stats()

    def api_verdicts(
        self, after: Optional[str] = None, limit: Optional[int] = None,
    ) -> Dict[str, object]:
        """The ``/verdicts`` payload, including the retention fields a
        resuming watcher needs to detect dropped flags."""
        cursor = self.parse_cursor(after)
        events, newest, info = self.verdicts.events_after(cursor, limit)
        return {
            "events": events,
            "next": newest,
            "oldest": info["oldest"],
            "dropped": info["dropped"],
            "gap": _has_gap(cursor, info["oldest"]),
            "flagged": self.store.flagged_senders(),
        }

    def api_watch(
        self,
        after: Optional[str] = None,
        timeout: float = 30.0,
        limit: Optional[int] = None,
    ) -> Dict[str, object]:
        cursor = self.parse_cursor(after)
        events, newest, info = self.verdicts.wait_for(
            cursor, timeout=timeout, limit=limit
        )
        return {
            "events": events,
            "next": newest,
            "oldest": info["oldest"],
            "dropped": info["dropped"],
            "gap": _has_gap(cursor, info["oldest"]),
        }

    def api_sender(self, sender: str) -> Optional[Dict[str, object]]:
        return self.store.get(sender)

    def close(self) -> None:
        """Release durable resources (the spool, when attached)."""
        if self.spool is not None:
            self.spool.close()


def _has_gap(cursor: int, oldest: Optional[int]) -> bool:
    """True when event ids in ``(cursor, oldest)`` were dropped — a
    watcher resuming from ``cursor`` can never see them."""
    return oldest is not None and cursor + 1 < oldest


# ----------------------------------------------------------------------
# Stream (stdin) ingest
# ----------------------------------------------------------------------
def ingest_stream(
    service: "DetectionService",
    lines: Iterable[str],
    errors: Optional[IO[str]] = None,
    max_reported: int = 10,
) -> Tuple[int, int]:
    """Pump wire lines into the service until the stream ends.

    Works against anything with ``ingest_line`` / ``record_decode_
    error`` — a :class:`DetectionService` or an
    :class:`~repro.service.workers.IngestWorkerPool`.  Returns
    ``(ingested, rejected)``.  Blank lines are keep-alives.  The first
    ``max_reported`` rejects are echoed to ``errors`` (e.g.  stderr)
    with their line number; the rest are only counted.
    """
    ingested = rejected = 0
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            service.ingest_line(line)
            ingested += 1
        except WireError as exc:
            service.record_decode_error()
            rejected += 1
            if errors is not None and rejected <= max_reported:
                print(f"ingest: line {lineno} rejected: {exc}", file=errors)
    if errors is not None and rejected > max_reported:
        print(f"ingest: ... and {rejected - max_reported} more rejected "
              f"line(s)", file=errors)
    return ingested, rejected


# ----------------------------------------------------------------------
# TCP ingest
# ----------------------------------------------------------------------
class _TcpIngestHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        service = self.server.service  # type: ignore[attr-defined]
        try:
            for raw in self.rfile:
                try:
                    line = raw.decode("utf-8").strip()
                except UnicodeDecodeError:
                    service.record_decode_error()
                    self._reject("line is not valid UTF-8")
                    continue
                if not line:
                    continue
                try:
                    service.ingest_line(line)
                except WireError as exc:
                    service.record_decode_error()
                    self._reject(str(exc))
        except (ConnectionResetError, BrokenPipeError, TimeoutError):
            # A peer that dies mid-line (crash, network partition,
            # impatient client) must not dump a traceback per
            # connection: count it and close quietly.  Everything
            # ingested before the reset is already folded in.
            service.record_disconnect()

    def _reject(self, message: str) -> None:
        try:
            self.wfile.write(
                (json.dumps({"error": message}) + "\n").encode("utf-8")
            )
        except OSError:  # peer already gone; the count still happened
            pass


class TcpIngestServer(socketserver.ThreadingTCPServer):
    """Line-oriented TCP ingest on ``host:port`` (port 0 = ephemeral).

    Use like ``http.server``: construct, then ``serve_forever()`` on a
    thread, ``shutdown()`` to stop.  The bound port is
    ``server.server_address[1]``.  ``service`` may be a
    :class:`DetectionService` or an ``IngestWorkerPool`` — the handler
    only needs ``ingest_line`` (raising :class:`WireError` on bad
    lines), ``record_decode_error`` and ``record_disconnect``.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        service: "DetectionService",
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        super().__init__((host, port), _TcpIngestHandler)
        self.service = service
