"""Observation ingest: the facade tying codec, store and verdicts.

:class:`DetectionService` is the long-running object the CLI, the
HTTP API, the load generator and the tests all share.  It accepts
observations three ways:

* **in-process** — :meth:`DetectionService.ingest_observation`
  (already-decoded ``(sender, Observation)``; the hot path the bench
  measures and the trace-replay adapter drives);
* **stdin** — :func:`ingest_stream` pumps JSONL wire lines from any
  text stream (``python -m repro serve --stdin < trace.jsonl``);
* **TCP** — :class:`TcpIngestServer`, a threaded line-oriented
  socket server; each connection streams wire lines and receives one
  JSON error line back per rejected record (accepted records are
  silent, so a well-formed stream never blocks on responses).

Malformed lines never kill an ingest source: they are counted
(``decode_errors`` in :meth:`DetectionService.stats`), reported to the
offender where a back-channel exists (TCP), and skipped.
"""

from __future__ import annotations

import json
import socketserver
import time
from collections import deque
from typing import Deque, Dict, IO, Iterable, Optional, Tuple

from repro.core.params import PAPER_CONFIG, ProtocolConfig
from repro.detect import DEFAULT_DETECTOR, detector_factory
from repro.detect.base import Observation
from repro.service.codec import WireError, decode_record
from repro.service.store import (
    DEFAULT_MAX_ENTRIES,
    DEFAULT_SHARDS,
    DEFAULT_TRANSITION_CAP,
    ShardedDetectorStore,
)
from repro.service.verdicts import DEFAULT_VERDICT_CAP, VerdictLog

#: Observations between throughput snapshots (one clock read each).
_RATE_SAMPLE_EVERY = 4096


class DetectionService:
    """One hosted detector family serving many senders.

    Parameters
    ----------
    detector:
        Detector spec string (see :mod:`repro.detect`); any registered
        family works — the service never looks inside the detector.
    config:
        Protocol parameters supplying spec defaults (W/THRESH for
        ``window``, CWmin scaling for the others) — the same defaults
        the in-sim receiver pipeline uses, so served verdicts match
        simulated ones.
    shards / max_entries / transition_cap / verdict_cap:
        See :class:`~repro.service.store.ShardedDetectorStore` and
        :class:`~repro.service.verdicts.VerdictLog`.
    """

    def __init__(
        self,
        detector: str = DEFAULT_DETECTOR,
        config: ProtocolConfig = PAPER_CONFIG,
        shards: int = DEFAULT_SHARDS,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        transition_cap: int = DEFAULT_TRANSITION_CAP,
        verdict_cap: int = DEFAULT_VERDICT_CAP,
    ):
        self.detector_spec = detector
        self.store = ShardedDetectorStore(
            detector_factory(detector, config),
            shards=shards,
            max_entries=max_entries,
            transition_cap=transition_cap,
        )
        self.verdicts = VerdictLog(cap=verdict_cap)
        self.started = time.monotonic()
        self.decode_errors = 0
        self._ingested = 0
        #: ``(wall, total)`` snapshots for the recent-rate estimate.
        self._rate_samples: Deque[Tuple[float, int]] = deque(maxlen=64)
        self._rate_samples.append((self.started, 0))

    # ------------------------------------------------------------------
    # Ingest paths
    # ------------------------------------------------------------------
    def ingest_observation(self, sender: str, observation: Observation) -> bool:
        """Fold one decoded observation in; returns the verdict."""
        verdict, event = self.store.observe(sender, observation)
        if event is not None:
            self.verdicts.publish(event)
        self._ingested += 1
        if self._ingested % _RATE_SAMPLE_EVERY == 0:
            self._rate_samples.append((time.monotonic(), self._ingested))
        return verdict

    def ingest_line(self, line: str) -> bool:
        """Decode and ingest one wire line (raises :class:`WireError`)."""
        sender, observation = decode_record(line)
        return self.ingest_observation(sender, observation)

    def record_decode_error(self) -> None:
        self.decode_errors += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """The ``/stats`` payload: rates, occupancy, counters."""
        now = time.monotonic()
        store = self.store.stats()
        total = store["observations"]
        uptime = max(now - self.started, 1e-9)
        oldest_wall, oldest_total = self._rate_samples[0]
        window = max(now - oldest_wall, 1e-9)
        return {
            "detector": self.detector_spec,
            "uptime_s": round(uptime, 3),
            "observations": total,
            "decode_errors": self.decode_errors,
            "obs_per_sec": round(total / uptime, 1),
            "recent_obs_per_sec": round(
                (self._ingested - oldest_total) / window, 1
            ),
            "store": store,
            "verdicts": self.verdicts.stats(),
        }


# ----------------------------------------------------------------------
# Stream (stdin) ingest
# ----------------------------------------------------------------------
def ingest_stream(
    service: DetectionService,
    lines: Iterable[str],
    errors: Optional[IO[str]] = None,
    max_reported: int = 10,
) -> Tuple[int, int]:
    """Pump wire lines into the service until the stream ends.

    Returns ``(ingested, rejected)``.  Blank lines are keep-alives.
    The first ``max_reported`` rejects are echoed to ``errors`` (e.g.
    stderr) with their line number; the rest are only counted.
    """
    ingested = rejected = 0
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            service.ingest_line(line)
            ingested += 1
        except WireError as exc:
            service.record_decode_error()
            rejected += 1
            if errors is not None and rejected <= max_reported:
                print(f"ingest: line {lineno} rejected: {exc}", file=errors)
    if errors is not None and rejected > max_reported:
        print(f"ingest: ... and {rejected - max_reported} more rejected "
              f"line(s)", file=errors)
    return ingested, rejected


# ----------------------------------------------------------------------
# TCP ingest
# ----------------------------------------------------------------------
class _TcpIngestHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        service: DetectionService = self.server.service  # type: ignore
        for raw in self.rfile:
            try:
                line = raw.decode("utf-8").strip()
            except UnicodeDecodeError:
                service.record_decode_error()
                self._reject("line is not valid UTF-8")
                continue
            if not line:
                continue
            try:
                service.ingest_line(line)
            except WireError as exc:
                service.record_decode_error()
                self._reject(str(exc))

    def _reject(self, message: str) -> None:
        try:
            self.wfile.write(
                (json.dumps({"error": message}) + "\n").encode("utf-8")
            )
        except OSError:  # peer already gone; the count still happened
            pass


class TcpIngestServer(socketserver.ThreadingTCPServer):
    """Line-oriented TCP ingest on ``host:port`` (port 0 = ephemeral).

    Use like ``http.server``: construct, then ``serve_forever()`` on a
    thread, ``shutdown()`` to stop.  The bound port is
    ``server.server_address[1]``.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        service: DetectionService,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        super().__init__((host, port), _TcpIngestHandler)
        self.service = service
