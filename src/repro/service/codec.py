"""Wire codec of the detection service: one JSON object per line.

A wire record is the versioned :meth:`Observation.to_dict` payload
plus the one thing the service adds — the sender the observation
judges::

    {"v": 1, "sender": "3", "b_exp": 31.0, "b_act": 12.0,
     "retries": 1, "time_us": 48211}

Records travel as JSONL (one object per ``\\n``-terminated line) over
stdin and TCP.  Decoding is strict end to end: the JSON layer rejects
non-objects and bad senders here, and the observation layer rejects
unknown/missing/mistyped fields in
:meth:`repro.detect.Observation.from_dict` — every failure carries an
actionable message naming the offending token, because a silently
mis-read observation would corrupt verdicts downstream.
"""

from __future__ import annotations

import json
from typing import Iterable, Iterator, Optional, Tuple

from repro.detect.base import (
    OBSERVATION_SCHEMA_VERSION,
    Observation,
    ObservationDecodeError,
)

#: The service speaks the observation schema's version: the sender key
#: is the only field the wire layer adds on top of it.
WIRE_VERSION = OBSERVATION_SCHEMA_VERSION

#: Longest accepted sender key (wire hygiene: a malicious or corrupt
#: line must not be able to intern arbitrarily large keys).
MAX_SENDER_LENGTH = 256


class WireError(ValueError):
    """A wire line is not a valid observation record."""


def encode_record(sender: str, observation: Observation) -> str:
    """One wire line (no trailing newline) for ``observation``."""
    record = observation.to_dict()
    record["sender"] = sender
    return json.dumps(record, separators=(",", ":"), sort_keys=True)


#: What ``encode_record``'s compact sorted JSON puts before the sender
#: value — the anchor :func:`sender_of_line` scans for.
_SENDER_MARKER = '"sender":"'


def sender_of_line(line: str) -> Optional[str]:
    """Best-effort sender key of a wire line, without a JSON parse.

    The multi-worker front-end routes each line by ``crc32(sender)``
    before any worker decodes it; a full :func:`json.loads` per line
    would put the whole decode cost back on the routing process.  This
    scans for the ``"sender":"..."`` span that :func:`encode_record`'s
    compact sorted JSON always produces.  Returns ``None`` when the
    span is absent or contains JSON escapes (a sender with quotes or
    backslashes) — callers then fall back to :func:`decode_record`,
    which settles whether the line is malformed or merely exotic.
    Never wrong, only occasionally undecided: a non-``None`` return
    always equals the sender :func:`decode_record` would yield.
    """
    start = line.find(_SENDER_MARKER)
    if start < 0:
        return None
    start += len(_SENDER_MARKER)
    end = line.find('"', start)
    if end <= start:
        return None
    sender = line[start:end]
    if "\\" in sender or len(sender) > MAX_SENDER_LENGTH:
        return None
    return sender


def decode_record(line: str) -> Tuple[str, Observation]:
    """Parse one wire line into ``(sender, observation)``.

    Raises :class:`WireError` with a message naming what is wrong:
    invalid JSON, a non-object payload, a missing/empty/oversized/
    non-string ``sender``, or any observation-schema violation
    (reported through :class:`~repro.detect.ObservationDecodeError`'s
    message).
    """
    try:
        data = json.loads(line)
    except json.JSONDecodeError as exc:
        raise WireError(f"line is not valid JSON: {exc}") from None
    if not isinstance(data, dict):
        raise WireError(
            f"wire record must be a JSON object, got {type(data).__name__}"
        )
    if "sender" not in data:
        raise WireError(
            "wire record has no 'sender' field (which sender does this "
            "observation judge?)"
        )
    sender = data.pop("sender")
    if not isinstance(sender, str) or not sender:
        raise WireError(
            f"wire field 'sender' must be a non-empty string, "
            f"got {sender!r}"
        )
    if len(sender) > MAX_SENDER_LENGTH:
        raise WireError(
            f"wire field 'sender' exceeds {MAX_SENDER_LENGTH} characters "
            f"({len(sender)})"
        )
    try:
        observation = Observation.from_dict(data)
    except ObservationDecodeError as exc:
        raise WireError(str(exc)) from None
    return sender, observation


def encode_stream(
    records: Iterable[Tuple[str, Observation]]
) -> Iterator[str]:
    """Encode ``(sender, observation)`` pairs as wire lines."""
    for sender, observation in records:
        yield encode_record(sender, observation)


def decode_lines(lines: Iterable[str]) -> Iterator[Tuple[str, Observation]]:
    """Decode wire lines, skipping blank lines (keep-alives)."""
    for line in lines:
        line = line.strip()
        if line:
            yield decode_record(line)
