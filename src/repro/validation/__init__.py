"""Protocol-conformance validation over recorded traces."""

from repro.validation.checker import (
    ConformanceReport,
    ProtocolChecker,
    Violation,
)

__all__ = ["ConformanceReport", "ProtocolChecker", "Violation"]
